package tracered

import (
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/trace"
)

// Format selects the container version the writer entry points emit.
// Readers never need one: ReadTrace, ReadReduced, and NewTraceDecoder
// sniff the magic and accept every released version.
//
// FormatV1 is the fixed-width rank-sequential layout and stays the
// default interchange form; FormatV2 is the columnar block layout —
// smaller on disk (per-rank delta+varint encoding) and decodable
// block-parallel on random-access inputs. Files of either version stay
// readable forever; format changes get a new magic, never an edit to a
// released layout.
type Format int

const (
	// FormatV1 is the version-1 container (TRC1/TRR1): fixed-width
	// records, rank-sequential, the default.
	FormatV1 Format = 1
	// FormatV2 is the version-2 columnar container (TRC2/TRR2):
	// per-rank checksummed blocks with a footer index, delta+varint
	// record encoding, block-parallel decode.
	FormatV2 Format = 2
)

// FormatNames lists the accepted format spellings in display order.
var FormatNames = []string{"v1", "v2"}

// ParseFormat parses a container-format name (a -format flag value).
func ParseFormat(s string) (Format, error) {
	switch s {
	case "v1", "1":
		return FormatV1, nil
	case "v2", "2":
		return FormatV2, nil
	default:
		return 0, fmt.Errorf("tracered: unknown format %q (want v1 or v2)", s)
	}
}

// String returns the canonical spelling ParseFormat accepts.
func (f Format) String() string {
	switch f {
	case FormatV1:
		return "v1"
	case FormatV2:
		return "v2"
	default:
		return fmt.Sprintf("Format(%d)", int(f))
	}
}

// DecoderOptions tunes version-aware trace reading; the zero value is
// ready to use. Workers bounds the block-decode pool for v2 containers
// on random-access inputs (0 means GOMAXPROCS); v1 containers decode
// sequentially regardless. Ctx cancels an in-flight decode; Limits
// tightens the hostile-input allocation caps for untrusted inputs.
type DecoderOptions = trace.DecoderOptions

// DecodeLimits bound what a decoder accepts from a container header
// before the body proves the bytes exist; the zero value keeps the
// library's historical caps. Servers decoding uploads lower them to
// enforce per-tenant budgets.
type DecodeLimits = trace.DecodeLimits

// EncoderOptions tunes version-aware trace writing; the zero value is
// ready to use. Workers bounds the block-encode pool for v2 containers
// (0 means GOMAXPROCS, 1 encodes inline); the encoded bytes are
// identical at every setting. v1 containers encode sequentially
// regardless.
type EncoderOptions = trace.EncoderOptions

// WriteTraceFormat stores a trace in the requested container format.
// Version-2 blocks are encoded on a GOMAXPROCS worker pool; use
// WriteTraceFormatWith to bound it.
func WriteTraceFormat(w io.Writer, t *Trace, f Format) error {
	return WriteTraceFormatWith(w, t, f, EncoderOptions{})
}

// WriteTraceFormatWith is WriteTraceFormat with explicit options.
func WriteTraceFormatWith(w io.Writer, t *Trace, f Format, opts EncoderOptions) error {
	switch f {
	case FormatV1:
		return trace.Encode(w, t)
	case FormatV2:
		return trace.EncodeV2With(w, t, opts)
	default:
		return fmt.Errorf("tracered: unknown trace format %v", f)
	}
}

// WriteReducedFormat stores a reduced trace in the requested container
// format. Version-2 blocks are encoded on a GOMAXPROCS worker pool; use
// WriteReducedFormatWith to bound it.
func WriteReducedFormat(w io.Writer, red *Reduced, f Format) error {
	return WriteReducedFormatWith(w, red, f, EncoderOptions{})
}

// WriteReducedFormatWith is WriteReducedFormat with explicit options.
func WriteReducedFormatWith(w io.Writer, red *Reduced, f Format, opts EncoderOptions) error {
	switch f {
	case FormatV1:
		return core.EncodeReduced(w, red)
	case FormatV2:
		return core.EncodeReducedV2With(w, red, opts)
	default:
		return fmt.Errorf("tracered: unknown reduced format %v", f)
	}
}

// TraceSizeFormat returns the encoded byte size of a full trace in the
// requested container format.
func TraceSizeFormat(t *Trace, f Format) int64 {
	if f == FormatV2 {
		return trace.EncodedSizeV2(t)
	}
	return trace.EncodedSize(t)
}

// ReducedSizeFormat returns the encoded byte size of a reduced trace in
// the requested container format.
func ReducedSizeFormat(red *Reduced, f Format) int64 {
	if f == FormatV2 {
		return core.EncodedReducedSizeV2(red)
	}
	return core.EncodedReducedSize(red)
}

// NewTraceDecoderWith is NewTraceDecoder with explicit options: on a
// random-access v2 container the decoder fans blocks across
// opts.Workers goroutines while NextRank streams ranks in order.
func NewTraceDecoderWith(r io.Reader, opts DecoderOptions) (*TraceDecoder, error) {
	return trace.NewDecoderWith(r, opts)
}

// ReadReducedWith is ReadReduced with explicit options (see
// DecoderOptions for what they tune).
func ReadReducedWith(r io.Reader, opts DecoderOptions) (*Reduced, error) {
	return core.DecodeReducedWith(r, opts)
}

// ReduceStreamStats summarizes a pipelined ReduceStreamToWriter run: the
// batch reduction's counters plus the bytes written.
type ReduceStreamStats = core.StreamStats

// ReduceStreamToWriter reduces ranks as d decodes them AND writes the
// reduced container to w in the requested format, fully pipelined:
// decode, per-rank reduction, and reduced-block encode overlap on one
// worker pool, and each rank's block is encoded by the worker that
// reduced it. The bytes written are identical to WriteReducedFormat of
// the ReduceStream result, but the full Reduced is never materialized —
// peak memory is a pool's worth of ranks plus the compact encoded
// blocks.
func ReduceStreamToWriter(d *TraceDecoder, m Method, w io.Writer, f Format) (*ReduceStreamStats, error) {
	return ReduceStreamToWriterMode(d, m, MatchModeExact, w, f)
}

// ReduceStreamToWriterMode is ReduceStreamToWriter under an explicit
// MatchMode.
func ReduceStreamToWriterMode(d *TraceDecoder, m Method, mode MatchMode, w io.Writer, f Format) (*ReduceStreamStats, error) {
	return ReduceStreamToWriterOpts(d, m, w, f, StreamOptions{Mode: mode})
}

// StreamOptions configure the pipelined reduce-to-writer path: match
// mode, worker-pool bound (0 means GOMAXPROCS; the bytes written are
// identical at every setting), and a cancellation context. The zero
// value is the exact-scan default.
type StreamOptions = core.StreamOptions

// ReduceStreamToWriterOpts is ReduceStreamToWriter with explicit
// options, the form the serving layer uses to bound each session's
// share of the worker fleet and to stop the pipeline when a client
// disconnects.
func ReduceStreamToWriterOpts(d *TraceDecoder, m Method, w io.Writer, f Format, opts StreamOptions) (*ReduceStreamStats, error) {
	switch f {
	case FormatV1, FormatV2:
	default:
		return nil, fmt.Errorf("tracered: unknown reduced format %v", f)
	}
	// The decoder owning the ranks is right here, so recycle event
	// buffers back to it by default: steady-state event storage stays at
	// O(workers) buffers however many ranks stream through.
	if opts.Recycle == nil {
		opts.Recycle = d.Recycle
	}
	return core.ReduceStreamToWriterOpts(d.Name(), m, d.NextRank, w, int(f), opts)
}
