package tracered_test

import (
	"bytes"
	"testing"

	"repro/tracered"
)

// TestPublicPipeline exercises the documented end-to-end flow on one of
// the study workloads.
func TestPublicPipeline(t *testing.T) {
	full, err := tracered.GenerateWorkload("late_sender")
	if err != nil {
		t.Fatalf("GenerateWorkload: %v", err)
	}
	m, err := tracered.NewMethod("avgWave", 0.2)
	if err != nil {
		t.Fatalf("NewMethod: %v", err)
	}
	red, err := tracered.Reduce(full, m)
	if err != nil {
		t.Fatalf("Reduce: %v", err)
	}
	if tracered.ReducedSize(red) >= tracered.TraceSize(full) {
		t.Error("reduction did not shrink the trace")
	}
	recon, err := red.Reconstruct()
	if err != nil {
		t.Fatalf("Reconstruct: %v", err)
	}
	dist, err := tracered.ApproximationDistance(full, recon, 0.9)
	if err != nil {
		t.Fatalf("ApproximationDistance: %v", err)
	}
	if dist < 0 || dist > 10_000 {
		t.Errorf("approximation distance %d out of plausible range", dist)
	}
	res, err := tracered.Score(full, red)
	if err != nil {
		t.Fatalf("Score: %v", err)
	}
	if !res.Retained {
		t.Errorf("avgWave should retain late_sender trends: %v", res.Issues)
	}
}

func TestEvaluateShortcut(t *testing.T) {
	full, err := tracered.GenerateWorkload("late_broadcast")
	if err != nil {
		t.Fatal(err)
	}
	res, err := tracered.Evaluate(full, "manhattan", 0.4)
	if err != nil {
		t.Fatalf("Evaluate: %v", err)
	}
	if res.Method != "manhattan" || res.Threshold != 0.4 {
		t.Errorf("result identity: %+v", res)
	}
}

func TestDiagnosisAndChart(t *testing.T) {
	full, err := tracered.GenerateWorkload("late_sender")
	if err != nil {
		t.Fatal(err)
	}
	d, err := tracered.Analyze(full)
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	found := false
	for _, k := range d.Keys() {
		if k.Metric == "late_sender" && k.Location == "MPI_Recv" {
			found = true
		}
	}
	if !found {
		t.Error("late_sender diagnosis missing from full trace")
	}
	if chart := tracered.Chart(d, 0.01); len(chart) == 0 {
		t.Error("empty chart")
	}
	v := tracered.CompareDiagnoses(d, d)
	if !v.Retained {
		t.Errorf("self-comparison must be retained: %v", v)
	}
}

func TestTraceIO(t *testing.T) {
	full, err := tracered.GenerateWorkload("early_gather")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tracered.WriteTrace(&buf, full); err != nil {
		t.Fatalf("WriteTrace: %v", err)
	}
	if int64(buf.Len()) != tracered.TraceSize(full) {
		t.Error("TraceSize disagrees with WriteTrace")
	}
	back, err := tracered.ReadTrace(&buf)
	if err != nil {
		t.Fatalf("ReadTrace: %v", err)
	}
	if back.NumEvents() != full.NumEvents() || back.Name != full.Name {
		t.Error("trace IO roundtrip lost data")
	}
}

func TestReducedIO(t *testing.T) {
	full, err := tracered.GenerateWorkload("early_gather")
	if err != nil {
		t.Fatal(err)
	}
	m, err := tracered.DefaultMethod("absDiff")
	if err != nil {
		t.Fatal(err)
	}
	red, err := tracered.Reduce(full, m)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tracered.WriteReduced(&buf, red); err != nil {
		t.Fatalf("WriteReduced: %v", err)
	}
	back, err := tracered.ReadReduced(&buf)
	if err != nil {
		t.Fatalf("ReadReduced: %v", err)
	}
	a, err := red.Reconstruct()
	if err != nil {
		t.Fatal(err)
	}
	b, err := back.Reconstruct()
	if err != nil {
		t.Fatal(err)
	}
	if a.NumEvents() != b.NumEvents() {
		t.Error("reduced IO roundtrip changed reconstruction")
	}
}

func TestWorkloadNames(t *testing.T) {
	names := tracered.WorkloadNames()
	if len(names) != 20 {
		t.Errorf("WorkloadNames = %d, want 20", len(names))
	}
	if _, err := tracered.GenerateWorkload("not-a-workload"); err == nil {
		t.Error("unknown workload must fail")
	}
}

func TestMethodRegistry(t *testing.T) {
	if len(tracered.MethodNames) != 9 {
		t.Errorf("MethodNames = %d, want 9", len(tracered.MethodNames))
	}
	for _, name := range tracered.MethodNames {
		if _, err := tracered.DefaultMethod(name); err != nil {
			t.Errorf("DefaultMethod(%s): %v", name, err)
		}
	}
	if _, err := tracered.NewMethod("nope", 1); err == nil {
		t.Error("unknown method must fail")
	}
}
