// Package tracered is the public API of the similarity-based trace
// reduction library: a downstream user's single entry point to generating
// or loading event traces, reducing them with any of the nine similarity
// methods the SC'09 study evaluates, reconstructing approximate traces,
// diagnosing performance problems, and scoring reductions against the
// study's four criteria.
//
// The typical pipeline:
//
//	full, _ := tracered.GenerateWorkload("late_sender")
//	method, _ := tracered.NewMethod("avgWave", 0.2)
//	red, _ := tracered.Reduce(full, method)
//	recon, _ := red.Reconstruct()
//	report, _ := tracered.Score(full, red)
//
// Everything here is a thin re-export of the internal packages; see
// DESIGN.md for the architecture.
package tracered

import (
	"io"

	"repro/internal/core"
	"repro/internal/cube"
	"repro/internal/eval"
	"repro/internal/expert"
	"repro/internal/segment"
	"repro/internal/trace"
)

// Core data model re-exports.
type (
	// Trace is a complete application event trace (one stream per rank).
	Trace = trace.Trace
	// RankTrace is one process's ordered event stream.
	RankTrace = trace.RankTrace
	// Event is a single timestamped program activity.
	Event = trace.Event
	// EventKind classifies events.
	EventKind = trace.EventKind
	// Time is a timestamp/duration in microseconds.
	Time = trace.Time
	// Segment is a marker-delimited slice of one rank's trace.
	Segment = segment.Segment
	// Method is a segment-similarity policy.
	Method = core.Policy
	// Reduced is a reduced application trace (representatives + execution
	// log).
	Reduced = core.Reduced
	// Diagnosis is an EXPERT-style performance diagnosis.
	Diagnosis = expert.Diagnosis
	// DiagnosisKey addresses one (metric, location) diagnosis cell.
	DiagnosisKey = expert.Key
	// Verdict is the outcome of a trend-retention comparison.
	Verdict = cube.Verdict
	// EvalResult bundles the study's four criteria for one reduction.
	EvalResult = eval.Result
)

// MethodNames lists the nine similarity methods in the paper's order:
// relDiff, absDiff, manhattan, euclidean, chebyshev, iter_k, iter_avg,
// avgWave, haarWave.
var MethodNames = core.MethodNames

// DefaultThresholds maps each method to the best threshold selected by
// the paper's threshold study.
var DefaultThresholds = core.DefaultThresholds

// MatchMode selects how reduction searches a pattern class for a
// matching representative: MatchModeExact is the paper's first-match
// linear scan; MatchModeVPTree and MatchModeLSH are the sublinear
// approximate searches; MatchModeAuto picks the best supported index
// per method. See the core package's MatchMode documentation for the
// per-mode guarantees.
type MatchMode = core.MatchMode

// Match-mode constants, re-exported for the *Mode entry points.
const (
	MatchModeExact  = core.MatchModeExact
	MatchModeVPTree = core.MatchModeVPTree
	MatchModeLSH    = core.MatchModeLSH
	MatchModeAuto   = core.MatchModeAuto
)

// MatchModeNames lists the accepted match-mode spellings in display
// order: exact, vptree, lsh, auto.
var MatchModeNames = core.MatchModeNames

// ParseMatchMode parses a match-mode name (a -match flag value).
func ParseMatchMode(s string) (MatchMode, error) { return core.ParseMatchMode(s) }

// NewMethod constructs a similarity method by name and threshold.
func NewMethod(name string, threshold float64) (Method, error) {
	return core.NewMethod(name, threshold)
}

// DefaultMethod constructs a method at its paper-default threshold.
func DefaultMethod(name string) (Method, error) { return core.DefaultMethod(name) }

// Reduce segments every rank of t and reduces it with the method,
// keeping one representative per repeating pattern. Ranks are reduced in
// parallel on a GOMAXPROCS-bounded worker pool; the result is
// deterministic and byte-identical to ReduceSequential.
func Reduce(t *Trace, m Method) (*Reduced, error) { return core.Reduce(t, m) }

// ReduceMode is Reduce under an explicit MatchMode: exact mode is
// Reduce itself; the approximate modes search each pattern class
// through a sublinear index where the method supports one and fall
// back to the exact scan where it does not.
func ReduceMode(t *Trace, m Method, mode MatchMode) (*Reduced, error) {
	return core.ReduceMode(t, m, mode)
}

// ReduceSequential is the retained single-threaded reference reduction;
// prefer Reduce.
func ReduceSequential(t *Trace, m Method) (*Reduced, error) { return core.ReduceSequential(t, m) }

// ReduceSequentialMode is ReduceSequential under an explicit MatchMode.
func ReduceSequentialMode(t *Trace, m Method, mode MatchMode) (*Reduced, error) {
	return core.ReduceSequentialMode(t, m, mode)
}

// Streaming API: the incremental building blocks the batch entry points
// are made of, for callers that reduce traces too large to materialize.
type (
	// RankReduced is the reduced form of one rank's trace.
	RankReduced = core.RankReduced
	// RankReducer reduces one rank's segment stream incrementally.
	RankReducer = core.RankReducer
	// SegmentSplitter cuts one rank's event stream into segments
	// incrementally.
	SegmentSplitter = segment.Splitter
	// TraceDecoder reads a binary trace file one rank at a time.
	TraceDecoder = trace.Decoder
)

// NewRankReducer returns an incremental reducer for one rank's segments:
// Feed segments (or FeedEvents raw events) as they arrive, then Finish.
func NewRankReducer(rank int, m Method) *RankReducer { return core.NewRankReducer(rank, m) }

// NewRankReducerMode is NewRankReducer under an explicit MatchMode.
func NewRankReducerMode(rank int, m Method, mode MatchMode) *RankReducer {
	return core.NewRankReducerMode(rank, m, mode)
}

// NewSegmentSplitter returns an incremental splitter for one rank's
// events: Feed events in trace order; completed segments come back as
// their closing markers arrive.
func NewSegmentSplitter(rank int) *SegmentSplitter { return segment.NewSplitter(rank) }

// NewTraceDecoder opens a binary trace stream for rank-at-a-time
// decoding.
func NewTraceDecoder(r io.Reader) (*TraceDecoder, error) { return trace.NewDecoder(r) }

// ReduceStream reduces ranks as d decodes them, holding at most a worker
// pool's worth of ranks in memory instead of the whole trace. The result
// is byte-identical to Reduce over the fully decoded trace.
func ReduceStream(d *TraceDecoder, m Method) (*Reduced, error) {
	return core.ReduceStream(d.Name(), m, d.NextRank)
}

// ReduceStreamMode is ReduceStream under an explicit MatchMode.
func ReduceStreamMode(d *TraceDecoder, m Method, mode MatchMode) (*Reduced, error) {
	return core.ReduceStreamMode(d.Name(), m, mode, d.NextRank)
}

// SplitSegments segments a trace without reducing it; the result is
// indexed by rank.
func SplitSegments(t *Trace) ([][]*Segment, error) { return segment.SplitTrace(t) }

// ApproximationDistance reports the absolute timestamp error that the
// given quantile of stamps stays within when approx is compared with full
// (the paper uses quantile 0.9).
func ApproximationDistance(full, approx *Trace, quantile float64) (Time, error) {
	return core.ApproximationDistance(full, approx, quantile)
}

// Analyze produces the EXPERT-style diagnosis of a trace.
func Analyze(t *Trace) (*Diagnosis, error) { return expert.Analyze(t) }

// AnalyzeReduced produces the EXPERT-style diagnosis directly from a
// reduced trace — equal to Analyze(red.Reconstruct()) but computed from
// the stored representatives and 12-byte execution records, at a cost
// proportional to representatives + execution records + communication
// events instead of the full event count.
func AnalyzeReduced(red *Reduced) (*Diagnosis, error) { return expert.AnalyzeReduced(red) }

// ApproximationDistanceReduced reports the approximation distance of a
// reduction without reconstructing it — equal to
// ApproximationDistance(full, red.Reconstruct(), quantile).
func ApproximationDistanceReduced(full *Trace, red *Reduced, quantile float64) (Time, error) {
	return core.ApproximationDistanceReduced(full, red, quantile)
}

// CompareDiagnoses judges whether the reconstructed trace's diagnosis
// retains the full trace's performance trends under the study's
// guidelines.
func CompareDiagnoses(full, approx *Diagnosis) Verdict {
	return cube.Compare(full, approx, cube.DefaultCompareOptions())
}

// Chart renders a diagnosis as a per-rank severity chart (the textual
// analogue of the paper's CUBE screenshots). Cells below minFrac of the
// chart scale are omitted.
func Chart(d *Diagnosis, minFrac float64) string { return cube.Chart(d, minFrac) }

// Score scores an already-computed reduction against its full trace,
// returning all four study criteria. The reduction is scored directly
// from its reduced form — the approximate trace is never reconstructed.
func Score(full *Trace, red *Reduced) (*EvalResult, error) {
	fullDiag, err := expert.Analyze(full)
	if err != nil {
		return nil, err
	}
	return eval.EvaluateReduced(full, fullDiag, red)
}

// ScoreReduced is Score with the full trace's diagnosis supplied by the
// caller, so scoring many reductions of the same workload analyzes the
// full trace once.
func ScoreReduced(full *Trace, fullDiag *Diagnosis, red *Reduced) (*EvalResult, error) {
	return eval.EvaluateReduced(full, fullDiag, red)
}

// Evaluate runs the full pipeline — reduce, measure, re-diagnose
// directly from the reduced form, compare — for a method name and
// threshold.
func Evaluate(full *Trace, method string, threshold float64) (*EvalResult, error) {
	fullDiag, err := expert.Analyze(full)
	if err != nil {
		return nil, err
	}
	return eval.Evaluate(full, fullDiag, method, threshold)
}

// WorkloadNames returns the study's 20 workload names in catalog order.
func WorkloadNames() []string { return eval.AllNames() }

// GenerateWorkload builds and simulates one of the named study workloads
// and returns its full trace.
func GenerateWorkload(name string) (*Trace, error) {
	w, err := eval.Lookup(name)
	if err != nil {
		return nil, err
	}
	return w.Generate()
}

// Signature is a content hash of a trace: SHA-256 over the decoded
// events rather than the container bytes, so the v1 and v2 encodings of
// the same trace share one signature.
type Signature = trace.Signature

// ParseSignature parses the hex form produced by Signature.String.
func ParseSignature(s string) (Signature, error) { return trace.ParseSignature(s) }

// TraceSignature decodes the trace readable from r (either container
// version) and returns its content signature — the key the serving
// layer's representative cache is addressed by.
func TraceSignature(r io.Reader) (Signature, error) { return trace.SignatureOf(r) }

// TraceSignatureWith is TraceSignature with explicit decoder options
// (worker count, allocation caps, cancellation).
func TraceSignatureWith(r io.Reader, opts DecoderOptions) (Signature, error) {
	return trace.SignatureOfWith(r, opts)
}

// WriteTrace stores a trace in the binary trace format.
func WriteTrace(w io.Writer, t *Trace) error { return trace.Encode(w, t) }

// ReadTrace loads a trace written by WriteTrace.
func ReadTrace(r io.Reader) (*Trace, error) { return trace.Decode(r) }

// WriteReduced stores a reduced trace in the reduced binary format.
func WriteReduced(w io.Writer, red *Reduced) error { return core.EncodeReduced(w, red) }

// ReadReduced loads a reduced trace written by WriteReduced.
func ReadReduced(r io.Reader) (*Reduced, error) { return core.DecodeReduced(r) }

// TraceSize returns the encoded byte size of a full trace.
func TraceSize(t *Trace) int64 { return trace.EncodedSize(t) }

// ReducedSize returns the encoded byte size of a reduced trace.
func ReducedSize(red *Reduced) int64 { return core.EncodedReducedSize(red) }
