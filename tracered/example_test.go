package tracered_test

import (
	"bytes"
	"fmt"
	"log"

	"repro/tracered"
)

// ExampleReduce is the batch pipeline: generate (or load) a full trace,
// reduce it with one of the paper's nine similarity methods, and inspect
// the reduction shape. Workload generation is deterministic, so this
// example doubles as documentation that cannot rot.
func ExampleReduce() {
	full, err := tracered.GenerateWorkload("late_sender")
	if err != nil {
		log.Fatal(err)
	}
	method, err := tracered.DefaultMethod("avgWave")
	if err != nil {
		log.Fatal(err)
	}
	red, err := tracered.Reduce(full, method) // rank-parallel
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s: kept %d of %d segments, degree of matching %.3f\n",
		red.Name, red.StoredSegments(), red.TotalSegments, red.DegreeOfMatching())
	// Output:
	// late_sender: kept 24 of 496 segments, degree of matching 1.000
}

// ExampleReduceStream is the streaming pipeline for traces too large to
// materialize: ranks are decoded from the binary TRC1 format (see
// docs/FORMATS.md) and reduced as they arrive. The result is
// byte-identical to ExampleReduce's.
func ExampleReduceStream() {
	full, err := tracered.GenerateWorkload("late_sender")
	if err != nil {
		log.Fatal(err)
	}
	var file bytes.Buffer // stands in for the trace file on disk
	if err := tracered.WriteTrace(&file, full); err != nil {
		log.Fatal(err)
	}

	dec, err := tracered.NewTraceDecoder(&file) // reads the header
	if err != nil {
		log.Fatal(err)
	}
	method, err := tracered.DefaultMethod("avgWave")
	if err != nil {
		log.Fatal(err)
	}
	red, err := tracered.ReduceStream(dec, method) // ranks reduced as decoded
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s: %d ranks, %d bytes reduced\n",
		red.Name, len(red.Ranks), tracered.ReducedSize(red))
	// Output:
	// late_sender: 8 ranks, 9493 bytes reduced
}

// ExampleEvaluate scores one (workload, method, threshold) cell against
// the study's four criteria. Scoring runs directly on the reduced form —
// the approximate trace is never reconstructed.
func ExampleEvaluate() {
	full, err := tracered.GenerateWorkload("late_sender")
	if err != nil {
		log.Fatal(err)
	}
	res, err := tracered.Evaluate(full, "avgWave", 0.2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("size %.2f%% of full trace\n", res.PctSize)
	fmt.Printf("degree of matching %.3f\n", res.Degree)
	fmt.Printf("approximation distance %dus\n", res.ApproxDist)
	fmt.Printf("trends retained: %v\n", res.Retained)
	// Output:
	// size 7.26% of full trace
	// degree of matching 1.000
	// approximation distance 38us
	// trends retained: true
}

// ExampleAnalyzeReduced diagnoses performance problems straight from a
// reduced trace — no reconstruction — and reports the dominant pattern.
func ExampleAnalyzeReduced() {
	full, err := tracered.GenerateWorkload("late_sender")
	if err != nil {
		log.Fatal(err)
	}
	method, err := tracered.DefaultMethod("avgWave")
	if err != nil {
		log.Fatal(err)
	}
	red, err := tracered.Reduce(full, method)
	if err != nil {
		log.Fatal(err)
	}
	diag, err := tracered.AnalyzeReduced(red)
	if err != nil {
		log.Fatal(err)
	}
	k := tracered.DiagnosisKey{Metric: "late_sender", Location: "MPI_Recv"}
	fmt.Printf("late sender time at MPI_Recv: %.0fus over %d ranks\n",
		diag.Total(k), diag.NumRanks)
	// Output:
	// late sender time at MPI_Recv: 110585us over 8 ranks
}
