// Matcher-layer benchmarks over the shared matchbench workload: one
// pattern class whose identical measurement norms defeat the exact
// scan's lower-bound pruning, the worst case the approximate indexes
// (vptree, lsh) exist for. `cmd/benchsnap` measures the same workload at
// full scale and commits the snapshot to BENCH_matcher.json; these
// benchmarks keep the matcher layer in the ordinary `go test -bench`
// surface (and CI's one-iteration bench smoke) at a lighter scale.
package repro

import (
	"testing"

	"repro/internal/core"
	"repro/internal/matchbench"
	"repro/internal/segment"
)

const (
	benchMatchClasses    = 256
	benchMatchCandidates = 512
)

// warmMatchBench returns a matcher with the benchmark class fully
// inserted, plus the candidate set the scan loop draws from.
func warmMatchBench(b *testing.B, method string, mode core.MatchMode) (*core.Matcher, []*segment.Segment) {
	b.Helper()
	p, err := core.DefaultMethod(method)
	if err != nil {
		b.Fatal(err)
	}
	m := core.NewMatcherMode(p, mode)
	id := 0
	for _, r := range matchbench.Reps(benchMatchClasses) {
		cls, idx, cs := m.Scan(r)
		if idx >= 0 {
			m.Absorb(cls, idx, r)
			continue
		}
		kept := r.Clone()
		kept.Start = 0
		m.Insert(cls, kept, id, cs)
		id++
	}
	return m, matchbench.Candidates(benchMatchClasses, benchMatchCandidates)
}

// BenchmarkMatcherScan measures Matcher.Scan per method × match mode
// against the warm worst-case class. Modes that fall back to the exact
// scan for a method (core.IndexKind reports "scan") are skipped beyond
// exact itself: they would measure the same code path twice.
func BenchmarkMatcherScan(b *testing.B) {
	for _, method := range core.MethodNames {
		for _, mode := range []core.MatchMode{
			core.MatchModeExact, core.MatchModeVPTree, core.MatchModeLSH, core.MatchModeAuto,
		} {
			p, err := core.DefaultMethod(method)
			if err != nil {
				b.Fatal(err)
			}
			if mode != core.MatchModeExact && core.IndexKind(p, mode) == "scan" {
				continue
			}
			b.Run(method+"/"+mode.String(), func(b *testing.B) {
				m, cands := warmMatchBench(b, method, mode)
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					m.Scan(cands[i%len(cands)])
				}
			})
		}
	}
}

// BenchmarkMatcherReduce measures the end-to-end stream reduction
// (insert the centers, then match every candidate) per wavelet method ×
// mode — the rows where the mode dimension changes the reduction cost
// most.
func BenchmarkMatcherReduce(b *testing.B) {
	stream := matchbench.Stream(benchMatchClasses, benchMatchCandidates)
	for _, method := range []string{"avgWave", "haarWave", "euclidean"} {
		for _, mode := range []core.MatchMode{
			core.MatchModeExact, core.MatchModeVPTree, core.MatchModeLSH, core.MatchModeAuto,
		} {
			p, err := core.DefaultMethod(method)
			if err != nil {
				b.Fatal(err)
			}
			if mode != core.MatchModeExact && core.IndexKind(p, mode) == "scan" {
				continue
			}
			b.Run(method+"/"+mode.String(), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					rp, err := core.DefaultMethod(method)
					if err != nil {
						b.Fatal(err)
					}
					rr := core.NewRankReducerMode(0, rp, mode)
					for _, s := range stream {
						rr.Feed(s)
					}
				}
			})
		}
	}
}
