// Interference study: reproduce the paper's ASCI Q scenario in miniature.
// The same balanced bulk-synchronous program runs undisturbed, under the
// 32-node noise profile, and under the 1024-process-equivalent profile;
// the example shows how system noise turns into barrier waiting time, and
// how much of that diagnosis survives trace reduction with absDiff versus
// euclidean matching.
//
// Run with: go run ./examples/interference
package main

import (
	"fmt"
	"log"

	"repro/tracered"
)

func main() {
	for _, workload := range []string{"NtoN_32", "NtoN_1024"} {
		full, err := tracered.GenerateWorkload(workload)
		if err != nil {
			log.Fatal(err)
		}
		diag, err := tracered.Analyze(full)
		if err != nil {
			log.Fatal(err)
		}
		wait := diag.Total(tracered.DiagnosisKey{Metric: "wait_barrier", Location: "MPI_Barrier"})
		fmt.Printf("%-11s wall time %8.0f us, aggregate barrier waiting %9.0f us (%.1f%% of %d ranks' time)\n",
			workload, diag.WallTime, wait, 100*wait/(diag.WallTime*float64(diag.NumRanks)), diag.NumRanks)
	}

	// How well do two methods with similar size behaviour preserve the
	// noise-induced diagnosis on the heavily disturbed run?
	full, err := tracered.GenerateWorkload("NtoN_1024")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nreduction of NtoN_1024:")
	for _, m := range []string{"absDiff", "euclidean", "iter_avg"} {
		res, err := tracered.Evaluate(full, m, tracered.DefaultThresholds[m])
		if err != nil {
			log.Fatal(err)
		}
		verdict := "trends retained"
		if !res.Retained {
			verdict = "trends LOST (" + res.Issues[0] + ")"
		}
		fmt.Printf("  %-10s size %6.2f%%  error %5d us  %s\n", m, res.PctSize, res.ApproxDist, verdict)
	}
	fmt.Println("\nThe noise spikes are large relative to the 1 ms work periods, so strict")
	fmt.Println("per-measurement tests store disturbed iterations separately while looser")
	fmt.Println("tolerances smear them into undisturbed representatives.")
}
