// Quickstart: generate a traced workload, reduce it with the paper's
// best-overall method (avgWave at threshold 0.2), reconstruct the
// approximate trace, and report all four evaluation criteria.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/tracered"
)

func main() {
	// 1. Generate a full event trace for a classic message-passing
	// pathology: receivers blocking on late senders.
	full, err := tracered.GenerateWorkload("late_sender")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("full trace: %d ranks, %d events, %d bytes encoded\n",
		full.NumRanks(), full.NumEvents(), tracered.TraceSize(full))

	// 2. Reduce it: segments with matching timing patterns collapse to a
	// single stored representative plus (id, start-time) records.
	method, err := tracered.NewMethod("avgWave", 0.2)
	if err != nil {
		log.Fatal(err)
	}
	red, err := tracered.Reduce(full, method)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("reduced:    %d stored segments for %d executions, %d bytes encoded\n",
		red.StoredSegments(), red.TotalSegments, tracered.ReducedSize(red))

	// 3. Reconstruct an approximate full trace from the reduction.
	recon, err := red.Reconstruct()
	if err != nil {
		log.Fatal(err)
	}
	dist, err := tracered.ApproximationDistance(full, recon, 0.9)
	if err != nil {
		log.Fatal(err)
	}

	// 4. Score the reduction on the study's four criteria.
	res, err := tracered.Score(full, red)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ncriterion 1 — file size:              %.2f%% of full\n", res.PctSize)
	fmt.Printf("criterion 2 — degree of matching:     %.3f\n", res.Degree)
	fmt.Printf("criterion 3 — approximation distance: %d time units (90th pct; direct calc %d)\n",
		res.ApproxDist, dist)
	if res.Retained {
		fmt.Println("criterion 4 — performance trends:     retained")
	} else {
		fmt.Println("criterion 4 — performance trends:     LOST")
		for _, issue := range res.Issues {
			fmt.Println("   -", issue)
		}
	}

	// 5. Show what the analyst sees: the diagnosis of the reconstructed
	// trace still pins Late Sender severity on the receiving ranks.
	diag, err := tracered.Analyze(recon)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Print(tracered.Chart(diag, 0.05))
}
