// Method shootout: run all nine similarity methods at their paper-default
// thresholds over one workload and print the comparative table — a
// miniature of the paper's §5.2 comparative study for a single trace.
//
// Run with: go run ./examples/method_shootout [workload]
package main

import (
	"fmt"
	"log"
	"os"

	"repro/tracered"
)

func main() {
	workload := "dyn_load_balance"
	if len(os.Args) > 1 {
		workload = os.Args[1]
	}
	full, err := tracered.GenerateWorkload(workload)
	if err != nil {
		log.Fatal(err)
	}
	fullDiag, err := tracered.Analyze(full)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("workload %s: %d ranks, %d events\n", workload, full.NumRanks(), full.NumEvents())
	fmt.Println("\nfull-trace diagnosis:")
	fmt.Print(tracered.Chart(fullDiag, 0.05))

	fmt.Printf("\n%-10s %9s %8s %8s  %s\n", "method", "%size", "degree", "apxdist", "trends")
	for _, name := range tracered.MethodNames {
		res, err := tracered.Evaluate(full, name, tracered.DefaultThresholds[name])
		if err != nil {
			log.Fatal(err)
		}
		verdict := "retained"
		if !res.Retained {
			verdict = "LOST: " + res.Issues[0]
		}
		fmt.Printf("%-10s %8.2f%% %8.3f %8d  %s\n",
			name, res.PctSize, res.Degree, res.ApproxDist, verdict)
	}
	fmt.Println("\nThe iteration methods shrink hardest; the Minkowski and wavelet")
	fmt.Println("methods keep the time-varying imbalance that the cheaper matches lose.")
}
