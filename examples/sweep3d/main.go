// Sweep3D walk-through: the paper's full application. The example builds
// the 8-process input.50 model, shows why application structure makes
// reduction harder than the benchmarks (more pattern classes per rank,
// message parameters differing by octant), and compares the methods the
// paper singles out: iter_k performs worst here, the wavelets best.
//
// Run with: go run ./examples/sweep3d
package main

import (
	"fmt"
	"log"

	"repro/tracered"
)

func main() {
	full, err := tracered.GenerateWorkload("sweep3d_8p")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sweep3d_8p: %d ranks, %d events, %d bytes\n",
		full.NumRanks(), full.NumEvents(), tracered.TraceSize(full))

	// Segment structure: count pattern classes per rank — the reason
	// sweep3d reduces differently from the loop benchmarks.
	perRank, err := tracered.SplitSegments(full)
	if err != nil {
		log.Fatal(err)
	}
	classes := map[uint64]bool{}
	for _, s := range perRank[0] {
		classes[uint64(s.Sig())] = true
	}
	fmt.Printf("rank 0: %d segments in %d pattern classes (octant-dependent neighbours and tags)\n",
		len(perRank[0]), len(classes))

	// The pipeline diagnosis: downstream ranks wait on upstream sends.
	diag, err := tracered.Analyze(full)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nfull-trace diagnosis:")
	fmt.Print(tracered.Chart(diag, 0.05))

	fmt.Printf("\n%-10s %9s %8s %8s  %s\n", "method", "%size", "degree", "apxdist", "trends")
	for _, name := range []string{"iter_k", "iter_avg", "manhattan", "chebyshev", "avgWave", "haarWave"} {
		res, err := tracered.Evaluate(full, name, tracered.DefaultThresholds[name])
		if err != nil {
			log.Fatal(err)
		}
		verdict := "retained"
		if !res.Retained {
			verdict = "LOST"
		}
		fmt.Printf("%-10s %8.2f%% %8.3f %8d  %s\n", name, res.PctSize, res.Degree, res.ApproxDist, verdict)
	}
	fmt.Println("\niter_k must keep k copies of every pattern class no matter how similar")
	fmt.Println("they are, so the many classes of sweep3d inflate it; the distance methods")
	fmt.Println("store one representative per class plus genuine behaviour changes.")
}
