// Command tracereduce reduces a trace file with one of the nine
// similarity methods and writes the reduced trace, reporting the study's
// size and matching criteria.
//
// Usage:
//
//	tracereduce -in late_sender.trc -method avgWave -threshold 0.2 -out late_sender.trr
//	tracereduce -in late_sender.trc -method iter_k -threshold 10 -verify
//	tracereduce -in sweep.trc -method haarWave -match lsh -verify
//	tracereduce -in sweep.trc -method haarWave -format v2 -out sweep.trr
//	tracereduce -in sweep.trc -method haarWave -cpuprofile reduce.prof
//
// The input trace may be either container version (TRC1 or TRC2; v2
// containers decode their blocks in parallel). -format selects the
// version of the written reduced container: v1 (default) or v2.
//
// -match selects the matcher's search mode: exact (default, the paper's
// first-match scan), vptree or lsh (sublinear approximate searches), or
// auto (best supported index per method). See docs/APPROX_MATCHING.md
// for when the approximate results are safe to trust.
//
// The trace is decoded, segmented, and reduced rank by rank on a worker
// pool, so only a pool's worth of ranks is ever held in memory alongside
// the reduction. With -out the run is fully pipelined: per-rank
// reduction and reduced-block encoding overlap the decode, the full
// reduction is never materialized, and the written container is
// byte-identical to reducing in memory and encoding afterwards. With
// -verify the tool re-reads the full trace,
// reconstructs, and reports the approximation distance and trend
// retention, the remaining two criteria.
// -cpuprofile/-memprofile/-mutexprofile/-blockprofile write standard
// pprof profiles of the run, the measurement hooks for matcher and
// engine work (the mutex and block profiles expose pipeline turnstile
// and semaphore waits).
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/profiling"
	"repro/tracered"
)

func main() {
	in := flag.String("in", "", "input trace file (from tracegen)")
	out := flag.String("out", "", "output reduced-trace file (optional)")
	method := flag.String("method", "avgWave", "similarity method")
	threshold := flag.Float64("threshold", -1, "match threshold (default: the paper's per-method default)")
	match := flag.String("match", "exact", "match mode: exact, vptree, lsh, or auto")
	format := flag.String("format", "v1", "output container format: v1 or v2")
	verify := flag.Bool("verify", false, "also reconstruct and score error/trend retention")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the reduction to `file`")
	memprofile := flag.String("memprofile", "", "write a heap profile taken after the reduction to `file`")
	mutexprofile := flag.String("mutexprofile", "", "write a mutex-contention profile of the reduction to `file`")
	blockprofile := flag.String("blockprofile", "", "write a blocking (channel/semaphore wait) profile to `file`")
	flag.Parse()

	if *in == "" {
		fmt.Fprintln(os.Stderr, "tracereduce: -in is required")
		os.Exit(2)
	}
	if *threshold < 0 {
		t, ok := tracered.DefaultThresholds[*method]
		if !ok {
			fmt.Fprintf(os.Stderr, "tracereduce: unknown method %q\n", *method)
			os.Exit(2)
		}
		*threshold = t
	}
	mode, err := tracered.ParseMatchMode(*match)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tracereduce:", err)
		os.Exit(2)
	}
	fv, err := tracered.ParseFormat(*format)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tracereduce:", err)
		os.Exit(2)
	}
	stopProf, err := profiling.StartProfiles(profiling.Profiles{
		CPU: *cpuprofile, Mem: *memprofile, Mutex: *mutexprofile, Block: *blockprofile,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "tracereduce:", err)
		os.Exit(1)
	}
	runErr := run(*in, *out, *method, *threshold, mode, fv, *verify)
	if runErr != nil {
		fmt.Fprintln(os.Stderr, "tracereduce:", runErr)
	}
	if err := stopProf(); err != nil {
		fmt.Fprintln(os.Stderr, "tracereduce:", err)
		os.Exit(1)
	}
	if runErr != nil {
		os.Exit(1)
	}
}

func run(in, out, method string, threshold float64, mode tracered.MatchMode, fv tracered.Format, verify bool) error {
	m, err := tracered.NewMethod(method, threshold)
	if err != nil {
		return err
	}
	f, err := os.Open(in)
	if err != nil {
		return err
	}
	dec, err := tracered.NewTraceDecoder(f)
	if err != nil {
		f.Close()
		return fmt.Errorf("reading trace: %w", err)
	}
	// The input file is the encoded full trace, so its size on disk is the
	// full-trace byte count the paper's size criterion divides by.
	st, err := os.Stat(in)
	if err != nil {
		f.Close()
		return err
	}
	fullBytes := st.Size()
	modeNote := ""
	if mode != tracered.MatchModeExact {
		modeNote = fmt.Sprintf(" [%s match]", mode)
	}
	summary := func(name string, redBytes int64, degree float64, stored int) {
		fmt.Printf("%s + %s(t=%g)%s: %d -> %d bytes (%.2f%%), degree of matching %.3f, %d stored segments\n",
			name, method, threshold, modeNote, fullBytes, redBytes,
			100*float64(redBytes)/float64(fullBytes), degree, stored)
	}

	// With an output file the whole run is pipelined: decode, per-rank
	// reduction, and reduced-block encode overlap, and the full Reduced
	// is never materialized. Without one, reduce in memory and report.
	var red *tracered.Reduced
	if out != "" {
		g, err := os.Create(out)
		if err != nil {
			f.Close()
			return err
		}
		stats, err := tracered.ReduceStreamToWriterMode(dec, m, mode, g, fv)
		f.Close()
		if err != nil {
			g.Close()
			return err
		}
		if err := g.Close(); err != nil {
			return fmt.Errorf("closing: %w", err)
		}
		summary(stats.Name, stats.BytesWritten, stats.DegreeOfMatching(), stats.StoredSegments)
		fmt.Println("wrote", out)
		if verify {
			// Score against the reduction actually written, re-read from
			// the output file (block-parallel for v2 containers).
			h, err := os.Open(out)
			if err != nil {
				return err
			}
			red, err = tracered.ReadReduced(h)
			h.Close()
			if err != nil {
				return fmt.Errorf("re-reading %s: %w", out, err)
			}
		}
	} else {
		red, err = tracered.ReduceStreamMode(dec, m, mode)
		f.Close()
		if err != nil {
			return err
		}
		summary(red.Name, tracered.ReducedSizeFormat(red, fv), red.DegreeOfMatching(), red.StoredSegments())
	}
	if verify {
		// Scoring needs the full trace for the approximation-distance and
		// trend-retention criteria; re-read it only now that it is needed.
		h, err := os.Open(in)
		if err != nil {
			return err
		}
		full, err := tracered.ReadTrace(h)
		h.Close()
		if err != nil {
			return fmt.Errorf("reading trace: %w", err)
		}
		res, err := tracered.Score(full, red)
		if err != nil {
			return fmt.Errorf("scoring: %w", err)
		}
		fmt.Printf("approximation distance (90th pct): %d time units\n", res.ApproxDist)
		if res.Retained {
			fmt.Println("performance trends: retained")
		} else {
			fmt.Println("performance trends: LOST")
			for _, issue := range res.Issues {
				fmt.Println("  -", issue)
			}
		}
	}
	return nil
}
