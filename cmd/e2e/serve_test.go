package e2e

import (
	"bufio"
	"bytes"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"
	"syscall"
	"testing"
	"time"

	"repro/tracered"
)

// buildServer compiles tracereduced (and tracegen for the fixture) into
// dir and returns their paths.
func buildServer(t *testing.T, dir string) map[string]string {
	t.Helper()
	goTool := filepath.Join(runtime.GOROOT(), "bin", "go")
	if _, err := os.Stat(goTool); err != nil {
		var lookErr error
		goTool, lookErr = exec.LookPath("go")
		if lookErr != nil {
			t.Skip("go tool not available; skipping server round-trip")
		}
	}
	cmd := exec.Command(goTool, "build", "-o", dir,
		"repro/cmd/tracegen", "repro/cmd/tracereduced")
	cmd.Dir = "../.." // repo root, where go.mod lives
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("building tools: %v\n%s", err, out)
	}
	return map[string]string{
		"tracegen":     filepath.Join(dir, "tracegen"),
		"tracereduced": filepath.Join(dir, "tracereduced"),
	}
}

// TestServerRoundTrip drives the real tracereduced binary: start on an
// ephemeral port, upload a generated trace, reduce it, analyze it, then
// SIGTERM and verify a clean drain (exit 0).
func TestServerRoundTrip(t *testing.T) {
	dir := t.TempDir()
	tools := buildServer(t, dir)

	trc := filepath.Join(dir, "late_sender.trc")
	run(t, tools["tracegen"], "-workload", "late_sender", "-o", trc)
	upload, err := os.ReadFile(trc)
	if err != nil {
		t.Fatal(err)
	}

	srv := exec.Command(tools["tracereduced"], "-addr", "127.0.0.1:0", "-drain-timeout", "20s")
	stdout, err := srv.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	srv.Stderr = os.Stderr
	if err := srv.Start(); err != nil {
		t.Fatalf("starting tracereduced: %v", err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Wait() }()
	exited := false
	defer func() {
		if exited {
			return
		}
		srv.Process.Kill()
		<-done
	}()

	// The server prints "tracereduced: listening on ADDR" once bound.
	sc := bufio.NewScanner(stdout)
	var baseURL string
	for sc.Scan() {
		line := sc.Text()
		if rest, ok := strings.CutPrefix(line, "tracereduced: listening on "); ok {
			baseURL = "http://" + rest
			break
		}
	}
	if baseURL == "" {
		t.Fatalf("server never reported its address: %v", sc.Err())
	}
	// Keep draining stdout so the drain-time prints don't block the process.
	go func() {
		for sc.Scan() {
		}
	}()

	if resp, err := http.Get(baseURL + "/healthz"); err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %v %v", err, resp)
	} else {
		resp.Body.Close()
	}

	// Reduce the upload over HTTP and check the reply is a valid reduced
	// container for the same workload.
	resp, err := http.Post(baseURL+"/v1/reduce?method=avgWave&format=v2",
		"application/octet-stream", bytes.NewReader(upload))
	if err != nil {
		t.Fatalf("POST /v1/reduce: %v", err)
	}
	reduced, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("reduce: status %d err %v: %s", resp.StatusCode, err, reduced)
	}
	sig := resp.Header.Get("X-Tracered-Signature")
	if sig == "" {
		t.Fatal("reduce response carries no signature")
	}
	red, err := tracered.ReadReduced(bytes.NewReader(reduced))
	if err != nil {
		t.Fatalf("served bytes are not a valid reduced container: %v", err)
	}
	if red.Name != "late_sender" {
		t.Errorf("reduced trace names %q, want late_sender", red.Name)
	}

	// Analyze by signature.
	aresp, err := http.Get(baseURL + "/v1/analyze?sig=" + sig + "&method=avgWave&format=v2")
	if err != nil {
		t.Fatalf("GET /v1/analyze: %v", err)
	}
	abody, _ := io.ReadAll(aresp.Body)
	aresp.Body.Close()
	if aresp.StatusCode != http.StatusOK {
		t.Fatalf("analyze: status %d: %s", aresp.StatusCode, abody)
	}
	if !strings.Contains(string(abody), "late_sender") {
		t.Errorf("diagnosis does not name the workload: %s", abody)
	}

	// Metrics reflect the session.
	mresp, err := http.Get(baseURL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	if !strings.Contains(string(metrics), "tracered_sessions_total 1") {
		t.Errorf("metrics do not count the session:\n%s", metrics)
	}

	// SIGTERM drains: the process must exit 0 on its own.
	if err := srv.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatalf("signaling server: %v", err)
	}
	select {
	case err := <-done:
		exited = true
		if err != nil {
			t.Fatalf("server exited uncleanly after SIGTERM: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("server did not exit within 30s of SIGTERM")
	}
}
