// Package e2e round-trips the CLI pipeline end to end: tracegen writes a
// workload trace, tracereduce reduces it rank-by-rank through the
// streaming engine, traceanalyze diagnoses it — all as real subprocesses
// on a temp dir — and the test then decodes the reduced file and scores
// it through the library to prove the artifacts are valid.
package e2e

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"reflect"
	"runtime"
	"strings"
	"testing"

	"repro/tracered"
)

// buildTools compiles the three pipeline commands into dir and returns
// their paths.
func buildTools(t *testing.T, dir string) map[string]string {
	t.Helper()
	goTool := filepath.Join(runtime.GOROOT(), "bin", "go")
	if _, err := os.Stat(goTool); err != nil {
		var lookErr error
		goTool, lookErr = exec.LookPath("go")
		if lookErr != nil {
			t.Skip("go tool not available; skipping CLI round-trip")
		}
	}
	cmd := exec.Command(goTool, "build", "-o", dir,
		"repro/cmd/tracegen", "repro/cmd/tracereduce", "repro/cmd/traceanalyze")
	cmd.Dir = "../.." // repo root, where go.mod lives
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("building tools: %v\n%s", err, out)
	}
	tools := map[string]string{}
	for _, name := range []string{"tracegen", "tracereduce", "traceanalyze"} {
		tools[name] = filepath.Join(dir, name)
	}
	return tools
}

// run executes one tool and returns its combined output.
func run(t *testing.T, bin string, args ...string) string {
	t.Helper()
	out, err := exec.Command(bin, args...).CombinedOutput()
	if err != nil {
		t.Fatalf("%s %s: %v\n%s", filepath.Base(bin), strings.Join(args, " "), err, out)
	}
	return string(out)
}

func TestCLIRoundTrip(t *testing.T) {
	dir := t.TempDir()
	tools := buildTools(t, dir)
	trc := filepath.Join(dir, "late_sender.trc")
	trr := filepath.Join(dir, "late_sender.trr")

	genOut := run(t, tools["tracegen"], "-workload", "late_sender", "-o", trc)
	if !strings.Contains(genOut, "late_sender") || !strings.Contains(genOut, "ranks") {
		t.Errorf("tracegen output unexpected: %q", genOut)
	}
	if st, err := os.Stat(trc); err != nil || st.Size() == 0 {
		t.Fatalf("tracegen wrote no trace: %v", err)
	}

	redOut := run(t, tools["tracereduce"],
		"-in", trc, "-method", "avgWave", "-out", trr, "-verify")
	for _, want := range []string{"degree of matching", "wrote " + trr, "approximation distance", "performance trends"} {
		if !strings.Contains(redOut, want) {
			t.Errorf("tracereduce output missing %q:\n%s", want, redOut)
		}
	}

	anaOut := run(t, tools["traceanalyze"], "-in", trc)
	if !strings.Contains(anaOut, "late_sender") {
		t.Errorf("traceanalyze chart does not name the workload:\n%s", anaOut)
	}

	// The written artifacts must decode and score through the library.
	tf, err := os.Open(trc)
	if err != nil {
		t.Fatal(err)
	}
	full, err := tracered.ReadTrace(tf)
	tf.Close()
	if err != nil {
		t.Fatalf("decoding written trace: %v", err)
	}
	rf, err := os.Open(trr)
	if err != nil {
		t.Fatal(err)
	}
	red, err := tracered.ReadReduced(rf)
	rf.Close()
	if err != nil {
		t.Fatalf("decoding written reduction: %v", err)
	}
	if red.Name != full.Name {
		t.Errorf("reduced name %q, want %q", red.Name, full.Name)
	}
	if red.StoredSegments() == 0 {
		t.Error("reduced trace stored no segments")
	}
	res, err := tracered.Score(full, red)
	if err != nil {
		t.Fatalf("scoring decoded reduction: %v", err)
	}
	if res.PctSize <= 0 || res.PctSize >= 100 {
		t.Errorf("reduced size %.2f%% of full, want within (0, 100)", res.PctSize)
	}
}

// TestCLIRoundTripV2 runs the same pipeline on v2 containers: tracegen
// -format v2 writes a TRC2, tracereduce reads it (block-parallel, it's
// a file) and writes a TRR2, traceanalyze diagnoses both — and the v2
// artifacts must decode through the library to the same structures the
// v1 pipeline yields.
func TestCLIRoundTripV2(t *testing.T) {
	dir := t.TempDir()
	tools := buildTools(t, dir)
	trc1 := filepath.Join(dir, "halo_jitter.trc")
	trc2 := filepath.Join(dir, "halo_jitter.v2.trc")
	trr2 := filepath.Join(dir, "halo_jitter.trr")

	run(t, tools["tracegen"], "-workload", "halo_jitter", "-o", trc1)
	genOut := run(t, tools["tracegen"], "-workload", "halo_jitter", "-format", "v2", "-o", trc2)
	if !strings.Contains(genOut, "(v2)") {
		t.Errorf("tracegen -format v2 output does not name the format: %q", genOut)
	}
	st1, err1 := os.Stat(trc1)
	st2, err2 := os.Stat(trc2)
	if err1 != nil || err2 != nil {
		t.Fatalf("stat written traces: %v / %v", err1, err2)
	}
	if st2.Size() >= st1.Size() {
		t.Errorf("v2 trace (%d bytes) not smaller than v1 (%d bytes)", st2.Size(), st1.Size())
	}

	redOut := run(t, tools["tracereduce"],
		"-in", trc2, "-method", "avgWave", "-format", "v2", "-out", trr2)
	if !strings.Contains(redOut, "wrote "+trr2) {
		t.Errorf("tracereduce did not report writing %s:\n%s", trr2, redOut)
	}

	for _, in := range []string{trc2, trr2} {
		anaOut := run(t, tools["traceanalyze"], "-in", in)
		if !strings.Contains(anaOut, "halo_jitter") {
			t.Errorf("traceanalyze chart for %s does not name the workload:\n%s", in, anaOut)
		}
	}

	// The v1 and v2 traces must decode to identical structures, and the
	// v2-path reduction must match reducing the v1-decoded trace.
	readTrace := func(path string) *tracered.Trace {
		f, err := os.Open(path)
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close()
		tr, err := tracered.ReadTrace(f)
		if err != nil {
			t.Fatalf("decoding %s: %v", path, err)
		}
		return tr
	}
	full1, full2 := readTrace(trc1), readTrace(trc2)
	if !reflect.DeepEqual(full1, full2) {
		t.Error("v1 and v2 containers of the same workload decode differently")
	}
	rf, err := os.Open(trr2)
	if err != nil {
		t.Fatal(err)
	}
	red, err := tracered.ReadReduced(rf)
	rf.Close()
	if err != nil {
		t.Fatalf("decoding written TRR2: %v", err)
	}
	m, err := tracered.DefaultMethod("avgWave")
	if err != nil {
		t.Fatal(err)
	}
	want, err := tracered.Reduce(full1, m)
	if err != nil {
		t.Fatal(err)
	}
	// Compare through the canonical v1 encoding: byte equality is the
	// cross-version parity the codecs guarantee.
	var wantEnc, gotEnc bytes.Buffer
	if err := tracered.WriteReduced(&wantEnc, want); err != nil {
		t.Fatal(err)
	}
	if err := tracered.WriteReduced(&gotEnc, red); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(wantEnc.Bytes(), gotEnc.Bytes()) {
		t.Error("reduction written through the v2 pipeline differs from reducing the v1-decoded trace")
	}
}
