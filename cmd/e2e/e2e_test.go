// Package e2e round-trips the CLI pipeline end to end: tracegen writes a
// workload trace, tracereduce reduces it rank-by-rank through the
// streaming engine, traceanalyze diagnoses it — all as real subprocesses
// on a temp dir — and the test then decodes the reduced file and scores
// it through the library to prove the artifacts are valid.
package e2e

import (
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"
	"testing"

	"repro/tracered"
)

// buildTools compiles the three pipeline commands into dir and returns
// their paths.
func buildTools(t *testing.T, dir string) map[string]string {
	t.Helper()
	goTool := filepath.Join(runtime.GOROOT(), "bin", "go")
	if _, err := os.Stat(goTool); err != nil {
		var lookErr error
		goTool, lookErr = exec.LookPath("go")
		if lookErr != nil {
			t.Skip("go tool not available; skipping CLI round-trip")
		}
	}
	cmd := exec.Command(goTool, "build", "-o", dir,
		"repro/cmd/tracegen", "repro/cmd/tracereduce", "repro/cmd/traceanalyze")
	cmd.Dir = "../.." // repo root, where go.mod lives
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("building tools: %v\n%s", err, out)
	}
	tools := map[string]string{}
	for _, name := range []string{"tracegen", "tracereduce", "traceanalyze"} {
		tools[name] = filepath.Join(dir, name)
	}
	return tools
}

// run executes one tool and returns its combined output.
func run(t *testing.T, bin string, args ...string) string {
	t.Helper()
	out, err := exec.Command(bin, args...).CombinedOutput()
	if err != nil {
		t.Fatalf("%s %s: %v\n%s", filepath.Base(bin), strings.Join(args, " "), err, out)
	}
	return string(out)
}

func TestCLIRoundTrip(t *testing.T) {
	dir := t.TempDir()
	tools := buildTools(t, dir)
	trc := filepath.Join(dir, "late_sender.trc")
	trr := filepath.Join(dir, "late_sender.trr")

	genOut := run(t, tools["tracegen"], "-workload", "late_sender", "-o", trc)
	if !strings.Contains(genOut, "late_sender") || !strings.Contains(genOut, "ranks") {
		t.Errorf("tracegen output unexpected: %q", genOut)
	}
	if st, err := os.Stat(trc); err != nil || st.Size() == 0 {
		t.Fatalf("tracegen wrote no trace: %v", err)
	}

	redOut := run(t, tools["tracereduce"],
		"-in", trc, "-method", "avgWave", "-out", trr, "-verify")
	for _, want := range []string{"degree of matching", "wrote " + trr, "approximation distance", "performance trends"} {
		if !strings.Contains(redOut, want) {
			t.Errorf("tracereduce output missing %q:\n%s", want, redOut)
		}
	}

	anaOut := run(t, tools["traceanalyze"], "-in", trc)
	if !strings.Contains(anaOut, "late_sender") {
		t.Errorf("traceanalyze chart does not name the workload:\n%s", anaOut)
	}

	// The written artifacts must decode and score through the library.
	tf, err := os.Open(trc)
	if err != nil {
		t.Fatal(err)
	}
	full, err := tracered.ReadTrace(tf)
	tf.Close()
	if err != nil {
		t.Fatalf("decoding written trace: %v", err)
	}
	rf, err := os.Open(trr)
	if err != nil {
		t.Fatal(err)
	}
	red, err := tracered.ReadReduced(rf)
	rf.Close()
	if err != nil {
		t.Fatalf("decoding written reduction: %v", err)
	}
	if red.Name != full.Name {
		t.Errorf("reduced name %q, want %q", red.Name, full.Name)
	}
	if red.StoredSegments() == 0 {
		t.Error("reduced trace stored no segments")
	}
	res, err := tracered.Score(full, red)
	if err != nil {
		t.Fatalf("scoring decoded reduction: %v", err)
	}
	if res.PctSize <= 0 || res.PctSize >= 100 {
		t.Errorf("reduced size %.2f%% of full, want within (0, 100)", res.PctSize)
	}
}
