package main

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sort"
	"sync"
	"time"

	"repro/internal/eval"
	"repro/internal/serve"
	"repro/internal/trace"
)

// The serve suite measures the tracereduced service over the study's
// 20-workload catalog through a real HTTP round trip: cold-cache reduce
// latency per workload, the cache-hit replay speedup, and sustained
// warm-catalog throughput with request-latency quantiles. Committed as
// BENCH_serve.json.

// ServeRow is one workload's service-side measurement.
type ServeRow struct {
	Workload     string `json:"workload"`
	Ranks        int    `json:"ranks"`
	UploadBytes  int    `json:"upload_bytes"`
	ReducedBytes int    `json:"reduced_bytes"`
	// MissMs is the cold-cache /v1/reduce latency; HitMs replays the
	// cached reply for the identical upload.
	MissMs float64 `json:"miss_ms"`
	HitMs  float64 `json:"hit_ms"`
	// HitSpeedup is MissMs over HitMs.
	HitSpeedup float64 `json:"hit_speedup"`
}

// ServeSnapshot is the committed service benchmark record.
type ServeSnapshot struct {
	Description string `json:"description"`
	GoVersion   string `json:"go_version"`
	GOOS        string `json:"goos"`
	GOARCH      string `json:"goarch"`
	// Sessions and Concurrency describe the throughput phase: admitted
	// session bound and concurrent client count.
	Sessions    int `json:"sessions"`
	Concurrency int `json:"concurrency"`
	Requests    int `json:"requests"`
	// RequestsPerSec is warm-catalog sustained throughput; P50Ms/P99Ms
	// are client-observed request latency quantiles over every request
	// the suite issued (cold and warm).
	RequestsPerSec float64    `json:"requests_per_sec"`
	P50Ms          float64    `json:"p50_ms"`
	P99Ms          float64    `json:"p99_ms"`
	Rows           []ServeRow `json:"rows"`
}

// timedPost uploads body once and returns the latency and reply size.
func timedPost(url string, body []byte) (time.Duration, int, error) {
	begin := time.Now()
	resp, err := http.Post(url+"/v1/reduce?method=avgWave&format=v2",
		"application/octet-stream", bytes.NewReader(body))
	if err != nil {
		return 0, 0, err
	}
	defer resp.Body.Close()
	reply, err := io.ReadAll(resp.Body)
	if err != nil {
		return 0, 0, err
	}
	if resp.StatusCode != http.StatusOK {
		return 0, 0, fmt.Errorf("status %d: %s", resp.StatusCode, reply)
	}
	return time.Since(begin), len(reply), nil
}

func measureServe() (*ServeSnapshot, error) {
	concurrency := runtime.GOMAXPROCS(0)
	srv := serve.NewServer(serve.Config{MaxSessions: concurrency, DegradeAt: 2})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	snap := &ServeSnapshot{
		Description: "tracereduced service over the 20-workload catalog: cold reduce latency, cache-hit replay speedup, warm-catalog throughput",
		GoVersion:   runtime.Version(),
		GOOS:        runtime.GOOS,
		GOARCH:      runtime.GOARCH,
		Sessions:    concurrency,
		Concurrency: concurrency,
	}

	var latencies []time.Duration
	var uploads [][]byte
	for _, w := range eval.Catalog() {
		tr, err := w.Generate()
		if err != nil {
			return nil, fmt.Errorf("generating %s: %v", w.Name, err)
		}
		var buf bytes.Buffer
		if err := trace.EncodeV2(&buf, tr); err != nil {
			return nil, fmt.Errorf("encoding %s: %v", w.Name, err)
		}
		upload := buf.Bytes()
		uploads = append(uploads, upload)

		miss, reduced, err := timedPost(ts.URL, upload)
		if err != nil {
			return nil, fmt.Errorf("%s cold reduce: %v", w.Name, err)
		}
		// Replay a few hits and keep the fastest — the steady-state
		// cache-serving cost, free of scheduler noise.
		hit := time.Duration(1<<62 - 1)
		for i := 0; i < 5; i++ {
			d, _, err := timedPost(ts.URL, upload)
			if err != nil {
				return nil, fmt.Errorf("%s cache hit: %v", w.Name, err)
			}
			if d < hit {
				hit = d
			}
			latencies = append(latencies, d)
		}
		latencies = append(latencies, miss)
		row := ServeRow{
			Workload:     w.Name,
			Ranks:        w.Ranks,
			UploadBytes:  len(upload),
			ReducedBytes: reduced,
			MissMs:       round2(float64(miss) / 1e6),
			HitMs:        round2(float64(hit) / 1e6),
		}
		if hit > 0 {
			row.HitSpeedup = round2(float64(miss) / float64(hit))
		}
		snap.Rows = append(snap.Rows, row)
		fmt.Printf("%-18s %4d ranks  %8d B up  %7d B down  miss %8.2f ms  hit %6.3f ms (%.0fx)\n",
			w.Name, w.Ranks, row.UploadBytes, row.ReducedBytes, row.MissMs, row.HitMs, row.HitSpeedup)
	}

	// Warm-catalog throughput: concurrent clients cycling the catalog.
	rounds := 10
	total := rounds * len(uploads)
	var mu sync.Mutex
	var wg sync.WaitGroup
	work := make(chan []byte, total)
	for i := 0; i < rounds; i++ {
		for _, u := range uploads {
			work <- u
		}
	}
	close(work)
	begin := time.Now()
	var firstErr error
	for c := 0; c < concurrency; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for u := range work {
				d, _, err := timedPost(ts.URL, u)
				mu.Lock()
				if err != nil && firstErr == nil {
					firstErr = err
				}
				latencies = append(latencies, d)
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return nil, fmt.Errorf("throughput phase: %v", firstErr)
	}
	elapsed := time.Since(begin)
	snap.Requests = total
	snap.RequestsPerSec = round2(float64(total) / elapsed.Seconds())

	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	quant := func(q float64) float64 {
		i := int(q * float64(len(latencies)-1))
		return round2(float64(latencies[i]) / 1e6)
	}
	snap.P50Ms = quant(0.50)
	snap.P99Ms = quant(0.99)
	fmt.Printf("throughput: %d requests, %.2f req/s, p50 %.3f ms, p99 %.3f ms\n",
		total, snap.RequestsPerSec, snap.P50Ms, snap.P99Ms)
	return snap, nil
}
