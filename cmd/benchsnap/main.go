// Command benchsnap measures a benchmark suite and writes the snapshot
// to a committed JSON file, the repository's performance trajectory
// record. The matcher suite covers scan and end-to-end reduction cost
// per similarity method and match mode on the shared matchbench
// workload; the codec suite compares the v1 and v2 trace containers —
// bytes on disk per workload, encode/decode cost, block-parallel decode
// and encode scaling per worker count, and the pipelined
// reduce-to-writer path against the batch reduce-then-encode path per
// GOMAXPROCS setting; the serve suite round-trips the tracereduced
// service over the 20-workload catalog — cold reduce latency, cache-hit
// replay speedup, and warm-catalog throughput with latency quantiles.
//
// Usage:
//
//	benchsnap                      # writes BENCH_matcher.json
//	benchsnap -suite codec         # writes BENCH_codec.json
//	benchsnap -suite serve         # writes BENCH_serve.json
//	benchsnap -out /tmp/snap.json
//	benchsnap -classes 512 -candidates 4096
//
// The workload (internal/matchbench) is one pattern class of `classes`
// stored representatives sharing identical measurement norms, so the
// exact scan's lower-bound pruning never fires: the snapshot captures
// the honest worst case the approximate indexes exist for. Scan rows
// measure Matcher.Scan against the warm representative set; reduce rows
// measure reducing the whole stream (warmup + candidates). Speedups are
// relative to exact mode per method.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"testing"

	"repro/internal/core"
	"repro/internal/matchbench"
	"repro/internal/segment"
)

// Row is one method × mode measurement.
type Row struct {
	Method string `json:"method"`
	Mode   string `json:"mode"`
	// Index is the search structure in use: scan, vptree, or lsh.
	Index string `json:"index"`
	// ScanNsPerOp is Matcher.Scan cost against the warm class.
	ScanNsPerOp float64 `json:"scan_ns_per_op"`
	// ScanAllocsPerOp counts allocations per scan (candidate Prepare
	// included).
	ScanAllocsPerOp float64 `json:"scan_allocs_per_op"`
	// ScanSpeedup is exact-mode scan ns/op divided by this row's; 1 for
	// exact mode itself.
	ScanSpeedup float64 `json:"scan_speedup"`
	// ReduceNsPerSegment is the end-to-end stream reduction cost divided
	// by the stream length.
	ReduceNsPerSegment float64 `json:"reduce_ns_per_segment"`
	// ReduceSpeedup is exact-mode reduce ns/segment divided by this
	// row's.
	ReduceSpeedup float64 `json:"reduce_speedup"`
}

// Snapshot is the committed benchmark record.
type Snapshot struct {
	Description string `json:"description"`
	GoVersion   string `json:"go_version"`
	GOOS        string `json:"goos"`
	GOARCH      string `json:"goarch"`
	// GOMAXPROCS records the measuring machine's parallelism: scan rows
	// are single-threaded either way, but reduce rows and cross-machine
	// comparisons need it to be interpretable.
	GOMAXPROCS int   `json:"gomaxprocs"`
	Classes    int   `json:"classes"`
	Candidates int   `json:"candidates"`
	Rows       []Row `json:"rows"`
}

func main() {
	suite := flag.String("suite", "matcher", "benchmark suite: matcher, codec, or serve")
	out := flag.String("out", "", "output snapshot file (default BENCH_<suite>.json)")
	classes := flag.Int("classes", matchbench.DefaultClasses, "stored representatives in the benchmark class")
	candidates := flag.Int("candidates", matchbench.DefaultCandidates, "candidate segments per measurement")
	flag.Parse()

	var snap any
	var err error
	switch *suite {
	case "matcher":
		snap, err = measure(*classes, *candidates)
	case "codec":
		snap, err = measureCodec()
	case "serve":
		snap, err = measureServe()
	default:
		fmt.Fprintf(os.Stderr, "benchsnap: unknown suite %q (want matcher, codec, or serve)\n", *suite)
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchsnap:", err)
		os.Exit(1)
	}
	if *out == "" {
		*out = "BENCH_" + *suite + ".json"
	}
	buf, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchsnap:", err)
		os.Exit(1)
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchsnap:", err)
		os.Exit(1)
	}
	fmt.Println("wrote", *out)
}

// warmMatcher builds a matcher with the benchmark class fully inserted.
func warmMatcher(p core.Policy, mode core.MatchMode, reps []*segment.Segment) *core.Matcher {
	m := core.NewMatcherMode(p, mode)
	id := 0
	for _, r := range reps {
		cls, idx, cs := m.Scan(r)
		if idx >= 0 {
			m.Absorb(cls, idx, r)
			continue
		}
		kept := r.Clone()
		kept.Start = 0
		m.Insert(cls, kept, id, cs)
		id++
	}
	return m
}

func measure(classes, candidates int) (*Snapshot, error) {
	reps := matchbench.Reps(classes)
	cands := matchbench.Candidates(classes, candidates)
	stream := matchbench.Stream(classes, candidates)
	modes := []core.MatchMode{
		core.MatchModeExact, core.MatchModeVPTree, core.MatchModeLSH, core.MatchModeAuto,
	}
	snap := &Snapshot{
		Description: "matcher scan + stream reduction on the matchbench worst case: one pattern class, norm pruning defeated",
		GoVersion:   runtime.Version(),
		GOOS:        runtime.GOOS,
		GOARCH:      runtime.GOARCH,
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		Classes:     classes,
		Candidates:  candidates,
	}
	for _, method := range core.MethodNames {
		var exactScan, exactReduce float64
		for _, mode := range modes {
			p, err := core.DefaultMethod(method)
			if err != nil {
				return nil, err
			}
			m := warmMatcher(p, mode, reps)
			scan := testing.Benchmark(func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					m.Scan(cands[i%len(cands)])
				}
			})
			reduce := testing.Benchmark(func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					rp, err := core.DefaultMethod(method)
					if err != nil {
						b.Fatal(err)
					}
					rr := core.NewRankReducerMode(0, rp, mode)
					for _, s := range stream {
						rr.Feed(s)
					}
				}
			})
			row := Row{
				Method:             method,
				Mode:               mode.String(),
				Index:              core.IndexKind(p, mode),
				ScanNsPerOp:        float64(scan.NsPerOp()),
				ScanAllocsPerOp:    float64(scan.AllocsPerOp()),
				ReduceNsPerSegment: float64(reduce.NsPerOp()) / float64(len(stream)),
			}
			if mode == core.MatchModeExact {
				exactScan, exactReduce = row.ScanNsPerOp, row.ReduceNsPerSegment
				row.ScanSpeedup = 1
				row.ReduceSpeedup = 1
			} else {
				if row.ScanNsPerOp > 0 {
					row.ScanSpeedup = round2(exactScan / row.ScanNsPerOp)
				}
				if row.ReduceNsPerSegment > 0 {
					row.ReduceSpeedup = round2(exactReduce / row.ReduceNsPerSegment)
				}
			}
			row.ReduceNsPerSegment = round2(row.ReduceNsPerSegment)
			snap.Rows = append(snap.Rows, row)
			fmt.Printf("%-10s %-7s %-7s scan %10.0f ns/op (%.1f allocs, %.2fx)  reduce %8.0f ns/seg (%.2fx)\n",
				method, mode, row.Index, row.ScanNsPerOp, row.ScanAllocsPerOp,
				row.ScanSpeedup, row.ReduceNsPerSegment, row.ReduceSpeedup)
		}
	}
	return snap, nil
}

// round2 keeps the committed JSON stable to read (two decimals).
func round2(v float64) float64 { return float64(int64(v*100+0.5)) / 100 }
