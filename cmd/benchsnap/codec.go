package main

import (
	"bytes"
	"fmt"
	"io"
	"runtime"
	"testing"

	"repro/internal/eval"
	"repro/internal/trace"
)

// The codec suite measures the two trace container versions against
// each other: bytes on disk for every study workload, encode/decode
// cost on representative workloads, and the block-parallel decode
// scaling that is the v2 format's point. Committed as BENCH_codec.json.

// SizeRow records both containers' byte sizes for one workload.
type SizeRow struct {
	Workload string `json:"workload"`
	Ranks    int    `json:"ranks"`
	Events   int    `json:"events"`
	V1Bytes  int64  `json:"v1_bytes"`
	V2Bytes  int64  `json:"v2_bytes"`
	// Ratio is v2 bytes over v1 bytes; below 1 means v2 is smaller.
	Ratio float64 `json:"ratio"`
}

// TimeRow records encode/decode cost for one workload and container
// version. Decode rows for v2 cover the sequential stream path; the
// parallel path is reported separately with its worker scaling.
type TimeRow struct {
	Workload      string  `json:"workload"`
	Version       string  `json:"version"`
	EncodeNsPerOp float64 `json:"encode_ns_per_op"`
	EncodeAllocs  float64 `json:"encode_allocs_per_op"`
	DecodeNsPerOp float64 `json:"decode_ns_per_op"`
	DecodeAllocs  float64 `json:"decode_allocs_per_op"`
}

// ParallelRow records the block-parallel v2 decode at one worker count.
type ParallelRow struct {
	Workload string  `json:"workload"`
	Workers  int     `json:"workers"`
	NsPerOp  float64 `json:"ns_per_op"`
	// Speedup is the one-worker parallel decode divided by this row.
	Speedup float64 `json:"speedup"`
	// SpeedupVsV1 is the v1 sequential decode divided by this row.
	SpeedupVsV1 float64 `json:"speedup_vs_v1"`
}

// CodecSnapshot is the committed codec benchmark record.
type CodecSnapshot struct {
	Description string `json:"description"`
	GoVersion   string `json:"go_version"`
	GOOS        string `json:"goos"`
	GOARCH      string `json:"goarch"`
	// CPUs is runtime.NumCPU() on the snapshot machine. The parallel
	// rows only show real scaling when it exceeds the worker count; on a
	// single-CPU machine they measure pure coordination overhead.
	CPUs     int           `json:"cpus"`
	Sizes    []SizeRow     `json:"sizes"`
	Times    []TimeRow     `json:"times"`
	Parallel []ParallelRow `json:"parallel"`
}

// timedWorkloads are the workloads the ns/op benchmarks run on: a small
// diagnosis scenario, a large collective pattern, and the biggest
// many-rank trace (also the parallel-scaling subject).
var timedWorkloads = []string{"late_sender", "Nto1_1024", "sweep3d_32p"}

// parallelWorkload is the many-rank trace the worker-scaling rows use.
const parallelWorkload = "sweep3d_32p"

// parallelWorkers are the worker counts the scaling rows measure.
var parallelWorkers = []int{1, 2, 4, 8}

// seqOnly hides ReaderAt/Seeker so a v2 decode takes the stream path.
type seqOnly struct{ io.Reader }

func measureCodec() (*CodecSnapshot, error) {
	runner := eval.NewRunner()
	snap := &CodecSnapshot{
		Description: "container codec comparison: v1 fixed-width vs v2 columnar blocks; sizes over all study workloads, encode/decode cost and block-parallel scaling on representative traces",
		GoVersion:   runtime.Version(),
		GOOS:        runtime.GOOS,
		GOARCH:      runtime.GOARCH,
		CPUs:        runtime.NumCPU(),
	}
	for _, name := range eval.AllNames() {
		full, err := runner.Trace(name)
		if err != nil {
			return nil, err
		}
		v1, v2 := trace.EncodedSize(full), trace.EncodedSizeV2(full)
		snap.Sizes = append(snap.Sizes, SizeRow{
			Workload: name,
			Ranks:    full.NumRanks(),
			Events:   full.NumEvents(),
			V1Bytes:  v1,
			V2Bytes:  v2,
			Ratio:    round2(float64(v2) / float64(v1)),
		})
	}
	var v1DecodeNs float64
	for _, name := range timedWorkloads {
		full, err := runner.Trace(name)
		if err != nil {
			return nil, err
		}
		var v1buf, v2buf bytes.Buffer
		if err := trace.Encode(&v1buf, full); err != nil {
			return nil, err
		}
		if err := trace.EncodeV2(&v2buf, full); err != nil {
			return nil, err
		}
		versions := []struct {
			version string
			encode  func(w io.Writer) error
			decode  func() error
		}{
			{"v1",
				func(w io.Writer) error { return trace.Encode(w, full) },
				func() error { _, err := trace.Decode(bytes.NewReader(v1buf.Bytes())); return err }},
			{"v2",
				func(w io.Writer) error { return trace.EncodeV2(w, full) },
				// The stream path: the like-for-like sequential comparison.
				func() error { _, err := trace.Decode(seqOnly{bytes.NewReader(v2buf.Bytes())}); return err }},
		}
		for _, v := range versions {
			enc := testing.Benchmark(func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if err := v.encode(io.Discard); err != nil {
						b.Fatal(err)
					}
				}
			})
			dec := testing.Benchmark(func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if err := v.decode(); err != nil {
						b.Fatal(err)
					}
				}
			})
			row := TimeRow{
				Workload:      name,
				Version:       v.version,
				EncodeNsPerOp: float64(enc.NsPerOp()),
				EncodeAllocs:  float64(enc.AllocsPerOp()),
				DecodeNsPerOp: float64(dec.NsPerOp()),
				DecodeAllocs:  float64(dec.AllocsPerOp()),
			}
			snap.Times = append(snap.Times, row)
			fmt.Printf("%-12s %s  encode %10.0f ns/op (%.0f allocs)  decode %10.0f ns/op (%.0f allocs)\n",
				name, v.version, row.EncodeNsPerOp, row.EncodeAllocs, row.DecodeNsPerOp, row.DecodeAllocs)
			if name == parallelWorkload && v.version == "v1" {
				v1DecodeNs = row.DecodeNsPerOp
			}
		}
	}
	full, err := runner.Trace(parallelWorkload)
	if err != nil {
		return nil, err
	}
	var v2buf bytes.Buffer
	if err := trace.EncodeV2(&v2buf, full); err != nil {
		return nil, err
	}
	var oneWorker float64
	for _, workers := range parallelWorkers {
		res := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				d, err := trace.NewDecoderWith(bytes.NewReader(v2buf.Bytes()),
					trace.DecoderOptions{Workers: workers})
				if err != nil {
					b.Fatal(err)
				}
				for {
					if _, err := d.NextRank(); err == io.EOF {
						break
					} else if err != nil {
						b.Fatal(err)
					}
				}
				d.Close()
			}
		})
		row := ParallelRow{
			Workload: parallelWorkload,
			Workers:  workers,
			NsPerOp:  float64(res.NsPerOp()),
		}
		if workers == 1 {
			oneWorker = row.NsPerOp
			row.Speedup = 1
		} else if row.NsPerOp > 0 {
			row.Speedup = round2(oneWorker / row.NsPerOp)
		}
		if row.NsPerOp > 0 {
			row.SpeedupVsV1 = round2(v1DecodeNs / row.NsPerOp)
		}
		snap.Parallel = append(snap.Parallel, row)
		fmt.Printf("%-12s v2 parallel decode, %d worker(s): %10.0f ns/op (%.2fx vs 1 worker, %.2fx vs v1)\n",
			parallelWorkload, workers, row.NsPerOp, row.Speedup, row.SpeedupVsV1)
	}
	return snap, nil
}
