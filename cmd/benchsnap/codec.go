package main

import (
	"bytes"
	"fmt"
	"io"
	"runtime"
	"testing"

	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/trace"
)

// The codec suite measures the two trace container versions against
// each other: bytes on disk for every study workload, encode/decode
// cost on representative workloads, the block-parallel decode and
// encode scaling that are the v2 format's point, and the pipelined
// reduce-to-writer path against the batch reduce-then-encode path.
// Committed as BENCH_codec.json.

// SizeRow records both containers' byte sizes for one workload.
type SizeRow struct {
	Workload string `json:"workload"`
	Ranks    int    `json:"ranks"`
	Events   int    `json:"events"`
	V1Bytes  int64  `json:"v1_bytes"`
	V2Bytes  int64  `json:"v2_bytes"`
	// Ratio is v2 bytes over v1 bytes; below 1 means v2 is smaller.
	Ratio float64 `json:"ratio"`
}

// TimeRow records encode/decode cost for one workload and container
// version. Decode rows for v2 cover the sequential stream path; the
// parallel path is reported separately with its worker scaling.
type TimeRow struct {
	Workload      string  `json:"workload"`
	Version       string  `json:"version"`
	EncodeNsPerOp float64 `json:"encode_ns_per_op"`
	EncodeAllocs  float64 `json:"encode_allocs_per_op"`
	DecodeNsPerOp float64 `json:"decode_ns_per_op"`
	DecodeAllocs  float64 `json:"decode_allocs_per_op"`
}

// ParallelRow records one block-parallel v2 path at one worker count.
type ParallelRow struct {
	Workload string `json:"workload"`
	// Op is the measured path: decode or encode.
	Op          string  `json:"op"`
	Workers     int     `json:"workers"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	// Speedup is the one-worker row of the same op divided by this row.
	Speedup float64 `json:"speedup"`
	// SpeedupVsV1 is the v1 sequential cost of the same op divided by
	// this row.
	SpeedupVsV1 float64 `json:"speedup_vs_v1"`
}

// PipelineRow compares the batch path (stream-reduce into a Reduced,
// then encode it) against the pipelined ReduceStreamToWriter on the
// same TRC2 input and TRR2 output, at one GOMAXPROCS setting. The
// pipelined path overlaps decode, reduction, and encode and never
// materializes the Reduced.
type PipelineRow struct {
	Workload        string  `json:"workload"`
	GOMAXPROCS      int     `json:"gomaxprocs"`
	BatchNsPerOp    float64 `json:"batch_ns_per_op"`
	BatchAllocs     float64 `json:"batch_allocs_per_op"`
	PipelineNsPerOp float64 `json:"pipeline_ns_per_op"`
	PipelineAllocs  float64 `json:"pipeline_allocs_per_op"`
	// Speedup is batch ns/op divided by pipeline ns/op.
	Speedup float64 `json:"speedup"`
}

// CodecSnapshot is the committed codec benchmark record.
type CodecSnapshot struct {
	Description string `json:"description"`
	GoVersion   string `json:"go_version"`
	GOOS        string `json:"goos"`
	GOARCH      string `json:"goarch"`
	// CPUs is runtime.NumCPU() on the snapshot machine; GOMAXPROCS is
	// the scheduler width the snapshot ran at. Parallel rows show real
	// scaling only up to min(CPUs, GOMAXPROCS) workers — beyond that
	// they measure coordination overhead, which is itself worth pinning.
	CPUs       int           `json:"cpus"`
	GOMAXPROCS int           `json:"gomaxprocs"`
	Sizes      []SizeRow     `json:"sizes"`
	Times      []TimeRow     `json:"times"`
	Parallel   []ParallelRow `json:"parallel"`
	Pipeline   []PipelineRow `json:"pipeline"`
}

// timedWorkloads are the workloads the ns/op benchmarks run on: a small
// diagnosis scenario, a large collective pattern, and the biggest
// many-rank trace (also the parallel-scaling subject).
var timedWorkloads = []string{"late_sender", "Nto1_1024", "sweep3d_32p"}

// parallelWorkload is the many-rank trace the worker-scaling rows use.
const parallelWorkload = "sweep3d_32p"

// parallelWorkers are the worker counts the scaling rows measure.
var parallelWorkers = []int{1, 2, 4, 8}

// seqOnly hides ReaderAt/Seeker so a v2 decode takes the stream path.
type seqOnly struct{ io.Reader }

func measureCodec() (*CodecSnapshot, error) {
	runner := eval.NewRunner()
	snap := &CodecSnapshot{
		Description: "container codec comparison: v1 fixed-width vs v2 columnar blocks; sizes over all study workloads, encode/decode cost, block-parallel decode/encode scaling, and batch-vs-pipelined reduce-to-writer on representative traces",
		GoVersion:   runtime.Version(),
		GOOS:        runtime.GOOS,
		GOARCH:      runtime.GOARCH,
		CPUs:        runtime.NumCPU(),
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
	}
	for _, name := range eval.AllNames() {
		full, err := runner.Trace(name)
		if err != nil {
			return nil, err
		}
		v1, v2 := trace.EncodedSize(full), trace.EncodedSizeV2(full)
		snap.Sizes = append(snap.Sizes, SizeRow{
			Workload: name,
			Ranks:    full.NumRanks(),
			Events:   full.NumEvents(),
			V1Bytes:  v1,
			V2Bytes:  v2,
			Ratio:    round2(float64(v2) / float64(v1)),
		})
	}
	var v1DecodeNs, v1EncodeNs float64
	for _, name := range timedWorkloads {
		full, err := runner.Trace(name)
		if err != nil {
			return nil, err
		}
		var v1buf, v2buf bytes.Buffer
		if err := trace.Encode(&v1buf, full); err != nil {
			return nil, err
		}
		if err := trace.EncodeV2(&v2buf, full); err != nil {
			return nil, err
		}
		versions := []struct {
			version string
			encode  func(w io.Writer) error
			decode  func() error
		}{
			{"v1",
				func(w io.Writer) error { return trace.Encode(w, full) },
				func() error { _, err := trace.Decode(bytes.NewReader(v1buf.Bytes())); return err }},
			{"v2",
				func(w io.Writer) error { return trace.EncodeV2(w, full) },
				// The stream path: the like-for-like sequential comparison.
				func() error { _, err := trace.Decode(seqOnly{bytes.NewReader(v2buf.Bytes())}); return err }},
		}
		for _, v := range versions {
			enc := testing.Benchmark(func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if err := v.encode(io.Discard); err != nil {
						b.Fatal(err)
					}
				}
			})
			dec := testing.Benchmark(func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if err := v.decode(); err != nil {
						b.Fatal(err)
					}
				}
			})
			row := TimeRow{
				Workload:      name,
				Version:       v.version,
				EncodeNsPerOp: float64(enc.NsPerOp()),
				EncodeAllocs:  float64(enc.AllocsPerOp()),
				DecodeNsPerOp: float64(dec.NsPerOp()),
				DecodeAllocs:  float64(dec.AllocsPerOp()),
			}
			snap.Times = append(snap.Times, row)
			fmt.Printf("%-12s %s  encode %10.0f ns/op (%.0f allocs)  decode %10.0f ns/op (%.0f allocs)\n",
				name, v.version, row.EncodeNsPerOp, row.EncodeAllocs, row.DecodeNsPerOp, row.DecodeAllocs)
			if name == parallelWorkload && v.version == "v1" {
				v1DecodeNs = row.DecodeNsPerOp
				v1EncodeNs = row.EncodeNsPerOp
			}
		}
	}
	full, err := runner.Trace(parallelWorkload)
	if err != nil {
		return nil, err
	}
	var v2buf bytes.Buffer
	if err := trace.EncodeV2(&v2buf, full); err != nil {
		return nil, err
	}
	ops := []struct {
		op   string
		v1Ns float64
		run  func(workers int) error
	}{
		{"decode", v1DecodeNs, func(workers int) error {
			d, err := trace.NewDecoderWith(bytes.NewReader(v2buf.Bytes()),
				trace.DecoderOptions{Workers: workers})
			if err != nil {
				return err
			}
			defer d.Close()
			for {
				if _, err := d.NextRank(); err == io.EOF {
					return nil
				} else if err != nil {
					return err
				}
			}
		}},
		{"encode", v1EncodeNs, func(workers int) error {
			return trace.EncodeV2With(io.Discard, full, trace.EncoderOptions{Workers: workers})
		}},
	}
	for _, op := range ops {
		var oneWorker float64
		for _, workers := range parallelWorkers {
			res := testing.Benchmark(func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if err := op.run(workers); err != nil {
						b.Fatal(err)
					}
				}
			})
			row := ParallelRow{
				Workload:    parallelWorkload,
				Op:          op.op,
				Workers:     workers,
				NsPerOp:     float64(res.NsPerOp()),
				AllocsPerOp: float64(res.AllocsPerOp()),
			}
			if workers == 1 {
				oneWorker = row.NsPerOp
				row.Speedup = 1
			} else if row.NsPerOp > 0 {
				row.Speedup = round2(oneWorker / row.NsPerOp)
			}
			if row.NsPerOp > 0 {
				row.SpeedupVsV1 = round2(op.v1Ns / row.NsPerOp)
			}
			snap.Parallel = append(snap.Parallel, row)
			fmt.Printf("%-12s v2 parallel %s, %d worker(s): %10.0f ns/op (%.0f allocs, %.2fx vs 1 worker, %.2fx vs v1)\n",
				parallelWorkload, op.op, workers, row.NsPerOp, row.AllocsPerOp, row.Speedup, row.SpeedupVsV1)
		}
	}
	if err := measurePipeline(snap, v2buf.Bytes()); err != nil {
		return nil, err
	}
	return snap, nil
}

// pipelineMethod is the similarity method the pipeline rows reduce with.
const pipelineMethod = "avgWave"

// measurePipeline benchmarks the end-to-end TRC2 -> reduce -> TRR2 path
// both ways at each GOMAXPROCS setting: batch (ReduceStream into a full
// Reduced, then encode it with the default worker pool) against the
// pipelined ReduceStreamToWriter. Both paths take their worker counts
// from GOMAXPROCS, so the scheduler width is toggled around each
// measurement and restored afterwards.
func measurePipeline(snap *CodecSnapshot, trc2 []byte) error {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(0))
	batch := func() error {
		d, err := trace.NewDecoder(bytes.NewReader(trc2))
		if err != nil {
			return err
		}
		defer d.Close()
		p, err := core.DefaultMethod(pipelineMethod)
		if err != nil {
			return err
		}
		red, err := core.ReduceStream(d.Name(), p, d.NextRank)
		if err != nil {
			return err
		}
		return core.EncodeReducedV2With(io.Discard, red, trace.EncoderOptions{})
	}
	pipelined := func() error {
		d, err := trace.NewDecoder(bytes.NewReader(trc2))
		if err != nil {
			return err
		}
		defer d.Close()
		p, err := core.DefaultMethod(pipelineMethod)
		if err != nil {
			return err
		}
		_, err = core.ReduceStreamToWriter(d.Name(), p, d.NextRank, io.Discard, 2)
		return err
	}
	prev := runtime.GOMAXPROCS(0)
	for _, procs := range parallelWorkers {
		runtime.GOMAXPROCS(procs)
		bench := func(fn func() error) testing.BenchmarkResult {
			return testing.Benchmark(func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if err := fn(); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
		br, pr := bench(batch), bench(pipelined)
		runtime.GOMAXPROCS(prev)
		row := PipelineRow{
			Workload:        parallelWorkload,
			GOMAXPROCS:      procs,
			BatchNsPerOp:    float64(br.NsPerOp()),
			BatchAllocs:     float64(br.AllocsPerOp()),
			PipelineNsPerOp: float64(pr.NsPerOp()),
			PipelineAllocs:  float64(pr.AllocsPerOp()),
		}
		if row.PipelineNsPerOp > 0 {
			row.Speedup = round2(row.BatchNsPerOp / row.PipelineNsPerOp)
		}
		snap.Pipeline = append(snap.Pipeline, row)
		fmt.Printf("%-12s reduce+write gomaxprocs=%d: batch %10.0f ns/op, pipelined %10.0f ns/op (%.2fx)\n",
			parallelWorkload, procs, row.BatchNsPerOp, row.PipelineNsPerOp, row.Speedup)
	}
	return nil
}
