// Command tracegen generates the full event trace of one of the study's
// workloads and writes it to a file in the binary trace format.
//
// Usage:
//
//	tracegen -workload late_sender -o late_sender.trc
//	tracegen -workload late_sender -format v2 -o late_sender.trc
//	tracegen -list
//
// -format selects the container version: v1 (default, fixed-width
// records) or v2 (columnar blocks — smaller, block-parallel decode).
// Every reader in this repo auto-detects the version from the magic.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/tracered"
)

func main() {
	workload := flag.String("workload", "", "workload name (see -list)")
	out := flag.String("o", "", "output file (default <workload>.trc)")
	format := flag.String("format", "v1", "container format: v1 or v2")
	list := flag.Bool("list", false, "list available workloads and exit")
	flag.Parse()

	if *list {
		for _, name := range tracered.WorkloadNames() {
			fmt.Println(name)
		}
		return
	}
	if *workload == "" {
		fmt.Fprintln(os.Stderr, "tracegen: -workload is required (try -list)")
		os.Exit(2)
	}
	fv, err := tracered.ParseFormat(*format)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(2)
	}
	if *out == "" {
		*out = *workload + ".trc"
	}
	t, err := tracered.GenerateWorkload(*workload)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
	f, err := os.Create(*out)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
	if err := tracered.WriteTraceFormat(f, t, fv); err != nil {
		f.Close()
		fmt.Fprintln(os.Stderr, "tracegen: writing trace:", err)
		os.Exit(1)
	}
	if err := f.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "tracegen: closing:", err)
		os.Exit(1)
	}
	fmt.Printf("%s: %d ranks, %d events, %d bytes (%s) -> %s\n",
		*workload, t.NumRanks(), t.NumEvents(), tracered.TraceSizeFormat(t, fv), fv, *out)
}
