// Command tracegen generates the full event trace of one of the study's
// workloads and writes it to a file in the binary trace format.
//
// Usage:
//
//	tracegen -workload late_sender -o late_sender.trc
//	tracegen -list
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/tracered"
)

func main() {
	workload := flag.String("workload", "", "workload name (see -list)")
	out := flag.String("o", "", "output file (default <workload>.trc)")
	list := flag.Bool("list", false, "list available workloads and exit")
	flag.Parse()

	if *list {
		for _, name := range tracered.WorkloadNames() {
			fmt.Println(name)
		}
		return
	}
	if *workload == "" {
		fmt.Fprintln(os.Stderr, "tracegen: -workload is required (try -list)")
		os.Exit(2)
	}
	if *out == "" {
		*out = *workload + ".trc"
	}
	t, err := tracered.GenerateWorkload(*workload)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
	f, err := os.Create(*out)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
	if err := tracered.WriteTrace(f, t); err != nil {
		f.Close()
		fmt.Fprintln(os.Stderr, "tracegen: writing trace:", err)
		os.Exit(1)
	}
	if err := f.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "tracegen: closing:", err)
		os.Exit(1)
	}
	fmt.Printf("%s: %d ranks, %d events, %d bytes -> %s\n",
		*workload, t.NumRanks(), t.NumEvents(), tracered.TraceSize(t), *out)
}
