// Command evalstudy regenerates the paper's evaluation: Figure 5 (sizes
// and degree of matching), Figure 6 (approximation distance), Figures 7-8
// (KOJAK-style trend charts), Figures 9-16 (per-method threshold sweeps
// over the 16 benchmarks), Figures 17-19 (threshold sweeps over the two
// Sweep3D runs), Tables 1-18 (retention of performance trends per
// workload), and the §5.2.3 method ranking.
//
// Every cell is scored directly from its reduced form (no trace
// reconstruction) and the full 20-workloads × 9-methods × threshold-sweep
// grid runs through one bounded worker pool; overlapping figures and
// tables share cell results through the runner's cache.
//
// Usage:
//
//	evalstudy -summary            # comparative study + ranking
//	evalstudy -fig 5              # one figure
//	evalstudy -table 17           # one appendix table
//	evalstudy -all                # everything (EXPERIMENTS.md input)
//	evalstudy -all -workers 4     # bound the evaluation pool
//	evalstudy -modes              # match-mode speed/score comparison
//	evalstudy -summary -match lsh # any study under an approximate matcher
//
// -match re-runs the requested grids with the matcher's approximate
// search modes (vptree, lsh, auto; see docs/APPROX_MATCHING.md) in
// place of the exact first-match scan. -modes runs the comparative grid
// under all four modes and prints the measured
// speedup-versus-score-loss table.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/profiling"
)

// figureMethod maps threshold-sweep figure numbers to methods (paper
// Figures 9-16).
var figureMethod = map[int]string{
	9: "relDiff", 10: "absDiff", 11: "manhattan", 12: "euclidean",
	13: "chebyshev", 14: "iter_k", 15: "avgWave", 16: "haarWave",
}

// sweepFigureMethods maps the Sweep3D sweep figures 17-19 to their method
// groups.
var sweepFigureMethods = map[int][]string{
	17: {"relDiff", "absDiff", "manhattan"},
	18: {"euclidean", "chebyshev", "iter_k"},
	19: {"avgWave", "haarWave"},
}

// tableWorkloads lists the appendix tables in the paper's order —
// tables 1-18 — extended with tables 19-20 for the scenario-diversity
// workloads.
var tableWorkloads = []string{
	"dyn_load_balance", "early_gather", "imbalance_at_mpi_barrier",
	"late_broadcast", "late_receiver", "late_sender",
	"Nto1_32", "NtoN_32", "1toN_32", "1to1r_32", "1to1s_32",
	"Nto1_1024", "NtoN_1024", "1toN_1024", "1to1r_1024", "1to1s_1024",
	"sweep3d_8p", "sweep3d_32p",
	"halo_jitter", "bursty_io",
}

func main() {
	fig := flag.Int("fig", 0, "regenerate one figure (5-19)")
	table := flag.Int("table", 0, "regenerate one appendix table (1-20)")
	summary := flag.Bool("summary", false, "comparative study and method ranking")
	all := flag.Bool("all", false, "regenerate every figure and table")
	match := flag.String("match", "exact", "match mode for every cell: exact, vptree, lsh, or auto")
	modes := flag.Bool("modes", false, "compare match modes: speedup vs score loss at default thresholds")
	workers := flag.Int("workers", 0, "evaluation pool size (0 = all cores)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the study to `file`")
	memprofile := flag.String("memprofile", "", "write a heap profile taken after the study to `file`")
	flag.Parse()

	stopProf, err := profiling.Start(*cpuprofile, *memprofile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "evalstudy:", err)
		os.Exit(1)
	}
	mode, err := core.ParseMatchMode(*match)
	if err != nil {
		fmt.Fprintln(os.Stderr, "evalstudy:", err)
		os.Exit(2)
	}
	r := eval.NewRunner()
	r.SetWorkers(*workers)
	runErr := run(r, *fig, *table, *summary, *all, *modes, mode)
	if runErr != nil {
		fmt.Fprintln(os.Stderr, "evalstudy:", runErr)
	}
	if err := stopProf(); err != nil {
		fmt.Fprintln(os.Stderr, "evalstudy:", err)
		os.Exit(1)
	}
	if runErr != nil {
		os.Exit(1)
	}
}

func run(r *eval.Runner, fig, table int, summary, all, modes bool, mode core.MatchMode) error {
	if mode != core.MatchModeExact {
		fmt.Printf("(every reduction searched with the %s matcher)\n\n", mode)
	}
	switch {
	case all:
		// Evaluate the entire study grid through one worker pool up
		// front; every figure and table below renders from the runner's
		// cell cache.
		if _, err := r.RunGrid(eval.StudyCellsMode(mode)); err != nil {
			return err
		}
		if err := comparative(r, mode, true); err != nil {
			return err
		}
		for f := 9; f <= 19; f++ {
			if err := sweepFigure(r, f, mode); err != nil {
				return err
			}
			fmt.Println()
		}
		for tn := 1; tn <= len(tableWorkloads); tn++ {
			if err := retentionTable(r, tn, mode); err != nil {
				return err
			}
			fmt.Println()
		}
		fmt.Println()
		return modeStudy(r)
	case modes:
		return modeStudy(r)
	case summary:
		return comparative(r, mode, false)
	case fig >= 5 && fig <= 8:
		return comparativeFigure(r, fig, mode)
	case fig >= 9 && fig <= 19:
		return sweepFigure(r, fig, mode)
	case table >= 1 && table <= len(tableWorkloads):
		return retentionTable(r, table, mode)
	default:
		return fmt.Errorf("nothing to do: pass -summary, -all, -modes, -fig 5..19 or -table 1..%d", len(tableWorkloads))
	}
}

// modeStudy runs the comparative grid under every match mode and prints
// the measured speedup-versus-score-loss table.
func modeStudy(r *eval.Runner) error {
	allModes := []core.MatchMode{
		core.MatchModeExact, core.MatchModeVPTree, core.MatchModeLSH, core.MatchModeAuto,
	}
	results, err := r.RunGrid(eval.ModeCells(eval.AllNames(), core.MethodNames, allModes))
	if err != nil {
		return err
	}
	fmt.Print(eval.FormatMatchModes(eval.NewIndex(results), eval.AllNames(), core.MethodNames, allModes))
	return nil
}

// withMode re-keys a cell list to evaluate under the study's mode.
func withMode(cells []eval.Cell, mode core.MatchMode) []eval.Cell {
	for i := range cells {
		cells[i] = cells[i].WithMode(mode)
	}
	return cells
}

// defaultGrid runs the comparative grid (all workloads × methods at
// default thresholds) once under the study's mode.
func defaultGrid(r *eval.Runner, mode core.MatchMode) (*eval.Index, error) {
	results, err := r.RunGrid(withMode(eval.GridDefault(eval.AllNames(), core.MethodNames), mode))
	if err != nil {
		return nil, err
	}
	return eval.NewIndexMode(results, mode), nil
}

func comparative(r *eval.Runner, mode core.MatchMode, withFigures bool) error {
	ix, err := defaultGrid(r, mode)
	if err != nil {
		return err
	}
	if withFigures {
		fmt.Print(eval.FormatSizeAndMatching(ix, eval.AllNames(), core.MethodNames))
		fmt.Println()
		fmt.Print(eval.FormatApproxDistance(ix, eval.AllNames(), core.MethodNames))
		fmt.Println()
		for _, w := range []string{"dyn_load_balance", "1to1r_1024"} {
			chart, err := eval.FormatTrendChart(r, ix, w, core.MethodNames)
			if err != nil {
				return err
			}
			fmt.Print(chart)
			fmt.Println()
		}
	}
	fmt.Print(eval.FormatRetention(ix, eval.AllNames(), core.MethodNames))
	fmt.Println()
	fmt.Print(eval.FormatSummary(ix, eval.AllNames(), core.MethodNames))
	return nil
}

func comparativeFigure(r *eval.Runner, fig int, mode core.MatchMode) error {
	ix, err := defaultGrid(r, mode)
	if err != nil {
		return err
	}
	switch fig {
	case 5:
		fmt.Print(eval.FormatSizeAndMatching(ix, eval.AllNames(), core.MethodNames))
	case 6:
		fmt.Print(eval.FormatApproxDistance(ix, eval.AllNames(), core.MethodNames))
	case 7:
		chart, err := eval.FormatTrendChart(r, ix, "dyn_load_balance", core.MethodNames)
		if err != nil {
			return err
		}
		fmt.Printf("Figure 7 — performance trends, dyn_load_balance\n%s", chart)
	case 8:
		chart, err := eval.FormatTrendChart(r, ix, "1to1r_1024", core.MethodNames)
		if err != nil {
			return err
		}
		fmt.Printf("Figure 8 — performance trends, 1to1r_1024\n%s", chart)
	}
	return nil
}

func sweepFigure(r *eval.Runner, fig int, mode core.MatchMode) error {
	if method, ok := figureMethod[fig]; ok {
		results, err := r.RunGrid(withMode(eval.GridSweep(eval.BenchmarkNames(), method), mode))
		if err != nil {
			return err
		}
		fmt.Printf("Figure %d — ", fig)
		fmt.Print(eval.FormatThresholdSweep(eval.NewIndexMode(results, mode), method, eval.BenchmarkNames()))
		return nil
	}
	methods, ok := sweepFigureMethods[fig]
	if !ok {
		return fmt.Errorf("unknown figure %d", fig)
	}
	fmt.Printf("Figure %d — Sweep3D threshold sweeps\n", fig)
	for _, method := range methods {
		results, err := r.RunGrid(withMode(eval.GridSweep(eval.ApplicationNames(), method), mode))
		if err != nil {
			return err
		}
		fmt.Print(eval.FormatThresholdSweep(eval.NewIndexMode(results, mode), method, eval.ApplicationNames()))
	}
	return nil
}

func retentionTable(r *eval.Runner, tn int, mode core.MatchMode) error {
	workload := tableWorkloads[tn-1]
	var cells []eval.Cell
	for _, m := range core.MethodNames {
		if m == "iter_avg" {
			cells = append(cells, eval.Cell{Workload: workload, Method: m, Threshold: 0})
			continue
		}
		cells = append(cells, eval.GridSweep([]string{workload}, m)...)
	}
	results, err := r.RunGrid(withMode(cells, mode))
	if err != nil {
		return err
	}
	fmt.Printf("Table %d — ", tn)
	fmt.Print(eval.FormatRetentionTable(eval.NewIndexMode(results, mode), workload, core.MethodNames))
	return nil
}
