// Command traceanalyze runs the EXPERT-style pattern analysis over a
// trace file and prints the CUBE-style severity chart plus the raw
// per-rank severities. It accepts full traces (TRC1 or TRC2) and
// reduced traces (TRR1 or TRR2, as written by tracereduce); reduced
// traces are diagnosed directly from their representatives and
// execution records, without reconstructing the approximate event
// stream, and v2 containers decode their blocks in parallel. See
// docs/FORMATS.md for the formats.
//
// Usage:
//
//	traceanalyze -in late_sender.trc
//	traceanalyze -in late_sender.trr       # direct-from-reduced
//	traceanalyze -in late_sender.trc -min 0.05
package main

import (
	"bufio"
	"bytes"
	"flag"
	"fmt"
	"io"
	"os"

	"repro/tracered"
)

func main() {
	in := flag.String("in", "", "input trace file (.trc full or .trr reduced)")
	min := flag.Float64("min", 0.02, "hide chart rows below this fraction of the max severity")
	raw := flag.Bool("raw", false, "also print raw per-rank severities")
	flag.Parse()

	if *in == "" {
		fmt.Fprintln(os.Stderr, "traceanalyze: -in is required")
		os.Exit(2)
	}
	f, err := os.Open(*in)
	if err != nil {
		fmt.Fprintln(os.Stderr, "traceanalyze:", err)
		os.Exit(1)
	}
	d, err := diagnose(f)
	f.Close()
	if err != nil {
		fmt.Fprintln(os.Stderr, "traceanalyze:", err)
		os.Exit(1)
	}
	fmt.Print(tracered.Chart(d, *min))
	if *raw {
		for _, k := range d.Keys() {
			fmt.Printf("%-40s total=%12.0f ranks=%v\n", k, d.Total(k), d.Sev[k])
		}
	}
}

// diagnose peeks at the file magic and dispatches: full traces (TRC1,
// TRC2) are analyzed event by event, reduced traces (TRR1, TRR2)
// through the direct-from-reduced engine. The readers themselves pick
// the codec per version, so only the reduced-vs-full split is decided
// here. A random-access input (the usual *os.File) is peeked in place
// and handed to the reader unwrapped, which keeps v2 containers on the
// block-parallel decode path; anything else is peeked through a
// buffered reader and decoded sequentially.
func diagnose(r io.Reader) (*tracered.Diagnosis, error) {
	var magic [4]byte
	if ra, ok := r.(io.ReaderAt); ok {
		if _, err := ra.ReadAt(magic[:], 0); err != nil {
			return nil, fmt.Errorf("reading magic: %w", err)
		}
	} else {
		br := bufio.NewReader(r)
		peeked, err := br.Peek(4)
		if err != nil {
			return nil, fmt.Errorf("reading magic: %w", err)
		}
		copy(magic[:], peeked)
		r = br
	}
	if bytes.HasPrefix(magic[:], []byte("TRR")) {
		red, err := tracered.ReadReduced(r)
		if err != nil {
			return nil, fmt.Errorf("reading reduced trace: %w", err)
		}
		return tracered.AnalyzeReduced(red)
	}
	t, err := tracered.ReadTrace(r)
	if err != nil {
		return nil, fmt.Errorf("reading trace: %w", err)
	}
	return tracered.Analyze(t)
}
