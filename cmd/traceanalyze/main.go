// Command traceanalyze runs the EXPERT-style pattern analysis over a
// trace file and prints the CUBE-style severity chart plus the raw
// per-rank severities. It accepts both full traces (TRC1) and reduced
// traces (TRR1, as written by tracereduce); reduced traces are diagnosed
// directly from their representatives and execution records, without
// reconstructing the approximate event stream. See docs/FORMATS.md for
// the two formats.
//
// Usage:
//
//	traceanalyze -in late_sender.trc
//	traceanalyze -in late_sender.trr       # direct-from-reduced
//	traceanalyze -in late_sender.trc -min 0.05
package main

import (
	"bufio"
	"bytes"
	"flag"
	"fmt"
	"io"
	"os"

	"repro/tracered"
)

func main() {
	in := flag.String("in", "", "input trace file (.trc full or .trr reduced)")
	min := flag.Float64("min", 0.02, "hide chart rows below this fraction of the max severity")
	raw := flag.Bool("raw", false, "also print raw per-rank severities")
	flag.Parse()

	if *in == "" {
		fmt.Fprintln(os.Stderr, "traceanalyze: -in is required")
		os.Exit(2)
	}
	f, err := os.Open(*in)
	if err != nil {
		fmt.Fprintln(os.Stderr, "traceanalyze:", err)
		os.Exit(1)
	}
	d, err := diagnose(f)
	f.Close()
	if err != nil {
		fmt.Fprintln(os.Stderr, "traceanalyze:", err)
		os.Exit(1)
	}
	fmt.Print(tracered.Chart(d, *min))
	if *raw {
		for _, k := range d.Keys() {
			fmt.Printf("%-40s total=%12.0f ranks=%v\n", k, d.Total(k), d.Sev[k])
		}
	}
}

// diagnose peeks at the file magic and dispatches: full traces are
// analyzed event by event, reduced traces through the
// direct-from-reduced engine. The stream is never materialized here;
// both readers decode from it directly.
func diagnose(r io.Reader) (*tracered.Diagnosis, error) {
	br := bufio.NewReader(r)
	magic, err := br.Peek(4)
	if err != nil {
		return nil, fmt.Errorf("reading magic: %w", err)
	}
	if bytes.Equal(magic, []byte("TRR1")) {
		red, err := tracered.ReadReduced(br)
		if err != nil {
			return nil, fmt.Errorf("reading reduced trace: %w", err)
		}
		return tracered.AnalyzeReduced(red)
	}
	t, err := tracered.ReadTrace(br)
	if err != nil {
		return nil, fmt.Errorf("reading trace: %w", err)
	}
	return tracered.Analyze(t)
}
