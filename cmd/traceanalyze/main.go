// Command traceanalyze runs the EXPERT-style pattern analysis over a
// trace file and prints the CUBE-style severity chart plus the raw
// per-rank severities.
//
// Usage:
//
//	traceanalyze -in late_sender.trc
//	traceanalyze -in late_sender.trc -min 0.05
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/tracered"
)

func main() {
	in := flag.String("in", "", "input trace file")
	min := flag.Float64("min", 0.02, "hide chart rows below this fraction of the max severity")
	raw := flag.Bool("raw", false, "also print raw per-rank severities")
	flag.Parse()

	if *in == "" {
		fmt.Fprintln(os.Stderr, "traceanalyze: -in is required")
		os.Exit(2)
	}
	f, err := os.Open(*in)
	if err != nil {
		fmt.Fprintln(os.Stderr, "traceanalyze:", err)
		os.Exit(1)
	}
	t, err := tracered.ReadTrace(f)
	f.Close()
	if err != nil {
		fmt.Fprintln(os.Stderr, "traceanalyze: reading trace:", err)
		os.Exit(1)
	}
	d, err := tracered.Analyze(t)
	if err != nil {
		fmt.Fprintln(os.Stderr, "traceanalyze:", err)
		os.Exit(1)
	}
	fmt.Print(tracered.Chart(d, *min))
	if *raw {
		for _, k := range d.Keys() {
			fmt.Printf("%-40s total=%12.0f ranks=%v\n", k, d.Total(k), d.Sev[k])
		}
	}
}
