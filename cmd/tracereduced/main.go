// Command tracereduced is the long-running trace-reduction service: an
// HTTP server that accepts concurrent TRC1/TRC2 uploads, reduces them
// on a bounded shared worker fleet, and streams back reduced containers
// byte-identical to the tracereduce CLI's output.
//
// Usage:
//
//	tracereduced                       # serve on :8321
//	tracereduced -addr 127.0.0.1:0     # ephemeral port (printed on stdout)
//	tracereduced -sessions 16 -fleet 8 -cache-mb 512
//
// Endpoints:
//
//	POST /v1/reduce?method=&threshold=&match=&format=   reduce an uploaded trace
//	GET  /v1/analyze?sig=&method=&...                   diagnosis of a cached reduction
//	GET  /metrics                                       Prometheus text metrics
//	GET  /healthz                                       liveness (503 while draining)
//
// On SIGINT/SIGTERM the server drains: health flips to 503, new
// sessions are refused, in-flight reductions finish, then the process
// exits 0. See docs/SERVICE.md for the full API and semantics.
//
// -cpuprofile/-memprofile/-mutexprofile/-blockprofile write standard
// pprof profiles spanning the server's lifetime (flushed at shutdown);
// reduce sessions and pipeline workers carry pprof labels, so per-tenant
// and per-stage costs separate cleanly in the CPU profile.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/profiling"
	"repro/internal/serve"
)

func main() {
	addr := flag.String("addr", ":8321", "listen address (host:port; port 0 picks one)")
	sessions := flag.Int("sessions", 0, "max concurrent reduce sessions (0 = default 8)")
	fleet := flag.Int("fleet", 0, "global worker-slot budget (0 = GOMAXPROCS)")
	sessionWorkers := flag.Int("session-workers", 0, "fleet slots one session asks for (0 = whole fleet)")
	uploadMB := flag.Int64("upload-mb", 0, "per-session upload budget in MiB (0 = default 256)")
	cacheMB := flag.Int64("cache-mb", 0, "representative cache budget in MiB (0 = default 256, negative disables)")
	degradeAt := flag.Float64("degrade-at", 0, "load fraction at which new sessions degrade (0 = default 0.75)")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "max time to wait for in-flight sessions on shutdown")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the server's lifetime to `file`")
	memprofile := flag.String("memprofile", "", "write a heap profile taken at shutdown to `file`")
	mutexprofile := flag.String("mutexprofile", "", "write a mutex-contention profile (fleet/cache locks) to `file`")
	blockprofile := flag.String("blockprofile", "", "write a blocking profile (fleet waits, pipeline turnstiles) to `file`")
	flag.Parse()

	cfg := serve.Config{
		MaxSessions:    *sessions,
		FleetWorkers:   *fleet,
		SessionWorkers: *sessionWorkers,
		MaxUploadBytes: *uploadMB << 20,
		CacheBytes:     *cacheMB << 20,
		DegradeAt:      *degradeAt,
	}
	if *cacheMB < 0 {
		cfg.CacheBytes = -1
	}
	stopProf, err := profiling.StartProfiles(profiling.Profiles{
		CPU: *cpuprofile, Mem: *memprofile, Mutex: *mutexprofile, Block: *blockprofile,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "tracereduced:", err)
		os.Exit(1)
	}
	runErr := run(*addr, cfg, *drainTimeout)
	if runErr != nil {
		fmt.Fprintln(os.Stderr, "tracereduced:", runErr)
	}
	if err := stopProf(); err != nil {
		fmt.Fprintln(os.Stderr, "tracereduced:", err)
		os.Exit(1)
	}
	if runErr != nil {
		os.Exit(1)
	}
}

func run(addr string, cfg serve.Config, drainTimeout time.Duration) error {
	s := serve.NewServer(cfg)
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	// The resolved address goes to stdout so wrappers (the e2e harness,
	// scripts binding port 0) can discover the port.
	fmt.Printf("tracereduced: listening on %s\n", ln.Addr())
	httpSrv := &http.Server{
		Handler:           s.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)
	select {
	case err := <-errc:
		return err
	case sig := <-sigc:
		fmt.Printf("tracereduced: %s, draining\n", sig)
		// Drain first so health checks fail fast and new sessions are
		// refused, then let Shutdown wait out the in-flight ones.
		s.Drain()
		ctx, cancel := context.WithTimeout(context.Background(), drainTimeout)
		defer cancel()
		if err := httpSrv.Shutdown(ctx); err != nil {
			return fmt.Errorf("draining: %w", err)
		}
		fmt.Println("tracereduced: drained")
		return nil
	}
}
