// Reduction-engine benchmarks: the parallel streaming engine vs the
// retained sequential reference on the largest multi-rank workloads.
// Run with
//
//	go test -bench 'Reduce' -cpu 1,4
//
// to see the engine scale: at -cpu 1 the driver runs the ranks inline
// (no pool overhead); at -cpu N it runs N workers, and on hardware with
// N cores the multi-rank workloads finish correspondingly faster. The
// parity tests guarantee both paths produce byte-identical reductions.
package repro

import (
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/trace"
)

// reduceBenchWorkloads are the largest multi-rank traces in the study:
// the 32-rank interference runs and the 32-rank Sweep3D input.
var reduceBenchWorkloads = []string{"NtoN_1024", "1to1r_1024", "sweep3d_32p"}

var (
	reduceBenchOnce   sync.Once
	reduceBenchRunner *eval.Runner
)

// reduceBenchTrace generates benchmark traces on demand, cached across
// sub-benchmarks; unlike sharedRunner it skips the full-trace diagnoses
// the reduction benchmarks never need.
func reduceBenchTrace(b *testing.B, name string) *trace.Trace {
	b.Helper()
	reduceBenchOnce.Do(func() { reduceBenchRunner = eval.NewRunner() })
	full, err := reduceBenchRunner.Trace(name)
	if err != nil {
		b.Fatalf("generating %s: %v", name, err)
	}
	return full
}

// benchReduce times one engine over the benchmark workloads with the
// avgWave method (the paper's overall winner) at its default threshold.
func benchReduce(b *testing.B, reduce func(*trace.Trace, core.Policy) (*core.Reduced, error)) {
	for _, workload := range reduceBenchWorkloads {
		b.Run(workload, func(b *testing.B) {
			full := reduceBenchTrace(b, workload)
			p, err := core.DefaultMethod("avgWave")
			if err != nil {
				b.Fatal(err)
			}
			var segs int
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				red, err := reduce(full, p)
				if err != nil {
					b.Fatal(err)
				}
				segs = red.TotalSegments
			}
			b.ReportMetric(float64(segs), "segments")
		})
	}
}

// BenchmarkReduceParallel exercises the production engine: one
// RankReducer per rank on a GOMAXPROCS-bounded worker pool.
func BenchmarkReduceParallel(b *testing.B) { benchReduce(b, core.Reduce) }

// BenchmarkReduceMethods times the production engine once per similarity
// method on a large interference workload, the grid behind the matcher's
// no-regression guarantee: prepared-state and pruning wins on one method
// must not slow any other down.
func BenchmarkReduceMethods(b *testing.B) {
	full := reduceBenchTrace(b, "1to1r_1024")
	for _, method := range core.MethodNames {
		b.Run(method, func(b *testing.B) {
			p, err := core.DefaultMethod(method)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := core.Reduce(full, p); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkReduceSequentialRef exercises the retained single-threaded
// reference path the parity tests compare against; the gap between the
// two benchmarks is the pool's speedup (or, at -cpu 1, its overhead).
func BenchmarkReduceSequentialRef(b *testing.B) { benchReduce(b, core.ReduceSequential) }
