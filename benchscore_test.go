// Scoring-engine benchmarks: the direct-from-reduced evaluation path vs
// the retained reconstruct-based reference on the largest multi-rank
// workloads. Run with
//
//	go test -bench 'Score|Analyze' -benchtime 5x
//
// BenchmarkScoreReduced times the full four-criteria scorer
// (eval.EvaluateReduced); BenchmarkScoreReconstructRef times the
// reference that materializes Reconstruct() and re-walks every event.
// BenchmarkAnalyzeReduced / BenchmarkAnalyzeReconstructRef isolate the
// diagnosis kernel, where the representative-scaling speedup is largest.
// The parity tests guarantee all paths produce identical results.
package repro

import (
	"testing"

	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/expert"
	"repro/internal/trace"
)

// scoreBenchSetup reduces one benchmark workload with the avgWave method
// at its default threshold and returns everything both scorers need —
// including the cached full-trace size, as the study's Runner supplies it
// — outside the timed region.
func scoreBenchSetup(b *testing.B, workload string) (*trace.Trace, *expert.Diagnosis, *core.Reduced, int64) {
	b.Helper()
	full := reduceBenchTrace(b, workload)
	fullDiag, err := reduceBenchRunner.Diagnosis(workload)
	if err != nil {
		b.Fatalf("diagnosing %s: %v", workload, err)
	}
	fullBytes, err := reduceBenchRunner.FullBytes(workload)
	if err != nil {
		b.Fatalf("sizing %s: %v", workload, err)
	}
	p, err := core.DefaultMethod("avgWave")
	if err != nil {
		b.Fatal(err)
	}
	red, err := core.Reduce(full, p)
	if err != nil {
		b.Fatalf("reducing %s: %v", workload, err)
	}
	return full, fullDiag, red, fullBytes
}

// benchScore times one scorer over the benchmark workloads.
func benchScore(b *testing.B, score func(*trace.Trace, *expert.Diagnosis, *core.Reduced, int64) (*eval.Result, error)) {
	for _, workload := range reduceBenchWorkloads {
		b.Run(workload, func(b *testing.B) {
			full, fullDiag, red, fullBytes := scoreBenchSetup(b, workload)
			var dist trace.Time
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := score(full, fullDiag, red, fullBytes)
				if err != nil {
					b.Fatal(err)
				}
				dist = res.ApproxDist
			}
			b.ReportMetric(float64(dist), "apxdist")
		})
	}
}

// BenchmarkScoreReduced exercises the production scorer: approximation
// distance and diagnosis computed directly from representatives and
// execution records, no reconstruction.
func BenchmarkScoreReduced(b *testing.B) { benchScore(b, eval.EvaluateReducedSized) }

// BenchmarkScoreReconstructRef exercises the retained reconstruct-based
// reference path the parity tests compare against.
func BenchmarkScoreReconstructRef(b *testing.B) { benchScore(b, eval.EvaluateReducedReconstructSized) }

// benchAnalyze times one diagnosis kernel over the benchmark workloads.
func benchAnalyze(b *testing.B, analyze func(*core.Reduced) (*expert.Diagnosis, error)) {
	for _, workload := range reduceBenchWorkloads {
		b.Run(workload, func(b *testing.B) {
			_, _, red, _ := scoreBenchSetup(b, workload)
			var cells int
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				d, err := analyze(red)
				if err != nil {
					b.Fatal(err)
				}
				cells = len(d.Sev)
			}
			b.ReportMetric(float64(cells), "cells")
		})
	}
}

// BenchmarkAnalyzeReduced isolates the direct diagnosis kernel.
func BenchmarkAnalyzeReduced(b *testing.B) { benchAnalyze(b, expert.AnalyzeReduced) }

// BenchmarkAnalyzeReconstructRef isolates the reconstruct-and-re-walk
// diagnosis the direct kernel replaces.
func BenchmarkAnalyzeReconstructRef(b *testing.B) {
	benchAnalyze(b, func(red *core.Reduced) (*expert.Diagnosis, error) {
		recon, err := red.Reconstruct()
		if err != nil {
			return nil, err
		}
		return expert.Analyze(recon)
	})
}
