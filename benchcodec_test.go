// Codec benchmarks: the two container versions head to head on a
// mid-size workload — encode and decode (v2 both sequential and
// block-parallel per worker count), the committed size ratio, and the
// pipelined reduce-to-writer path against the batch reduce-then-encode
// path. cmd/benchsnap -suite codec runs the fuller sweep and commits it
// as BENCH_codec.json; these benchmarks are the `go test -bench` view
// of the same comparison.
package repro

import (
	"bytes"
	"fmt"
	"io"
	"testing"

	"repro/internal/core"
	"repro/internal/trace"
)

// benchCodecTrace is the workload the codec benchmarks encode: enough
// ranks for block-parallel decode to have work to spread.
const benchCodecTrace = "sweep3d_32p"

// seqReader hides ReaderAt/Seeker so a v2 decode takes the stream path.
type seqReader struct{ io.Reader }

func BenchmarkCodecEncode(b *testing.B) {
	full, err := sharedRunner(b).Trace(benchCodecTrace)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("v1", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := trace.Encode(io.Discard, full); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("v2", func(b *testing.B) {
		b.ReportAllocs()
		b.ReportMetric(float64(trace.EncodedSizeV2(full))/float64(trace.EncodedSize(full)), "size-ratio")
		for i := 0; i < b.N; i++ {
			if err := trace.EncodeV2(io.Discard, full); err != nil {
				b.Fatal(err)
			}
		}
	})
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("v2-parallel-w%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				err := trace.EncodeV2With(io.Discard, full, trace.EncoderOptions{Workers: workers})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkCodecDecode(b *testing.B) {
	full, err := sharedRunner(b).Trace(benchCodecTrace)
	if err != nil {
		b.Fatal(err)
	}
	var v1, v2 bytes.Buffer
	if err := trace.Encode(&v1, full); err != nil {
		b.Fatal(err)
	}
	if err := trace.EncodeV2(&v2, full); err != nil {
		b.Fatal(err)
	}
	b.Run("v1", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := trace.Decode(bytes.NewReader(v1.Bytes())); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("v2-stream", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := trace.Decode(seqReader{bytes.NewReader(v2.Bytes())}); err != nil {
				b.Fatal(err)
			}
		}
	})
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("v2-parallel-w%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				d, err := trace.NewDecoderWith(bytes.NewReader(v2.Bytes()),
					trace.DecoderOptions{Workers: workers})
				if err != nil {
					b.Fatal(err)
				}
				for {
					if _, err := d.NextRank(); err == io.EOF {
						break
					} else if err != nil {
						b.Fatal(err)
					}
				}
				d.Close()
			}
		})
	}
}

func BenchmarkCodecReducedRoundTrip(b *testing.B) {
	full, err := sharedRunner(b).Trace(benchCodecTrace)
	if err != nil {
		b.Fatal(err)
	}
	p, err := core.DefaultMethod("avgWave")
	if err != nil {
		b.Fatal(err)
	}
	red, err := core.Reduce(full, p)
	if err != nil {
		b.Fatal(err)
	}
	var v1, v2 bytes.Buffer
	if err := core.EncodeReduced(&v1, red); err != nil {
		b.Fatal(err)
	}
	if err := core.EncodeReducedV2(&v2, red); err != nil {
		b.Fatal(err)
	}
	b.Run("encode-v1", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := core.EncodeReduced(io.Discard, red); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("encode-v2", func(b *testing.B) {
		b.ReportAllocs()
		b.ReportMetric(float64(v2.Len())/float64(v1.Len()), "size-ratio")
		for i := 0; i < b.N; i++ {
			if err := core.EncodeReducedV2(io.Discard, red); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("decode-v1", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := core.DecodeReduced(bytes.NewReader(v1.Bytes())); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("decode-v2", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := core.DecodeReduced(bytes.NewReader(v2.Bytes())); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkPipelineReduce measures the end-to-end TRC2 -> reduce ->
// TRR2 path both ways: batch (stream-reduce into a full Reduced, then
// encode it) against the pipelined ReduceStreamToWriter, which overlaps
// decode, reduction, and encode and never materializes the Reduced.
func BenchmarkPipelineReduce(b *testing.B) {
	full, err := sharedRunner(b).Trace(benchCodecTrace)
	if err != nil {
		b.Fatal(err)
	}
	var trc2 bytes.Buffer
	if err := trace.EncodeV2(&trc2, full); err != nil {
		b.Fatal(err)
	}
	b.Run("batch", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			d, err := trace.NewDecoder(bytes.NewReader(trc2.Bytes()))
			if err != nil {
				b.Fatal(err)
			}
			p, err := core.DefaultMethod("avgWave")
			if err != nil {
				b.Fatal(err)
			}
			red, err := core.ReduceStream(d.Name(), p, d.NextRank)
			if err != nil {
				b.Fatal(err)
			}
			if err := core.EncodeReducedV2With(io.Discard, red, trace.EncoderOptions{}); err != nil {
				b.Fatal(err)
			}
			d.Close()
		}
	})
	b.Run("pipelined", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			d, err := trace.NewDecoder(bytes.NewReader(trc2.Bytes()))
			if err != nil {
				b.Fatal(err)
			}
			p, err := core.DefaultMethod("avgWave")
			if err != nil {
				b.Fatal(err)
			}
			if _, err := core.ReduceStreamToWriter(d.Name(), p, d.NextRank, io.Discard, 2); err != nil {
				b.Fatal(err)
			}
			d.Close()
		}
	})
}
