// Parity tests. The parallel streaming reduction engine must produce
// results byte-identical to the retained sequential reference path, and
// the direct-from-reduced evaluation engine results exactly equal to the
// retained reconstruct-based reference, for every workload × method at
// the paper's default thresholds. The workload set is eval.AllNames() —
// all 20 workloads, including the scenario extensions halo_jitter and
// bursty_io. The encoded reduced form covers the
// stored segments and execution logs; counters, criteria, and diagnoses
// are compared directly.
package repro

import (
	"bytes"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/expert"
	"repro/internal/trace"
)

var (
	parityOnce   sync.Once
	parityRunner *eval.Runner
)

// parityTrace returns the named workload's full trace from a process-wide
// cache shared with the benchmarks' runner layout.
func parityTrace(t *testing.T, name string) *trace.Trace {
	t.Helper()
	parityOnce.Do(func() { parityRunner = eval.NewRunner() })
	full, err := parityRunner.Trace(name)
	if err != nil {
		t.Fatalf("generating %s: %v", name, err)
	}
	return full
}

// encodeReduced renders a reduction to its canonical byte form.
func encodeReduced(t *testing.T, red *core.Reduced) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := core.EncodeReduced(&buf, red); err != nil {
		t.Fatalf("encoding reduction: %v", err)
	}
	return buf.Bytes()
}

// TestParallelSequentialParity reduces every workload with every method
// at default thresholds through both engines and requires identical
// stored segments, execs (via the encoded form), and counters.
func TestParallelSequentialParity(t *testing.T) {
	for _, workload := range eval.AllNames() {
		workload := workload
		t.Run(workload, func(t *testing.T) {
			full := parityTrace(t, workload)
			for _, method := range core.MethodNames {
				// Fresh policy instances per engine: iter_avg mutates stored
				// representatives, so sharing one policy value is fine, but
				// fresh ones rule out any cross-run coupling.
				pPar, err := core.DefaultMethod(method)
				if err != nil {
					t.Fatal(err)
				}
				pSeq, err := core.DefaultMethod(method)
				if err != nil {
					t.Fatal(err)
				}
				par, err := core.Reduce(full, pPar)
				if err != nil {
					t.Fatalf("%s: Reduce: %v", method, err)
				}
				seq, err := core.ReduceSequential(full, pSeq)
				if err != nil {
					t.Fatalf("%s: ReduceSequential: %v", method, err)
				}
				if par.TotalSegments != seq.TotalSegments ||
					par.Matches != seq.Matches ||
					par.PossibleMatches != seq.PossibleMatches {
					t.Errorf("%s: counters differ: parallel (%d,%d,%d) vs sequential (%d,%d,%d)",
						method, par.TotalSegments, par.Matches, par.PossibleMatches,
						seq.TotalSegments, seq.Matches, seq.PossibleMatches)
				}
				if !bytes.Equal(encodeReduced(t, par), encodeReduced(t, seq)) {
					t.Errorf("%s: encoded reductions differ", method)
				}
			}
		})
	}
}

// diagEqual reports whether two diagnoses are exactly equal — same
// metadata, same cell set, same per-rank severities bit for bit. All
// severities are sums of integer microsecond differences, exact in
// float64, so the direct and reconstruct-based analyzers must agree
// exactly, not just approximately.
func diagEqual(a, b *expert.Diagnosis) bool {
	if a.Name != b.Name || a.NumRanks != b.NumRanks || a.WallTime != b.WallTime || len(a.Sev) != len(b.Sev) {
		return false
	}
	for k, av := range a.Sev {
		bv, ok := b.Sev[k]
		if !ok || len(av) != len(bv) {
			return false
		}
		for i := range av {
			if av[i] != bv[i] {
				return false
			}
		}
	}
	return true
}

// TestScoreReducedParity holds the direct-from-reduced evaluation engine
// (expert.AnalyzeReduced + core.ApproximationDistanceReduced, via
// eval.EvaluateReduced) to exactly the Result the retained
// reconstruct-based reference produces, for every workload × method at
// default thresholds.
func TestScoreReducedParity(t *testing.T) {
	for _, workload := range eval.AllNames() {
		workload := workload
		t.Run(workload, func(t *testing.T) {
			full := parityTrace(t, workload)
			fullDiag, err := expert.Analyze(full)
			if err != nil {
				t.Fatalf("analyzing full trace: %v", err)
			}
			for _, method := range core.MethodNames {
				p, err := core.DefaultMethod(method)
				if err != nil {
					t.Fatal(err)
				}
				red, err := core.Reduce(full, p)
				if err != nil {
					t.Fatalf("%s: Reduce: %v", method, err)
				}
				direct, err := eval.EvaluateReduced(full, fullDiag, red)
				if err != nil {
					t.Fatalf("%s: EvaluateReduced: %v", method, err)
				}
				ref, err := eval.EvaluateReducedReconstruct(full, fullDiag, red)
				if err != nil {
					t.Fatalf("%s: EvaluateReducedReconstruct: %v", method, err)
				}
				if direct.PctSize != ref.PctSize || direct.Degree != ref.Degree ||
					direct.FullBytes != ref.FullBytes || direct.ReducedBytes != ref.ReducedBytes ||
					direct.StoredSegments != ref.StoredSegments || direct.TotalSegments != ref.TotalSegments {
					t.Errorf("%s: size/matching criteria differ: direct %+v vs reference %+v", method, direct, ref)
				}
				if direct.ApproxDist != ref.ApproxDist {
					t.Errorf("%s: approximation distance differs: direct %d vs reference %d",
						method, direct.ApproxDist, ref.ApproxDist)
				}
				if direct.Retained != ref.Retained || !equalStrings(direct.Issues, ref.Issues) {
					t.Errorf("%s: retention verdict differs: direct (%v, %v) vs reference (%v, %v)",
						method, direct.Retained, direct.Issues, ref.Retained, ref.Issues)
				}
				if !diagEqual(direct.Diag, ref.Diag) {
					t.Errorf("%s: diagnoses differ between AnalyzeReduced and Analyze(Reconstruct())", method)
				}
			}
		})
	}
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestStreamingDecodeReduceParity round-trips each workload through the
// binary trace format and the rank-at-a-time streaming pipeline
// (decode → split → reduce), requiring byte-identical output to the
// sequential batch path — the guarantee cmd/tracereduce relies on.
func TestStreamingDecodeReduceParity(t *testing.T) {
	const method = "avgWave"
	for _, workload := range eval.AllNames() {
		workload := workload
		t.Run(workload, func(t *testing.T) {
			full := parityTrace(t, workload)
			var enc bytes.Buffer
			if err := trace.Encode(&enc, full); err != nil {
				t.Fatalf("encoding trace: %v", err)
			}
			d, err := trace.NewDecoder(bytes.NewReader(enc.Bytes()))
			if err != nil {
				t.Fatalf("NewDecoder: %v", err)
			}
			pStream, _ := core.DefaultMethod(method)
			pSeq, _ := core.DefaultMethod(method)
			streamed, err := core.ReduceStream(d.Name(), pStream, d.NextRank)
			if err != nil {
				t.Fatalf("ReduceStream: %v", err)
			}
			seq, err := core.ReduceSequential(full, pSeq)
			if err != nil {
				t.Fatalf("ReduceSequential: %v", err)
			}
			if !bytes.Equal(encodeReduced(t, streamed), encodeReduced(t, seq)) {
				t.Errorf("streamed and sequential reductions differ")
			}
		})
	}
}
