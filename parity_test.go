// Parity tests: the parallel streaming reduction engine must produce
// results byte-identical to the retained sequential reference path for
// every workload × method at the paper's default thresholds. The encoded
// reduced form covers the stored segments and execution logs; the
// counters are compared directly.
package repro

import (
	"bytes"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/trace"
)

var (
	parityOnce   sync.Once
	parityRunner *eval.Runner
)

// parityTrace returns the named workload's full trace from a process-wide
// cache shared with the benchmarks' runner layout.
func parityTrace(t *testing.T, name string) *trace.Trace {
	t.Helper()
	parityOnce.Do(func() { parityRunner = eval.NewRunner() })
	full, err := parityRunner.Trace(name)
	if err != nil {
		t.Fatalf("generating %s: %v", name, err)
	}
	return full
}

// encodeReduced renders a reduction to its canonical byte form.
func encodeReduced(t *testing.T, red *core.Reduced) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := core.EncodeReduced(&buf, red); err != nil {
		t.Fatalf("encoding reduction: %v", err)
	}
	return buf.Bytes()
}

// TestParallelSequentialParity reduces every workload with every method
// at default thresholds through both engines and requires identical
// stored segments, execs (via the encoded form), and counters.
func TestParallelSequentialParity(t *testing.T) {
	for _, workload := range eval.AllNames() {
		workload := workload
		t.Run(workload, func(t *testing.T) {
			full := parityTrace(t, workload)
			for _, method := range core.MethodNames {
				// Fresh policy instances per engine: iter_avg mutates stored
				// representatives, so sharing one policy value is fine, but
				// fresh ones rule out any cross-run coupling.
				pPar, err := core.DefaultMethod(method)
				if err != nil {
					t.Fatal(err)
				}
				pSeq, err := core.DefaultMethod(method)
				if err != nil {
					t.Fatal(err)
				}
				par, err := core.Reduce(full, pPar)
				if err != nil {
					t.Fatalf("%s: Reduce: %v", method, err)
				}
				seq, err := core.ReduceSequential(full, pSeq)
				if err != nil {
					t.Fatalf("%s: ReduceSequential: %v", method, err)
				}
				if par.TotalSegments != seq.TotalSegments ||
					par.Matches != seq.Matches ||
					par.PossibleMatches != seq.PossibleMatches {
					t.Errorf("%s: counters differ: parallel (%d,%d,%d) vs sequential (%d,%d,%d)",
						method, par.TotalSegments, par.Matches, par.PossibleMatches,
						seq.TotalSegments, seq.Matches, seq.PossibleMatches)
				}
				if !bytes.Equal(encodeReduced(t, par), encodeReduced(t, seq)) {
					t.Errorf("%s: encoded reductions differ", method)
				}
			}
		})
	}
}

// TestStreamingDecodeReduceParity round-trips each workload through the
// binary trace format and the rank-at-a-time streaming pipeline
// (decode → split → reduce), requiring byte-identical output to the
// sequential batch path — the guarantee cmd/tracereduce relies on.
func TestStreamingDecodeReduceParity(t *testing.T) {
	const method = "avgWave"
	for _, workload := range eval.AllNames() {
		workload := workload
		t.Run(workload, func(t *testing.T) {
			full := parityTrace(t, workload)
			var enc bytes.Buffer
			if err := trace.Encode(&enc, full); err != nil {
				t.Fatalf("encoding trace: %v", err)
			}
			d, err := trace.NewDecoder(bytes.NewReader(enc.Bytes()))
			if err != nil {
				t.Fatalf("NewDecoder: %v", err)
			}
			pStream, _ := core.DefaultMethod(method)
			pSeq, _ := core.DefaultMethod(method)
			streamed, err := core.ReduceStream(d.Name(), pStream, d.NextRank)
			if err != nil {
				t.Fatalf("ReduceStream: %v", err)
			}
			seq, err := core.ReduceSequential(full, pSeq)
			if err != nil {
				t.Fatalf("ReduceSequential: %v", err)
			}
			if !bytes.Equal(encodeReduced(t, streamed), encodeReduced(t, seq)) {
				t.Errorf("streamed and sequential reductions differ")
			}
		})
	}
}
