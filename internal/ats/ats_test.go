package ats

import (
	"math"
	"testing"

	"repro/internal/expert"
	"repro/internal/mpisim"
)

// smallParams keeps unit-test runs fast.
func smallParams() Params {
	return Params{Ranks: 4, Iterations: 12, Work: 1000, Severity: 500, Bytes: 1024, JitterPct: 3}
}

// runBench simulates a benchmark and returns its diagnosis.
func runBench(t *testing.T, b *Benchmark) *expert.Diagnosis {
	t.Helper()
	tr, err := mpisim.Run(b.Program, b.Config)
	if err != nil {
		t.Fatalf("%s: simulate: %v", b.Name, err)
	}
	if err := tr.Validate(); err != nil {
		t.Fatalf("%s: invalid trace: %v", b.Name, err)
	}
	d, err := expert.Analyze(tr)
	if err != nil {
		t.Fatalf("%s: analyze: %v", b.Name, err)
	}
	return d
}

// expectPlanted asserts that the benchmark's expected metric/location is
// a dominant diagnosis of roughly iterations × severity aggregated over
// the affected ranks.
func expectPlanted(t *testing.T, b *Benchmark, d *expert.Diagnosis, affected int, p Params) {
	t.Helper()
	k := expert.Key{Metric: b.ExpectMetric, Location: b.ExpectLocation}
	total := d.Total(k)
	want := float64(p.Iterations) * float64(p.Severity) * float64(affected)
	if total < 0.5*want || total > 2.0*want {
		t.Errorf("%s: %s total = %.0f, want ~%.0f", b.Name, k, total, want)
	}
}

func TestLateSenderBenchmark(t *testing.T) {
	p := smallParams()
	b := LateSender(p)
	d := runBench(t, b)
	expectPlanted(t, b, d, p.Ranks/2, p)
	// Severity must sit on the odd (receiver) ranks.
	v := d.Sev[expert.Key{Metric: "late_sender", Location: "MPI_Recv"}]
	if v[0] != 0 || v[1] <= 0 {
		t.Errorf("late_sender severities misplaced: %v", v)
	}
}

func TestLateReceiverBenchmark(t *testing.T) {
	p := smallParams()
	b := LateReceiver(p)
	d := runBench(t, b)
	expectPlanted(t, b, d, p.Ranks/2, p)
	v := d.Sev[expert.Key{Metric: "late_receiver", Location: "MPI_Ssend"}]
	if v[0] <= 0 || v[1] != 0 {
		t.Errorf("late_receiver severities misplaced: %v", v)
	}
}

func TestEarlyGatherBenchmark(t *testing.T) {
	p := smallParams()
	b := EarlyGather(p)
	d := runBench(t, b)
	expectPlanted(t, b, d, 1, p) // severity lands on the root only
	v := d.Sev[expert.Key{Metric: "early_gather", Location: "MPI_Gather"}]
	for r := 1; r < p.Ranks; r++ {
		if v[r] != 0 {
			t.Errorf("non-root rank %d has early_gather severity %v", r, v[r])
		}
	}
}

func TestLateBroadcastBenchmark(t *testing.T) {
	p := smallParams()
	b := LateBroadcast(p)
	d := runBench(t, b)
	expectPlanted(t, b, d, p.Ranks-1, p)
	v := d.Sev[expert.Key{Metric: "late_broadcast", Location: "MPI_Bcast"}]
	if v[0] != 0 {
		t.Errorf("root has late_broadcast severity %v", v[0])
	}
}

func TestImbalanceAtBarrierBenchmark(t *testing.T) {
	p := smallParams()
	b := ImbalanceAtBarrier(p)
	d := runBench(t, b)
	v := d.Sev[expert.Key{Metric: "wait_barrier", Location: "MPI_Barrier"}]
	// Rank 0 (least work) waits most; the heaviest rank waits ~0.
	if !(v[0] > v[p.Ranks-1]) {
		t.Errorf("barrier wait not decreasing with rank: %v", v)
	}
	if v[0] < float64(p.Iterations)*float64(p.Severity)*0.5 {
		t.Errorf("rank 0 wait %v too small", v[0])
	}
}

func TestRegularSetComplete(t *testing.T) {
	set := RegularSet(smallParams())
	if len(set) != 5 {
		t.Fatalf("RegularSet has %d benchmarks, want 5", len(set))
	}
	names := map[string]bool{}
	for _, b := range set {
		names[b.Name] = true
	}
	for _, want := range []string{"early_gather", "imbalance_at_mpi_barrier", "late_receiver", "late_sender", "late_broadcast"} {
		if !names[want] {
			t.Errorf("missing benchmark %s", want)
		}
	}
}

func TestInterferenceSetComplete(t *testing.T) {
	p := Params{Ranks: 4, Iterations: 6, Work: 500, Bytes: 512}
	set := InterferenceSet(p)
	if len(set) != 10 {
		t.Fatalf("InterferenceSet has %d benchmarks, want 10", len(set))
	}
	seen := map[string]bool{}
	for _, b := range set {
		seen[b.Name] = true
		if b.Config.Noise == nil {
			t.Errorf("%s: no noise model attached", b.Name)
		}
	}
	for _, want := range []string{"Nto1_32", "NtoN_32", "1toN_32", "1to1r_32", "1to1s_32",
		"Nto1_1024", "NtoN_1024", "1toN_1024", "1to1r_1024", "1to1s_1024"} {
		if !seen[want] {
			t.Errorf("missing %s", want)
		}
	}
}

func TestInterferenceBenchmarksRun(t *testing.T) {
	p := Params{Ranks: 4, Iterations: 10, Work: 1000, Bytes: 1024, JitterPct: 3}
	for _, pat := range []InterferencePattern{PatternNto1, Pattern1toN, PatternNtoN, Pattern1to1r, Pattern1to1s} {
		b := Interference(p, pat, 128)
		d := runBench(t, b)
		if d.WallTime <= float64(p.Iterations)*float64(p.Work) {
			t.Errorf("%s: wall time %v implies no noise was injected", b.Name, d.WallTime)
		}
	}
}

func TestInterferencePatternString(t *testing.T) {
	want := map[InterferencePattern]string{
		PatternNto1: "Nto1", Pattern1toN: "1toN", PatternNtoN: "NtoN",
		Pattern1to1r: "1to1r", Pattern1to1s: "1to1s",
	}
	for p, w := range want {
		if p.String() != w {
			t.Errorf("String(%d) = %q, want %q", int(p), p.String(), w)
		}
	}
}

func TestDynLoadBalance(t *testing.T) {
	p := smallParams()
	p.Iterations = 32
	b := DynLoadBalance(p)
	d := runBench(t, b)
	v := d.Sev[expert.Key{Metric: "wait_nxn", Location: "MPI_Alltoall"}]
	// Lower half waits (upper half does more work).
	lower := v[0] + v[1]
	upper := v[2] + v[3]
	if lower <= upper {
		t.Errorf("lower ranks should wait more: lower=%v upper=%v", lower, upper)
	}
	// The work disparity must show in do_work execution.
	w := d.Sev[expert.Key{Metric: "execution", Location: "do_work"}]
	if w[3] <= w[0] {
		t.Errorf("upper ranks should do more work: %v", w)
	}
}

func TestHaloJitter(t *testing.T) {
	p := smallParams()
	b := HaloJitter(p)
	d := runBench(t, b)
	// The amplified jitter makes receives wait on whichever neighbour
	// drew the slower phase. late_sender waits are signed (an early
	// sender contributes negative wait), so assert shape, not sign:
	// every rank sees nonzero wait and the magnitudes stay within the
	// jitter envelope — a fraction of Work per iteration, far below a
	// planted Severity-scale problem.
	v := d.Sev[expert.Key{Metric: b.ExpectMetric, Location: b.ExpectLocation}]
	if len(v) == 0 {
		t.Fatal("no late_sender severities recorded")
	}
	var totalAbs float64
	for rank, sev := range v {
		if sev == 0 {
			t.Errorf("rank %d has no late_sender wait (jitter should spread waits everywhere): %v", rank, v)
		}
		totalAbs += math.Abs(sev)
	}
	envelope := float64(p.Iterations) * float64(p.Work) * float64(p.Ranks)
	if totalAbs <= 0 || totalAbs >= envelope {
		t.Errorf("late_sender |total| %v outside the jitter envelope (0, %v)", totalAbs, envelope)
	}
}

func TestBurstyIO(t *testing.T) {
	p := smallParams()
	b := BurstyIO(p)
	d := runBench(t, b)
	// Each iteration exactly one rank flushes for 3×Severity while the
	// other Ranks−1 wait at the barrier.
	burst := 3 * p.Severity
	v := d.Sev[expert.Key{Metric: b.ExpectMetric, Location: b.ExpectLocation}]
	var total float64
	for _, sev := range v {
		total += sev
	}
	want := float64(p.Iterations) * float64(burst) * float64(p.Ranks-1)
	if total < 0.5*want || total > 2.0*want {
		t.Errorf("wait_barrier total = %.0f, want ~%.0f", total, want)
	}
	// The flush itself must be visible as io_flush execution time.
	w := d.Sev[expert.Key{Metric: "execution", Location: "io_flush"}]
	if len(w) == 0 {
		t.Fatal("no io_flush execution recorded")
	}
	for rank, sev := range w {
		if sev <= 0 {
			t.Errorf("rank %d never flushed: %v", rank, w)
		}
	}
}

func TestScenarioSetComplete(t *testing.T) {
	set := ScenarioSet(smallParams())
	if len(set) != 2 {
		t.Fatalf("ScenarioSet has %d benchmarks, want 2", len(set))
	}
	if set[0].Name != "halo_jitter" || set[1].Name != "bursty_io" {
		t.Errorf("ScenarioSet = %q, %q", set[0].Name, set[1].Name)
	}
}

// TestDeterministicGeneration: the same parameters must generate
// identical programs (jitter is seeded by name and rank).
func TestDeterministicGeneration(t *testing.T) {
	p := smallParams()
	a, b := LateSender(p), LateSender(p)
	ta, err := mpisim.Run(a.Program, a.Config)
	if err != nil {
		t.Fatal(err)
	}
	tb, err := mpisim.Run(b.Program, b.Config)
	if err != nil {
		t.Fatal(err)
	}
	if ta.EndTime() != tb.EndTime() || ta.NumEvents() != tb.NumEvents() {
		t.Error("generation is nondeterministic")
	}
}

// TestJitterSpread: with jitter enabled, per-iteration work durations
// vary but stay within a plausible envelope of the nominal duration.
func TestJitterSpread(t *testing.T) {
	p := smallParams()
	b := LateSender(p)
	tr, err := mpisim.Run(b.Program, b.Config)
	if err != nil {
		t.Fatal(err)
	}
	var durs []float64
	for _, e := range tr.Ranks[0].Events {
		if e.Name == "do_work" {
			durs = append(durs, float64(e.Duration()))
		}
	}
	if len(durs) != p.Iterations {
		t.Fatalf("found %d do_work events, want %d", len(durs), p.Iterations)
	}
	distinct := map[float64]bool{}
	for _, d := range durs {
		distinct[d] = true
		if math.Abs(d-float64(p.Work)) > 0.05*float64(p.Work) {
			t.Errorf("work duration %v too far from nominal %d", d, p.Work)
		}
	}
	if len(distinct) < 2 {
		t.Error("jitter produced no variation")
	}
}
