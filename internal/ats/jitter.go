package ats

// jitter is a deterministic xorshift64 generator used to give compute
// phases the small run-to-run measurement variation real traces exhibit
// (cache effects, TLB misses, clock quantization). Determinism keeps
// generated traces reproducible across runs and platforms.
type jitter struct{ state uint64 }

// newJitter seeds a per-rank stream from the benchmark name and rank so
// ranks do not vary in lockstep.
func newJitter(name string, rank int) *jitter {
	s := uint64(14695981039346656037) // FNV offset basis
	for i := 0; i < len(name); i++ {
		s ^= uint64(name[i])
		s *= 1099511628211
	}
	s ^= uint64(rank+1) * 0x9e3779b97f4a7c15
	if s == 0 {
		s = 1
	}
	return &jitter{state: s}
}

func (j *jitter) next() uint64 {
	j.state ^= j.state << 13
	j.state ^= j.state >> 7
	j.state ^= j.state << 17
	return j.state
}

// small returns a short, highly variable duration in [base, 6·base]:
// the loop-header bookkeeping real programs show at segment starts, whose
// large *relative* spread is what stresses ratio-based similarity tests.
func (j *jitter) small(base int64) int64 {
	if base < 1 {
		base = 1
	}
	return base + int64(j.next()%uint64(5*base+1))
}

// stretch perturbs dur by a deterministic offset in ±pct percent.
func (j *jitter) stretch(dur int64, pct int) int64 {
	if pct <= 0 || dur <= 0 {
		return dur
	}
	span := 2*pct + 1
	off := int64(j.next()%uint64(span)) - int64(pct)
	out := dur + dur*off/100
	if out < 1 {
		out = 1
	}
	return out
}
