// Package ats generates message-passing programs with *known* performance
// behaviours, in the spirit of the APART Test Suite the paper builds its
// benchmarks from: five regularly-behaving benchmarks (one per
// communication-pattern category), ten irregular benchmarks driven by
// ASCI Q-style system interference, and a dynamic-load-balancing
// benchmark. Because every generator documents the pathology it plants,
// the evaluation can check whether a reduced trace still diagnoses it.
package ats

import (
	"fmt"

	"repro/internal/mpisim"
	"repro/internal/noise"
)

// Params tunes the common benchmark dimensions.
type Params struct {
	// Ranks is the number of processes.
	Ranks int
	// Iterations is the length of the main loop.
	Iterations int
	// Work is the base per-iteration compute time (µs); the paper's
	// interference benchmarks use ~1 ms.
	Work mpisim.Time
	// Severity is the extra delay that plants the performance problem.
	Severity mpisim.Time
	// Bytes is the message payload size.
	Bytes int64
	// JitterPct adds deterministic ±percent variation to compute phases,
	// modelling the measurement noise real traces always carry.
	JitterPct int
}

// DefaultParams returns the dimensions used by the evaluation for the
// regular benchmarks: 8 ranks, 60 iterations, 1 ms work, 0.5 ms severity.
func DefaultParams() Params {
	return Params{Ranks: 8, Iterations: 60, Work: 1000, Severity: 500, Bytes: 4096, JitterPct: 3}
}

// Benchmark couples a generated program with the behaviour it plants.
type Benchmark struct {
	// Name is the workload name ("late_sender", "1to1r_1024", ...).
	Name string
	// Pattern is the communication-pattern category ("1-1", "N-1",
	// "1-N", "N-N").
	Pattern string
	// Program is the message-passing program to simulate.
	Program *mpisim.Program
	// Config is the cost model (noise included for the irregular set).
	Config mpisim.Config
	// ExpectMetric names the EXPERT metric that should dominate
	// ("late_sender", "wait_nxn", ...), empty when only interference
	// variation is planted.
	ExpectMetric string
	// ExpectLocation is the function the metric should attach to.
	ExpectLocation string
}

// worker wraps one rank's builder with its jitter stream so generators
// can emit noisy compute phases concisely.
type worker struct {
	r   *mpisim.RankProgram
	j   *jitter
	pct int
}

func newWorker(name string, rank int, r *mpisim.RankProgram, p Params) *worker {
	return &worker{r: r, j: newJitter(name, rank), pct: p.JitterPct}
}

// compute emits a compute phase of roughly dur with the benchmark's
// measurement jitter applied.
func (w *worker) compute(name string, dur mpisim.Time) {
	w.r.Compute(name, w.j.stretch(dur, w.pct))
}

// iterInit emits the short, highly variable loop-header phases every
// iteration segment starts with: the bookkeeping whose large relative
// spread stresses ratio-based similarity tests on real traces.
func (w *worker) iterInit() {
	w.r.Compute("iter_init", w.j.small(2))
	w.r.Compute("get_bounds", w.j.small(3))
}

// prologue emits the init segment every benchmark shares.
func (w *worker) prologue() {
	w.r.InSegment("init", func() {
		w.compute("setup", 200)
		w.r.Barrier()
	})
}

// epilogue emits the final segment every benchmark shares.
func (w *worker) epilogue() {
	w.r.InSegment("final", func() {
		w.r.Barrier()
		w.compute("teardown", 100)
	})
}

// LateSender builds the 1-to-1 benchmark where even ranks send late:
// receivers (odd ranks) block in MPI_Recv for ~Severity every iteration.
func LateSender(p Params) *Benchmark {
	prog := mpisim.NewProgram("late_sender", p.Ranks)
	prog.ForAll(func(rank int, r *mpisim.RankProgram) {
		w := newWorker("late_sender", rank, r, p)
		w.prologue()
		for i := 0; i < p.Iterations; i++ {
			r.InSegment("main.1", func() {
				w.iterInit()
				w.compute("do_work", p.Work)
				if rank%2 == 0 {
					w.compute("extra_work", p.Severity)
					r.Send(rank+1, 7, p.Bytes)
				} else {
					r.Recv(rank-1, 7, p.Bytes)
				}
			})
		}
		w.epilogue()
	})
	return &Benchmark{Name: "late_sender", Pattern: "1-1", Program: prog,
		Config: mpisim.DefaultConfig(), ExpectMetric: "late_sender", ExpectLocation: "MPI_Recv"}
}

// LateReceiver builds the 1-to-1 benchmark with synchronous sends where
// receivers are late: senders block in MPI_Ssend for ~Severity.
func LateReceiver(p Params) *Benchmark {
	prog := mpisim.NewProgram("late_receiver", p.Ranks)
	prog.ForAll(func(rank int, r *mpisim.RankProgram) {
		w := newWorker("late_receiver", rank, r, p)
		w.prologue()
		for i := 0; i < p.Iterations; i++ {
			r.InSegment("main.1", func() {
				w.iterInit()
				w.compute("do_work", p.Work)
				if rank%2 == 0 {
					r.Ssend(rank+1, 7, p.Bytes)
				} else {
					w.compute("extra_work", p.Severity)
					r.Recv(rank-1, 7, p.Bytes)
				}
			})
		}
		w.epilogue()
	})
	return &Benchmark{Name: "late_receiver", Pattern: "1-1", Program: prog,
		Config: mpisim.DefaultConfig(), ExpectMetric: "late_receiver", ExpectLocation: "MPI_Ssend"}
}

// EarlyGather builds the N-to-1 benchmark where the root reaches
// MPI_Gather ~Severity before the contributors and waits there.
func EarlyGather(p Params) *Benchmark {
	prog := mpisim.NewProgram("early_gather", p.Ranks)
	prog.ForAll(func(rank int, r *mpisim.RankProgram) {
		w := newWorker("early_gather", rank, r, p)
		w.prologue()
		for i := 0; i < p.Iterations; i++ {
			r.InSegment("main.1", func() {
				w.iterInit()
				w.compute("do_work", p.Work)
				if rank != 0 {
					w.compute("extra_work", p.Severity)
				}
				r.Gather(0, p.Bytes)
			})
		}
		w.epilogue()
	})
	return &Benchmark{Name: "early_gather", Pattern: "N-1", Program: prog,
		Config: mpisim.DefaultConfig(), ExpectMetric: "early_gather", ExpectLocation: "MPI_Gather"}
}

// LateBroadcast builds the 1-to-N benchmark where the root reaches
// MPI_Bcast ~Severity after everyone else, blocking all non-roots.
func LateBroadcast(p Params) *Benchmark {
	prog := mpisim.NewProgram("late_broadcast", p.Ranks)
	prog.ForAll(func(rank int, r *mpisim.RankProgram) {
		w := newWorker("late_broadcast", rank, r, p)
		w.prologue()
		for i := 0; i < p.Iterations; i++ {
			r.InSegment("main.1", func() {
				w.iterInit()
				w.compute("do_work", p.Work)
				if rank == 0 {
					w.compute("extra_work", p.Severity)
				}
				r.Bcast(0, p.Bytes)
			})
		}
		w.epilogue()
	})
	return &Benchmark{Name: "late_broadcast", Pattern: "1-N", Program: prog,
		Config: mpisim.DefaultConfig(), ExpectMetric: "late_broadcast", ExpectLocation: "MPI_Bcast"}
}

// ImbalanceAtBarrier builds the N-to-N benchmark with a linear work
// imbalance in front of MPI_Barrier: rank i computes Work + i·Severity/
// (Ranks−1), so low ranks wait longest at the barrier.
func ImbalanceAtBarrier(p Params) *Benchmark {
	prog := mpisim.NewProgram("imbalance_at_mpi_barrier", p.Ranks)
	prog.ForAll(func(rank int, r *mpisim.RankProgram) {
		w := newWorker("imbalance_at_mpi_barrier", rank, r, p)
		w.prologue()
		extra := p.Severity * mpisim.Time(rank) / mpisim.Time(p.Ranks-1)
		for i := 0; i < p.Iterations; i++ {
			r.InSegment("main.1", func() {
				w.iterInit()
				w.compute("do_work", p.Work+extra)
				r.Barrier()
			})
		}
		w.epilogue()
	})
	return &Benchmark{Name: "imbalance_at_mpi_barrier", Pattern: "N-N", Program: prog,
		Config: mpisim.DefaultConfig(), ExpectMetric: "wait_barrier", ExpectLocation: "MPI_Barrier"}
}

// RegularSet returns the paper's five regularly-behaving benchmarks.
func RegularSet(p Params) []*Benchmark {
	return []*Benchmark{
		EarlyGather(p), ImbalanceAtBarrier(p), LateReceiver(p), LateSender(p), LateBroadcast(p),
	}
}

// InterferencePattern selects the communication step of an irregular
// benchmark.
type InterferencePattern int

// The interference benchmark communication patterns (paper §4.1).
const (
	// PatternNto1 gathers to rank 0 each iteration.
	PatternNto1 InterferencePattern = iota
	// Pattern1toN broadcasts from rank 0 each iteration.
	Pattern1toN
	// PatternNtoN synchronizes with a barrier each iteration.
	PatternNtoN
	// Pattern1to1r pairs ranks with synchronous sends (receive-side
	// blocking moves to the sender: late_receiver shape).
	Pattern1to1r
	// Pattern1to1s pairs ranks with eager sends and blocking receives
	// (late_sender shape).
	Pattern1to1s
)

func (ip InterferencePattern) String() string {
	switch ip {
	case PatternNto1:
		return "Nto1"
	case Pattern1toN:
		return "1toN"
	case PatternNtoN:
		return "NtoN"
	case Pattern1to1r:
		return "1to1r"
	case Pattern1to1s:
		return "1to1s"
	}
	return fmt.Sprintf("pattern(%d)", int(ip))
}

func (ip InterferencePattern) category() string {
	switch ip {
	case PatternNto1:
		return "N-1"
	case Pattern1toN:
		return "1-N"
	case PatternNtoN:
		return "N-N"
	default:
		return "1-1"
	}
}

// Interference builds one of the ten irregular benchmarks: Iterations of
// ~1 ms constant, balanced work followed by the pattern's communication
// step, run under the ASCI Q noise model. simulated is the simulated
// machine size (32 or 1024); the noise load scales with simulated/Ranks.
func Interference(p Params, pattern InterferencePattern, simulated int) *Benchmark {
	name := fmt.Sprintf("%s_%d", pattern, simulated)
	prog := mpisim.NewProgram(name, p.Ranks)
	prog.ForAll(func(rank int, r *mpisim.RankProgram) {
		w := newWorker(name, rank, r, p)
		w.prologue()
		for i := 0; i < p.Iterations; i++ {
			r.InSegment("main.1", func() {
				w.iterInit()
				w.compute("do_work", p.Work)
				switch pattern {
				case PatternNto1:
					r.Gather(0, p.Bytes)
				case Pattern1toN:
					r.Bcast(0, p.Bytes)
				case PatternNtoN:
					r.Barrier()
				case Pattern1to1r:
					if rank%2 == 0 {
						r.Ssend(rank+1, 7, p.Bytes)
					} else {
						r.Recv(rank-1, 7, p.Bytes)
					}
				case Pattern1to1s:
					if rank%2 == 0 {
						r.Send(rank+1, 7, p.Bytes)
					} else {
						r.Recv(rank-1, 7, p.Bytes)
					}
				}
			})
		}
		w.epilogue()
	})
	cfg := mpisim.DefaultConfig()
	scale := int64(simulated / p.Ranks)
	cfg.Noise = noise.ASCIQ(p.Ranks, scale)
	b := &Benchmark{Name: name, Pattern: pattern.category(), Program: prog, Config: cfg}
	switch pattern {
	case PatternNto1:
		b.ExpectMetric, b.ExpectLocation = "early_gather", "MPI_Gather"
	case Pattern1toN:
		b.ExpectMetric, b.ExpectLocation = "late_broadcast", "MPI_Bcast"
	case PatternNtoN:
		b.ExpectMetric, b.ExpectLocation = "wait_barrier", "MPI_Barrier"
	case Pattern1to1r:
		b.ExpectMetric, b.ExpectLocation = "late_receiver", "MPI_Ssend"
	case Pattern1to1s:
		b.ExpectMetric, b.ExpectLocation = "late_sender", "MPI_Recv"
	}
	return b
}

// InterferenceParams returns the dimensions of the irregular set: 32
// ranks, 1 ms work periods.
func InterferenceParams() Params {
	return Params{Ranks: 32, Iterations: 150, Work: 1000, Severity: 0, Bytes: 65536, JitterPct: 3}
}

// InterferenceSet returns the ten irregular benchmarks: the five
// communication patterns at simulated sizes 32 and 1024.
func InterferenceSet(p Params) []*Benchmark {
	patterns := []InterferencePattern{PatternNto1, PatternNtoN, Pattern1toN, Pattern1to1r, Pattern1to1s}
	var out []*Benchmark
	for _, sim := range []int{32, 1024} {
		for _, pat := range patterns {
			out = append(out, Interference(p, pat, sim))
		}
	}
	return out
}

// HaloJitter builds the jittered halo-exchange benchmark: the ranks form
// a ring and every iteration exchange boundary data with both neighbours
// (eager send + blocking receive, the usual stencil idiom) after a
// compute phase carrying 4× the usual measurement jitter. No fixed
// pathology is planted; instead the amplified, per-rank-decorrelated
// jitter makes every rank's receives wait on whichever neighbour drew
// the slower phase, spreading small late_sender waits across all ranks
// and giving every segment's measurement vector a different shape — the
// scenario that stresses similarity thresholds (and the matcher's
// pruning) hardest.
func HaloJitter(p Params) *Benchmark {
	prog := mpisim.NewProgram("halo_jitter", p.Ranks)
	prog.ForAll(func(rank int, r *mpisim.RankProgram) {
		w := newWorker("halo_jitter", rank, r, p)
		right := (rank + 1) % p.Ranks
		left := (rank + p.Ranks - 1) % p.Ranks
		w.prologue()
		for i := 0; i < p.Iterations; i++ {
			r.InSegment("main.1", func() {
				w.iterInit()
				r.Compute("do_work", w.j.stretch(p.Work, 4*w.pct))
				r.Sendrecv(right, left, 11, p.Bytes)
				r.Sendrecv(left, right, 12, p.Bytes)
			})
		}
		w.epilogue()
	})
	return &Benchmark{Name: "halo_jitter", Pattern: "1-1", Program: prog,
		Config: mpisim.DefaultConfig(), ExpectMetric: "late_sender", ExpectLocation: "MPI_Recv"}
}

// BurstyIO builds the bursty-I/O benchmark: every iteration each rank
// computes ~Work and synchronizes at a barrier, and every Ranks-th
// iteration — staggered so exactly one rank bursts per iteration — a
// rank flushes its I/O buffers, a 3×Severity compute burst. Everyone
// else waits for the flushing rank, planting imbalance at MPI_Barrier
// that rotates through the ranks; the burst iterations also split each
// rank's segment stream into two behaviour modes, the bimodality that
// distinguishes threshold choices in the reduction study.
func BurstyIO(p Params) *Benchmark {
	burst := 3 * p.Severity
	prog := mpisim.NewProgram("bursty_io", p.Ranks)
	prog.ForAll(func(rank int, r *mpisim.RankProgram) {
		w := newWorker("bursty_io", rank, r, p)
		w.prologue()
		for i := 0; i < p.Iterations; i++ {
			r.InSegment("main.1", func() {
				w.iterInit()
				w.compute("do_work", p.Work)
				if (i+rank)%p.Ranks == 0 {
					w.compute("io_flush", burst)
				}
				r.Barrier()
			})
		}
		w.epilogue()
	})
	return &Benchmark{Name: "bursty_io", Pattern: "N-N", Program: prog,
		Config: mpisim.DefaultConfig(), ExpectMetric: "wait_barrier", ExpectLocation: "MPI_Barrier"}
}

// ScenarioSet returns the two scenario-diversity benchmarks that extend
// the paper's original 18-workload grid.
func ScenarioSet(p Params) []*Benchmark {
	return []*Benchmark{HaloJitter(p), BurstyIO(p)}
}

// DynLoadBalance builds the dynamic-load-balancing benchmark: work starts
// balanced at ~Work per iteration; every iteration the upper half of the
// ranks does Step more and the lower half Step less, until the drift
// reaches Trigger and the "load balancer" resets everyone to Work. The
// planted problem is imbalance at MPI_Alltoall (Wait at N×N), with the
// lower ranks waiting.
func DynLoadBalance(p Params) *Benchmark {
	const step = 60
	trigger := p.Severity // drift amplitude before rebalancing
	if trigger <= 0 {
		trigger = 480
	}
	prog := mpisim.NewProgram("dyn_load_balance", p.Ranks)
	prog.ForAll(func(rank int, r *mpisim.RankProgram) {
		w := newWorker("dyn_load_balance", rank, r, p)
		w.prologue()
		drift := mpisim.Time(0)
		for i := 0; i < p.Iterations; i++ {
			drift += step
			if drift > trigger {
				drift = step // the load balancer ran at the end of last iteration
			}
			work := p.Work - drift
			if rank >= p.Ranks/2 {
				work = p.Work + drift
			}
			r.InSegment("main.1", func() {
				w.iterInit()
				w.compute("do_work", work)
				r.Alltoall(p.Bytes)
			})
		}
		w.epilogue()
	})
	return &Benchmark{Name: "dyn_load_balance", Pattern: "N-N", Program: prog,
		Config: mpisim.DefaultConfig(), ExpectMetric: "wait_nxn", ExpectLocation: "MPI_Alltoall"}
}
