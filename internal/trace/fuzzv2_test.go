package trace

import (
	"bytes"
	"encoding/binary"
	"testing"
)

// hostileV2Seeds derives adversarial variants of a valid TRC2 container
// for the fuzz corpus: block indexes that overlap, point out of range,
// or claim records in zero-length blocks — the shapes the footer
// validation exists to reject.
func hostileV2Seeds(valid []byte) [][]byte {
	le := binary.LittleEndian
	indexOff := le.Uint64(valid[len(valid)-trailerSize:])
	entry := func(b []byte, i int) []byte { return b[indexOff+4+uint64(i)*blockEntrySize:] }
	clone := func() []byte { return append([]byte{}, valid...) }

	overlap := clone()
	le.PutUint64(entry(overlap, 1), le.Uint64(entry(overlap, 1))-3)

	outOfRange := clone()
	le.PutUint64(entry(outOfRange, 0), uint64(len(valid))+100)

	zeroLen := clone()
	le.PutUint32(entry(zeroLen, 0)[8:], 0) // zero-length block, records kept

	badCRC := clone()
	le.PutUint32(entry(badCRC, 0)[20:], 0xdeadbeef)

	truncated := clone()[: int(indexOff)+6 : int(indexOff)+6]

	return [][]byte{overlap, outOfRange, zeroLen, badCRC, truncated}
}

// FuzzDecodeV2RoundTrip drives the TRC2 decoder (both the random-access
// block-parallel path and the sequential stream path) with arbitrary
// bytes and, whenever they decode, requires encode→decode→encode to be
// a fixed point, and the two paths to agree. Run as a smoke pass with
//
//	go test -fuzz=FuzzDecodeV2RoundTrip -fuzztime=10s ./internal/trace
func FuzzDecodeV2RoundTrip(f *testing.F) {
	var seed bytes.Buffer
	if err := EncodeV2(&seed, fuzzSeedTrace()); err != nil {
		f.Fatal(err)
	}
	f.Add(seed.Bytes())
	f.Add(seed.Bytes()[:len(seed.Bytes())/2]) // truncated file
	f.Add([]byte(traceMagicV2))               // bare magic
	f.Add([]byte{})
	var empty bytes.Buffer
	if err := EncodeV2(&empty, New("empty", 0)); err != nil {
		f.Fatal(err)
	}
	f.Add(empty.Bytes())
	for _, hostile := range hostileV2Seeds(seed.Bytes()) {
		f.Add(hostile)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<20 {
			return // bound fuzz memory, not a format property
		}
		t1, err := Decode(bytes.NewReader(data)) // random-access path
		t1Seq, errSeq := Decode(streamOnly{bytes.NewReader(data)})
		if (err == nil) != (errSeq == nil) {
			t.Fatalf("decode paths disagree: parallel err=%v, sequential err=%v", err, errSeq)
		}
		if err != nil {
			return // invalid input is fine; not crashing is the property
		}
		var enc1 bytes.Buffer
		if err := EncodeV2(&enc1, t1); err != nil {
			t.Fatalf("re-encoding decoded trace: %v", err)
		}
		var encSeq bytes.Buffer
		if err := EncodeV2(&encSeq, t1Seq); err != nil {
			t.Fatalf("re-encoding stream-decoded trace: %v", err)
		}
		if !bytes.Equal(enc1.Bytes(), encSeq.Bytes()) {
			t.Fatal("parallel and sequential decodes re-encode differently")
		}
		t2, err := Decode(bytes.NewReader(enc1.Bytes()))
		if err != nil {
			t.Fatalf("decoding re-encoded trace: %v", err)
		}
		var enc2 bytes.Buffer
		if err := EncodeV2(&enc2, t2); err != nil {
			t.Fatalf("third encode: %v", err)
		}
		if !bytes.Equal(enc1.Bytes(), enc2.Bytes()) {
			t.Fatal("encode→decode→encode is not a fixed point")
		}
		if t1.Name != t2.Name || t1.NumRanks() != t2.NumRanks() || t1.NumEvents() != t2.NumEvents() {
			t.Fatalf("round trip changed trace shape: %s/%d/%d vs %s/%d/%d",
				t1.Name, t1.NumRanks(), t1.NumEvents(), t2.Name, t2.NumRanks(), t2.NumEvents())
		}
	})
}

// FuzzDecodeAnyVersion feeds both codecs' corpora through the
// version-sniffing entry point: whatever the bytes claim to be, Decode
// must either fail cleanly or produce a trace both codecs re-encode
// stably.
func FuzzDecodeAnyVersion(f *testing.F) {
	var v1, v2 bytes.Buffer
	if err := Encode(&v1, fuzzSeedTrace()); err != nil {
		f.Fatal(err)
	}
	if err := EncodeV2(&v2, fuzzSeedTrace()); err != nil {
		f.Fatal(err)
	}
	f.Add(v1.Bytes())
	f.Add(v2.Bytes())
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<20 {
			return
		}
		tr, err := Decode(bytes.NewReader(data))
		if err != nil {
			return
		}
		var a, b bytes.Buffer
		if err := Encode(&a, tr); err != nil {
			t.Fatalf("v1 re-encode: %v", err)
		}
		if err := EncodeV2(&b, tr); err != nil {
			t.Fatalf("v2 re-encode: %v", err)
		}
		ta, err := Decode(bytes.NewReader(a.Bytes()))
		if err != nil {
			t.Fatalf("decoding v1 re-encode: %v", err)
		}
		tb, err := Decode(bytes.NewReader(b.Bytes()))
		if err != nil {
			t.Fatalf("decoding v2 re-encode: %v", err)
		}
		if ta.Name != tb.Name || ta.NumRanks() != tb.NumRanks() || ta.NumEvents() != tb.NumEvents() {
			t.Fatal("cross-version re-encode changed trace shape")
		}
	})
}
