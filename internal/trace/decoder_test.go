package trace

import (
	"bytes"
	"io"
	"testing"
)

func decoderTestTrace() *Trace {
	t := New("stream", 3)
	now := Time(0)
	for r := range t.Ranks {
		for i := 0; i < 2+r; i++ {
			t.Ranks[r].Events = append(t.Ranks[r].Events,
				Event{Name: "main.1", Kind: KindMarkBegin, Enter: now, Exit: now, Peer: NoPeer, Root: NoPeer},
				Event{Name: "work", Kind: KindCompute, Enter: now, Exit: now + 5, Peer: NoPeer, Root: NoPeer},
				Event{Name: "main.1", Kind: KindMarkEnd, Enter: now + 6, Exit: now + 6, Peer: NoPeer, Root: NoPeer},
			)
			now += 10
		}
	}
	return t
}

func TestDecoderRankByRank(t *testing.T) {
	full := decoderTestTrace()
	var buf bytes.Buffer
	if err := Encode(&buf, full); err != nil {
		t.Fatalf("Encode: %v", err)
	}
	d, err := NewDecoder(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("NewDecoder: %v", err)
	}
	if d.Name() != "stream" {
		t.Errorf("Name = %q, want stream", d.Name())
	}
	if d.NumRanks() != 3 {
		t.Errorf("NumRanks = %d, want 3", d.NumRanks())
	}
	for i := 0; i < 3; i++ {
		rt, err := d.NextRank()
		if err != nil {
			t.Fatalf("NextRank(%d): %v", i, err)
		}
		if rt.Rank != full.Ranks[i].Rank {
			t.Errorf("rank %d: id %d, want %d", i, rt.Rank, full.Ranks[i].Rank)
		}
		if len(rt.Events) != len(full.Ranks[i].Events) {
			t.Fatalf("rank %d: %d events, want %d", i, len(rt.Events), len(full.Ranks[i].Events))
		}
		for j := range rt.Events {
			if rt.Events[j] != full.Ranks[i].Events[j] {
				t.Errorf("rank %d event %d: %+v, want %+v", i, j, rt.Events[j], full.Ranks[i].Events[j])
			}
		}
	}
	if _, err := d.NextRank(); err != io.EOF {
		t.Errorf("NextRank after last rank: %v, want io.EOF", err)
	}
}

// TestDecoderTruncated truncates the encoding at every possible length —
// including exactly at rank boundaries, where a bare io.EOF from the
// next header read would be mistaken for a clean end of stream — and
// requires every prefix to fail decoding.
func TestDecoderTruncated(t *testing.T) {
	full := decoderTestTrace()
	var buf bytes.Buffer
	if err := Encode(&buf, full); err != nil {
		t.Fatalf("Encode: %v", err)
	}
	for n := 0; n < buf.Len(); n++ {
		if _, err := Decode(bytes.NewReader(buf.Bytes()[:n])); err == nil {
			t.Errorf("prefix of %d/%d bytes decoded without error", n, buf.Len())
		}
	}
	// The streaming decoder must agree: a prefix cut exactly after rank 0
	// errors at the second NextRank instead of reporting io.EOF.
	d, err := NewDecoder(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	rt0, err := d.NextRank()
	if err != nil {
		t.Fatal(err)
	}
	headerLen := buf.Len()
	for _, rt := range full.Ranks {
		headerLen -= 8 + len(rt.Events)*EventRecordSize
	}
	cut := headerLen + 8 + len(rt0.Events)*EventRecordSize
	d2, err := NewDecoder(bytes.NewReader(buf.Bytes()[:cut]))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d2.NextRank(); err != nil {
		t.Fatalf("rank 0 of boundary-cut stream: %v", err)
	}
	if _, err := d2.NextRank(); err == nil || err == io.EOF {
		t.Errorf("rank 1 of boundary-cut stream: err = %v, want unexpected-EOF decode error", err)
	}
}
