package trace

import (
	"strings"
	"testing"
)

func ev(name string, kind EventKind, enter, exit Time) Event {
	return Event{Name: name, Kind: kind, Enter: enter, Exit: exit, Peer: NoPeer, Root: NoPeer}
}

func validTrace() *Trace {
	t := New("test", 2)
	t.Ranks[0].Events = []Event{
		ev("init", KindMarkBegin, 0, 0),
		ev("setup", KindCompute, 0, 10),
		ev("init", KindMarkEnd, 10, 10),
		ev("main.1", KindMarkBegin, 10, 10),
		{Name: "MPI_Send", Kind: KindSend, Enter: 10, Exit: 12, Peer: 1, Tag: 3, Bytes: 64, Root: NoPeer},
		ev("main.1", KindMarkEnd, 12, 12),
	}
	t.Ranks[1].Events = []Event{
		ev("init", KindMarkBegin, 0, 0),
		ev("setup", KindCompute, 0, 8),
		ev("init", KindMarkEnd, 8, 8),
		ev("main.1", KindMarkBegin, 8, 8),
		{Name: "MPI_Recv", Kind: KindRecv, Enter: 8, Exit: 25, Peer: 0, Tag: 3, Bytes: 64, Root: NoPeer},
		ev("main.1", KindMarkEnd, 25, 25),
	}
	return t
}

func TestEventDuration(t *testing.T) {
	e := ev("f", KindCompute, 10, 35)
	if got := e.Duration(); got != 25 {
		t.Errorf("Duration = %d, want 25", got)
	}
}

func TestEventSameShape(t *testing.T) {
	base := Event{Name: "MPI_Send", Kind: KindSend, Enter: 1, Exit: 2, Peer: 3, Tag: 4, Bytes: 5, Root: NoPeer}
	same := base
	same.Enter, same.Exit = 100, 200 // timestamps don't affect shape
	if !base.SameShape(same) {
		t.Error("identical identity fields should be SameShape")
	}
	cases := []struct {
		mutate func(*Event)
		field  string
	}{
		{func(e *Event) { e.Name = "MPI_Ssend" }, "Name"},
		{func(e *Event) { e.Kind = KindSsend }, "Kind"},
		{func(e *Event) { e.Peer = 9 }, "Peer"},
		{func(e *Event) { e.Tag = 9 }, "Tag"},
		{func(e *Event) { e.Bytes = 9 }, "Bytes"},
		{func(e *Event) { e.Root = 9 }, "Root"},
	}
	for _, c := range cases {
		m := base
		c.mutate(&m)
		if base.SameShape(m) {
			t.Errorf("SameShape should be false when %s differs", c.field)
		}
	}
}

func TestKindPredicates(t *testing.T) {
	if !KindMarkBegin.IsMarker() || !KindMarkEnd.IsMarker() {
		t.Error("marker kinds must report IsMarker")
	}
	if KindCompute.IsMarker() || KindRecv.IsMarker() {
		t.Error("non-marker kinds must not report IsMarker")
	}
	for _, k := range []EventKind{KindBcast, KindGather, KindReduce, KindBarrier, KindAllgather, KindAlltoall, KindAllreduce} {
		if !k.IsCollective() {
			t.Errorf("%v must be collective", k)
		}
		if k.IsPointToPoint() {
			t.Errorf("%v must not be point-to-point", k)
		}
	}
	for _, k := range []EventKind{KindSend, KindSsend, KindRecv} {
		if !k.IsPointToPoint() {
			t.Errorf("%v must be point-to-point", k)
		}
		if k.IsCollective() {
			t.Errorf("%v must not be collective", k)
		}
	}
}

func TestKindString(t *testing.T) {
	if KindCompute.String() != "compute" || KindAlltoall.String() != "alltoall" {
		t.Errorf("unexpected kind names: %s %s", KindCompute, KindAlltoall)
	}
	if got := EventKind(200).String(); !strings.Contains(got, "200") {
		t.Errorf("unknown kind should include numeric value, got %q", got)
	}
}

func TestNewTrace(t *testing.T) {
	tr := New("x", 4)
	if tr.NumRanks() != 4 {
		t.Fatalf("NumRanks = %d, want 4", tr.NumRanks())
	}
	for i, rt := range tr.Ranks {
		if rt.Rank != i {
			t.Errorf("rank %d has Rank field %d", i, rt.Rank)
		}
	}
	if tr.NumEvents() != 0 || tr.EndTime() != 0 {
		t.Error("empty trace should have zero events and end time")
	}
}

func TestNumEventsAndEndTime(t *testing.T) {
	tr := validTrace()
	if got := tr.NumEvents(); got != 12 {
		t.Errorf("NumEvents = %d, want 12", got)
	}
	if got := tr.EndTime(); got != 25 {
		t.Errorf("EndTime = %d, want 25", got)
	}
}

func TestValidateOK(t *testing.T) {
	if err := validTrace().Validate(); err != nil {
		t.Fatalf("valid trace rejected: %v", err)
	}
}

func TestValidateErrors(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Trace)
		want   string
	}{
		{"exit before enter", func(tr *Trace) {
			tr.Ranks[0].Events[1].Exit = -5
		}, "exit"},
		{"unsorted", func(tr *Trace) {
			tr.Ranks[0].Events[4].Enter = 1
		}, "before previous"},
		{"nested segment", func(tr *Trace) {
			tr.Ranks[0].Events[2] = ev("inner", KindMarkBegin, 10, 10)
		}, "nested"},
		{"end without begin", func(tr *Trace) {
			tr.Ranks[0].Events[0] = ev("x", KindMarkEnd, 0, 0)
		}, "without begin"},
		{"mismatched context", func(tr *Trace) {
			tr.Ranks[0].Events[2].Name = "other"
		}, "does not match"},
		{"event outside segment", func(tr *Trace) {
			tr.Ranks[0].Events = tr.Ranks[0].Events[1:]
		}, "outside"},
		{"never closed", func(tr *Trace) {
			tr.Ranks[0].Events = tr.Ranks[0].Events[:5]
		}, "never closed"},
	}
	for _, c := range cases {
		tr := validTrace()
		c.mutate(tr)
		err := tr.Validate()
		if err == nil {
			t.Errorf("%s: expected error", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.want)
		}
	}
}

func TestFunctionNames(t *testing.T) {
	tr := validTrace()
	got := tr.FunctionNames()
	want := []string{"MPI_Recv", "MPI_Send", "setup"}
	if len(got) != len(want) {
		t.Fatalf("FunctionNames = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("FunctionNames = %v, want %v", got, want)
		}
	}
}

func TestTimestamps(t *testing.T) {
	tr := validTrace()
	got := tr.Timestamps(0, nil)
	want := []Time{0, 10, 10, 12} // setup enter/exit, send enter/exit; markers excluded
	if len(got) != len(want) {
		t.Fatalf("Timestamps = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Timestamps = %v, want %v", got, want)
		}
	}
	// Appending to an existing slice must extend it.
	pre := []Time{99}
	got = tr.Timestamps(0, pre)
	if len(got) != 5 || got[0] != 99 {
		t.Fatalf("Timestamps with prefix = %v", got)
	}
}
