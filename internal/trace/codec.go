package trace

import (
	"bufio"
	"context"
	"encoding/binary"
	"fmt"
	"io"
	"sync"
)

// Binary trace file format (TRC1). The byte-level specification lives in
// docs/FORMATS.md; this comment is the summary.
//
// All integers are little-endian. Layout:
//
//	magic   "TRC1" (4 bytes)
//	name    length-prefixed workload name
//	names   u32 count, then length-prefixed strings (the name table)
//	nranks  u32
//	per rank: u32 rank, u32 event count, then fixed-width records
//
// Each event record is 41 bytes: nameID u32, kind u8, enter i64, exit i64,
// peer i32, tag i32, bytes i64, root i32. File-size percentages in the
// evaluation are ratios of these encoded byte counts, so the format is the
// unit of measure as much as it is an interchange format.

const traceMagic = "TRC1"

// EventRecordSize is the fixed encoded size of one event record in bytes.
const EventRecordSize = 4 + 1 + 8 + 8 + 4 + 4 + 8 + 4

// CountingWriter discards writes while tallying the byte count; the size
// metrics encode into one instead of allocating buffers.
type CountingWriter struct{ N int64 }

// Write implements io.Writer.
func (c *CountingWriter) Write(p []byte) (int, error) { c.N += int64(len(p)); return len(p), nil }

// EncodedSize returns the number of bytes Encode would write for t.
func EncodedSize(t *Trace) int64 {
	var c CountingWriter
	// Encode into a counting writer; errors are impossible on CountingWriter.
	if err := Encode(&c, t); err != nil {
		panic("trace: EncodedSize: " + err.Error())
	}
	return c.N
}

// NameTable assigns dense IDs to event name strings during encoding.
type NameTable struct {
	ids   map[string]uint32
	names []string
}

// NewNameTable returns an empty name table.
func NewNameTable() *NameTable { return &NameTable{ids: map[string]uint32{}} }

// ID returns the table ID for name, adding it if absent.
func (nt *NameTable) ID(name string) uint32 {
	if id, ok := nt.ids[name]; ok {
		return id
	}
	id := uint32(len(nt.names))
	nt.ids[name] = id
	nt.names = append(nt.names, name)
	return id
}

// Names returns the table's strings in ID order. The caller must not
// modify the returned slice.
func (nt *NameTable) Names() []string { return nt.names }

// WriteString writes a u32-length-prefixed string.
func WriteString(w io.Writer, s string) error {
	if err := binary.Write(w, binary.LittleEndian, uint32(len(s))); err != nil {
		return err
	}
	_, err := io.WriteString(w, s)
	return err
}

// ReadString reads a u32-length-prefixed string written by WriteString,
// under the default string-length cap.
func ReadString(r io.Reader) (string, error) {
	return ReadStringLimit(r, defaultMaxStringLen)
}

// ReadStringLimit is ReadString with an explicit length cap: a declared
// length above max is rejected before any allocation.
func ReadStringLimit(r io.Reader, max uint32) (string, error) {
	var n uint32
	if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
		return "", err
	}
	if n > max {
		return "", fmt.Errorf("trace: string length %d exceeds the %d-byte cap", n, max)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return "", err
	}
	return string(buf), nil
}

// Encode writes t to w in the binary trace format.
func Encode(w io.Writer, t *Trace) error {
	bw := bufio.NewWriter(w)
	if _, err := io.WriteString(bw, traceMagic); err != nil {
		return err
	}
	if err := WriteString(bw, t.Name); err != nil {
		return err
	}
	nt := NewNameTable()
	for i := range t.Ranks {
		for _, e := range t.Ranks[i].Events {
			nt.ID(e.Name)
		}
	}
	if err := binary.Write(bw, binary.LittleEndian, uint32(len(nt.names))); err != nil {
		return err
	}
	for _, name := range nt.names {
		if err := WriteString(bw, name); err != nil {
			return err
		}
	}
	if err := binary.Write(bw, binary.LittleEndian, uint32(len(t.Ranks))); err != nil {
		return err
	}
	var rec [EventRecordSize]byte
	for i := range t.Ranks {
		rt := &t.Ranks[i]
		if err := binary.Write(bw, binary.LittleEndian, uint32(rt.Rank)); err != nil {
			return err
		}
		if err := binary.Write(bw, binary.LittleEndian, uint32(len(rt.Events))); err != nil {
			return err
		}
		for _, e := range rt.Events {
			PutEventRecord(rec[:], nt.ID(e.Name), e)
			if _, err := bw.Write(rec[:]); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// PutEventRecord encodes e into rec, which must be at least
// EventRecordSize bytes; nameID is the event name's table ID.
func PutEventRecord(rec []byte, nameID uint32, e Event) {
	le := binary.LittleEndian
	le.PutUint32(rec[0:], nameID)
	rec[4] = byte(e.Kind)
	le.PutUint64(rec[5:], uint64(e.Enter))
	le.PutUint64(rec[13:], uint64(e.Exit))
	le.PutUint32(rec[21:], uint32(e.Peer))
	le.PutUint32(rec[25:], uint32(e.Tag))
	le.PutUint64(rec[29:], uint64(e.Bytes))
	le.PutUint32(rec[37:], uint32(e.Root))
}

// GetEventRecord decodes one fixed-width event record, resolving the name
// ID against names.
func GetEventRecord(rec []byte, names []string) (Event, error) {
	le := binary.LittleEndian
	nameID := le.Uint32(rec[0:])
	if int(nameID) >= len(names) {
		return Event{}, fmt.Errorf("trace: name id %d out of range (%d names)", nameID, len(names))
	}
	kind := EventKind(rec[4])
	if kind >= numKinds {
		return Event{}, fmt.Errorf("trace: unknown event kind %d", rec[4])
	}
	return Event{
		Name:  names[nameID],
		Kind:  kind,
		Enter: int64(le.Uint64(rec[5:])),
		Exit:  int64(le.Uint64(rec[13:])),
		Peer:  int32(le.Uint32(rec[21:])),
		Tag:   int32(le.Uint32(rec[25:])),
		Bytes: int64(le.Uint64(rec[29:])),
		Root:  int32(le.Uint32(rec[37:])),
	}, nil
}

// noEOF converts io.EOF into io.ErrUnexpectedEOF for reads that must
// succeed because earlier header fields promised more data.
func noEOF(err error) error {
	if err == io.EOF {
		return io.ErrUnexpectedEOF
	}
	return err
}

// Decoder reads a binary trace file one rank at a time, so a consumer
// that processes ranks independently (the streaming reduction pipeline)
// never holds more than one rank's events in memory. NewDecoder sniffs
// the magic and reads the header of either container version; each
// NextRank call yields the next rank's stream.
//
// For version-2 (TRC2) files on a random-access input (io.ReaderAt +
// io.Seeker, e.g. *os.File or bytes.Reader), blocks are decoded in
// parallel on a worker pool and delivered in file order; on a plain
// stream, blocks are decoded sequentially with the same validation.
// Version-1 files always decode sequentially, unchanged.
type Decoder struct {
	name    string
	names   []string
	nRanks  int
	version int
	next    func() (*RankTrace, error)
	close   func()
	free    *eventFreeList
}

// eventFreeList recycles rank event buffers between a decoder and its
// consumer: the consumer hands finished ranks back through
// Decoder.Recycle, and the decoder's rank readers draw storage from the
// list before allocating. The bound caps how many idle buffers the list
// retains (O(workers) in-flight ranks plus a little slack), so the
// recycling loop also acts as back-pressure on event storage: a session
// that keeps up reuses the same few buffers forever.
type eventFreeList struct {
	mu   sync.Mutex
	max  int
	bufs [][]Event
}

func (f *eventFreeList) get() []Event {
	f.mu.Lock()
	defer f.mu.Unlock()
	if n := len(f.bufs); n > 0 {
		b := f.bufs[n-1]
		f.bufs[n-1] = nil
		f.bufs = f.bufs[:n-1]
		return b
	}
	return nil
}

func (f *eventFreeList) put(buf []Event) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if len(f.bufs) < f.max {
		f.bufs = append(f.bufs, buf)
	}
}

// newEventFreeList sizes a free list for a pool of workers consuming
// ranks concurrently.
func newEventFreeList(workers int) *eventFreeList {
	return &eventFreeList{max: workers + 2}
}

// Recycle hands rt's event storage back to the decoder for reuse by a
// later NextRank, clearing rt.Events. Callers that are done with a
// rank's events — the reduction pipeline recycles each rank as soon as
// its segments are split off — should call it instead of dropping the
// slice, keeping per-session event storage bounded and reused. Safe to
// call with nil or an already-recycled rank; safe from concurrent
// consumers. The events themselves only reference name-table strings,
// never decoder-owned byte buffers, so reuse cannot corrupt ranks still
// in flight.
func (d *Decoder) Recycle(rt *RankTrace) {
	if rt == nil || cap(rt.Events) == 0 {
		return
	}
	buf := rt.Events[:0]
	rt.Events = nil
	d.free.put(buf)
}

// DecoderOptions configure decoding. The zero value is the default.
type DecoderOptions struct {
	// Workers bounds the version-2 block-decode pool; non-positive means
	// GOMAXPROCS. Version-1 decoding ignores it.
	Workers int
	// Ctx cancels the decode: pool workers stop claiming blocks and a
	// blocked NextRank returns ctx.Err(). nil means context.Background().
	Ctx context.Context
	// Limits override the hostile-input allocation caps; zero fields keep
	// the defaults (see DecodeLimits).
	Limits DecodeLimits
}

// DecodeLimits bound what a decoder will accept from a container header
// before the body proves the bytes exist. The zero value keeps the
// historical caps, which are sized for trusted local files; servers
// decoding uploads lower them to enforce per-tenant budgets, rejecting
// an oversized header cleanly before any large allocation.
type DecodeLimits struct {
	// MaxStringLen caps each length-prefixed string (workload name, name
	// table entries). 0 means 1<<20.
	MaxStringLen uint32
	// MaxNames caps the name-table entry count. 0 means 1<<24.
	MaxNames uint32
	// MaxRanks caps the rank count (and so the v2 block count). 0 means
	// 1<<20.
	MaxRanks uint32
}

// Historical caps, applied when the corresponding DecodeLimits field is
// zero.
const (
	defaultMaxStringLen = 1 << 20
	defaultMaxNames     = 1 << 24
	defaultMaxRanks     = 1 << 20
)

// withDefaults fills zero fields with the historical caps.
func (l DecodeLimits) withDefaults() DecodeLimits {
	if l.MaxStringLen == 0 {
		l.MaxStringLen = defaultMaxStringLen
	}
	if l.MaxNames == 0 {
		l.MaxNames = defaultMaxNames
	}
	if l.MaxRanks == 0 {
		l.MaxRanks = defaultMaxRanks
	}
	return l
}

// Resolve returns the options with defaults applied: limits filled in
// and a non-nil context. Decoder entry points in other packages (the
// reduced-trace codec) call it once up front.
func (o DecoderOptions) Resolve() DecoderOptions {
	o.Workers = DefaultDecodeWorkers(o.Workers)
	if o.Ctx == nil {
		o.Ctx = context.Background()
	}
	o.Limits = o.Limits.withDefaults()
	return o
}

// NewDecoder reads the trace header (magic, workload name, name table,
// rank count) from r and returns a Decoder positioned at the first rank.
// Both container versions are accepted; the magic selects the codec.
func NewDecoder(r io.Reader) (*Decoder, error) {
	return NewDecoderWith(r, DecoderOptions{})
}

// NewDecoderWith is NewDecoder with explicit options.
func NewDecoderWith(r io.Reader, opts DecoderOptions) (*Decoder, error) {
	opts = opts.Resolve()
	sr, ok, err := SectionFor(r)
	if err != nil {
		return nil, err
	}
	if ok {
		if magic, err := PeekMagic(sr); err == nil && magic == traceMagicV2 {
			return newV2ParallelDecoder(sr, opts)
		}
		// Not a v2 container (or too short to tell): r's position was
		// restored by SectionFor, so the stream path below sees the file
		// from the start.
	}
	cr := &countingReader{r: r}
	br := bufio.NewReader(cr)
	magic := make([]byte, len(traceMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("trace: reading magic: %w", err)
	}
	switch string(magic) {
	case traceMagic:
		return newV1Decoder(br, opts)
	case traceMagicV2:
		return newV2SequentialDecoder(cr, br, opts)
	default:
		return nil, fmt.Errorf("trace: bad magic %q", magic)
	}
}

// newV1Decoder reads the TRC1 header after the magic.
func newV1Decoder(br *bufio.Reader, opts DecoderOptions) (*Decoder, error) {
	name, names, nRanks, err := readTraceHeader(br, opts.Limits)
	if err != nil {
		return nil, err
	}
	free := newEventFreeList(opts.Workers)
	v1 := &v1decoder{br: br, names: names, nRanks: nRanks, ctx: opts.Ctx, free: free}
	return &Decoder{
		name:    name,
		names:   names,
		nRanks:  nRanks,
		version: 1,
		next:    v1.nextRank,
		close:   func() {},
		free:    free,
	}, nil
}

// readTraceHeader reads the header fields shared by both trace container
// versions after the magic — workload name, name table, rank count —
// under the given allocation caps.
func readTraceHeader(br *bufio.Reader, lim DecodeLimits) (name string, names []string, nRanks int, err error) {
	name, err = ReadStringLimit(br, lim.MaxStringLen)
	if err != nil {
		return "", nil, 0, fmt.Errorf("trace: reading name: %w", err)
	}
	var nNames uint32
	if err = binary.Read(br, binary.LittleEndian, &nNames); err != nil {
		return "", nil, 0, err
	}
	if nNames > lim.MaxNames {
		return "", nil, 0, fmt.Errorf("trace: name table size %d exceeds the %d-entry cap", nNames, lim.MaxNames)
	}
	names = make([]string, 0, min(nNames, 1<<12))
	for i := uint32(0); i < nNames; i++ {
		s, err := ReadStringLimit(br, lim.MaxStringLen)
		if err != nil {
			return "", nil, 0, fmt.Errorf("trace: reading name table: %w", err)
		}
		names = append(names, s)
	}
	var n uint32
	if err = binary.Read(br, binary.LittleEndian, &n); err != nil {
		return "", nil, 0, err
	}
	if n > lim.MaxRanks {
		return "", nil, 0, fmt.Errorf("trace: rank count %d exceeds the %d cap", n, lim.MaxRanks)
	}
	return name, names, int(n), nil
}

// Name returns the workload name from the trace header.
func (d *Decoder) Name() string { return d.name }

// NumRanks returns the number of ranks the file declares.
func (d *Decoder) NumRanks() int { return d.nRanks }

// Version returns the container version being decoded (1 or 2).
func (d *Decoder) Version() int { return d.version }

// NextRank decodes the next rank's event stream. It returns io.EOF after
// the last rank.
func (d *Decoder) NextRank() (*RankTrace, error) { return d.next() }

// Close releases decode workers. It is only needed when a version-2
// parallel decode is abandoned before NextRank returned io.EOF or an
// error; it is safe (and a no-op) in every other case.
func (d *Decoder) Close() { d.close() }

// v1decoder is the sequential TRC1 rank reader.
type v1decoder struct {
	br     *bufio.Reader
	names  []string
	nRanks int
	next   int
	ctx    context.Context
	free   *eventFreeList
	rec    []byte
}

func (d *v1decoder) nextRank() (*RankTrace, error) {
	if err := d.ctx.Err(); err != nil {
		return nil, err
	}
	if d.next >= d.nRanks {
		return nil, io.EOF
	}
	d.next++
	// The header declared d.nRanks ranks, so running out of bytes here is
	// a truncated file, not a clean end of stream: never surface bare
	// io.EOF, which consumers take to mean "all declared ranks read".
	var rank, nEvents uint32
	if err := binary.Read(d.br, binary.LittleEndian, &rank); err != nil {
		return nil, fmt.Errorf("trace: rank %d of %d header: %w", d.next-1, d.nRanks, noEOF(err))
	}
	if err := binary.Read(d.br, binary.LittleEndian, &nEvents); err != nil {
		return nil, fmt.Errorf("trace: rank %d of %d header: %w", d.next-1, d.nRanks, noEOF(err))
	}
	rt := &RankTrace{Rank: int(rank)}
	if nEvents > 0 {
		// Prefer a recycled buffer from the free list (a consumer that
		// calls Decoder.Recycle keeps a few buffers circulating); otherwise
		// cap the upfront allocation: a hostile or corrupt header can
		// declare billions of events, but each one still costs
		// EventRecordSize bytes of input, so growth-by-append bounds
		// memory by the actual stream size.
		if buf := d.free.get(); buf != nil {
			rt.Events = buf
		} else {
			rt.Events = make([]Event, 0, min(nEvents, 1<<16))
		}
	}
	if d.rec == nil {
		d.rec = make([]byte, EventRecordSize)
	}
	rec := d.rec
	for j := uint32(0); j < nEvents; j++ {
		if _, err := io.ReadFull(d.br, rec); err != nil {
			return nil, fmt.Errorf("trace: rank %d event %d: %w", rank, j, err)
		}
		e, err := GetEventRecord(rec, d.names)
		if err != nil {
			return nil, err
		}
		rt.Events = append(rt.Events, e)
	}
	return rt, nil
}

// Decode reads a trace in the binary format from r (either container
// version; the magic selects the codec). It is the batch form of
// Decoder: every rank is materialized into one Trace.
func Decode(r io.Reader) (*Trace, error) {
	d, err := NewDecoder(r)
	if err != nil {
		return nil, err
	}
	defer d.Close()
	t := &Trace{Name: d.Name(), Ranks: make([]RankTrace, 0, d.NumRanks())}
	for {
		rt, err := d.NextRank()
		if err == io.EOF {
			return t, nil
		}
		if err != nil {
			return nil, err
		}
		t.Ranks = append(t.Ranks, *rt)
	}
}
