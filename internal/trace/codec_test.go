package trace

import (
	"bytes"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestEncodeDecodeRoundtrip(t *testing.T) {
	orig := validTrace()
	var buf bytes.Buffer
	if err := Encode(&buf, orig); err != nil {
		t.Fatalf("Encode: %v", err)
	}
	got, err := Decode(&buf)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if !reflect.DeepEqual(orig, got) {
		t.Errorf("roundtrip mismatch:\norig %+v\ngot  %+v", orig, got)
	}
}

func TestEncodedSizeMatchesEncode(t *testing.T) {
	orig := validTrace()
	var buf bytes.Buffer
	if err := Encode(&buf, orig); err != nil {
		t.Fatalf("Encode: %v", err)
	}
	if got := EncodedSize(orig); got != int64(buf.Len()) {
		t.Errorf("EncodedSize = %d, Encode wrote %d", got, buf.Len())
	}
}

func TestEncodedSizeGrowsWithEvents(t *testing.T) {
	small := New("t", 1)
	small.Ranks[0].Events = []Event{
		ev("s", KindMarkBegin, 0, 0), ev("w", KindCompute, 0, 1), ev("s", KindMarkEnd, 1, 1),
	}
	big := New("t", 1)
	for i := 0; i < 10; i++ {
		big.Ranks[0].Events = append(big.Ranks[0].Events,
			ev("s", KindMarkBegin, Time(3*i), Time(3*i)),
			ev("w", KindCompute, Time(3*i), Time(3*i+1)),
			ev("s", KindMarkEnd, Time(3*i+1), Time(3*i+1)))
	}
	ss, bs := EncodedSize(small), EncodedSize(big)
	if bs <= ss {
		t.Errorf("bigger trace should encode bigger: %d vs %d", bs, ss)
	}
	// The marginal cost of an event is exactly EventRecordSize once names
	// are in the table.
	if want := ss + 27*EventRecordSize; bs != want {
		t.Errorf("size %d, want %d (= %d + 27 records)", bs, want, ss)
	}
}

func TestDecodeErrors(t *testing.T) {
	orig := validTrace()
	var buf bytes.Buffer
	if err := Encode(&buf, orig); err != nil {
		t.Fatalf("Encode: %v", err)
	}
	raw := buf.Bytes()

	t.Run("bad magic", func(t *testing.T) {
		bad := append([]byte("XXXX"), raw[4:]...)
		if _, err := Decode(bytes.NewReader(bad)); err == nil || !strings.Contains(err.Error(), "magic") {
			t.Errorf("want magic error, got %v", err)
		}
	})
	t.Run("truncated", func(t *testing.T) {
		for _, cut := range []int{2, 10, len(raw) / 2, len(raw) - 3} {
			if _, err := Decode(bytes.NewReader(raw[:cut])); err == nil {
				t.Errorf("truncation at %d not detected", cut)
			}
		}
	})
	t.Run("empty", func(t *testing.T) {
		if _, err := Decode(bytes.NewReader(nil)); err == nil {
			t.Error("empty input should fail")
		}
	})
}

func TestGetEventRecordErrors(t *testing.T) {
	rec := make([]byte, EventRecordSize)
	PutEventRecord(rec, 7, ev("x", KindCompute, 1, 2))
	if _, err := GetEventRecord(rec, []string{"only"}); err == nil {
		t.Error("out-of-range name id should fail")
	}
	PutEventRecord(rec, 0, Event{Name: "x", Kind: EventKind(99)})
	if _, err := GetEventRecord(rec, []string{"x"}); err == nil {
		t.Error("unknown kind should fail")
	}
}

func TestNameTable(t *testing.T) {
	nt := NewNameTable()
	a := nt.ID("alpha")
	b := nt.ID("beta")
	if a == b {
		t.Error("distinct names must get distinct ids")
	}
	if nt.ID("alpha") != a {
		t.Error("repeated name must get same id")
	}
	names := nt.Names()
	if len(names) != 2 || names[a] != "alpha" || names[b] != "beta" {
		t.Errorf("Names() = %v", names)
	}
}

func TestWriteReadString(t *testing.T) {
	var buf bytes.Buffer
	for _, s := range []string{"", "x", "hello world", strings.Repeat("z", 1000)} {
		buf.Reset()
		if err := WriteString(&buf, s); err != nil {
			t.Fatalf("WriteString(%q): %v", s, err)
		}
		got, err := ReadString(&buf)
		if err != nil {
			t.Fatalf("ReadString(%q): %v", s, err)
		}
		if got != s {
			t.Errorf("roundtrip %q -> %q", s, got)
		}
	}
}

// randomTrace builds a structurally arbitrary (not necessarily
// marker-valid) trace for codec property testing; the codec must
// round-trip any event content.
func randomTrace(rng *rand.Rand) *Trace {
	names := []string{"a", "bb", "MPI_Recv", "do_work", "λ"}
	nr := 1 + rng.Intn(4)
	tr := New("rand", nr)
	for r := 0; r < nr; r++ {
		n := rng.Intn(30)
		for i := 0; i < n; i++ {
			tr.Ranks[r].Events = append(tr.Ranks[r].Events, Event{
				Name:  names[rng.Intn(len(names))],
				Kind:  EventKind(rng.Intn(int(numKinds))),
				Enter: rng.Int63n(1 << 40),
				Exit:  rng.Int63n(1 << 40),
				Peer:  int32(rng.Intn(8)) - 1,
				Tag:   int32(rng.Intn(100)),
				Bytes: rng.Int63n(1 << 30),
				Root:  int32(rng.Intn(8)) - 1,
			})
		}
	}
	return tr
}

func TestQuickCodecRoundtrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		orig := randomTrace(rng)
		var buf bytes.Buffer
		if err := Encode(&buf, orig); err != nil {
			t.Logf("encode: %v", err)
			return false
		}
		if int64(buf.Len()) != EncodedSize(orig) {
			t.Logf("size mismatch")
			return false
		}
		got, err := Decode(&buf)
		if err != nil {
			t.Logf("decode: %v", err)
			return false
		}
		return reflect.DeepEqual(orig, got)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
