package trace

import (
	"context"
	"encoding/binary"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
)

// Worker-parallel v2 encode. The write side mirrors the decode side's
// block parallelism: rank payloads are delta+varint encoded concurrently
// into pooled buffers and committed to the BlockWriter in file order —
// encode out of order, write in order — so the container bytes are
// identical to the sequential encoder's.

// EncoderOptions configures the v2 encoders.
type EncoderOptions struct {
	// Workers bounds the number of concurrent block encoders.
	// Non-positive means GOMAXPROCS; 1 encodes inline with no
	// goroutines. The encoded bytes are identical at every setting.
	Workers int
	// Ctx cancels the encode: pool workers stop claiming blocks and the
	// commit loop returns ctx.Err(), latched on the BlockWriter. nil
	// means context.Background().
	Ctx context.Context
}

// DefaultEncodeWorkers resolves a worker-count option: non-positive
// means GOMAXPROCS.
func DefaultEncodeWorkers(n int) int { return DefaultDecodeWorkers(n) }

// WriteBlocksParallel encodes and commits n blocks: payload i is
// produced by encode(i, dst) — which appends to dst and returns the
// extended slice — on a bounded worker pool, and committed to the
// container in index order. meta reports block i's rank id and record
// count. Payload buffers are recycled through a sync.Pool, and in-flight
// encoded-but-uncommitted blocks are bounded by the worker count, so
// memory stays at O(workers) blocks however many blocks are written.
//
// A commit error (failing or short destination, oversized payload)
// stops all workers, is latched on the BlockWriter, and is returned;
// every later BlockWriter call surfaces the same error.
//
// encode must be safe for concurrent calls on distinct indexes; with
// workers <= 1 (or n <= 1) everything runs inline on the caller's
// goroutine, which is the sequential reference path.
func (b *BlockWriter) WriteBlocksParallel(n, workers int, meta func(i int) (rank, records uint32), encode func(i int, dst []byte) []byte) error {
	return b.WriteBlocksParallelCtx(context.Background(), n, workers, meta, encode)
}

// WriteBlocksParallelCtx is WriteBlocksParallel under a context: when ctx
// is cancelled, workers stop claiming blocks, the commit loop stops, and
// ctx.Err() is latched on the BlockWriter and returned.
func (b *BlockWriter) WriteBlocksParallelCtx(ctx context.Context, n, workers int, meta func(i int) (rank, records uint32), encode func(i int, dst []byte) []byte) error {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		var payload []byte
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				b.fail = err
				return err
			}
			rank, records := meta(i)
			payload = encode(i, payload[:0])
			if err := b.WriteBlock(rank, records, payload); err != nil {
				return err
			}
		}
		return nil
	}
	var (
		claim   atomic.Int64
		pool    sync.Pool
		wg      sync.WaitGroup
		sem     = make(chan struct{}, workers)
		abort   = make(chan struct{})
		results = make([]chan *[]byte, n)
	)
	for i := range results {
		results[i] = make(chan *[]byte, 1)
	}
	claim.Store(-1)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				// Acquire the in-flight slot BEFORE claiming an index,
				// exactly like the decode pool: the committer consumes in
				// strict index order and frees a slot only after
				// committing, so the worker holding the lowest pending
				// index must own a slot or the pipeline wedges.
				select {
				case sem <- struct{}{}:
				case <-abort:
					return
				case <-ctx.Done():
					return
				}
				i := int(claim.Add(1))
				if i >= n {
					<-sem
					return
				}
				bp, _ := pool.Get().(*[]byte)
				if bp == nil {
					bp = new([]byte)
				}
				*bp = encode(i, (*bp)[:0])
				// Per-index channels have capacity 1 and receive exactly
				// one send, so delivery never blocks and an aborted commit
				// loop cannot strand a worker here.
				results[i] <- bp
			}
		}()
	}
	var failErr error
	for i := 0; i < n; i++ {
		// Workers that exited on cancellation never fill their result
		// channel, so the commit loop must watch ctx too or it wedges.
		var bp *[]byte
		select {
		case bp = <-results[i]:
		case <-ctx.Done():
			failErr = ctx.Err()
			b.fail = failErr
		}
		if failErr != nil {
			break
		}
		rank, records := meta(i)
		err := b.WriteBlock(rank, records, *bp)
		pool.Put(bp)
		<-sem
		if err != nil {
			failErr = err
			break
		}
	}
	close(abort)
	wg.Wait()
	return failErr
}

// traceNameTable prescans t and assigns name-table ids in first-use
// order across ranks — the id assignment every v2 trace encoder shares.
func traceNameTable(t *Trace) *NameTable {
	nt := NewNameTable()
	for i := range t.Ranks {
		for _, e := range t.Ranks[i].Events {
			nt.ID(e.Name)
		}
	}
	return nt
}

// writeV2TraceHeader writes the TRC2 container header — magic, workload
// name, prescanned name table, rank count — and returns the table.
func writeV2TraceHeader(bw *BlockWriter, t *Trace) (*NameTable, error) {
	if _, err := io.WriteString(bw, traceMagicV2); err != nil {
		return nil, err
	}
	if err := WriteString(bw, t.Name); err != nil {
		return nil, err
	}
	nt := traceNameTable(t)
	le := binary.LittleEndian
	if err := binary.Write(bw, le, uint32(len(nt.names))); err != nil {
		return nil, err
	}
	for _, name := range nt.names {
		if err := WriteString(bw, name); err != nil {
			return nil, err
		}
	}
	if err := binary.Write(bw, le, uint32(len(t.Ranks))); err != nil {
		return nil, err
	}
	return nt, nil
}

// EncodeV2 writes t to w in the columnar v2 trace format (TRC2): one
// delta+varint block per rank, checksummed and indexed by the footer.
// It is the sequential reference; EncodeV2With produces identical bytes
// on a worker pool. The v1 format remains the default interchange form;
// see docs/FORMATS.md for when to prefer v2.
func EncodeV2(w io.Writer, t *Trace) error {
	return encodeV2(w, t, 1)
}

// EncodeV2With is EncodeV2 with explicit options: rank blocks are
// encoded concurrently by opts.Workers goroutines and committed in file
// order, byte-identical to the sequential encoder.
func EncodeV2With(w io.Writer, t *Trace, opts EncoderOptions) error {
	return encodeV2(w, t, DefaultEncodeWorkers(opts.Workers))
}

func encodeV2(w io.Writer, t *Trace, workers int) error {
	bw := NewBlockWriter(w)
	nt, err := writeV2TraceHeader(bw, t)
	if err != nil {
		return err
	}
	// The prescan registered every name, so concurrent encoders only
	// read the table — safe without locks.
	err = bw.WriteBlocksParallel(len(t.Ranks), workers,
		func(i int) (uint32, uint32) {
			return uint32(t.Ranks[i].Rank), uint32(len(t.Ranks[i].Events))
		},
		func(i int, dst []byte) []byte {
			return AppendEventsV2(dst, nt, t.Ranks[i].Events)
		})
	if err != nil {
		return err
	}
	return bw.Finish(traceMagicV2)
}

// UvarintSize returns len(binary.AppendUvarint(nil, v)) without
// encoding.
func UvarintSize(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}

// VarintSize returns len(binary.AppendVarint(nil, v)) without encoding
// (zigzag mapping, then uvarint length).
func VarintSize(v int64) int {
	return UvarintSize(uint64(v)<<1 ^ uint64(v>>63))
}

// EventsV2Size returns len(AppendEventsV2(nil, nt, events)) as a pure
// size walk — no bytes are produced. nt must already hold every event
// name, as it does after the encoders' prescan.
func EventsV2Size(nt NameIDs, events []Event) int64 {
	var n int64
	var prev Time
	for _, e := range events {
		n += int64(UvarintSize(uint64(nt.ID(e.Name))))
		n += int64(UvarintSize(uint64(e.Kind)))
		n += int64(VarintSize(e.Enter - prev))
		prev = e.Enter
		n += int64(VarintSize(e.Exit - e.Enter))
		n += int64(VarintSize(int64(e.Peer)))
		n += int64(VarintSize(int64(e.Tag)))
		n += int64(VarintSize(e.Bytes))
		n += int64(VarintSize(int64(e.Root)))
	}
	return n
}

// V2StringSize returns the encoded size of one length-prefixed string.
func V2StringSize(s string) int64 { return 4 + int64(len(s)) }

// V2ContainerTail returns the byte size of the v2 footer block index
// plus trailer for n blocks.
func V2ContainerTail(n int) int64 {
	return 4 + int64(n)*blockEntrySize + trailerSize
}

// V2BlockSize returns the on-disk size of one block holding a payload of
// the given length: inline header + payload.
func V2BlockSize(payload int64) int64 { return blockHeaderSize + payload }

// MaxBlockPayload is the format's per-block payload byte limit, exported
// for the size walks that must fail exactly where the encoders would.
const MaxBlockPayload = maxBlockPayload

// EncodedSizeV2 returns the number of bytes EncodeV2 would write for t,
// computed in a single size-only pass (no second encode).
func EncodedSizeV2(t *Trace) int64 {
	nt := traceNameTable(t)
	size := int64(len(traceMagicV2)) + V2StringSize(t.Name) + 4
	for _, name := range nt.names {
		size += V2StringSize(name)
	}
	size += 4 // rank count
	for i := range t.Ranks {
		payload := EventsV2Size(nt, t.Ranks[i].Events)
		if payload > MaxBlockPayload {
			panic(fmt.Sprintf("trace: EncodedSizeV2: rank %d block payload %d bytes exceeds the %d-byte format limit",
				t.Ranks[i].Rank, payload, MaxBlockPayload))
		}
		size += V2BlockSize(payload)
	}
	return size + V2ContainerTail(len(t.Ranks))
}
