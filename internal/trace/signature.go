package trace

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"hash"
	"io"
)

// Signature is a content hash of a trace: SHA-256 over the decoded
// events, not the container bytes, so the v1 and v2 encodings of the
// same trace share one signature. It keys the serving layer's
// representative cache — two uploads with equal signatures are the same
// trace regardless of which container they arrived in.
type Signature [sha256.Size]byte

// String returns the signature in lowercase hex.
func (s Signature) String() string { return hex.EncodeToString(s[:]) }

// IsZero reports whether s is the zero signature (no trace hashed).
func (s Signature) IsZero() bool { return s == Signature{} }

// ParseSignature parses the hex form produced by Signature.String.
func ParseSignature(text string) (Signature, error) {
	var s Signature
	b, err := hex.DecodeString(text)
	if err != nil {
		return s, fmt.Errorf("trace: parsing signature: %w", err)
	}
	if len(b) != len(s) {
		return s, fmt.Errorf("trace: signature is %d hex bytes, want %d", len(b), len(s))
	}
	copy(s[:], b)
	return s, nil
}

// SignatureOf decodes the trace readable from r (either container
// version) and returns its content signature. The hash covers the
// workload name and every rank's events in rank order — name strings
// rather than name-table ids, so table layout differences between
// encodings cannot change the signature.
func SignatureOf(r io.Reader) (Signature, error) {
	return SignatureOfWith(r, DecoderOptions{})
}

// SignatureOfWith is SignatureOf with explicit decoder options (worker
// count, allocation caps, cancellation).
func SignatureOfWith(r io.Reader, opts DecoderOptions) (Signature, error) {
	var sig Signature
	d, err := NewDecoderWith(r, opts)
	if err != nil {
		return sig, err
	}
	defer d.Close()
	h := sha256.New()
	hashString(h, d.Name())
	hashU64(h, uint64(d.NumRanks()))
	for {
		rt, err := d.NextRank()
		if err == io.EOF {
			break
		}
		if err != nil {
			return sig, err
		}
		hashU64(h, uint64(rt.Rank))
		hashU64(h, uint64(len(rt.Events)))
		for _, e := range rt.Events {
			hashString(h, e.Name)
			hashU64(h, uint64(e.Kind))
			hashU64(h, uint64(e.Enter))
			hashU64(h, uint64(e.Exit))
			hashU64(h, uint64(uint32(e.Peer)))
			hashU64(h, uint64(uint32(e.Tag)))
			hashU64(h, uint64(e.Bytes))
			hashU64(h, uint64(uint32(e.Root)))
		}
	}
	h.Sum(sig[:0])
	return sig, nil
}

// hashString writes a length-prefixed string into h, so adjacent
// strings cannot collide by shifting bytes between them.
func hashString(h hash.Hash, s string) {
	hashU64(h, uint64(len(s)))
	io.WriteString(h, s)
}

func hashU64(h hash.Hash, v uint64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	h.Write(b[:])
}
