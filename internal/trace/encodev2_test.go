package trace

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"runtime"
	"testing"
	"time"
)

// encodeStressTrace is big enough that the BlockWriter's buffer flushes
// many times mid-encode, so injected write failures surface at different
// stages (header, blocks, footer) depending on the fault point.
func encodeStressTrace() *Trace {
	tr := New("encode_stress", 64)
	for i := range tr.Ranks {
		base := Time(100 * (i + 1))
		for j := 0; j < 30; j++ {
			at := base + Time(j*17)
			tr.Ranks[i].Events = append(tr.Ranks[i].Events,
				Event{Name: "work", Kind: KindCompute, Enter: at, Exit: at + 9, Peer: NoPeer, Root: NoPeer},
				Event{Name: "MPI_Send", Kind: KindSend, Enter: at + 10, Exit: at + 12, Peer: int32(j), Tag: 7, Bytes: int64(j) << 20, Root: NoPeer},
			)
		}
	}
	return tr
}

// TestEncodeV2ParallelParity pins the tentpole guarantee on the trace
// container: EncodeV2With is byte-identical to the sequential EncodeV2
// at every worker count, including pools larger than the rank count.
func TestEncodeV2ParallelParity(t *testing.T) {
	traces := map[string]*Trace{
		"edge-shapes": v2TestTrace(),
		"empty-0":     New("empty", 0),
		"empty-3":     New("empty", 3),
		"stress":      encodeStressTrace(),
	}
	for name, tr := range traces {
		want := encodeV2Bytes(t, tr)
		for _, workers := range []int{0, 1, 2, 3, 8, 64} {
			var buf bytes.Buffer
			if err := EncodeV2With(&buf, tr, EncoderOptions{Workers: workers}); err != nil {
				t.Fatalf("%s workers=%d: EncodeV2With: %v", name, workers, err)
			}
			if !bytes.Equal(want, buf.Bytes()) {
				t.Errorf("%s workers=%d: parallel encode differs from sequential (%d vs %d bytes)",
					name, workers, buf.Len(), len(want))
			}
		}
	}
}

// encodeTimeout runs fn with a watchdog so a wedged encode pipeline
// fails the test instead of hanging it.
func encodeTimeout(t *testing.T, what string, fn func() error) error {
	t.Helper()
	ch := make(chan error, 1)
	go func() { ch <- fn() }()
	select {
	case err := <-ch:
		return err
	case <-time.After(30 * time.Second):
		t.Fatalf("%s blocked: parallel encode pipeline wedged", what)
		return nil
	}
}

// waitNoEncodeGoroutines gives encode workers a grace period to exit
// after their error paths, then fails if the goroutine count stays
// above the pre-test level — the leak check of the fault-injection
// tests.
func waitNoEncodeGoroutines(t *testing.T, before int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for runtime.NumGoroutine() > before {
		if time.Now().After(deadline) {
			t.Fatalf("goroutine leak: %d goroutines before, %d after encode failure",
				before, runtime.NumGoroutine())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

var errInjectedWrite = errors.New("injected write failure")

// failAfterWriter accepts limit bytes, then fails every Write.
type failAfterWriter struct {
	limit int
	n     int
}

func (w *failAfterWriter) Write(p []byte) (int, error) {
	if w.n+len(p) > w.limit {
		k := max(w.limit-w.n, 0)
		w.n += k
		return k, errInjectedWrite
	}
	w.n += len(p)
	return len(p), nil
}

// shortWriter accepts limit bytes, then silently accepts nothing —
// bufio must convert the short count into io.ErrShortWrite.
type shortWriter struct {
	limit int
	n     int
}

func (w *shortWriter) Write(p []byte) (int, error) {
	k := min(len(p), max(w.limit-w.n, 0))
	w.n += k
	return k, nil
}

// TestEncodeV2FailingWriter sweeps an injected write failure across the
// whole container: at every fault point the parallel encode must return
// a clean error promptly (watchdog) and stop all workers (leak check).
func TestEncodeV2FailingWriter(t *testing.T) {
	tr := encodeStressTrace()
	size := int(EncodedSizeV2(tr))
	before := runtime.NumGoroutine()
	limits := []int{0, 1, 3}
	for l := 5; l < size; l += 997 {
		limits = append(limits, l)
	}
	limits = append(limits, size-1)
	for _, workers := range []int{2, 8} {
		for _, limit := range limits {
			label := fmt.Sprintf("workers=%d limit=%d", workers, limit)
			err := encodeTimeout(t, label, func() error {
				return EncodeV2With(&failAfterWriter{limit: limit}, tr, EncoderOptions{Workers: workers})
			})
			if !errors.Is(err, errInjectedWrite) {
				t.Fatalf("%s: EncodeV2With error = %v, want injected write failure", label, err)
			}
		}
	}
	waitNoEncodeGoroutines(t, before)
}

// TestEncodeV2ShortWriter: a destination that under-reports writes
// without erroring must still fail the encode (io.ErrShortWrite), not
// silently truncate the container.
func TestEncodeV2ShortWriter(t *testing.T) {
	tr := encodeStressTrace()
	size := int(EncodedSizeV2(tr))
	before := runtime.NumGoroutine()
	for _, limit := range []int{0, 100, size / 2, size - 1} {
		label := fmt.Sprintf("short limit=%d", limit)
		err := encodeTimeout(t, label, func() error {
			return EncodeV2With(&shortWriter{limit: limit}, tr, EncoderOptions{Workers: 4})
		})
		if !errors.Is(err, io.ErrShortWrite) {
			t.Fatalf("%s: EncodeV2With error = %v, want io.ErrShortWrite", label, err)
		}
	}
	waitNoEncodeGoroutines(t, before)
}

// TestBlockWriterErrorLatch pins the error discipline: after the first
// failure every subsequent Write, WriteBlock, and Finish must surface
// the same error rather than a nil or a different one.
func TestBlockWriterErrorLatch(t *testing.T) {
	bw := NewBlockWriter(&failAfterWriter{limit: 0})
	// The bufio layer absorbs small writes; force the failure through.
	big := make([]byte, 1<<16)
	if _, err := bw.Write(big); !errors.Is(err, errInjectedWrite) {
		t.Fatalf("first Write error = %v, want injected", err)
	}
	if _, err := bw.Write([]byte("x")); !errors.Is(err, errInjectedWrite) {
		t.Errorf("Write after failure = %v, want latched injected error", err)
	}
	if err := bw.WriteBlock(0, 0, nil); !errors.Is(err, errInjectedWrite) {
		t.Errorf("WriteBlock after failure = %v, want latched injected error", err)
	}
	if err := bw.Finish(traceMagicV2); !errors.Is(err, errInjectedWrite) {
		t.Errorf("Finish after failure = %v, want latched injected error", err)
	}
	if err := bw.Err(); !errors.Is(err, errInjectedWrite) {
		t.Errorf("Err() = %v, want latched injected error", err)
	}
}

// TestEncodedSizeV2SinglePass: the size walk must agree exactly with the
// bytes the encoder produces, for every test-trace shape.
func TestEncodedSizeV2SinglePass(t *testing.T) {
	for name, tr := range map[string]*Trace{
		"edge-shapes": v2TestTrace(),
		"empty-0":     New("empty", 0),
		"empty-3":     New("empty", 3),
		"stress":      encodeStressTrace(),
	} {
		data := encodeV2Bytes(t, tr)
		if got := EncodedSizeV2(tr); got != int64(len(data)) {
			t.Errorf("%s: EncodedSizeV2 = %d, encoded %d bytes", name, got, len(data))
		}
	}
}

// TestVarintSizes checks the size-walk primitives against the real
// encoders over the 7-bit group boundaries and signed extremes.
func TestVarintSizes(t *testing.T) {
	uvals := []uint64{0, 1, 127, 128, 16383, 16384, 1<<35 - 1, 1 << 35, math.MaxUint64}
	for shift := 0; shift < 64; shift += 7 {
		uvals = append(uvals, 1<<shift, (1<<shift)-1, (1<<shift)+1)
	}
	for _, v := range uvals {
		if got, want := UvarintSize(v), len(binary.AppendUvarint(nil, v)); got != want {
			t.Errorf("UvarintSize(%d) = %d, want %d", v, got, want)
		}
	}
	ivals := []int64{0, 1, -1, 63, 64, -64, -65, math.MaxInt64, math.MinInt64}
	for _, v := range uvals {
		ivals = append(ivals, int64(v), -int64(v))
	}
	for _, v := range ivals {
		if got, want := VarintSize(v), len(binary.AppendVarint(nil, v)); got != want {
			t.Errorf("VarintSize(%d) = %d, want %d", v, got, want)
		}
	}
}
