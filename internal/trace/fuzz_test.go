package trace

import (
	"bytes"
	"testing"
)

// fuzzSeedTrace builds a small, structurally valid trace covering every
// record feature the TRC1 codec serializes: multiple ranks, markers,
// compute and communication events, message parameters, and name reuse.
func fuzzSeedTrace() *Trace {
	t := New("fuzz_seed", 2)
	for rank := 0; rank < 2; rank++ {
		rt := &t.Ranks[rank]
		base := Time(10 * (rank + 1))
		rt.Events = append(rt.Events,
			Event{Name: "main.1", Kind: KindMarkBegin, Enter: base, Exit: base, Peer: NoPeer, Root: NoPeer},
			Event{Name: "do_work", Kind: KindCompute, Enter: base + 1, Exit: base + 5, Peer: NoPeer, Root: NoPeer},
			Event{Name: "MPI_Send", Kind: KindSend, Enter: base + 6, Exit: base + 7, Peer: int32(1 - rank), Tag: 7, Bytes: 4096, Root: NoPeer},
			Event{Name: "MPI_Bcast", Kind: KindBcast, Enter: base + 8, Exit: base + 9, Peer: NoPeer, Bytes: 64, Root: 0},
			Event{Name: "main.1", Kind: KindMarkEnd, Enter: base + 10, Exit: base + 10, Peer: NoPeer, Root: NoPeer},
		)
	}
	return t
}

// FuzzDecodeRoundTrip drives the TRC1 decoder with arbitrary bytes and,
// whenever they decode, requires the encode→decode→encode round trip to
// be a fixed point: the re-encoded bytes must decode to the same trace
// and encode identically again. Run it as a smoke pass with
//
//	go test -fuzz=FuzzDecodeRoundTrip -fuzztime=10s ./internal/trace
func FuzzDecodeRoundTrip(f *testing.F) {
	var seed bytes.Buffer
	if err := Encode(&seed, fuzzSeedTrace()); err != nil {
		f.Fatal(err)
	}
	f.Add(seed.Bytes())
	f.Add(seed.Bytes()[:len(seed.Bytes())/2]) // truncated file
	f.Add([]byte("TRC1"))                     // bare magic
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<20 {
			return // bound fuzz memory, not a format property
		}
		t1, err := Decode(bytes.NewReader(data))
		if err != nil {
			return // invalid input is fine; not crashing is the property
		}
		var enc1 bytes.Buffer
		if err := Encode(&enc1, t1); err != nil {
			t.Fatalf("re-encoding decoded trace: %v", err)
		}
		t2, err := Decode(bytes.NewReader(enc1.Bytes()))
		if err != nil {
			t.Fatalf("decoding re-encoded trace: %v", err)
		}
		var enc2 bytes.Buffer
		if err := Encode(&enc2, t2); err != nil {
			t.Fatalf("third encode: %v", err)
		}
		if !bytes.Equal(enc1.Bytes(), enc2.Bytes()) {
			t.Fatal("encode→decode→encode is not a fixed point")
		}
		if t1.Name != t2.Name || t1.NumRanks() != t2.NumRanks() || t1.NumEvents() != t2.NumEvents() {
			t.Fatalf("round trip changed trace shape: %s/%d/%d vs %s/%d/%d",
				t1.Name, t1.NumRanks(), t1.NumEvents(), t2.Name, t2.NumRanks(), t2.NumEvents())
		}
	})
}
