package trace

import (
	"bytes"
	"io"
	"reflect"
	"testing"
)

// streamOnly hides ReaderAt/Seeker so a decode is forced down the
// sequential path.
type streamOnly struct{ io.Reader }

// v2TestTrace builds a trace covering the v2 codec's edge shapes:
// multiple ranks, an empty rank, non-contiguous rank ids, negative
// enter deltas across segment-relative streams, large field values,
// and name reuse across ranks.
func v2TestTrace() *Trace {
	t := New("v2_codec", 4)
	t.Ranks[2].Rank = 5 // non-dense rank id survives the round trip
	for i, rt := range []*RankTrace{&t.Ranks[0], &t.Ranks[1], &t.Ranks[2]} {
		base := Time(1000 * (i + 1))
		rt.Events = append(rt.Events,
			Event{Name: "main.1", Kind: KindMarkBegin, Enter: base, Exit: base, Peer: NoPeer, Root: NoPeer},
			Event{Name: "do_work", Kind: KindCompute, Enter: base + 1, Exit: base + 900, Peer: NoPeer, Root: NoPeer},
			Event{Name: "MPI_Send", Kind: KindSend, Enter: base + 901, Exit: base + 910, Peer: int32(i + 1), Tag: 77, Bytes: 1 << 40, Root: NoPeer},
			Event{Name: "MPI_Allreduce", Kind: KindAllreduce, Enter: base + 911, Exit: base + 950, Peer: NoPeer, Bytes: 8, Root: NoPeer},
			Event{Name: "main.1", Kind: KindMarkEnd, Enter: base + 960, Exit: base + 960, Peer: NoPeer, Root: NoPeer},
		)
	}
	// Rank 3 stays empty: zero-record blocks must round-trip.
	return t
}

func encodeV2Bytes(t *testing.T, tr *Trace) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := EncodeV2(&buf, tr); err != nil {
		t.Fatalf("EncodeV2: %v", err)
	}
	return buf.Bytes()
}

func TestEncodeV2RoundTripParallel(t *testing.T) {
	want := v2TestTrace()
	data := encodeV2Bytes(t, want)
	got, err := Decode(bytes.NewReader(data)) // bytes.Reader → parallel path
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Errorf("parallel v2 round trip changed the trace:\nwant %+v\ngot  %+v", want, got)
	}
}

func TestEncodeV2RoundTripSequential(t *testing.T) {
	want := v2TestTrace()
	data := encodeV2Bytes(t, want)
	got, err := Decode(streamOnly{bytes.NewReader(data)})
	if err != nil {
		t.Fatalf("Decode (stream): %v", err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Errorf("sequential v2 round trip changed the trace")
	}
}

func TestDecodeV2EmptyTrace(t *testing.T) {
	for _, ranks := range []int{0, 3} {
		tr := New("empty", ranks)
		data := encodeV2Bytes(t, tr)
		for name, r := range map[string]io.Reader{
			"parallel":   bytes.NewReader(data),
			"sequential": streamOnly{bytes.NewReader(data)},
		} {
			got, err := Decode(r)
			if err != nil {
				t.Fatalf("%s decode of %d-rank empty trace: %v", name, ranks, err)
			}
			if !reflect.DeepEqual(tr, got) {
				t.Errorf("%s decode of %d-rank empty trace differs", name, ranks)
			}
		}
	}
}

func TestDecoderVersionAndNameV2(t *testing.T) {
	data := encodeV2Bytes(t, v2TestTrace())
	d, err := NewDecoder(bytes.NewReader(data))
	if err != nil {
		t.Fatalf("NewDecoder: %v", err)
	}
	defer d.Close()
	if d.Version() != 2 {
		t.Errorf("Version() = %d, want 2", d.Version())
	}
	if d.Name() != "v2_codec" {
		t.Errorf("Name() = %q", d.Name())
	}
	if d.NumRanks() != 4 {
		t.Errorf("NumRanks() = %d, want 4", d.NumRanks())
	}
}

func TestDecoderVersionV1(t *testing.T) {
	var buf bytes.Buffer
	if err := Encode(&buf, v2TestTrace()); err != nil {
		t.Fatal(err)
	}
	d, err := NewDecoder(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("NewDecoder: %v", err)
	}
	if d.Version() != 1 {
		t.Errorf("Version() = %d, want 1", d.Version())
	}
}

// TestDecodeV2WorkerCounts decodes the same container under several
// worker-pool sizes; all must agree with the single-worker result.
func TestDecodeV2WorkerCounts(t *testing.T) {
	want := v2TestTrace()
	data := encodeV2Bytes(t, want)
	for _, workers := range []int{1, 2, 3, 7, 64} {
		d, err := NewDecoderWith(bytes.NewReader(data), DecoderOptions{Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: NewDecoderWith: %v", workers, err)
		}
		got := &Trace{Name: d.Name()}
		for {
			rt, err := d.NextRank()
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Fatalf("workers=%d: NextRank: %v", workers, err)
			}
			got.Ranks = append(got.Ranks, *rt)
		}
		if !reflect.DeepEqual(want, got) {
			t.Errorf("workers=%d: decoded trace differs", workers)
		}
	}
}

// TestDecodeV2AbandonedClose abandons a parallel decode mid-stream and
// closes it; the decoder must release its workers without deadlocking
// (the race detector would flag unsynchronized worker exits).
func TestDecodeV2AbandonedClose(t *testing.T) {
	data := encodeV2Bytes(t, v2TestTrace())
	d, err := NewDecoder(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.NextRank(); err != nil {
		t.Fatalf("NextRank: %v", err)
	}
	d.Close()
}

// TestV2SmallerThanV1 pins the point of the columnar format: the varint
// delta encoding must beat the 41-byte fixed records on a realistic
// event mix.
func TestV2SmallerThanV1(t *testing.T) {
	tr := v2TestTrace()
	v1, v2 := EncodedSize(tr), EncodedSizeV2(tr)
	if v2 >= v1 {
		t.Errorf("v2 encoding (%d bytes) not smaller than v1 (%d bytes)", v2, v1)
	}
}

// TestV2SequentialParallelIdentical decodes one container through both
// paths and requires identical structures — the guarantee that lets
// openers pick the path by input capability alone.
func TestV2SequentialParallelIdentical(t *testing.T) {
	data := encodeV2Bytes(t, v2TestTrace())
	par, err := Decode(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	seq, err := Decode(streamOnly{bytes.NewReader(data)})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(par, seq) {
		t.Error("parallel and sequential decodes of the same container differ")
	}
}

// TestSectionForMidStream verifies the random-access prober respects a
// reader's current position: a v2 container embedded after a prefix
// still decodes when the caller has seeked past the prefix.
func TestSectionForMidStream(t *testing.T) {
	want := v2TestTrace()
	prefix := []byte("PREFIXBYTES")
	data := append(append([]byte{}, prefix...), encodeV2Bytes(t, want)...)
	r := bytes.NewReader(data)
	if _, err := r.Seek(int64(len(prefix)), io.SeekStart); err != nil {
		t.Fatal(err)
	}
	got, err := Decode(r)
	if err != nil {
		t.Fatalf("Decode of embedded container: %v", err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Error("embedded container decode differs")
	}
}
