package trace

import (
	"bytes"
	"errors"
	"io"
	"reflect"
	"strings"
	"testing"
	"time"
)

// streamOnly hides ReaderAt/Seeker so a decode is forced down the
// sequential path.
type streamOnly struct{ io.Reader }

// v2TestTrace builds a trace covering the v2 codec's edge shapes:
// multiple ranks, an empty rank, non-contiguous rank ids, negative
// enter deltas across segment-relative streams, large field values,
// and name reuse across ranks.
func v2TestTrace() *Trace {
	t := New("v2_codec", 4)
	t.Ranks[2].Rank = 5 // non-dense rank id survives the round trip
	for i, rt := range []*RankTrace{&t.Ranks[0], &t.Ranks[1], &t.Ranks[2]} {
		base := Time(1000 * (i + 1))
		rt.Events = append(rt.Events,
			Event{Name: "main.1", Kind: KindMarkBegin, Enter: base, Exit: base, Peer: NoPeer, Root: NoPeer},
			Event{Name: "do_work", Kind: KindCompute, Enter: base + 1, Exit: base + 900, Peer: NoPeer, Root: NoPeer},
			Event{Name: "MPI_Send", Kind: KindSend, Enter: base + 901, Exit: base + 910, Peer: int32(i + 1), Tag: 77, Bytes: 1 << 40, Root: NoPeer},
			Event{Name: "MPI_Allreduce", Kind: KindAllreduce, Enter: base + 911, Exit: base + 950, Peer: NoPeer, Bytes: 8, Root: NoPeer},
			Event{Name: "main.1", Kind: KindMarkEnd, Enter: base + 960, Exit: base + 960, Peer: NoPeer, Root: NoPeer},
		)
	}
	// Rank 3 stays empty: zero-record blocks must round-trip.
	return t
}

func encodeV2Bytes(t *testing.T, tr *Trace) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := EncodeV2(&buf, tr); err != nil {
		t.Fatalf("EncodeV2: %v", err)
	}
	return buf.Bytes()
}

func TestEncodeV2RoundTripParallel(t *testing.T) {
	want := v2TestTrace()
	data := encodeV2Bytes(t, want)
	got, err := Decode(bytes.NewReader(data)) // bytes.Reader → parallel path
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Errorf("parallel v2 round trip changed the trace:\nwant %+v\ngot  %+v", want, got)
	}
}

func TestEncodeV2RoundTripSequential(t *testing.T) {
	want := v2TestTrace()
	data := encodeV2Bytes(t, want)
	got, err := Decode(streamOnly{bytes.NewReader(data)})
	if err != nil {
		t.Fatalf("Decode (stream): %v", err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Errorf("sequential v2 round trip changed the trace")
	}
}

func TestDecodeV2EmptyTrace(t *testing.T) {
	for _, ranks := range []int{0, 3} {
		tr := New("empty", ranks)
		data := encodeV2Bytes(t, tr)
		for name, r := range map[string]io.Reader{
			"parallel":   bytes.NewReader(data),
			"sequential": streamOnly{bytes.NewReader(data)},
		} {
			got, err := Decode(r)
			if err != nil {
				t.Fatalf("%s decode of %d-rank empty trace: %v", name, ranks, err)
			}
			if !reflect.DeepEqual(tr, got) {
				t.Errorf("%s decode of %d-rank empty trace differs", name, ranks)
			}
		}
	}
}

func TestDecoderVersionAndNameV2(t *testing.T) {
	data := encodeV2Bytes(t, v2TestTrace())
	d, err := NewDecoder(bytes.NewReader(data))
	if err != nil {
		t.Fatalf("NewDecoder: %v", err)
	}
	defer d.Close()
	if d.Version() != 2 {
		t.Errorf("Version() = %d, want 2", d.Version())
	}
	if d.Name() != "v2_codec" {
		t.Errorf("Name() = %q", d.Name())
	}
	if d.NumRanks() != 4 {
		t.Errorf("NumRanks() = %d, want 4", d.NumRanks())
	}
}

func TestDecoderVersionV1(t *testing.T) {
	var buf bytes.Buffer
	if err := Encode(&buf, v2TestTrace()); err != nil {
		t.Fatal(err)
	}
	d, err := NewDecoder(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("NewDecoder: %v", err)
	}
	if d.Version() != 1 {
		t.Errorf("Version() = %d, want 1", d.Version())
	}
}

// TestDecodeV2WorkerCounts decodes the same container under several
// worker-pool sizes; all must agree with the single-worker result.
func TestDecodeV2WorkerCounts(t *testing.T) {
	want := v2TestTrace()
	data := encodeV2Bytes(t, want)
	for _, workers := range []int{1, 2, 3, 7, 64} {
		d, err := NewDecoderWith(bytes.NewReader(data), DecoderOptions{Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: NewDecoderWith: %v", workers, err)
		}
		got := &Trace{Name: d.Name()}
		for {
			rt, err := d.NextRank()
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Fatalf("workers=%d: NextRank: %v", workers, err)
			}
			got.Ranks = append(got.Ranks, *rt)
		}
		if !reflect.DeepEqual(want, got) {
			t.Errorf("workers=%d: decoded trace differs", workers)
		}
	}
}

// TestDecodeV2AbandonedClose abandons a parallel decode mid-stream and
// closes it; the decoder must release its workers without deadlocking
// (the race detector would flag unsynchronized worker exits).
func TestDecodeV2AbandonedClose(t *testing.T) {
	data := encodeV2Bytes(t, v2TestTrace())
	d, err := NewDecoder(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.NextRank(); err != nil {
		t.Fatalf("NextRank: %v", err)
	}
	d.Close()
}

// TestV2SmallerThanV1 pins the point of the columnar format: the varint
// delta encoding must beat the 41-byte fixed records on a realistic
// event mix.
func TestV2SmallerThanV1(t *testing.T) {
	tr := v2TestTrace()
	v1, v2 := EncodedSize(tr), EncodedSizeV2(tr)
	if v2 >= v1 {
		t.Errorf("v2 encoding (%d bytes) not smaller than v1 (%d bytes)", v2, v1)
	}
}

// TestV2SequentialParallelIdentical decodes one container through both
// paths and requires identical structures — the guarantee that lets
// openers pick the path by input capability alone.
func TestV2SequentialParallelIdentical(t *testing.T) {
	data := encodeV2Bytes(t, v2TestTrace())
	par, err := Decode(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	seq, err := Decode(streamOnly{bytes.NewReader(data)})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(par, seq) {
		t.Error("parallel and sequential decodes of the same container differ")
	}
}

// nextRankTimeout calls d.NextRank with a watchdog so a regression that
// wedges the parallel pipeline fails the test instead of hanging it.
func nextRankTimeout(t *testing.T, d *Decoder) (*RankTrace, error) {
	t.Helper()
	type out struct {
		rt  *RankTrace
		err error
	}
	ch := make(chan out, 1)
	go func() {
		rt, err := d.NextRank()
		ch <- out{rt, err}
	}()
	select {
	case o := <-ch:
		return o.rt, o.err
	case <-time.After(30 * time.Second):
		t.Fatal("NextRank blocked: parallel decode pipeline wedged")
		return nil, nil
	}
}

// TestDecodeV2ManyRanksFewWorkers floods a small worker pool with many
// blocks. The worker loop must take an in-flight slot before claiming an
// index — claim-first lets later claimants fill every slot while the
// lowest claimant starves, wedging the in-order consumer.
func TestDecodeV2ManyRanksFewWorkers(t *testing.T) {
	const nRanks = 64
	want := New("stress", nRanks)
	for i := range want.Ranks {
		base := Time(10 * (i + 1))
		want.Ranks[i].Events = append(want.Ranks[i].Events,
			Event{Name: "work", Kind: KindCompute, Enter: base, Exit: base + 5, Peer: NoPeer, Root: NoPeer},
		)
	}
	data := encodeV2Bytes(t, want)
	for _, workers := range []int{1, 2, 3} {
		for iter := 0; iter < 8; iter++ {
			d, err := NewDecoderWith(bytes.NewReader(data), DecoderOptions{Workers: workers})
			if err != nil {
				t.Fatalf("workers=%d: NewDecoderWith: %v", workers, err)
			}
			got := &Trace{Name: d.Name()}
			for {
				rt, err := nextRankTimeout(t, d)
				if err == io.EOF {
					break
				}
				if err != nil {
					t.Fatalf("workers=%d: NextRank: %v", workers, err)
				}
				got.Ranks = append(got.Ranks, *rt)
			}
			d.Close()
			if !reflect.DeepEqual(want, got) {
				t.Fatalf("workers=%d iter=%d: decoded trace differs", workers, iter)
			}
		}
	}
}

// TestDecodeV2NextRankAfterError pins the error latch: once a parallel
// decode fails, further NextRank calls must return an error immediately
// rather than blocking on result channels no worker will ever fill.
func TestDecodeV2NextRankAfterError(t *testing.T) {
	data := encodeV2Bytes(t, v2TestTrace())
	l := layoutV2(t, data, traceMagicV2)
	corrupt := append([]byte{}, data...)
	corrupt[l.entries[0].Offset+blockHeaderSize] ^= 0x40 // break block 0's checksum
	d, err := NewDecoderWith(bytes.NewReader(corrupt), DecoderOptions{Workers: 2})
	if err != nil {
		t.Fatalf("NewDecoderWith: %v", err)
	}
	if _, err := nextRankTimeout(t, d); err == nil {
		t.Fatal("NextRank accepted a corrupt block")
	}
	for i := 0; i < 3; i++ {
		if _, err := nextRankTimeout(t, d); err == nil {
			t.Fatalf("NextRank call %d after failure returned nil error", i)
		}
	}
}

// TestDecodeV2NextRankAfterClose: NextRank on a closed decoder must
// error promptly, not wait on aborted workers.
func TestDecodeV2NextRankAfterClose(t *testing.T) {
	data := encodeV2Bytes(t, v2TestTrace())
	d, err := NewDecoder(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := nextRankTimeout(t, d); err != nil {
		t.Fatalf("NextRank: %v", err)
	}
	d.Close()
	if _, err := nextRankTimeout(t, d); err == nil {
		t.Fatal("NextRank after Close returned nil error")
	}
}

// failRestoreReader is random-access (ReaderAt + Seeker) but refuses the
// absolute seek SectionFor uses to restore the caller's position.
type failRestoreReader struct {
	*bytes.Reader
}

var errRestore = errors.New("injected restore failure")

func (f *failRestoreReader) Seek(off int64, whence int) (int64, error) {
	if whence == io.SeekStart {
		return 0, errRestore
	}
	return f.Reader.Seek(off, whence)
}

// TestSectionForRestoreFailure pins the probe's failure contract: when
// the restoring seek fails the reader sits at EOF, so SectionFor must
// surface the seek error instead of letting callers fall through to a
// sequential decode that reports a baffling EOF.
func TestSectionForRestoreFailure(t *testing.T) {
	data := encodeV2Bytes(t, v2TestTrace())
	_, ok, err := SectionFor(&failRestoreReader{bytes.NewReader(data)})
	if ok {
		t.Fatal("SectionFor reported ok despite failed restore")
	}
	if !errors.Is(err, errRestore) {
		t.Fatalf("SectionFor error = %v, want wrapped %v", err, errRestore)
	}
	if _, err := NewDecoder(&failRestoreReader{bytes.NewReader(data)}); !errors.Is(err, errRestore) {
		t.Fatalf("NewDecoder error = %v, want wrapped %v", err, errRestore)
	}
	if err != nil && strings.Contains(err.Error(), "reading magic") {
		t.Fatalf("restore failure misreported as a read error: %v", err)
	}
}

// TestSectionForMidStream verifies the random-access prober respects a
// reader's current position: a v2 container embedded after a prefix
// still decodes when the caller has seeked past the prefix.
func TestSectionForMidStream(t *testing.T) {
	want := v2TestTrace()
	prefix := []byte("PREFIXBYTES")
	data := append(append([]byte{}, prefix...), encodeV2Bytes(t, want)...)
	r := bytes.NewReader(data)
	if _, err := r.Seek(int64(len(prefix)), io.SeekStart); err != nil {
		t.Fatal(err)
	}
	got, err := Decode(r)
	if err != nil {
		t.Fatalf("Decode of embedded container: %v", err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Error("embedded container decode differs")
	}
}
