package trace

import (
	"bytes"
	"encoding/binary"
	"testing"
)

// v2Layout locates the structural offsets of an encoded TRC2/TRR2
// container from its own (trusted, test-built) footer, so corruption
// tests can aim at exact fields.
type v2Layout struct {
	size      int
	headerEnd uint64
	indexOff  uint64
	entries   []BlockEntry
}

func layoutV2(t *testing.T, data []byte, magic string) v2Layout {
	t.Helper()
	le := binary.LittleEndian
	if len(data) < trailerSize {
		t.Fatalf("container too small: %d bytes", len(data))
	}
	indexOff := le.Uint64(data[len(data)-trailerSize:])
	n := le.Uint32(data[indexOff:])
	entries := make([]BlockEntry, n)
	for i := range entries {
		rec := data[indexOff+4+uint64(i)*blockEntrySize:]
		entries[i] = BlockEntry{
			Offset:  le.Uint64(rec[0:]),
			Length:  le.Uint32(rec[8:]),
			Rank:    le.Uint32(rec[12:]),
			Records: le.Uint32(rec[16:]),
			CRC:     le.Uint32(rec[20:]),
		}
	}
	headerEnd := indexOff
	if n > 0 {
		headerEnd = entries[0].Offset
	}
	return v2Layout{size: len(data), headerEnd: headerEnd, indexOff: indexOff, entries: entries}
}

// mutate returns a copy of data with f applied.
func mutate(data []byte, f func(b []byte, l v2Layout)) func(t *testing.T, l v2Layout) []byte {
	return func(t *testing.T, l v2Layout) []byte {
		b := append([]byte{}, data...)
		f(b, l)
		return b
	}
}

// decodeBoth runs one mutated container through the random-access and
// stream decoders, requiring a clean error (never a panic, never
// success) from each.
func decodeBoth(t *testing.T, name string, data []byte) {
	t.Helper()
	if _, err := Decode(bytes.NewReader(data)); err == nil {
		t.Errorf("%s: random-access decode accepted the corrupt container", name)
	}
	if _, err := Decode(streamOnly{bytes.NewReader(data)}); err == nil {
		t.Errorf("%s: stream decode accepted the corrupt container", name)
	}
}

// TestDecodeV2Corruption flips each structural field of a valid TRC2
// container — inline block headers, payload bytes (checksum), footer
// index entries, trailer — and requires both decode paths to reject
// every mutation cleanly.
func TestDecodeV2Corruption(t *testing.T) {
	data := encodeV2Bytes(t, v2TestTrace())
	l := layoutV2(t, data, traceMagicV2)
	if len(l.entries) != 4 {
		t.Fatalf("expected 4 blocks, found %d", len(l.entries))
	}
	le := binary.LittleEndian
	entryOff := func(i int) uint64 { return l.indexOff + 4 + uint64(i)*blockEntrySize }

	cases := []struct {
		name string
		mut  func(b []byte, l v2Layout)
	}{
		{"magic", func(b []byte, l v2Layout) { b[0] = 'X' }},
		{"trailing-magic", func(b []byte, l v2Layout) { b[len(b)-1] ^= 0xff }},
		{"trailer-index-offset", func(b []byte, l v2Layout) {
			le.PutUint64(b[len(b)-trailerSize:], l.indexOff+1)
		}},
		{"trailer-index-offset-out-of-range", func(b []byte, l v2Layout) {
			le.PutUint64(b[len(b)-trailerSize:], uint64(len(b)))
		}},
		{"index-block-count", func(b []byte, l v2Layout) {
			le.PutUint32(b[l.indexOff:], uint32(len(l.entries)+1))
		}},
		{"index-entry-offset-overlap", func(b []byte, l v2Layout) {
			le.PutUint64(b[entryOff(1):], l.entries[1].Offset-1)
		}},
		{"index-entry-offset-out-of-range", func(b []byte, l v2Layout) {
			le.PutUint64(b[entryOff(1):], uint64(len(b)))
		}},
		{"index-entry-length", func(b []byte, l v2Layout) {
			le.PutUint32(b[entryOff(0)+8:], l.entries[0].Length+1)
		}},
		{"index-entry-rank", func(b []byte, l v2Layout) {
			le.PutUint32(b[entryOff(0)+12:], l.entries[0].Rank+1)
		}},
		{"index-entry-records", func(b []byte, l v2Layout) {
			le.PutUint32(b[entryOff(0)+16:], l.entries[0].Records+1)
		}},
		{"index-entry-crc", func(b []byte, l v2Layout) {
			le.PutUint32(b[entryOff(0)+20:], l.entries[0].CRC^0xdeadbeef)
		}},
		{"block-header-rank", func(b []byte, l v2Layout) {
			le.PutUint32(b[l.entries[0].Offset:], l.entries[0].Rank+1)
		}},
		{"block-header-records", func(b []byte, l v2Layout) {
			le.PutUint32(b[l.entries[0].Offset+4:], l.entries[0].Records+1)
		}},
		{"block-header-length", func(b []byte, l v2Layout) {
			le.PutUint32(b[l.entries[0].Offset+8:], l.entries[0].Length+1)
		}},
		{"block-header-crc", func(b []byte, l v2Layout) {
			le.PutUint32(b[l.entries[0].Offset+12:], l.entries[0].CRC^1)
		}},
		{"block-payload-bit-flip", func(b []byte, l v2Layout) {
			b[l.entries[0].Offset+blockHeaderSize] ^= 0x40
		}},
		{"rank-count", func(b []byte, l v2Layout) {
			// The u32 rank count is the last 4 header bytes.
			le.PutUint32(b[l.headerEnd-4:], uint32(len(l.entries))+1)
		}},
		{"zero-length-block-with-records", func(b []byte, l v2Layout) {
			// Claim block 0 has zero payload but keep its record count:
			// both the contiguity check and the record minimum must fire.
			le.PutUint32(b[entryOff(0)+8:], 0)
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			decodeBoth(t, tc.name, mutate(data, tc.mut)(t, l))
		})
	}
}

// TestDecodeV2Truncation truncates the container at every block
// boundary (and just inside each region) and requires a clean error —
// never a panic or a silent short read — from both decode paths.
func TestDecodeV2Truncation(t *testing.T) {
	data := encodeV2Bytes(t, v2TestTrace())
	l := layoutV2(t, data, traceMagicV2)
	cuts := map[string]int{
		"empty":          0,
		"mid-magic":      2,
		"after-magic":    4,
		"mid-header":     int(l.headerEnd) - 1,
		"after-header":   int(l.headerEnd),
		"at-index":       int(l.indexOff),
		"mid-index":      int(l.indexOff) + 5,
		"before-trailer": l.size - trailerSize,
		"mid-trailer":    l.size - 5,
		"last-byte":      l.size - 1,
	}
	for i, e := range l.entries {
		cuts["block-"+string(rune('0'+i))+"-start"] = int(e.Offset)
		cuts["block-"+string(rune('0'+i))+"-mid-header"] = int(e.Offset) + blockHeaderSize/2
		cuts["block-"+string(rune('0'+i))+"-end"] = int(e.Offset) + blockHeaderSize + int(e.Length)
	}
	for name, cut := range cuts {
		t.Run(name, func(t *testing.T) {
			if cut < 0 || cut >= len(data) {
				t.Fatalf("bad cut %d for %d-byte container", cut, len(data))
			}
			decodeBoth(t, name, data[:cut])
		})
	}
}

// TestDecodeV2HostileHeaderCaps drives the v2 header parser with the
// same hostile declarations the v1 decoder caps: giant name tables,
// rank counts, and block payload lengths must be rejected without large
// allocations (the inputs are only a few bytes long).
func TestDecodeV2HostileHeaderCaps(t *testing.T) {
	le := binary.LittleEndian
	build := func(f func(b *bytes.Buffer)) []byte {
		var b bytes.Buffer
		b.WriteString(traceMagicV2)
		f(&b)
		return b.Bytes()
	}
	u32 := func(b *bytes.Buffer, v uint32) {
		var tmp [4]byte
		le.PutUint32(tmp[:], v)
		b.Write(tmp[:])
	}
	cases := map[string][]byte{
		"huge-name-table": build(func(b *bytes.Buffer) {
			u32(b, 0) // empty workload name
			u32(b, 1<<30)
		}),
		"huge-rank-count": build(func(b *bytes.Buffer) {
			u32(b, 0)
			u32(b, 0)
			u32(b, 1<<21)
		}),
		"huge-block-payload": build(func(b *bytes.Buffer) {
			u32(b, 0)
			u32(b, 0)
			u32(b, 1) // one rank
			// inline block header declaring a payload beyond the format cap
			u32(b, 0)
			u32(b, 0)
			u32(b, maxBlockPayload+1)
			u32(b, 0)
		}),
	}
	for name, data := range cases {
		t.Run(name, func(t *testing.T) {
			decodeBoth(t, name, data)
		})
	}
}
