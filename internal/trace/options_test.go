package trace

import (
	"bytes"
	"context"
	"errors"
	"io"
	"strings"
	"testing"
	"time"
)

// decodeAll drains a decoder, returning the first error (nil after a
// clean io.EOF).
func decodeAll(d *Decoder) error {
	defer d.Close()
	for {
		_, err := d.NextRank()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
	}
}

func TestDecodeLimitsRejectOversizedHeader(t *testing.T) {
	tr := v2TestTrace() // 4 ranks, 4 names
	var v1 bytes.Buffer
	if err := Encode(&v1, tr); err != nil {
		t.Fatalf("Encode: %v", err)
	}
	v2 := encodeV2Bytes(t, tr)

	cases := []struct {
		name   string
		data   []byte
		random bool // random-access (v2 parallel) vs plain stream
		limits DecodeLimits
		want   string
	}{
		{"v1 rank cap", v1.Bytes(), false, DecodeLimits{MaxRanks: 2}, "rank count"},
		{"v1 name cap", v1.Bytes(), false, DecodeLimits{MaxNames: 1}, "name table"},
		{"v1 string cap", v1.Bytes(), false, DecodeLimits{MaxStringLen: 3}, "cap"},
		{"v2 parallel rank cap", v2, true, DecodeLimits{MaxRanks: 2}, "rank count"},
		{"v2 parallel name cap", v2, true, DecodeLimits{MaxNames: 1}, "name table"},
		{"v2 sequential rank cap", v2, false, DecodeLimits{MaxRanks: 2}, "rank count"},
		{"v2 sequential string cap", v2, false, DecodeLimits{MaxStringLen: 3}, "cap"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var r io.Reader = bytes.NewReader(tc.data)
			if !tc.random {
				r = streamOnly{r}
			}
			d, err := NewDecoderWith(r, DecoderOptions{Limits: tc.limits})
			if err == nil {
				err = decodeAll(d)
			}
			if err == nil {
				t.Fatalf("decode succeeded despite limits %+v", tc.limits)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

func TestDecodeLimitsZeroValueKeepsDefaults(t *testing.T) {
	tr := v2TestTrace()
	for _, data := range [][]byte{encodeV2Bytes(t, tr)} {
		d, err := NewDecoderWith(bytes.NewReader(data), DecoderOptions{})
		if err != nil {
			t.Fatalf("NewDecoderWith: %v", err)
		}
		if err := decodeAll(d); err != nil {
			t.Fatalf("decode with zero limits: %v", err)
		}
	}
}

// wideTrace builds a trace with many small ranks so a parallel decode
// has blocks left to claim when it is cancelled mid-stream.
func wideTrace(ranks int) *Trace {
	tr := New("cancel_me", ranks)
	for i := range tr.Ranks {
		base := Time(100 * (i + 1))
		tr.Ranks[i].Events = append(tr.Ranks[i].Events,
			Event{Name: "main.1", Kind: KindMarkBegin, Enter: base, Exit: base, Peer: NoPeer, Root: NoPeer},
			Event{Name: "do_work", Kind: KindCompute, Enter: base + 1, Exit: base + 50, Peer: NoPeer, Root: NoPeer},
			Event{Name: "main.1", Kind: KindMarkEnd, Enter: base + 60, Exit: base + 60, Peer: NoPeer, Root: NoPeer},
		)
	}
	return tr
}

func TestDecodeCancelledMidStream(t *testing.T) {
	data := encodeV2Bytes(t, wideTrace(64))
	t.Run("parallel", func(t *testing.T) {
		ctx, cancel := context.WithCancel(context.Background())
		d, err := NewDecoderWith(bytes.NewReader(data), DecoderOptions{Ctx: ctx, Workers: 4})
		if err != nil {
			t.Fatalf("NewDecoderWith: %v", err)
		}
		defer d.Close()
		if _, err := d.NextRank(); err != nil {
			t.Fatalf("first NextRank: %v", err)
		}
		cancel()
		err = nil
		for i := 0; i < 64 && err == nil; i++ {
			_, err = d.NextRank()
		}
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("NextRank after cancel = %v, want context.Canceled", err)
		}
		// The error must be latched: later calls fail the same way
		// instead of blocking on results that will never arrive.
		done := make(chan error, 1)
		go func() { _, err := d.NextRank(); done <- err }()
		select {
		case err := <-done:
			if !errors.Is(err, context.Canceled) {
				t.Errorf("latched error = %v, want context.Canceled", err)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("NextRank blocked after cancellation")
		}
	})
	t.Run("sequential", func(t *testing.T) {
		ctx, cancel := context.WithCancel(context.Background())
		d, err := NewDecoderWith(streamOnly{bytes.NewReader(data)}, DecoderOptions{Ctx: ctx})
		if err != nil {
			t.Fatalf("NewDecoderWith: %v", err)
		}
		if _, err := d.NextRank(); err != nil {
			t.Fatalf("first NextRank: %v", err)
		}
		cancel()
		if _, err := d.NextRank(); !errors.Is(err, context.Canceled) {
			t.Fatalf("NextRank after cancel = %v, want context.Canceled", err)
		}
	})
	t.Run("v1", func(t *testing.T) {
		var v1 bytes.Buffer
		if err := Encode(&v1, wideTrace(8)); err != nil {
			t.Fatalf("Encode: %v", err)
		}
		ctx, cancel := context.WithCancel(context.Background())
		d, err := NewDecoderWith(streamOnly{bytes.NewReader(v1.Bytes())}, DecoderOptions{Ctx: ctx})
		if err != nil {
			t.Fatalf("NewDecoderWith: %v", err)
		}
		if _, err := d.NextRank(); err != nil {
			t.Fatalf("first NextRank: %v", err)
		}
		cancel()
		if _, err := d.NextRank(); !errors.Is(err, context.Canceled) {
			t.Fatalf("NextRank after cancel = %v, want context.Canceled", err)
		}
	})
}

func TestWriteBlocksParallelCtxCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var buf bytes.Buffer
	bw := NewBlockWriter(&buf)
	err := bw.WriteBlocksParallelCtx(ctx, 128, 4,
		func(i int) (uint32, uint32) { return uint32(i), 1 },
		func(i int, dst []byte) []byte {
			// Cancel from inside the pool: the commit loop and the other
			// workers must all unwind instead of waiting on results that
			// will never be produced.
			cancel()
			return append(dst, byte(i))
		})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("WriteBlocksParallelCtx = %v, want context.Canceled", err)
	}
	if got := bw.Err(); !errors.Is(got, context.Canceled) {
		t.Errorf("BlockWriter latched %v, want context.Canceled", got)
	}
}

func TestSignatureStableAcrossFormats(t *testing.T) {
	tr := v2TestTrace()
	var v1 bytes.Buffer
	if err := Encode(&v1, tr); err != nil {
		t.Fatalf("Encode: %v", err)
	}
	v2 := encodeV2Bytes(t, tr)

	sigV1, err := SignatureOf(bytes.NewReader(v1.Bytes()))
	if err != nil {
		t.Fatalf("SignatureOf(v1): %v", err)
	}
	sigV2, err := SignatureOf(bytes.NewReader(v2))
	if err != nil {
		t.Fatalf("SignatureOf(v2): %v", err)
	}
	sigV2Seq, err := SignatureOf(streamOnly{bytes.NewReader(v2)})
	if err != nil {
		t.Fatalf("SignatureOf(v2 stream): %v", err)
	}
	if sigV1 != sigV2 || sigV1 != sigV2Seq {
		t.Fatalf("signatures differ across encodings: v1=%s v2=%s v2seq=%s", sigV1, sigV2, sigV2Seq)
	}
	if sigV1.IsZero() {
		t.Fatal("signature of a non-empty trace is zero")
	}

	// A one-field change to one event must change the signature.
	mod := v2TestTrace()
	mod.Ranks[1].Events[2].Bytes++
	var modBuf bytes.Buffer
	if err := Encode(&modBuf, mod); err != nil {
		t.Fatalf("Encode(mod): %v", err)
	}
	sigMod, err := SignatureOf(bytes.NewReader(modBuf.Bytes()))
	if err != nil {
		t.Fatalf("SignatureOf(mod): %v", err)
	}
	if sigMod == sigV1 {
		t.Fatal("signature did not change when an event changed")
	}

	// Round trip through the hex form.
	parsed, err := ParseSignature(sigV1.String())
	if err != nil {
		t.Fatalf("ParseSignature: %v", err)
	}
	if parsed != sigV1 {
		t.Fatalf("ParseSignature(%s) = %s", sigV1, parsed)
	}
	if _, err := ParseSignature("zz"); err == nil {
		t.Fatal("ParseSignature accepted junk")
	}
}
