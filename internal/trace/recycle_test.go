package trace

import (
	"bytes"
	"io"
	"reflect"
	"testing"
)

// TestEventFreeListBounded: the free list retains at most max buffers
// and hands back what it was given, newest first.
func TestEventFreeListBounded(t *testing.T) {
	f := newEventFreeList(1) // max = 3
	if got := f.get(); got != nil {
		t.Fatalf("get on empty list = %v, want nil", got)
	}
	for i := 0; i < 5; i++ {
		f.put(make([]Event, 0, 4))
	}
	if len(f.bufs) != 3 {
		t.Fatalf("free list kept %d buffers, want max 3", len(f.bufs))
	}
	for i := 0; i < 3; i++ {
		if buf := f.get(); buf == nil || cap(buf) != 4 {
			t.Fatalf("get %d = %v (cap %d), want recycled cap-4 buffer", i, buf, cap(buf))
		}
	}
	if got := f.get(); got != nil {
		t.Fatalf("get after draining = %v, want nil", got)
	}
}

// TestDecoderRecycleSafety: Recycle tolerates nil ranks and ranks with
// no event storage, on every decoder version.
func TestDecoderRecycleSafety(t *testing.T) {
	data := encodeV2Bytes(t, v2TestTrace())
	d, err := NewDecoder(bytes.NewReader(data))
	if err != nil {
		t.Fatalf("NewDecoder: %v", err)
	}
	defer d.Close()
	d.Recycle(nil)
	d.Recycle(&RankTrace{Rank: 1})
	rt := &RankTrace{Rank: 2, Events: make([]Event, 3, 8)}
	d.Recycle(rt)
	if rt.Events != nil {
		t.Errorf("Recycle left rt.Events = %v, want nil", rt.Events)
	}
	d.Recycle(rt) // second recycle of the same rank is a no-op
}

// TestDecodeWithRecycleParity: recycling each rank as soon as it is
// consumed must not change what later NextRank calls return, on all
// three decode paths (v1, v2 parallel, v2 sequential).
func TestDecodeWithRecycleParity(t *testing.T) {
	want := v2TestTrace()
	var v1buf bytes.Buffer
	if err := Encode(&v1buf, want); err != nil {
		t.Fatal(err)
	}
	v2data := encodeV2Bytes(t, want)
	for name, open := range map[string]func() io.Reader{
		"v1":            func() io.Reader { return bytes.NewReader(v1buf.Bytes()) },
		"v2-parallel":   func() io.Reader { return bytes.NewReader(v2data) },
		"v2-sequential": func() io.Reader { return streamOnly{bytes.NewReader(v2data)} },
	} {
		d, err := NewDecoderWith(open(), DecoderOptions{Workers: 2})
		if err != nil {
			t.Fatalf("%s: NewDecoderWith: %v", name, err)
		}
		got := &Trace{Name: d.Name()}
		for {
			rt, err := d.NextRank()
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Fatalf("%s: NextRank: %v", name, err)
			}
			// Deep-copy before recycling: the decoder may overwrite the
			// storage for the next rank.
			cp := RankTrace{Rank: rt.Rank, Events: append([]Event(nil), rt.Events...)}
			if len(cp.Events) == 0 {
				cp.Events = nil
			}
			got.Ranks = append(got.Ranks, cp)
			d.Recycle(rt)
		}
		d.Close()
		if !reflect.DeepEqual(want, got) {
			t.Errorf("%s: decode with recycling differs:\nwant %+v\ngot  %+v", name, want, got)
		}
	}
}

// TestDecodeRecycleReusesStorage: on the sequential paths the next rank
// must land in the storage just recycled, not a fresh allocation.
func TestDecodeRecycleReusesStorage(t *testing.T) {
	want := v2TestTrace()
	var v1buf bytes.Buffer
	if err := Encode(&v1buf, want); err != nil {
		t.Fatal(err)
	}
	v2data := encodeV2Bytes(t, want)
	for name, open := range map[string]func() io.Reader{
		"v1":            func() io.Reader { return bytes.NewReader(v1buf.Bytes()) },
		"v2-sequential": func() io.Reader { return streamOnly{bytes.NewReader(v2data)} },
	} {
		d, err := NewDecoderWith(open(), DecoderOptions{Workers: 1})
		if err != nil {
			t.Fatalf("%s: NewDecoderWith: %v", name, err)
		}
		first, err := d.NextRank()
		if err != nil {
			t.Fatalf("%s: NextRank: %v", name, err)
		}
		p0 := &first.Events[0]
		d.Recycle(first)
		second, err := d.NextRank()
		if err != nil {
			t.Fatalf("%s: NextRank 2: %v", name, err)
		}
		if &second.Events[0] != p0 {
			t.Errorf("%s: second rank did not reuse the recycled buffer", name)
		}
		d.Close()
	}
}
