package trace

import (
	"bufio"
	"bytes"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"runtime"
	"sync"
	"sync/atomic"
)

// Columnar trace container, version 2 (TRC2). The byte-level
// specification lives in docs/FORMATS.md; this comment is the summary.
//
// Where TRC1 stores fixed-width 41-byte records rank-sequentially, TRC2
// stores one self-contained block per rank: record fields are
// delta+varint encoded, every block carries an inline header (rank,
// record count, payload length, CRC32-C) and is indexed again by a
// footer block index so a random-access reader can verify the layout
// once and fan independent blocks out across a worker pool. Layout:
//
//	magic   "TRC2" (4 bytes)
//	name    length-prefixed workload name
//	names   u32 count, then length-prefixed strings (the name table)
//	nranks  u32
//	per rank, in file order: one block
//	  u32 rank, u32 records, u32 payload length, u32 CRC32-C(payload)
//	  payload: per event — uvarint nameID, uvarint kind,
//	    svarint Δenter (vs previous event's enter, 0 at block start),
//	    svarint duration (exit−enter), svarint peer, svarint tag,
//	    svarint bytes, svarint root
//	footer
//	  u32 block count, then per block: u64 offset, u32 payload length,
//	    u32 rank, u32 records, u32 CRC32-C   (24 bytes each)
//	  u64 index offset, 4 × u8 trailing magic "TRC2"
//
// The same block/footer machinery is shared with the TRR2 reduced
// container (internal/core); only the header and payload grammar differ.

const traceMagicV2 = "TRC2"

const (
	// blockHeaderSize is the inline per-block header: rank, records,
	// payload length, CRC — the same fields the footer index repeats
	// (minus the offset), so both access paths verify each block.
	blockHeaderSize = 16
	// blockEntrySize is one footer index record.
	blockEntrySize = 24
	// trailerSize is the fixed tail: u64 index offset + 4-byte magic.
	trailerSize = 12
	// maxBlockPayload bounds one block's encoded payload; a rank bigger
	// than this cannot be written (and a header declaring more is
	// hostile).
	maxBlockPayload = 1 << 30
	// maxBlocks matches the rank-count cap: v2 stores one block per rank.
	maxBlocks = 1 << 20
)

// castagnoli is the CRC32-C table used for all v2 block checksums.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// CRC32C returns the CRC32-C (Castagnoli) checksum of b, the per-block
// checksum of the v2 containers.
func CRC32C(b []byte) uint32 { return crc32.Checksum(b, castagnoli) }

// BlockEntry is one record of a v2 footer block index: where a block
// lives, which rank it holds, how many records its payload encodes, and
// the payload checksum.
type BlockEntry struct {
	// Offset is the file offset of the block's inline header.
	Offset uint64
	// Length is the payload byte length (header excluded).
	Length uint32
	// Rank is the rank id the block holds.
	Rank uint32
	// Records counts the records the payload encodes (events for TRC2,
	// stored segments + execs for TRR2).
	Records uint32
	// CRC is the CRC32-C of the payload bytes.
	CRC uint32
}

// BlockWriter writes a v2 block container: header bytes through Write,
// then one WriteBlock per rank, then Finish for the footer. It tracks
// offsets and accumulates the footer index as blocks are written.
//
// The first error — from the underlying writer or from an oversized
// payload — is latched: every subsequent Write, WriteBlock, or Finish
// call returns it, so a failing or short destination cannot leave a
// partially-consistent container behind a later nil return.
type BlockWriter struct {
	bw      *bufio.Writer
	off     uint64
	entries []BlockEntry
	fail    error
}

// NewBlockWriter returns a BlockWriter emitting to w.
func NewBlockWriter(w io.Writer) *BlockWriter {
	return &BlockWriter{bw: bufio.NewWriter(w)}
}

// Write implements io.Writer for the container header, tracking the
// running offset.
func (b *BlockWriter) Write(p []byte) (int, error) {
	if b.fail != nil {
		return 0, b.fail
	}
	n, err := b.bw.Write(p)
	b.off += uint64(n)
	if err != nil {
		b.fail = err
	}
	return n, err
}

// Err returns the latched first error, if any.
func (b *BlockWriter) Err() error { return b.fail }

// WriteBlock writes one block (inline header + payload) and records its
// footer index entry.
func (b *BlockWriter) WriteBlock(rank, records uint32, payload []byte) error {
	if b.fail != nil {
		return b.fail
	}
	if len(payload) > maxBlockPayload {
		b.fail = fmt.Errorf("trace: rank %d block payload %d bytes exceeds the %d-byte format limit",
			rank, len(payload), maxBlockPayload)
		return b.fail
	}
	e := BlockEntry{
		Offset:  b.off,
		Length:  uint32(len(payload)),
		Rank:    rank,
		Records: records,
		CRC:     CRC32C(payload),
	}
	b.entries = append(b.entries, e)
	var hdr [blockHeaderSize]byte
	le := binary.LittleEndian
	le.PutUint32(hdr[0:], e.Rank)
	le.PutUint32(hdr[4:], e.Records)
	le.PutUint32(hdr[8:], e.Length)
	le.PutUint32(hdr[12:], e.CRC)
	if _, err := b.Write(hdr[:]); err != nil {
		return err
	}
	_, err := b.Write(payload)
	return err
}

// Finish writes the footer block index and trailer (index offset +
// magic) and flushes.
func (b *BlockWriter) Finish(magic string) error {
	if b.fail != nil {
		return b.fail
	}
	indexOff := b.off
	le := binary.LittleEndian
	var u32 [4]byte
	le.PutUint32(u32[:], uint32(len(b.entries)))
	if _, err := b.Write(u32[:]); err != nil {
		return err
	}
	var rec [blockEntrySize]byte
	for _, e := range b.entries {
		le.PutUint64(rec[0:], e.Offset)
		le.PutUint32(rec[8:], e.Length)
		le.PutUint32(rec[12:], e.Rank)
		le.PutUint32(rec[16:], e.Records)
		le.PutUint32(rec[20:], e.CRC)
		if _, err := b.Write(rec[:]); err != nil {
			return err
		}
	}
	var tail [trailerSize]byte
	le.PutUint64(tail[0:], indexOff)
	copy(tail[8:], magic)
	if _, err := b.Write(tail[:]); err != nil {
		return err
	}
	if err := b.bw.Flush(); err != nil {
		b.fail = err
		return err
	}
	return nil
}

// ReadBlockIndex reads a v2 footer from ra (a container of size bytes
// whose header ends at headerEnd) and validates it fully: trailer magic,
// index bounds, and a contiguous, non-overlapping block layout exactly
// spanning headerEnd..indexOffset. Every hostile index shape —
// overlapping, out-of-range, or gapped blocks, zero-length blocks
// claiming records — is rejected here or by the per-block checks.
func ReadBlockIndex(ra io.ReaderAt, size int64, magic string, headerEnd uint64) ([]BlockEntry, error) {
	return ReadBlockIndexLimit(ra, size, magic, headerEnd, maxBlocks)
}

// ReadBlockIndexLimit is ReadBlockIndex with an explicit block-count cap
// (decoders pass their DecodeLimits rank cap, since v2 containers hold
// one block per rank).
func ReadBlockIndexLimit(ra io.ReaderAt, size int64, magic string, headerEnd uint64, maxCount uint32) ([]BlockEntry, error) {
	if size < int64(headerEnd)+trailerSize {
		return nil, fmt.Errorf("trace: %s file truncated: %d bytes leaves no room for a footer", magic, size)
	}
	var tail [trailerSize]byte
	if _, err := ra.ReadAt(tail[:], size-trailerSize); err != nil {
		return nil, fmt.Errorf("trace: reading %s trailer: %w", magic, noEOF(err))
	}
	if string(tail[8:]) != magic {
		return nil, fmt.Errorf("trace: bad trailing magic %q, want %q", tail[8:], magic)
	}
	le := binary.LittleEndian
	indexOff := le.Uint64(tail[0:])
	if indexOff < headerEnd || indexOff > uint64(size)-trailerSize {
		return nil, fmt.Errorf("trace: %s block index offset %d outside body %d..%d",
			magic, indexOff, headerEnd, size-trailerSize)
	}
	indexLen := uint64(size) - trailerSize - indexOff
	if indexLen < 4 {
		return nil, fmt.Errorf("trace: %s block index truncated (%d bytes)", magic, indexLen)
	}
	buf := make([]byte, indexLen)
	if _, err := ra.ReadAt(buf, int64(indexOff)); err != nil {
		return nil, fmt.Errorf("trace: reading %s block index: %w", magic, noEOF(err))
	}
	n := le.Uint32(buf[0:])
	if n > maxCount {
		return nil, fmt.Errorf("trace: %s block count %d exceeds the %d cap", magic, n, maxCount)
	}
	if want := 4 + uint64(n)*blockEntrySize; want != indexLen {
		return nil, fmt.Errorf("trace: %s block index declares %d blocks (%d bytes) but spans %d bytes",
			magic, n, want, indexLen)
	}
	entries := make([]BlockEntry, n)
	off := headerEnd
	for i := range entries {
		rec := buf[4+i*blockEntrySize:]
		e := BlockEntry{
			Offset:  le.Uint64(rec[0:]),
			Length:  le.Uint32(rec[8:]),
			Rank:    le.Uint32(rec[12:]),
			Records: le.Uint32(rec[16:]),
			CRC:     le.Uint32(rec[20:]),
		}
		if e.Length > maxBlockPayload {
			return nil, fmt.Errorf("trace: %s block %d payload length %d too large", magic, i, e.Length)
		}
		// Blocks must tile the body exactly in file order: the encoder
		// writes them contiguously, so any other layout (overlap, gap,
		// out-of-range) is corruption or hostile.
		if e.Offset != off {
			return nil, fmt.Errorf("trace: %s block %d at offset %d, want contiguous offset %d",
				magic, i, e.Offset, off)
		}
		off += blockHeaderSize + uint64(e.Length)
		if off > indexOff {
			return nil, fmt.Errorf("trace: %s block %d (len %d) overruns the block index at %d",
				magic, i, e.Length, indexOff)
		}
		entries[i] = e
	}
	if off != indexOff {
		return nil, fmt.Errorf("trace: %s blocks end at %d but the block index starts at %d", magic, off, indexOff)
	}
	return entries, nil
}

// ReadBlockAt reads block e from ra, verifying the inline header against
// the index entry and the payload checksum, and returns the payload.
func ReadBlockAt(ra io.ReaderAt, e BlockEntry) ([]byte, error) {
	payload, _, err := ReadBlockAtBuf(ra, e, nil)
	return payload, err
}

// ReadBlockAtBuf is ReadBlockAt reading through buf when its capacity
// suffices, so pooled callers avoid a fresh allocation per block. It
// returns the payload plus the backing buffer actually used (grown when
// buf was too small); the payload aliases the backing buffer, so the
// caller may recycle the backing only once the payload is fully parsed.
func ReadBlockAtBuf(ra io.ReaderAt, e BlockEntry, buf []byte) (payload, backing []byte, err error) {
	need := blockHeaderSize + int(e.Length)
	if cap(buf) < need {
		buf = make([]byte, need)
	}
	buf = buf[:need]
	if _, err := ra.ReadAt(buf, int64(e.Offset)); err != nil {
		return nil, buf, fmt.Errorf("trace: reading block for rank %d: %w", e.Rank, noEOF(err))
	}
	le := binary.LittleEndian
	got := BlockEntry{
		Offset:  e.Offset,
		Rank:    le.Uint32(buf[0:]),
		Records: le.Uint32(buf[4:]),
		Length:  le.Uint32(buf[8:]),
		CRC:     le.Uint32(buf[12:]),
	}
	if got != e {
		return nil, buf, fmt.Errorf("trace: block header %+v does not match index entry %+v", got, e)
	}
	payload = buf[blockHeaderSize:]
	if crc := CRC32C(payload); crc != e.CRC {
		return nil, buf, fmt.Errorf("trace: rank %d block checksum %08x, want %08x", e.Rank, crc, e.CRC)
	}
	return payload, buf, nil
}

// ReadBlock reads the next inline block from r sequentially. offset is
// the block's file position (for the index entry the caller later checks
// against the footer). The payload buffer grows with the bytes actually
// read, so a hostile length cannot force a large upfront allocation.
func ReadBlock(r io.Reader, offset uint64) (BlockEntry, []byte, error) {
	var hdr [blockHeaderSize]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return BlockEntry{}, nil, noEOF(err)
	}
	le := binary.LittleEndian
	e := BlockEntry{
		Offset:  offset,
		Rank:    le.Uint32(hdr[0:]),
		Records: le.Uint32(hdr[4:]),
		Length:  le.Uint32(hdr[8:]),
		CRC:     le.Uint32(hdr[12:]),
	}
	if e.Length > maxBlockPayload {
		return BlockEntry{}, nil, fmt.Errorf("trace: block payload length %d too large", e.Length)
	}
	var buf bytes.Buffer
	buf.Grow(int(min(e.Length, 1<<16)))
	if n, err := io.Copy(&buf, io.LimitReader(r, int64(e.Length))); err != nil {
		return BlockEntry{}, nil, err
	} else if n < int64(e.Length) {
		return BlockEntry{}, nil, io.ErrUnexpectedEOF
	}
	payload := buf.Bytes()
	if crc := CRC32C(payload); crc != e.CRC {
		return BlockEntry{}, nil, fmt.Errorf("trace: rank %d block checksum %08x, want %08x", e.Rank, crc, e.CRC)
	}
	return e, payload, nil
}

// CheckBlockFooter reads the footer from r after the last block and
// verifies it matches the blocks actually read: same entries in the same
// order, index at indexOff, correct trailing magic. The sequential
// reader calls this so that stream decoding is exactly as strict as the
// random-access path.
func CheckBlockFooter(r io.Reader, magic string, observed []BlockEntry, indexOff uint64) error {
	le := binary.LittleEndian
	var u32 [4]byte
	if _, err := io.ReadFull(r, u32[:]); err != nil {
		return fmt.Errorf("trace: reading %s block index: %w", magic, noEOF(err))
	}
	n := le.Uint32(u32[:])
	if int(n) != len(observed) {
		return fmt.Errorf("trace: %s block index declares %d blocks, read %d", magic, n, len(observed))
	}
	var rec [blockEntrySize]byte
	for i, want := range observed {
		if _, err := io.ReadFull(r, rec[:]); err != nil {
			return fmt.Errorf("trace: reading %s block index: %w", magic, noEOF(err))
		}
		got := BlockEntry{
			Offset:  le.Uint64(rec[0:]),
			Length:  le.Uint32(rec[8:]),
			Rank:    le.Uint32(rec[12:]),
			Records: le.Uint32(rec[16:]),
			CRC:     le.Uint32(rec[20:]),
		}
		if got != want {
			return fmt.Errorf("trace: %s block index entry %d is %+v, block read as %+v", magic, i, got, want)
		}
	}
	var tail [trailerSize]byte
	if _, err := io.ReadFull(r, tail[:]); err != nil {
		return fmt.Errorf("trace: reading %s trailer: %w", magic, noEOF(err))
	}
	if got := le.Uint64(tail[0:]); got != indexOff {
		return fmt.Errorf("trace: %s trailer index offset %d, want %d", magic, got, indexOff)
	}
	if string(tail[8:]) != magic {
		return fmt.Errorf("trace: bad trailing magic %q, want %q", tail[8:], magic)
	}
	return nil
}

// Cursor walks a varint-encoded block payload with bounds checking.
type Cursor struct {
	b   []byte
	off int
}

// NewCursor returns a cursor over payload.
func NewCursor(payload []byte) *Cursor { return &Cursor{b: payload} }

// Len returns the number of unread payload bytes.
func (c *Cursor) Len() int { return len(c.b) - c.off }

// Uvarint reads one unsigned varint.
func (c *Cursor) Uvarint() (uint64, error) {
	v, n := binary.Uvarint(c.b[c.off:])
	if n <= 0 {
		return 0, fmt.Errorf("trace: truncated or overlong varint at payload offset %d", c.off)
	}
	c.off += n
	return v, nil
}

// Varint reads one zigzag-encoded signed varint.
func (c *Cursor) Varint() (int64, error) {
	v, n := binary.Varint(c.b[c.off:])
	if n <= 0 {
		return 0, fmt.Errorf("trace: truncated or overlong varint at payload offset %d", c.off)
	}
	c.off += n
	return v, nil
}

// Done errors unless the payload was consumed exactly.
func (c *Cursor) Done() error {
	if c.off != len(c.b) {
		return fmt.Errorf("trace: %d trailing bytes after the last payload record", len(c.b)-c.off)
	}
	return nil
}

// NameIDs resolves event names to their v2 name-table ids. *NameTable
// implements it; the pipelined reduce-to-writer path substitutes
// immutable per-rank snapshots so encode workers can read ids without
// synchronizing against later ranks still registering names.
//
// Implementations handed to the concurrent encoders must be safe for
// lock-free reads: either fully pre-populated (a prescanned NameTable is
// never written during encode) or a plain read-only map.
type NameIDs interface {
	// ID returns the table id for name, which must already be present.
	ID(name string) uint32
}

// AppendEventsV2 appends the v2 varint encoding of events to dst and
// returns the extended slice. Enter stamps are delta-encoded against the
// previous event in the slice (the chain starts at 0, so stored-segment
// events, which are relative to the segment start, encode compactly too).
func AppendEventsV2(dst []byte, nt NameIDs, events []Event) []byte {
	var prev Time
	for _, e := range events {
		dst = binary.AppendUvarint(dst, uint64(nt.ID(e.Name)))
		dst = binary.AppendUvarint(dst, uint64(e.Kind))
		dst = binary.AppendVarint(dst, e.Enter-prev)
		prev = e.Enter
		dst = binary.AppendVarint(dst, e.Exit-e.Enter)
		dst = binary.AppendVarint(dst, int64(e.Peer))
		dst = binary.AppendVarint(dst, int64(e.Tag))
		dst = binary.AppendVarint(dst, e.Bytes)
		dst = binary.AppendVarint(dst, int64(e.Root))
	}
	return dst
}

// minEventV2Size is the smallest possible encoded event (eight one-byte
// varints); record counts are validated against it before allocating.
const minEventV2Size = 8

// ParseEventsV2 parses n v2 event records from c, resolving names
// against the table. It returns nil for n == 0, matching the v1
// decoder's shape for empty ranks.
func ParseEventsV2(c *Cursor, names []string, n uint32) ([]Event, error) {
	return ParseEventsV2Into(c, names, n, nil)
}

// ParseEventsV2Into is ParseEventsV2 writing into dst's storage (appended
// from dst[:0]; grown as needed). Decoders pass recycled event buffers so
// steady-state decodes reuse storage instead of allocating per rank.
func ParseEventsV2Into(c *Cursor, names []string, n uint32, dst []Event) ([]Event, error) {
	if n == 0 {
		return nil, nil
	}
	// Every record costs at least minEventV2Size payload bytes, so this
	// rejects hostile counts before the allocation below: len(events) is
	// bounded by the payload bytes actually present.
	if uint64(c.Len()) < uint64(n)*minEventV2Size {
		return nil, fmt.Errorf("trace: %d events declared but only %d payload bytes remain", n, c.Len())
	}
	events := dst[:0]
	if cap(events) == 0 {
		events = make([]Event, 0, n)
	}
	var prev Time
	for j := uint32(0); j < n; j++ {
		nameID, err := c.Uvarint()
		if err != nil {
			return nil, err
		}
		if nameID >= uint64(len(names)) {
			return nil, fmt.Errorf("trace: name id %d out of range (%d names)", nameID, len(names))
		}
		kind, err := c.Uvarint()
		if err != nil {
			return nil, err
		}
		if kind >= uint64(numKinds) {
			return nil, fmt.Errorf("trace: unknown event kind %d", kind)
		}
		dEnter, err := c.Varint()
		if err != nil {
			return nil, err
		}
		dur, err := c.Varint()
		if err != nil {
			return nil, err
		}
		peer, err := c.varint32("peer")
		if err != nil {
			return nil, err
		}
		tag, err := c.varint32("tag")
		if err != nil {
			return nil, err
		}
		nbytes, err := c.Varint()
		if err != nil {
			return nil, err
		}
		root, err := c.varint32("root")
		if err != nil {
			return nil, err
		}
		enter := prev + dEnter
		prev = enter
		events = append(events, Event{
			Name:  names[nameID],
			Kind:  EventKind(kind),
			Enter: enter,
			Exit:  enter + dur,
			Peer:  peer,
			Tag:   tag,
			Bytes: nbytes,
			Root:  root,
		})
	}
	return events, nil
}

// varint32 reads a signed varint that must fit in an int32 (peer, tag,
// root — i32 fields in the v1 record and the data model).
func (c *Cursor) varint32(field string) (int32, error) {
	v, err := c.Varint()
	if err != nil {
		return 0, err
	}
	if v < math.MinInt32 || v > math.MaxInt32 {
		return 0, fmt.Errorf("trace: %s value %d overflows int32", field, v)
	}
	return int32(v), nil
}

// countingReader counts consumed bytes so positions can be recovered
// under a bufio.Reader (position = count - buffered).
type countingReader struct {
	r io.Reader
	n int64
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}

// SectionFor returns a section reader spanning r's remaining bytes when
// r supports random access (io.ReaderAt + io.Seeker), restoring r's seek
// position. Version-aware openers use it to give v2 containers the
// block-parallel path while plain streams fall back to sequential decode.
//
// ok=false with a nil error means r is a plain stream: its position is
// unchanged and the caller may fall back to sequential decode. A
// non-nil error means the probe moved r's position and could not
// restore it — the reader is no longer usable and the caller must
// propagate the error rather than read on from an arbitrary offset.
func SectionFor(r io.Reader) (*io.SectionReader, bool, error) {
	ra, ok := r.(io.ReaderAt)
	if !ok {
		return nil, false, nil
	}
	sk, ok := r.(io.Seeker)
	if !ok {
		return nil, false, nil
	}
	base, err := sk.Seek(0, io.SeekCurrent)
	if err != nil {
		return nil, false, nil
	}
	end, err := sk.Seek(0, io.SeekEnd)
	if err != nil {
		return nil, false, nil
	}
	if _, err := sk.Seek(base, io.SeekStart); err != nil {
		return nil, false, fmt.Errorf("trace: restoring position after random-access probe: %w", err)
	}
	if end < base {
		return nil, false, nil
	}
	return io.NewSectionReader(ra, base, end-base), true, nil
}

// PeekMagic reads the 4-byte magic at the start of sr without consuming.
func PeekMagic(sr *io.SectionReader) (string, error) {
	var magic [4]byte
	if _, err := sr.ReadAt(magic[:], 0); err != nil {
		return "", err
	}
	return string(magic[:]), nil
}

// readV2TraceHeader reads the TRC2 header after the magic: workload
// name, name table, rank count — the same grammar and caps as v1.
func readV2TraceHeader(br *bufio.Reader, lim DecodeLimits) (name string, names []string, nRanks int, err error) {
	return readTraceHeader(br, lim)
}

// v2blockResult carries one decoded block from a worker to NextRank.
type v2blockResult struct {
	rt  *RankTrace
	err error
}

// v2parallelDecoder decodes TRC2 blocks on a bounded worker pool in
// index order. Workers claim blocks through an atomic counter; a
// semaphore bounds decoded-but-unconsumed blocks to the worker count, so
// memory stays at O(workers) ranks however large the file is.
type v2parallelDecoder struct {
	sr      *io.SectionReader
	names   []string
	entries []BlockEntry
	workers int
	ctx     context.Context

	start   sync.Once
	claim   atomic.Int64
	sem     chan struct{}
	results []chan v2blockResult
	abort   chan struct{}
	stop    sync.Once
	next    int
	fail    error
	// bufs recycles block read buffers across decodes: decoded events
	// hold name-table strings, never payload bytes, so a block's buffer
	// is free for reuse as soon as its payload has been parsed.
	bufs sync.Pool
	// free recycles event buffers the consumer returns via
	// Decoder.Recycle.
	free *eventFreeList
}

func newV2ParallelDecoder(sr *io.SectionReader, opts DecoderOptions) (*Decoder, error) {
	workers := opts.Workers
	cr := &countingReader{r: io.NewSectionReader(sr, 0, sr.Size())}
	br := bufio.NewReader(cr)
	magic := make([]byte, len(traceMagicV2))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("trace: reading magic: %w", err)
	}
	name, names, nRanks, err := readV2TraceHeader(br, opts.Limits)
	if err != nil {
		return nil, err
	}
	headerEnd := uint64(cr.n) - uint64(br.Buffered())
	entries, err := ReadBlockIndexLimit(sr, sr.Size(), traceMagicV2, headerEnd, opts.Limits.MaxRanks)
	if err != nil {
		return nil, err
	}
	if len(entries) != nRanks {
		return nil, fmt.Errorf("trace: %d blocks indexed for %d ranks", len(entries), nRanks)
	}
	if workers > len(entries) && len(entries) > 0 {
		workers = len(entries)
	}
	d := &v2parallelDecoder{
		sr:      sr,
		names:   names,
		entries: entries,
		workers: workers,
		ctx:     opts.Ctx,
		sem:     make(chan struct{}, max(workers, 1)),
		abort:   make(chan struct{}),
		results: make([]chan v2blockResult, len(entries)),
		free:    newEventFreeList(workers),
	}
	for i := range d.results {
		d.results[i] = make(chan v2blockResult, 1)
	}
	d.claim.Store(-1)
	return &Decoder{
		name:    name,
		names:   names,
		nRanks:  nRanks,
		version: 2,
		next:    d.nextRank,
		close:   d.closeAbort,
		free:    d.free,
	}, nil
}

// run is one worker: wait for an in-flight slot, claim the next block,
// decode, deliver. The abort channel releases workers when the consumer
// hits an error or closes the decoder early.
//
// The slot MUST be acquired before the index is claimed: the consumer
// drains results in strict index order and releases a slot only after
// consuming, so the worker holding the lowest pending index has to own
// a slot or the pipeline wedges (claim-first lets later claimants fill
// every slot while the lowest claimant waits on the semaphore forever).
func (d *v2parallelDecoder) run() {
	for {
		select {
		case d.sem <- struct{}{}:
		case <-d.abort:
			return
		case <-d.ctx.Done():
			return
		}
		i := int(d.claim.Add(1))
		if i >= len(d.entries) {
			<-d.sem
			return
		}
		rt, err := d.decodeBlock(d.entries[i])
		d.results[i] <- v2blockResult{rt, err}
	}
}

func (d *v2parallelDecoder) decodeBlock(e BlockEntry) (*RankTrace, error) {
	var buf []byte
	if bp, _ := d.bufs.Get().(*[]byte); bp != nil {
		buf = *bp
	}
	payload, buf, err := ReadBlockAtBuf(d.sr, e, buf)
	if err != nil {
		d.bufs.Put(&buf)
		return nil, err
	}
	c := NewCursor(payload)
	var dst []Event
	if e.Records > 0 {
		dst = d.free.get()
	}
	events, err := ParseEventsV2Into(c, d.names, e.Records, dst)
	if err == nil {
		err = c.Done()
	}
	// ParseEventsV2 copies nothing out of the payload (names come from
	// the table), so the buffer can go back in the pool right away.
	d.bufs.Put(&buf)
	if err != nil {
		return nil, fmt.Errorf("trace: rank %d block: %w", e.Rank, err)
	}
	return &RankTrace{Rank: int(e.Rank), Events: events}, nil
}

func (d *v2parallelDecoder) nextRank() (*RankTrace, error) {
	if d.next >= len(d.entries) {
		return nil, io.EOF
	}
	// Once a decode has failed (or Close aborted the workers), the
	// pending result channels will never be filled — return the latched
	// error instead of blocking on them forever.
	if d.fail != nil {
		return nil, d.fail
	}
	d.start.Do(func() {
		for w := 0; w < d.workers; w++ {
			go d.run()
		}
	})
	// A cancelled context stops the workers, so the pending result may
	// never arrive — wait on both and latch the cancellation as the
	// decoder's terminal error.
	var res v2blockResult
	select {
	case res = <-d.results[d.next]:
	case <-d.ctx.Done():
		d.fail = d.ctx.Err()
		d.closeAbort()
		return nil, d.fail
	}
	d.next++
	<-d.sem
	if res.err != nil {
		d.fail = res.err
		d.closeAbort()
		return nil, res.err
	}
	return res.rt, nil
}

func (d *v2parallelDecoder) closeAbort() {
	d.stop.Do(func() {
		if d.fail == nil {
			d.fail = errors.New("trace: decoder closed")
		}
		close(d.abort)
	})
}

// v2sequentialDecoder decodes TRC2 from a plain stream: blocks in file
// order via the inline headers, then the footer is read and verified
// against the observed blocks, so a stream decode is exactly as strict
// as the random-access path.
type v2sequentialDecoder struct {
	cr       *countingReader
	br       *bufio.Reader
	names    []string
	nRanks   int
	next     int
	observed []BlockEntry
	checked  bool
	ctx      context.Context
	free     *eventFreeList
}

// newV2SequentialDecoder builds the sequential decoder; br wraps cr and
// has consumed exactly the 4-byte magic.
func newV2SequentialDecoder(cr *countingReader, br *bufio.Reader, opts DecoderOptions) (*Decoder, error) {
	name, names, nRanks, err := readV2TraceHeader(br, opts.Limits)
	if err != nil {
		return nil, err
	}
	free := newEventFreeList(opts.Workers)
	d := &v2sequentialDecoder{cr: cr, br: br, names: names, nRanks: nRanks, ctx: opts.Ctx, free: free}
	return &Decoder{
		name:    name,
		names:   names,
		nRanks:  nRanks,
		version: 2,
		next:    d.nextRank,
		close:   func() {},
		free:    free,
	}, nil
}

// pos returns the stream position (bytes consumed from the container).
func (d *v2sequentialDecoder) pos() uint64 {
	return uint64(d.cr.n) - uint64(d.br.Buffered())
}

func (d *v2sequentialDecoder) nextRank() (*RankTrace, error) {
	if err := d.ctx.Err(); err != nil {
		return nil, err
	}
	if d.next >= d.nRanks {
		if !d.checked {
			d.checked = true
			if err := CheckBlockFooter(d.br, traceMagicV2, d.observed, d.pos()); err != nil {
				return nil, err
			}
		}
		return nil, io.EOF
	}
	e, payload, err := ReadBlock(d.br, d.pos())
	if err != nil {
		return nil, fmt.Errorf("trace: rank %d of %d block: %w", d.next, d.nRanks, err)
	}
	d.next++
	d.observed = append(d.observed, e)
	c := NewCursor(payload)
	var dst []Event
	if e.Records > 0 {
		dst = d.free.get()
	}
	events, err := ParseEventsV2Into(c, d.names, e.Records, dst)
	if err != nil {
		return nil, fmt.Errorf("trace: rank %d block: %w", e.Rank, err)
	}
	if err := c.Done(); err != nil {
		return nil, fmt.Errorf("trace: rank %d block: %w", e.Rank, err)
	}
	return &RankTrace{Rank: int(e.Rank), Events: events}, nil
}

// DefaultDecodeWorkers resolves a worker-count option: non-positive
// means GOMAXPROCS.
func DefaultDecodeWorkers(n int) int {
	if n <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}
