package trace

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// The golden fixtures pin the on-disk bytes of every container version:
// a codec change that alters what existing files decode to — or what a
// canonical structure encodes to — fails here before it can silently
// break archived traces. Regenerate deliberately with
//
//	go test ./internal/trace/ ./internal/core/ -run Golden -update
//
// and commit the diff only when a format change is intended (which for
// released versions it never is: v1 and v2 files must stay readable
// forever; new layouts get a new magic).
var updateGolden = flag.Bool("update", false, "rewrite golden fixture files")

// goldenTrace returns the canonical fixture trace. It must never change:
// the committed .trc1/.trc2 fixtures encode exactly this structure.
func goldenTrace() *Trace {
	t := New("golden", 3)
	for rank := 0; rank < 2; rank++ {
		rt := &t.Ranks[rank]
		base := Time(100 * (rank + 1))
		peer := int32(1 - rank)
		rt.Events = append(rt.Events,
			Event{Name: "main.1", Kind: KindMarkBegin, Enter: base, Exit: base, Peer: NoPeer, Root: NoPeer},
			Event{Name: "do_work", Kind: KindCompute, Enter: base + 1, Exit: base + 40, Peer: NoPeer, Root: NoPeer},
			Event{Name: "MPI_Send", Kind: KindSend, Enter: base + 41, Exit: base + 45, Peer: peer, Tag: 9, Bytes: 1024, Root: NoPeer},
			Event{Name: "MPI_Recv", Kind: KindRecv, Enter: base + 46, Exit: base + 60, Peer: peer, Tag: 9, Bytes: 1024, Root: NoPeer},
			Event{Name: "MPI_Bcast", Kind: KindBcast, Enter: base + 61, Exit: base + 70, Peer: NoPeer, Bytes: 64, Root: 0},
			Event{Name: "main.1", Kind: KindMarkEnd, Enter: base + 80, Exit: base + 80, Peer: NoPeer, Root: NoPeer},
			Event{Name: "main.2", Kind: KindMarkBegin, Enter: base + 90, Exit: base + 90, Peer: NoPeer, Root: NoPeer},
			Event{Name: "MPI_Barrier", Kind: KindBarrier, Enter: base + 91, Exit: base + 99, Peer: NoPeer, Root: NoPeer},
			Event{Name: "main.2", Kind: KindMarkEnd, Enter: base + 100, Exit: base + 100, Peer: NoPeer, Root: NoPeer},
		)
	}
	// Rank 2 stays empty: both codecs must preserve event-free ranks.
	return t
}

// checkGolden compares fresh encoder output and the committed fixture,
// or rewrites the fixture under -update. The core package's golden
// tests pin the reduced containers to the same testdata directory with
// an equivalent helper.
func checkGolden(t *testing.T, path string, encoded []byte, update bool) []byte {
	t.Helper()
	if update {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, encoded, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes)", path, len(encoded))
		return encoded
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading golden fixture (run with -update to create): %v", err)
	}
	if !bytes.Equal(want, encoded) {
		t.Errorf("%s: encoder output no longer matches the committed fixture (%d vs %d bytes); "+
			"old files written by released versions would now differ — if the format change is intended, "+
			"it needs a new magic, not an edit to this fixture", path, len(encoded), len(want))
	}
	return want
}

func TestGoldenTRC1(t *testing.T) {
	var enc bytes.Buffer
	if err := Encode(&enc, goldenTrace()); err != nil {
		t.Fatal(err)
	}
	data := checkGolden(t, filepath.Join("testdata", "golden.trc1"), enc.Bytes(), *updateGolden)
	got, err := Decode(bytes.NewReader(data))
	if err != nil {
		t.Fatalf("decoding golden.trc1: %v", err)
	}
	if !reflect.DeepEqual(goldenTrace(), got) {
		t.Error("golden.trc1 no longer decodes to the canonical trace")
	}
}

func TestGoldenTRC2(t *testing.T) {
	var enc bytes.Buffer
	if err := EncodeV2(&enc, goldenTrace()); err != nil {
		t.Fatal(err)
	}
	data := checkGolden(t, filepath.Join("testdata", "golden.trc2"), enc.Bytes(), *updateGolden)
	for name, dec := range map[string]func() (*Trace, error){
		"parallel":   func() (*Trace, error) { return Decode(bytes.NewReader(data)) },
		"sequential": func() (*Trace, error) { return Decode(streamOnly{bytes.NewReader(data)}) },
	} {
		got, err := dec()
		if err != nil {
			t.Fatalf("%s decode of golden.trc2: %v", name, err)
		}
		if !reflect.DeepEqual(goldenTrace(), got) {
			t.Errorf("golden.trc2 no longer decodes to the canonical trace (%s path)", name)
		}
	}
}
