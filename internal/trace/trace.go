// Package trace defines the event-trace data model used throughout the
// repository: timestamped function entry/exit events with message-passing
// parameters, per-rank traces, and whole-application traces, plus the
// TRC1 binary trace codec (byte-level spec in docs/FORMATS.md).
//
// Times are int64 microseconds from the start of the run. The unit matters
// only in that the benchmark generators produce ~1 ms (= 1000 unit) work
// periods, so the paper's absDiff threshold sweep of 10^1..10^6 "time
// units" lands in the same regime here.
package trace

import (
	"fmt"
	"sort"
)

// Time is a timestamp or duration in microseconds.
type Time = int64

// EventKind classifies an event record.
type EventKind uint8

// Event kinds. Communication kinds carry message parameters that the
// analyzer uses for pairing; marker kinds delimit segments.
const (
	// KindCompute is a plain function execution (e.g. do_work).
	KindCompute EventKind = iota
	// KindSend is an eager (buffered) point-to-point send.
	KindSend
	// KindSsend is a synchronous (rendezvous) point-to-point send.
	KindSsend
	// KindRecv is a blocking point-to-point receive.
	KindRecv
	// KindBcast is a one-to-N broadcast collective.
	KindBcast
	// KindGather is an N-to-one gather collective.
	KindGather
	// KindReduce is an N-to-one reduction collective.
	KindReduce
	// KindBarrier is an N-to-N barrier.
	KindBarrier
	// KindAllgather is an N-to-N allgather collective.
	KindAllgather
	// KindAlltoall is an N-to-N all-to-all exchange.
	KindAlltoall
	// KindAllreduce is an N-to-N reduction collective.
	KindAllreduce
	// KindMarkBegin is a segment-begin marker; Name holds the context.
	KindMarkBegin
	// KindMarkEnd is a segment-end marker; Name holds the context.
	KindMarkEnd

	numKinds
)

var kindNames = [...]string{
	KindCompute:   "compute",
	KindSend:      "send",
	KindSsend:     "ssend",
	KindRecv:      "recv",
	KindBcast:     "bcast",
	KindGather:    "gather",
	KindReduce:    "reduce",
	KindBarrier:   "barrier",
	KindAllgather: "allgather",
	KindAlltoall:  "alltoall",
	KindAllreduce: "allreduce",
	KindMarkBegin: "mark-begin",
	KindMarkEnd:   "mark-end",
}

// String returns a short lowercase name for the kind.
func (k EventKind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// IsMarker reports whether the kind is a segment marker.
func (k EventKind) IsMarker() bool { return k == KindMarkBegin || k == KindMarkEnd }

// IsCollective reports whether the kind is a collective operation.
func (k EventKind) IsCollective() bool {
	switch k {
	case KindBcast, KindGather, KindReduce, KindBarrier, KindAllgather, KindAlltoall, KindAllreduce:
		return true
	}
	return false
}

// IsPointToPoint reports whether the kind is a point-to-point operation.
func (k EventKind) IsPointToPoint() bool {
	return k == KindSend || k == KindSsend || k == KindRecv
}

// NoPeer is the Peer/Root value for events without a partner rank.
const NoPeer int32 = -1

// Event is one traced program activity: a function entry/exit pair with
// message-passing parameters. For marker events Enter == Exit.
type Event struct {
	// Name is the traced function name ("MPI_Recv", "do_work") or, for
	// markers, the segment context ("main.1").
	Name string
	// Kind classifies the event.
	Kind EventKind
	// Enter and Exit are the entry and exit timestamps. Within stored
	// segments they are relative to the segment start.
	Enter Time
	Exit  Time
	// Peer is the partner rank for point-to-point events (destination for
	// sends, source for receives) and NoPeer otherwise.
	Peer int32
	// Tag is the message tag for point-to-point events.
	Tag int32
	// Bytes is the message payload size for communication events.
	Bytes int64
	// Root is the root rank for rooted collectives and NoPeer otherwise.
	Root int32
}

// Duration returns Exit - Enter.
func (e Event) Duration() Time { return e.Exit - e.Enter }

// SameShape reports whether two events have identical identity fields
// (everything except the timestamps). The paper requires this — same
// events in the same order with the same message-passing parameters — for
// two segments to be comparable at all.
func (e Event) SameShape(o Event) bool {
	return e.Name == o.Name && e.Kind == o.Kind && e.Peer == o.Peer &&
		e.Tag == o.Tag && e.Bytes == o.Bytes && e.Root == o.Root
}

func (e Event) String() string {
	return fmt.Sprintf("%s[%s %d..%d peer=%d tag=%d bytes=%d root=%d]",
		e.Name, e.Kind, e.Enter, e.Exit, e.Peer, e.Tag, e.Bytes, e.Root)
}

// RankTrace is the ordered event stream of a single process.
type RankTrace struct {
	Rank   int
	Events []Event
}

// Trace is a complete application trace: one event stream per rank.
type Trace struct {
	// Name identifies the workload (e.g. "late_sender", "sweep3d_8p").
	Name string
	// Ranks holds one RankTrace per process, indexed by rank.
	Ranks []RankTrace
}

// New returns an empty trace with n ranks.
func New(name string, n int) *Trace {
	t := &Trace{Name: name, Ranks: make([]RankTrace, n)}
	for i := range t.Ranks {
		t.Ranks[i].Rank = i
	}
	return t
}

// NumRanks returns the number of per-process streams.
func (t *Trace) NumRanks() int { return len(t.Ranks) }

// NumEvents returns the total event count over all ranks.
func (t *Trace) NumEvents() int {
	n := 0
	for i := range t.Ranks {
		n += len(t.Ranks[i].Events)
	}
	return n
}

// EndTime returns the maximum exit timestamp in the trace, or 0 if empty.
func (t *Trace) EndTime() Time {
	var end Time
	for i := range t.Ranks {
		for _, e := range t.Ranks[i].Events {
			if e.Exit > end {
				end = e.Exit
			}
		}
	}
	return end
}

// Validate checks the structural invariants generators and the reducer
// rely on: per-rank events sorted by entry time, Exit >= Enter, and
// strictly alternating, non-nested segment markers with matching contexts.
func (t *Trace) Validate() error {
	for i := range t.Ranks {
		rt := &t.Ranks[i]
		var last Time
		open := "" // context of the currently open segment, if any
		for j, e := range rt.Events {
			if e.Exit < e.Enter {
				return fmt.Errorf("trace %q rank %d event %d (%s): exit %d before enter %d",
					t.Name, rt.Rank, j, e.Name, e.Exit, e.Enter)
			}
			if e.Enter < last {
				return fmt.Errorf("trace %q rank %d event %d (%s): enter %d before previous enter %d",
					t.Name, rt.Rank, j, e.Name, e.Enter, last)
			}
			last = e.Enter
			switch e.Kind {
			case KindMarkBegin:
				if open != "" {
					return fmt.Errorf("trace %q rank %d event %d: nested segment %q inside %q",
						t.Name, rt.Rank, j, e.Name, open)
				}
				open = e.Name
			case KindMarkEnd:
				if open == "" {
					return fmt.Errorf("trace %q rank %d event %d: segment end %q without begin",
						t.Name, rt.Rank, j, e.Name)
				}
				if open != e.Name {
					return fmt.Errorf("trace %q rank %d event %d: segment end %q does not match open %q",
						t.Name, rt.Rank, j, e.Name, open)
				}
				open = ""
			default:
				if open == "" {
					return fmt.Errorf("trace %q rank %d event %d (%s): event outside any segment",
						t.Name, rt.Rank, j, e.Name)
				}
			}
		}
		if open != "" {
			return fmt.Errorf("trace %q rank %d: segment %q never closed", t.Name, rt.Rank, open)
		}
	}
	return nil
}

// FunctionNames returns the sorted set of non-marker event names in the
// trace.
func (t *Trace) FunctionNames() []string {
	seen := map[string]bool{}
	for i := range t.Ranks {
		for _, e := range t.Ranks[i].Events {
			if !e.Kind.IsMarker() {
				seen[e.Name] = true
			}
		}
	}
	names := make([]string, 0, len(seen))
	for n := range seen {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Timestamps appends every Enter and Exit stamp of rank r's non-marker
// events, in event order, to dst and returns the extended slice. It is the
// pairing basis of the approximation-distance metric.
func (t *Trace) Timestamps(r int, dst []Time) []Time {
	for _, e := range t.Ranks[r].Events {
		if e.Kind.IsMarker() {
			continue
		}
		dst = append(dst, e.Enter, e.Exit)
	}
	return dst
}
