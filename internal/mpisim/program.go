// Package mpisim is a deterministic discrete-event simulator for
// message-passing programs. It stands in for the paper's Linux cluster +
// MPI substrate: per-rank programs are built with an MPI-like builder API
// (compute phases, eager and synchronous sends, blocking receives,
// collectives, segment markers) and executed under a configurable
// latency/bandwidth/overhead cost model, producing the same event traces
// — in particular the same wait structures (late senders, blocked
// broadcasts, barrier imbalance) — that the paper's instrumentation
// collected on real hardware.
//
// The simulator is a fixpoint scheduler over static per-rank operation
// lists, not goroutines: an operation executes as soon as its inputs are
// known, so identical programs always produce identical traces.
package mpisim

import (
	"fmt"

	"repro/internal/trace"
)

// Time re-exports the trace time unit (microseconds).
type Time = trace.Time

type opKind uint8

const (
	opCompute opKind = iota
	opSend
	opSsend
	opRecv
	opColl
	opMarkBegin
	opMarkEnd
)

type op struct {
	kind  opKind
	name  string          // function name or segment context
	dur   Time            // compute duration
	peer  int             // partner rank for point-to-point
	tag   int             // message tag
	bytes int64           // payload size
	root  int             // collective root
	coll  trace.EventKind // collective event kind
}

// Program is a complete message-passing program: one operation list per
// rank, built through the Rank builders.
type Program struct {
	name  string
	ranks []*RankProgram
}

// NewProgram returns an empty program for n ranks named name (the name
// becomes the trace name).
func NewProgram(name string, n int) *Program {
	if n < 1 {
		panic("mpisim: program needs at least one rank")
	}
	p := &Program{name: name, ranks: make([]*RankProgram, n)}
	for i := range p.ranks {
		p.ranks[i] = &RankProgram{rank: i, nranks: n}
	}
	return p
}

// Name returns the program name.
func (p *Program) Name() string { return p.name }

// NumRanks returns the number of ranks.
func (p *Program) NumRanks() int { return len(p.ranks) }

// Rank returns the builder for rank i.
func (p *Program) Rank(i int) *RankProgram { return p.ranks[i] }

// ForAll invokes f once per rank with that rank's builder, a convenience
// for SPMD-style program construction.
func (p *Program) ForAll(f func(rank int, r *RankProgram)) {
	for i, r := range p.ranks {
		f(i, r)
	}
}

// NumOps returns the total operation count over all ranks.
func (p *Program) NumOps() int {
	n := 0
	for _, r := range p.ranks {
		n += len(r.ops)
	}
	return n
}

// RankProgram builds one rank's operation list.
type RankProgram struct {
	rank   int
	nranks int
	ops    []op
}

// Rank returns the rank this builder belongs to.
func (r *RankProgram) Rank() int { return r.rank }

func (r *RankProgram) add(o op) { r.ops = append(r.ops, o) }

// Compute appends a computation phase of the given duration, traced under
// name (e.g. "do_work"). System noise, if configured, stretches the
// phase's wall-clock time.
func (r *RankProgram) Compute(name string, dur Time) {
	if dur < 0 {
		panic(fmt.Sprintf("mpisim: negative compute duration %d", dur))
	}
	r.add(op{kind: opCompute, name: name, dur: dur})
}

// Send appends an eager (buffered, non-blocking-completion) send to dst.
func (r *RankProgram) Send(dst, tag int, bytes int64) {
	r.checkPeer(dst)
	r.add(op{kind: opSend, name: "MPI_Send", peer: dst, tag: tag, bytes: bytes})
}

// Ssend appends a synchronous send to dst: the sender blocks until the
// receiver posts the matching receive (rendezvous), the semantics behind
// the late_receiver inefficiency.
func (r *RankProgram) Ssend(dst, tag int, bytes int64) {
	r.checkPeer(dst)
	r.add(op{kind: opSsend, name: "MPI_Ssend", peer: dst, tag: tag, bytes: bytes})
}

// Recv appends a blocking receive from src.
func (r *RankProgram) Recv(src, tag int, bytes int64) {
	r.checkPeer(src)
	r.add(op{kind: opRecv, name: "MPI_Recv", peer: src, tag: tag, bytes: bytes})
}

// Sendrecv appends an eager send to dst followed by a blocking receive
// from src, the usual neighbour-exchange idiom.
func (r *RankProgram) Sendrecv(dst, src, tag int, bytes int64) {
	r.Send(dst, tag, bytes)
	r.Recv(src, tag, bytes)
}

// Bcast appends a broadcast rooted at root: non-root ranks block until
// the root enters (late_broadcast).
func (r *RankProgram) Bcast(root int, bytes int64) {
	r.checkPeer(root)
	r.add(op{kind: opColl, name: "MPI_Bcast", coll: trace.KindBcast, root: root, bytes: bytes})
}

// Gather appends a gather rooted at root: the root blocks until the last
// contributor enters (early_gather).
func (r *RankProgram) Gather(root int, bytes int64) {
	r.checkPeer(root)
	r.add(op{kind: opColl, name: "MPI_Gather", coll: trace.KindGather, root: root, bytes: bytes})
}

// Reduce appends a reduction rooted at root, with gather-like blocking.
func (r *RankProgram) Reduce(root int, bytes int64) {
	r.checkPeer(root)
	r.add(op{kind: opColl, name: "MPI_Reduce", coll: trace.KindReduce, root: root, bytes: bytes})
}

// Barrier appends a barrier: every rank blocks until the last arrives.
func (r *RankProgram) Barrier() {
	r.add(op{kind: opColl, name: "MPI_Barrier", coll: trace.KindBarrier, root: -1})
}

// Allgather appends an allgather; all ranks leave together.
func (r *RankProgram) Allgather(bytes int64) {
	r.add(op{kind: opColl, name: "MPI_Allgather", coll: trace.KindAllgather, root: -1, bytes: bytes})
}

// Alltoall appends an all-to-all exchange; all ranks leave together.
func (r *RankProgram) Alltoall(bytes int64) {
	r.add(op{kind: opColl, name: "MPI_Alltoall", coll: trace.KindAlltoall, root: -1, bytes: bytes})
}

// Allreduce appends an allreduce; all ranks leave together.
func (r *RankProgram) Allreduce(bytes int64) {
	r.add(op{kind: opColl, name: "MPI_Allreduce", coll: trace.KindAllreduce, root: -1, bytes: bytes})
}

// BeginSegment appends a segment-begin marker for the hierarchical
// context ctx ("main.1"). Segments must not nest.
func (r *RankProgram) BeginSegment(ctx string) {
	r.add(op{kind: opMarkBegin, name: ctx})
}

// EndSegment appends the matching segment-end marker.
func (r *RankProgram) EndSegment(ctx string) {
	r.add(op{kind: opMarkEnd, name: ctx})
}

// InSegment brackets body() with Begin/EndSegment(ctx).
func (r *RankProgram) InSegment(ctx string, body func()) {
	r.BeginSegment(ctx)
	body()
	r.EndSegment(ctx)
}

func (r *RankProgram) checkPeer(p int) {
	if p < 0 || p >= r.nranks {
		panic(fmt.Sprintf("mpisim: rank %d references peer %d of %d ranks", r.rank, p, r.nranks))
	}
}
