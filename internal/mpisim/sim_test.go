package mpisim

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/trace"
)

// cfg0 is a cost model with zero overheads so timing assertions are
// exact.
func cfg0() Config { return Config{PtPOverhead: 0, CollOverhead: 0, Latency: 0, BytesPerUnit: 1 << 40} }

// find returns rank r's i-th event with the given name.
func find(t *testing.T, tr *trace.Trace, rank int, name string, i int) trace.Event {
	t.Helper()
	n := 0
	for _, e := range tr.Ranks[rank].Events {
		if e.Name == name {
			if n == i {
				return e
			}
			n++
		}
	}
	t.Fatalf("rank %d has no event %q #%d", rank, name, i)
	return trace.Event{}
}

func seg(r *RankProgram, body func()) {
	r.BeginSegment("main.1")
	body()
	r.EndSegment("main.1")
}

func TestComputeTiming(t *testing.T) {
	p := NewProgram("t", 1)
	r := p.Rank(0)
	seg(r, func() {
		r.Compute("a", 100)
		r.Compute("b", 50)
	})
	tr, err := Run(p, cfg0())
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	a := find(t, tr, 0, "a", 0)
	b := find(t, tr, 0, "b", 0)
	if a.Enter != 0 || a.Exit != 100 || b.Enter != 100 || b.Exit != 150 {
		t.Errorf("compute timing wrong: a=%v b=%v", a, b)
	}
}

// TestLateSenderTiming: the receiver posts its receive at t=0; the sender
// computes 500 first. With zero costs the receive must block exactly
// until the send completes.
func TestLateSenderTiming(t *testing.T) {
	p := NewProgram("t", 2)
	s := p.Rank(0)
	seg(s, func() {
		s.Compute("work", 500)
		s.Send(1, 7, 8)
	})
	r := p.Rank(1)
	seg(r, func() {
		r.Recv(0, 7, 8)
	})
	tr, err := Run(p, cfg0())
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	recv := find(t, tr, 1, "MPI_Recv", 0)
	if recv.Enter != 0 {
		t.Errorf("recv enter = %d, want 0", recv.Enter)
	}
	if recv.Exit != 500 {
		t.Errorf("recv exit = %d, want 500 (blocked on late sender)", recv.Exit)
	}
	send := find(t, tr, 0, "MPI_Send", 0)
	if send.Enter != 500 || send.Exit != 500 {
		t.Errorf("send = %v, want enter=exit=500", send)
	}
}

// TestEagerSendDoesNotBlock: an eager send completes regardless of when
// the receiver posts.
func TestEagerSendDoesNotBlock(t *testing.T) {
	p := NewProgram("t", 2)
	s := p.Rank(0)
	seg(s, func() {
		s.Send(1, 7, 8)
		s.Compute("after", 10)
	})
	r := p.Rank(1)
	seg(r, func() {
		r.Compute("late", 1000)
		r.Recv(0, 7, 8)
	})
	tr, err := Run(p, cfg0())
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	send := find(t, tr, 0, "MPI_Send", 0)
	if send.Exit != 0 {
		t.Errorf("eager send exit = %d, want 0", send.Exit)
	}
	recv := find(t, tr, 1, "MPI_Recv", 0)
	if recv.Enter != 1000 || recv.Exit != 1000 {
		t.Errorf("recv = %v, want immediate completion at 1000", recv)
	}
}

// TestLateReceiverTiming: a synchronous send blocks until the receiver
// posts the matching receive (rendezvous).
func TestLateReceiverTiming(t *testing.T) {
	p := NewProgram("t", 2)
	s := p.Rank(0)
	seg(s, func() {
		s.Ssend(1, 7, 8)
	})
	r := p.Rank(1)
	seg(r, func() {
		r.Compute("late", 700)
		r.Recv(0, 7, 8)
	})
	tr, err := Run(p, cfg0())
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	ssend := find(t, tr, 0, "MPI_Ssend", 0)
	if ssend.Enter != 0 || ssend.Exit != 700 {
		t.Errorf("ssend = %v, want 0..700 (blocked on late receiver)", ssend)
	}
	recv := find(t, tr, 1, "MPI_Recv", 0)
	if recv.Enter != 700 || recv.Exit != 700 {
		t.Errorf("recv = %v, want 700..700", recv)
	}
}

// TestRendezvousReceiverFirst: the mirror case — receiver arrives first
// and blocks until the sender shows up.
func TestRendezvousReceiverFirst(t *testing.T) {
	p := NewProgram("t", 2)
	s := p.Rank(0)
	seg(s, func() {
		s.Compute("late", 300)
		s.Ssend(1, 7, 8)
	})
	r := p.Rank(1)
	seg(r, func() {
		r.Recv(0, 7, 8)
	})
	tr, err := Run(p, cfg0())
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	recv := find(t, tr, 1, "MPI_Recv", 0)
	if recv.Enter != 0 || recv.Exit != 300 {
		t.Errorf("recv = %v, want 0..300", recv)
	}
}

func TestFIFOMessageOrder(t *testing.T) {
	p := NewProgram("t", 2)
	s := p.Rank(0)
	seg(s, func() {
		s.Send(1, 7, 1)
		s.Compute("gap", 100)
		s.Send(1, 7, 2)
	})
	r := p.Rank(1)
	seg(r, func() {
		r.Recv(0, 7, 1) // must match the first send (bytes checked)
		r.Recv(0, 7, 2)
	})
	if _, err := Run(p, cfg0()); err != nil {
		t.Fatalf("FIFO matching failed: %v", err)
	}
}

func TestRecvBytesMismatch(t *testing.T) {
	p := NewProgram("t", 2)
	s := p.Rank(0)
	seg(s, func() { s.Send(1, 7, 64) })
	r := p.Rank(1)
	seg(r, func() { r.Recv(0, 7, 32) })
	if _, err := Run(p, cfg0()); err == nil || !strings.Contains(err.Error(), "bytes") {
		t.Errorf("want bytes mismatch error, got %v", err)
	}
}

func TestBarrierTiming(t *testing.T) {
	p := NewProgram("t", 3)
	work := []Time{100, 300, 200}
	p.ForAll(func(rank int, r *RankProgram) {
		seg(r, func() {
			r.Compute("w", work[rank])
			r.Barrier()
		})
	})
	tr, err := Run(p, cfg0())
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	for rank := 0; rank < 3; rank++ {
		b := find(t, tr, rank, "MPI_Barrier", 0)
		if b.Enter != work[rank] {
			t.Errorf("rank %d barrier enter = %d, want %d", rank, b.Enter, work[rank])
		}
		if b.Exit != 300 {
			t.Errorf("rank %d barrier exit = %d, want 300 (last arrival)", rank, b.Exit)
		}
	}
}

// TestBcastTiming: non-roots wait for the root; the root never waits.
func TestBcastTiming(t *testing.T) {
	p := NewProgram("t", 3)
	work := []Time{500, 100, 200} // root 0 is late
	p.ForAll(func(rank int, r *RankProgram) {
		seg(r, func() {
			r.Compute("w", work[rank])
			r.Bcast(0, 0)
		})
	})
	tr, err := Run(p, cfg0())
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	root := find(t, tr, 0, "MPI_Bcast", 0)
	if root.Exit != 500 {
		t.Errorf("root bcast exit = %d, want 500 (no waiting)", root.Exit)
	}
	for _, rank := range []int{1, 2} {
		b := find(t, tr, rank, "MPI_Bcast", 0)
		if b.Exit != 500 {
			t.Errorf("rank %d bcast exit = %d, want 500 (waits for root)", rank, b.Exit)
		}
	}
}

// TestGatherTiming: the root waits for the last contributor; contributors
// leave immediately.
func TestGatherTiming(t *testing.T) {
	p := NewProgram("t", 3)
	work := []Time{100, 600, 300} // root 0 is early
	p.ForAll(func(rank int, r *RankProgram) {
		seg(r, func() {
			r.Compute("w", work[rank])
			r.Gather(0, 0)
		})
	})
	tr, err := Run(p, cfg0())
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	root := find(t, tr, 0, "MPI_Gather", 0)
	if root.Enter != 100 || root.Exit != 600 {
		t.Errorf("root gather = %v, want 100..600 (waits for last)", root)
	}
	c := find(t, tr, 1, "MPI_Gather", 0)
	if c.Enter != 600 || c.Exit != 600 {
		t.Errorf("contributor gather = %v, want 600..600 (no waiting)", c)
	}
	c2 := find(t, tr, 2, "MPI_Gather", 0)
	if c2.Exit != 300 {
		t.Errorf("contributor 2 gather exit = %d, want 300", c2.Exit)
	}
}

// TestAlltoallTiming: everyone leaves together after the last arrival.
func TestAlltoallTiming(t *testing.T) {
	p := NewProgram("t", 2)
	work := []Time{100, 400}
	p.ForAll(func(rank int, r *RankProgram) {
		seg(r, func() {
			r.Compute("w", work[rank])
			r.Alltoall(0)
		})
	})
	tr, err := Run(p, cfg0())
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	for rank := 0; rank < 2; rank++ {
		e := find(t, tr, rank, "MPI_Alltoall", 0)
		if e.Exit != 400 {
			t.Errorf("rank %d alltoall exit = %d, want 400", rank, e.Exit)
		}
	}
}

func TestCollectiveMismatch(t *testing.T) {
	p := NewProgram("t", 2)
	a := p.Rank(0)
	seg(a, func() { a.Barrier() })
	b := p.Rank(1)
	seg(b, func() { b.Alltoall(0) })
	if _, err := Run(p, cfg0()); err == nil || !strings.Contains(err.Error(), "mismatch") {
		t.Errorf("want collective mismatch error, got %v", err)
	}
}

func TestDeadlockDetection(t *testing.T) {
	p := NewProgram("t", 2)
	a := p.Rank(0)
	seg(a, func() { a.Recv(1, 7, 8) })
	b := p.Rank(1)
	seg(b, func() { b.Recv(0, 7, 8) })
	_, err := Run(p, cfg0())
	if err == nil || !strings.Contains(err.Error(), "deadlock") {
		t.Fatalf("want deadlock error, got %v", err)
	}
	if !strings.Contains(err.Error(), "MPI_Recv") {
		t.Errorf("deadlock error should name the blocking op: %v", err)
	}
}

func TestDeadlockBarrierMissingRank(t *testing.T) {
	p := NewProgram("t", 2)
	a := p.Rank(0)
	seg(a, func() { a.Barrier() })
	b := p.Rank(1)
	seg(b, func() { b.Compute("w", 5) })
	if _, err := Run(p, cfg0()); err == nil || !strings.Contains(err.Error(), "deadlock") {
		t.Errorf("want deadlock when one rank skips the barrier, got %v", err)
	}
}

func TestCostModel(t *testing.T) {
	cfg := Config{PtPOverhead: 3, CollOverhead: 5, Latency: 10, BytesPerUnit: 100}
	p := NewProgram("t", 2)
	s := p.Rank(0)
	seg(s, func() { s.Send(1, 7, 1000) })
	r := p.Rank(1)
	seg(r, func() { r.Recv(0, 7, 1000) })
	tr, err := Run(p, cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	send := find(t, tr, 0, "MPI_Send", 0)
	if send.Exit != 3 { // overhead only
		t.Errorf("send exit = %d, want 3", send.Exit)
	}
	recv := find(t, tr, 1, "MPI_Recv", 0)
	// Arrival = send exit (3) + latency (10) + 1000/100 bytes = 23.
	if recv.Exit != 23 {
		t.Errorf("recv exit = %d, want 23", recv.Exit)
	}
}

// stubNoise doubles every compute phase.
type stubNoise struct{}

func (stubNoise) Stretch(rank int, start, dur Time) Time { return 2 * dur }

func TestNoiseStretchesCompute(t *testing.T) {
	cfg := cfg0()
	cfg.Noise = stubNoise{}
	p := NewProgram("t", 1)
	r := p.Rank(0)
	seg(r, func() { r.Compute("w", 100) })
	tr, err := Run(p, cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	w := find(t, tr, 0, "w", 0)
	if w.Duration() != 200 {
		t.Errorf("noisy compute duration = %d, want 200", w.Duration())
	}
}

// shrinkNoise tries to shrink work; the simulator must clamp to dur.
type shrinkNoise struct{}

func (shrinkNoise) Stretch(rank int, start, dur Time) Time { return dur / 2 }

func TestNoiseCannotShrink(t *testing.T) {
	cfg := cfg0()
	cfg.Noise = shrinkNoise{}
	p := NewProgram("t", 1)
	r := p.Rank(0)
	seg(r, func() { r.Compute("w", 100) })
	tr, err := Run(p, cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if w := find(t, tr, 0, "w", 0); w.Duration() != 100 {
		t.Errorf("noise shrank compute to %d", w.Duration())
	}
}

func TestDeterminism(t *testing.T) {
	build := func() *Program {
		p := NewProgram("t", 4)
		p.ForAll(func(rank int, r *RankProgram) {
			seg(r, func() {
				r.Compute("w", Time(100*(rank+1)))
				if rank%2 == 0 {
					r.Send((rank+1)%4, 7, 64)
				} else {
					r.Recv((rank+3)%4, 7, 64)
				}
				r.Barrier()
			})
		})
		return p
	}
	t1, err := Run(build(), DefaultConfig())
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	t2, err := Run(build(), DefaultConfig())
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !reflect.DeepEqual(t1, t2) {
		t.Error("identical programs produced different traces")
	}
}

func TestGeneratedTraceValidates(t *testing.T) {
	p := NewProgram("t", 2)
	p.ForAll(func(rank int, r *RankProgram) {
		r.InSegment("init", func() { r.Barrier() })
		for i := 0; i < 5; i++ {
			seg(r, func() {
				r.Compute("w", 10)
				if rank == 0 {
					r.Send(1, 1, 8)
				} else {
					r.Recv(0, 1, 8)
				}
			})
		}
	})
	tr, err := Run(p, DefaultConfig())
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if err := tr.Validate(); err != nil {
		t.Errorf("generated trace invalid: %v", err)
	}
}

func TestSendrecv(t *testing.T) {
	p := NewProgram("t", 2)
	p.ForAll(func(rank int, r *RankProgram) {
		seg(r, func() {
			r.Sendrecv(1-rank, 1-rank, 7, 16)
		})
	})
	tr, err := Run(p, cfg0())
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	for rank := 0; rank < 2; rank++ {
		find(t, tr, rank, "MPI_Send", 0)
		find(t, tr, rank, "MPI_Recv", 0)
	}
}
