package mpisim

import (
	"fmt"

	"repro/internal/trace"
)

// Noise models system interference: Stretch returns the wall-clock time a
// compute phase of length dur occupies when it starts at start on rank.
// A nil Noise means an undisturbed machine (Stretch ≡ dur).
type Noise interface {
	Stretch(rank int, start, dur Time) Time
}

// Config is the simulator cost model. The defaults (DefaultConfig) are
// loosely calibrated to a mid-2000s Linux cluster: a few microseconds of
// MPI call overhead, ~10 µs network latency, ~1 byte/ns bandwidth.
type Config struct {
	// PtPOverhead is the software overhead of a point-to-point call.
	PtPOverhead Time
	// CollOverhead is the software overhead of a collective call.
	CollOverhead Time
	// Latency is the network latency added to every message transfer.
	Latency Time
	// BytesPerUnit is the bandwidth in payload bytes per time unit
	// (bytes per microsecond); 1000 ≈ 1 GB/s.
	BytesPerUnit int64
	// Noise optionally injects system interference into compute phases.
	Noise Noise
}

// DefaultConfig returns the standard cost model used by the evaluation.
func DefaultConfig() Config {
	return Config{PtPOverhead: 2, CollOverhead: 5, Latency: 10, BytesPerUnit: 1000}
}

// transfer returns the wire time of a message of the given size.
func (c *Config) transfer(bytes int64) Time {
	bw := c.BytesPerUnit
	if bw <= 0 {
		bw = 1000
	}
	return c.Latency + bytes/bw
}

func (c *Config) stretch(rank int, start, dur Time) Time {
	if c.Noise == nil {
		return dur
	}
	w := c.Noise.Stretch(rank, start, dur)
	if w < dur {
		return dur
	}
	return w
}

// chanKey identifies a point-to-point channel; messages on a channel
// match in FIFO order, as in MPI.
type chanKey struct {
	src, dst, tag int
}

// message is a send that has been reached by its sender.
type message struct {
	sync      bool // true for Ssend rendezvous
	bytes     int64
	arrival   Time // eager: earliest time the payload is at the receiver
	sendReady Time // sync: when the sender entered Ssend
	sendOp    int  // sync: sender's op index (to emit its event later)
}

// rankState is the scheduler's per-rank cursor.
type rankState struct {
	pc        int
	ready     Time // when the next op may start
	inColl    bool // blocked inside a collective instance
	inSync    bool // blocked inside an Ssend rendezvous
	recvCount map[chanKey]int
}

// collInstance tracks one global collective occurrence.
type collInstance struct {
	kind    trace.EventKind
	name    string
	root    int
	bytes   int64
	ready   []Time
	seen    []bool
	arrived int
}

// sim is one simulation run.
type sim struct {
	cfg    Config
	prog   *Program
	states []rankState
	chans  map[chanKey][]message
	colls  []*collInstance
	collIx []int
	out    *trace.Trace
}

// Run executes the program under the given cost model and returns the
// resulting application trace. It fails on communication errors the
// benchmarks must not commit: mismatched collectives, deadlock, or
// mismatched point-to-point payload sizes.
func Run(p *Program, cfg Config) (*trace.Trace, error) {
	s := &sim{
		cfg:    cfg,
		prog:   p,
		states: make([]rankState, p.NumRanks()),
		chans:  map[chanKey][]message{},
		collIx: make([]int, p.NumRanks()),
		out:    trace.New(p.Name(), p.NumRanks()),
	}
	for i := range s.states {
		s.states[i].recvCount = map[chanKey]int{}
	}
	for {
		progressed := false
		alldone := true
		for r := range s.states {
			moved, done, err := s.step(r)
			if err != nil {
				return nil, err
			}
			progressed = progressed || moved
			alldone = alldone && done
		}
		if alldone {
			break
		}
		if !progressed {
			return nil, s.deadlockError()
		}
	}
	if err := s.out.Validate(); err != nil {
		return nil, fmt.Errorf("mpisim: generated invalid trace: %w", err)
	}
	return s.out, nil
}

// step attempts to execute rank r's next operation. It returns whether
// the rank made progress and whether it has finished its program.
func (s *sim) step(r int) (moved, done bool, err error) {
	st := &s.states[r]
	ops := s.prog.ranks[r].ops
	// Keep executing ops that are immediately runnable; this makes the
	// outer fixpoint loop cheap (most ops retire in one pass).
	for {
		if st.pc >= len(ops) {
			return moved, true, nil
		}
		if st.inColl || st.inSync {
			return moved, false, nil
		}
		o := &ops[st.pc]
		ran, err := s.exec(r, o)
		if err != nil {
			return moved, false, err
		}
		if !ran {
			return moved, false, nil
		}
		moved = true
	}
}

// exec runs a single op if possible. It may advance other ranks (the
// last arrival completes a collective; a receive completes a rendezvous).
func (s *sim) exec(r int, o *op) (bool, error) {
	st := &s.states[r]
	switch o.kind {
	case opCompute:
		wall := s.cfg.stretch(r, st.ready, o.dur)
		s.emit(r, trace.Event{Name: o.name, Kind: trace.KindCompute,
			Enter: st.ready, Exit: st.ready + wall, Peer: trace.NoPeer, Root: trace.NoPeer})
		st.ready += wall
		st.pc++
		return true, nil

	case opMarkBegin, opMarkEnd:
		kind := trace.KindMarkBegin
		if o.kind == opMarkEnd {
			kind = trace.KindMarkEnd
		}
		s.emit(r, trace.Event{Name: o.name, Kind: kind,
			Enter: st.ready, Exit: st.ready, Peer: trace.NoPeer, Root: trace.NoPeer})
		st.pc++
		return true, nil

	case opSend:
		exit := st.ready + s.cfg.PtPOverhead
		key := chanKey{src: r, dst: o.peer, tag: o.tag}
		s.chans[key] = append(s.chans[key], message{
			bytes: o.bytes, arrival: exit + s.cfg.transfer(o.bytes)})
		s.emit(r, trace.Event{Name: o.name, Kind: trace.KindSend,
			Enter: st.ready, Exit: exit, Peer: int32(o.peer), Tag: int32(o.tag),
			Bytes: o.bytes, Root: trace.NoPeer})
		st.ready = exit
		st.pc++
		return true, nil

	case opSsend:
		// Register the rendezvous offer and block; the matching receive
		// completes it (see opRecv below).
		key := chanKey{src: r, dst: o.peer, tag: o.tag}
		s.chans[key] = append(s.chans[key], message{
			sync: true, bytes: o.bytes, sendReady: st.ready, sendOp: st.pc})
		st.inSync = true
		return true, nil

	case opRecv:
		key := chanKey{src: o.peer, dst: r, tag: o.tag}
		idx := st.recvCount[key]
		queue := s.chans[key]
		if idx >= len(queue) {
			return false, nil // matching send not reached yet
		}
		m := queue[idx]
		if m.bytes != o.bytes {
			return false, fmt.Errorf("mpisim: rank %d recv(src=%d tag=%d) expects %d bytes, message has %d",
				r, o.peer, o.tag, o.bytes, m.bytes)
		}
		st.recvCount[key] = idx + 1
		if !m.sync {
			exit := maxTime(st.ready+s.cfg.PtPOverhead, m.arrival)
			s.emit(r, trace.Event{Name: o.name, Kind: trace.KindRecv,
				Enter: st.ready, Exit: exit, Peer: int32(o.peer), Tag: int32(o.tag),
				Bytes: o.bytes, Root: trace.NoPeer})
			st.ready = exit
			st.pc++
			return true, nil
		}
		// Rendezvous: both sides proceed once both have arrived.
		t0 := maxTime(st.ready, m.sendReady)
		exit := t0 + s.cfg.PtPOverhead + s.cfg.transfer(o.bytes)
		s.emit(r, trace.Event{Name: o.name, Kind: trace.KindRecv,
			Enter: st.ready, Exit: exit, Peer: int32(o.peer), Tag: int32(o.tag),
			Bytes: o.bytes, Root: trace.NoPeer})
		st.ready = exit
		st.pc++
		sst := &s.states[o.peer]
		sop := &s.prog.ranks[o.peer].ops[m.sendOp]
		s.emit(o.peer, trace.Event{Name: sop.name, Kind: trace.KindSsend,
			Enter: m.sendReady, Exit: exit, Peer: int32(r), Tag: int32(sop.tag),
			Bytes: sop.bytes, Root: trace.NoPeer})
		sst.ready = exit
		sst.inSync = false
		sst.pc++
		return true, nil

	case opColl:
		return s.execColl(r, o)
	}
	return false, fmt.Errorf("mpisim: rank %d: unknown op kind %d", r, o.kind)
}

// execColl records rank r's arrival at its next collective occurrence
// and, when r is the last arrival, retires the whole instance.
func (s *sim) execColl(r int, o *op) (bool, error) {
	st := &s.states[r]
	k := s.collIx[r]
	for len(s.colls) <= k {
		n := s.prog.NumRanks()
		s.colls = append(s.colls, &collInstance{
			kind: o.coll, name: o.name, root: o.root, bytes: o.bytes,
			ready: make([]Time, n), seen: make([]bool, n),
		})
	}
	ci := s.colls[k]
	if ci.kind != o.coll || ci.root != o.root || ci.bytes != o.bytes {
		return false, fmt.Errorf(
			"mpisim: collective mismatch at occurrence %d: rank %d calls %s(root=%d,bytes=%d), expected %s(root=%d,bytes=%d)",
			k, r, o.name, o.root, o.bytes, ci.name, ci.root, ci.bytes)
	}
	ci.ready[r] = st.ready
	ci.seen[r] = true
	ci.arrived++
	st.inColl = true
	if ci.arrived < s.prog.NumRanks() {
		return true, nil
	}
	s.retireColl(ci)
	return true, nil
}

// retireColl computes exit times for a fully-arrived collective and
// advances every rank past it. The wait semantics per kind are the ones
// the KOJAK patterns measure:
//
//   - Barrier and the N-to-N collectives: everyone leaves together after
//     the last arrival (Wait at Barrier / Wait at N×N);
//   - Bcast: non-roots cannot leave before the root arrives
//     (Late Broadcast); the root never waits;
//   - Gather/Reduce: the root cannot leave before the last contributor
//     (Early Gather/Reduce); contributors never wait.
func (s *sim) retireColl(ci *collInstance) {
	n := s.prog.NumRanks()
	var last Time
	for r := 0; r < n; r++ {
		if ci.ready[r] > last {
			last = ci.ready[r]
		}
	}
	cost := s.cfg.CollOverhead + ci.bytes/max64(s.cfg.BytesPerUnit, 1)
	for r := 0; r < n; r++ {
		st := &s.states[r]
		var exit Time
		switch ci.kind {
		case trace.KindBcast:
			if r == ci.root {
				exit = ci.ready[r] + cost
			} else {
				exit = maxTime(ci.ready[r], ci.ready[ci.root]) + cost
			}
		case trace.KindGather, trace.KindReduce:
			if r == ci.root {
				exit = last + cost
			} else {
				exit = ci.ready[r] + cost
			}
		default: // Barrier, Allgather, Alltoall, Allreduce
			exit = last + cost
		}
		s.emit(r, trace.Event{Name: ci.name, Kind: ci.kind,
			Enter: ci.ready[r], Exit: exit, Peer: trace.NoPeer,
			Bytes: ci.bytes, Root: int32(ci.root)})
		st.ready = exit
		st.inColl = false
		st.pc++
		s.collIx[r]++
	}
}

func (s *sim) emit(r int, e trace.Event) {
	s.out.Ranks[r].Events = append(s.out.Ranks[r].Events, e)
}

// deadlockError reports which ranks are stuck and on what.
func (s *sim) deadlockError() error {
	msg := "mpisim: deadlock:"
	for r := range s.states {
		st := &s.states[r]
		ops := s.prog.ranks[r].ops
		if st.pc >= len(ops) {
			continue
		}
		o := &ops[st.pc]
		switch {
		case st.inColl:
			msg += fmt.Sprintf(" rank %d in %s;", r, o.name)
		case st.inSync:
			msg += fmt.Sprintf(" rank %d in MPI_Ssend(dst=%d);", r, o.peer)
		case o.kind == opRecv:
			msg += fmt.Sprintf(" rank %d in MPI_Recv(src=%d tag=%d);", r, o.peer, o.tag)
		default:
			msg += fmt.Sprintf(" rank %d at op %d (%s);", r, st.pc, o.name)
		}
	}
	return fmt.Errorf("%s", msg)
}

func maxTime(a, b Time) Time {
	if a > b {
		return a
	}
	return b
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
