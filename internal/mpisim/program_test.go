package mpisim

import "testing"

func TestNewProgramValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewProgram(0) must panic")
		}
	}()
	NewProgram("t", 0)
}

func TestPeerValidation(t *testing.T) {
	p := NewProgram("t", 2)
	defer func() {
		if recover() == nil {
			t.Error("out-of-range peer must panic")
		}
	}()
	p.Rank(0).Send(5, 0, 8)
}

func TestNegativeComputePanics(t *testing.T) {
	p := NewProgram("t", 1)
	defer func() {
		if recover() == nil {
			t.Error("negative compute duration must panic")
		}
	}()
	p.Rank(0).Compute("w", -1)
}

func TestForAllAndNumOps(t *testing.T) {
	p := NewProgram("prog", 3)
	if p.Name() != "prog" || p.NumRanks() != 3 {
		t.Errorf("metadata wrong: %q %d", p.Name(), p.NumRanks())
	}
	p.ForAll(func(rank int, r *RankProgram) {
		if r.Rank() != rank {
			t.Errorf("builder rank %d != %d", r.Rank(), rank)
		}
		r.InSegment("s", func() {
			r.Compute("w", 1)
		})
	})
	// Each rank: begin + compute + end = 3 ops.
	if got := p.NumOps(); got != 9 {
		t.Errorf("NumOps = %d, want 9", got)
	}
}

func TestBuilderOpKinds(t *testing.T) {
	p := NewProgram("t", 2)
	r := p.Rank(0)
	r.InSegment("s", func() {
		r.Compute("w", 1)
		r.Send(1, 0, 8)
		r.Ssend(1, 0, 8)
		r.Recv(1, 0, 8)
		r.Bcast(0, 8)
		r.Gather(0, 8)
		r.Reduce(0, 8)
		r.Barrier()
		r.Allgather(8)
		r.Alltoall(8)
		r.Allreduce(8)
	})
	// 11 body ops + 2 markers.
	if got := len(p.ranks[0].ops); got != 13 {
		t.Errorf("op count = %d, want 13", got)
	}
}
