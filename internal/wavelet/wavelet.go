// Package wavelet implements the two discrete wavelet transforms the paper
// uses as segment-similarity bases: the plain average transform (pairwise
// averages and differences, iterated on the trend half) and the Haar
// transform (the same recursion with averages and differences scaled by
// √2, which preserves the Euclidean norm).
package wavelet

import "math"

// NextPow2 returns the smallest power of two >= n (and >= 1).
func NextPow2(n int) int {
	if n <= 1 {
		return 1
	}
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// Pad returns v zero-padded to the next power-of-two length. The result is
// always a fresh slice.
func Pad(v []float64) []float64 {
	n := NextPow2(len(v))
	out := make([]float64, n)
	copy(out, v)
	return out
}

// step performs one level of the transform on v[:n], writing trends to the
// first n/2 slots and fluctuations to the second n/2 via the scratch
// buffer tmp (len >= n), with the given scale factor applied to both
// (1 for the average transform, √2⁻¹… no: Haar uses (a+b)/√2 and
// (a−b)/√2, i.e. scale = 1/√2 relative to sum, which equals the pairwise
// average multiplied by √2).
func step(v, tmp []float64, n int, scale float64) {
	half := n / 2
	for i := 0; i < half; i++ {
		a, b := v[2*i], v[2*i+1]
		tmp[i] = (a + b) / 2 * scale
		tmp[half+i] = (a - b) / 2 * scale
	}
	copy(v[:n], tmp[:n])
}

// transform runs the full multi-level decomposition in place through one
// shared scratch buffer. v must have power-of-two length. At each level
// the trend half is decomposed again, as in the paper's Figure 3.
func transform(v []float64, scale float64) {
	if len(v) < 2 {
		return
	}
	transformScratch(v, make([]float64, len(v)), scale)
}

// transformScratch is transform with a caller-owned scratch buffer (len
// >= len(v)), for hot paths that must not allocate.
func transformScratch(v, tmp []float64, scale float64) {
	if len(v) < 2 {
		return
	}
	for n := len(v); n >= 2; n /= 2 {
		step(v, tmp, n, scale)
	}
}

// Average returns the multi-level average wavelet transform of v. The
// input is zero-padded to a power of two; v itself is not modified.
func Average(v []float64) []float64 {
	out := Pad(v)
	transform(out, 1)
	return out
}

// Haar returns the multi-level Haar wavelet transform of v: the average
// transform with every level's averages and differences multiplied by √2.
// The input is zero-padded to a power of two; v itself is not modified.
func Haar(v []float64) []float64 {
	out := Pad(v)
	transform(out, math.Sqrt2)
	return out
}

// AverageInPlace applies the multi-level average transform to v, which
// must already have power-of-two length. It is the allocation-lean form
// of Average for callers that own a padded buffer.
func AverageInPlace(v []float64) { transform(v, 1) }

// HaarInPlace applies the multi-level Haar transform to v, which must
// already have power-of-two length.
func HaarInPlace(v []float64) { transform(v, math.Sqrt2) }

// AverageInPlaceScratch is AverageInPlace with a caller-owned scratch
// buffer of len >= len(v), so repeated transforms can run allocation-free.
func AverageInPlaceScratch(v, tmp []float64) { transformScratch(v, tmp, 1) }

// HaarInPlaceScratch is HaarInPlace with a caller-owned scratch buffer of
// len >= len(v).
func HaarInPlaceScratch(v, tmp []float64) { transformScratch(v, tmp, math.Sqrt2) }

// Euclidean returns the Euclidean (L2) distance between equal-length
// vectors a and b. It panics if the lengths differ.
func Euclidean(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("wavelet: Euclidean on vectors of different length")
	}
	var sum float64
	for i := range a {
		d := a[i] - b[i]
		sum += d * d
	}
	return math.Sqrt(sum)
}

// MaxAbs returns the maximum absolute value over the concatenation of a
// and b, which the paper uses to scale the wavelet match threshold.
func MaxAbs(a, b []float64) float64 {
	var m float64
	for _, x := range a {
		if ax := math.Abs(x); ax > m {
			m = ax
		}
	}
	for _, x := range b {
		if ax := math.Abs(x); ax > m {
			m = ax
		}
	}
	return m
}
