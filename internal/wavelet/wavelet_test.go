package wavelet

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEq(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestNextPow2(t *testing.T) {
	cases := map[int]int{0: 1, 1: 1, 2: 2, 3: 4, 4: 4, 5: 8, 8: 8, 9: 16, 1023: 1024, 1024: 1024}
	for in, want := range cases {
		if got := NextPow2(in); got != want {
			t.Errorf("NextPow2(%d) = %d, want %d", in, got, want)
		}
	}
}

func TestPad(t *testing.T) {
	v := []float64{1, 2, 3}
	p := Pad(v)
	if len(p) != 4 || p[0] != 1 || p[1] != 2 || p[2] != 3 || p[3] != 0 {
		t.Errorf("Pad = %v", p)
	}
	// Pad must not alias the input.
	p[0] = 99
	if v[0] != 1 {
		t.Error("Pad aliases its input")
	}
}

// TestAverageSingleLevel checks one decomposition step by hand: for
// (a, b) the trend is (a+b)/2 and the fluctuation (a−b)/2, iterated on
// the trend half (the paper's Figure 3 construction).
func TestAverageSingleLevel(t *testing.T) {
	got := Average([]float64{6, 12, 15, 1})
	// level 1: trends (9, 8), fluctuations (-3, 7)
	// level 2: trend 8.5, fluctuation 0.5
	want := []float64{8.5, 0.5, -3, 7}
	for i := range want {
		if !almostEq(got[i], want[i], 1e-12) {
			t.Fatalf("Average = %v, want %v", got, want)
		}
	}
}

func TestHaarScaling(t *testing.T) {
	in := []float64{6, 12, 15, 1}
	avg := Average(in)
	haar := Haar(in)
	// Each Haar level multiplies the average transform's outputs by √2;
	// coefficients produced at level k differ by (√2)^k.
	if !almostEq(haar[2], avg[2]*math.Sqrt2, 1e-12) || !almostEq(haar[3], avg[3]*math.Sqrt2, 1e-12) {
		t.Errorf("level-1 fluctuations: haar %v vs avg %v", haar, avg)
	}
	if !almostEq(haar[0], avg[0]*2, 1e-12) || !almostEq(haar[1], avg[1]*2, 1e-12) {
		t.Errorf("level-2 outputs: haar %v vs avg %v", haar, avg)
	}
}

func TestTransformsPadInput(t *testing.T) {
	if got := Average([]float64{1, 2, 3}); len(got) != 4 {
		t.Errorf("Average should pad to 4, got len %d", len(got))
	}
	if got := Haar([]float64{1, 2, 3, 4, 5}); len(got) != 8 {
		t.Errorf("Haar should pad to 8, got len %d", len(got))
	}
}

func TestTransformsDoNotModifyInput(t *testing.T) {
	in := []float64{4, 8, 12, 16}
	Average(in)
	Haar(in)
	if in[0] != 4 || in[3] != 16 {
		t.Errorf("transform modified input: %v", in)
	}
}

// TestHaarPreservesEuclidean verifies the property the paper cites as the
// Haar transform's advantage: it preserves the Euclidean distance between
// vectors (it is orthonormal), while the average transform does not.
func TestHaarPreservesEuclidean(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 << (1 + rng.Intn(5)) // 2..32, power of two
		a := make([]float64, n)
		b := make([]float64, n)
		for i := range a {
			a[i] = rng.NormFloat64() * 100
			b[i] = rng.NormFloat64() * 100
		}
		orig := Euclidean(a, b)
		trans := Euclidean(Haar(a), Haar(b))
		return almostEq(orig, trans, 1e-6*(1+orig))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestAverageHalvesValues checks the paper's observation that the average
// transform's values are smaller than the Haar transform's.
func TestAverageSmallerThanHaar(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		v := make([]float64, 8)
		for i := range v {
			v[i] = rng.Float64() * 1000
		}
		return MaxAbs(Average(v), nil) <= MaxAbs(Haar(v), nil)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestEuclidean(t *testing.T) {
	if got := Euclidean([]float64{0, 3}, []float64{4, 0}); !almostEq(got, 5, 1e-12) {
		t.Errorf("Euclidean = %v, want 5", got)
	}
	if got := Euclidean(nil, nil); got != 0 {
		t.Errorf("Euclidean(nil,nil) = %v", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("Euclidean on mismatched lengths should panic")
		}
	}()
	Euclidean([]float64{1}, []float64{1, 2})
}

func TestMaxAbs(t *testing.T) {
	if got := MaxAbs([]float64{-9, 2}, []float64{3, 4}); got != 9 {
		t.Errorf("MaxAbs = %v, want 9", got)
	}
	if got := MaxAbs(nil, nil); got != 0 {
		t.Errorf("MaxAbs(nil,nil) = %v", got)
	}
}
