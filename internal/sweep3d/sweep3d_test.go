package sweep3d

import (
	"strings"
	"testing"

	"repro/internal/expert"
	"repro/internal/segment"
)

// tiny returns a fast configuration for unit tests.
func tiny() Config {
	return Config{NX: 8, NY: 8, NZ: 8, P: 2, Q: 2, MK: 4, MMI: 2, Angles: 4,
		Iters: 2, KernelNsPerCell: 1000, JitterPct: 4, Seed: 42}
}

func TestConfigValidation(t *testing.T) {
	cases := []struct {
		mutate func(*Config)
		msg    string
	}{
		{func(c *Config) { c.P = 0 }, "grid"},
		{func(c *Config) { c.NX = 1 }, "too small"},
		{func(c *Config) { c.MK = 0 }, "blocking"},
		{func(c *Config) { c.Angles = 1 }, "blocking"},
		{func(c *Config) { c.Iters = 0 }, "iteration"},
	}
	for _, tc := range cases {
		c := tiny()
		tc.mutate(&c)
		_, err := Build("x", c)
		if err == nil {
			t.Errorf("config %+v should fail", c)
			continue
		}
		if !strings.Contains(err.Error(), tc.msg) {
			t.Errorf("error %q does not mention %q", err, tc.msg)
		}
	}
}

func TestBuildAndRun(t *testing.T) {
	tr, err := Run("tiny", tiny())
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if err := tr.Validate(); err != nil {
		t.Fatalf("invalid trace: %v", err)
	}
	if tr.NumRanks() != 4 {
		t.Errorf("ranks = %d, want 4", tr.NumRanks())
	}
	if tr.NumEvents() == 0 {
		t.Fatal("no events generated")
	}
}

// TestWavefrontOrdering: in the (+1,+1) octant the corner rank (0,0)
// computes first; the far corner receives from both neighbours and can
// only start after them.
func TestWavefrontOrdering(t *testing.T) {
	c := tiny()
	tr, err := Run("tiny", c)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	// First sweep_kernel occurrence per rank.
	firstKernel := make(map[int]int64)
	for r := range tr.Ranks {
		for _, e := range tr.Ranks[r].Events {
			if e.Name == "sweep_kernel" {
				firstKernel[r] = e.Enter
				break
			}
		}
	}
	// Rank layout: rank = px*Q + py; for octant (+1,+1) rank 0 is the
	// source corner, rank 3 (px=1,py=1) downstream of both.
	if !(firstKernel[0] < firstKernel[3]) {
		t.Errorf("wavefront violated: corner %d, far %d", firstKernel[0], firstKernel[3])
	}
}

// TestPipelineWaits: downstream ranks must accumulate Late Sender waits
// in their pipeline receives — the signature sweep3d behaviour the paper
// relies on.
func TestPipelineWaits(t *testing.T) {
	tr, err := Run("tiny", tiny())
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	d, err := expert.Analyze(tr)
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	total := d.Total(expert.Key{Metric: expert.MetricLateSender, Location: "MPI_Recv"})
	if total <= 0 {
		t.Errorf("no pipeline waiting diagnosed (total %v)", total)
	}
}

// TestSegmentStructure: sweep segments must share the "sweep.1" context
// but differ in signature across octants (different neighbours/tags), the
// property that makes sweep3d hard to reduce (paper §5.2.1).
func TestSegmentStructure(t *testing.T) {
	tr, err := Run("tiny", tiny())
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	perRank, err := segment.SplitTrace(tr)
	if err != nil {
		t.Fatalf("SplitTrace: %v", err)
	}
	sigs := map[segment.Signature]bool{}
	nSweep := 0
	for _, s := range perRank[0] {
		if s.Context == "sweep.1" {
			nSweep++
			sigs[s.Sig()] = true
		}
	}
	if nSweep == 0 {
		t.Fatal("no sweep segments found")
	}
	// 8 octants with 4 distinct neighbour configurations; at least 4
	// distinct signatures per rank.
	if len(sigs) < 4 {
		t.Errorf("only %d distinct sweep signatures; expected >= 4", len(sigs))
	}
	// But repetition must dominate: far fewer signatures than segments.
	if len(sigs)*2 > nSweep {
		t.Errorf("too little repetition: %d signatures over %d segments", len(sigs), nSweep)
	}
}

func TestDeterminism(t *testing.T) {
	a, err := Run("d", tiny())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run("d", tiny())
	if err != nil {
		t.Fatal(err)
	}
	if a.EndTime() != b.EndTime() || a.NumEvents() != b.NumEvents() {
		t.Error("sweep3d generation nondeterministic")
	}
}

func TestJitterChangesWithSeed(t *testing.T) {
	c1, c2 := tiny(), tiny()
	c2.Seed = 777
	a, err := Run("s", c1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run("s", c2)
	if err != nil {
		t.Fatal(err)
	}
	if a.EndTime() == b.EndTime() {
		t.Error("different seeds produced identical end times (suspicious)")
	}
}

func TestPaperConfigs(t *testing.T) {
	if got := Input50().Ranks(); got != 8 {
		t.Errorf("Input50 ranks = %d, want 8", got)
	}
	if got := Input150().Ranks(); got != 32 {
		t.Errorf("Input150 ranks = %d, want 32", got)
	}
	if _, err := Build("sweep3d_8p", Input50()); err != nil {
		t.Errorf("Input50 invalid: %v", err)
	}
	if _, err := Build("sweep3d_32p", Input150()); err != nil {
		t.Errorf("Input150 invalid: %v", err)
	}
}
