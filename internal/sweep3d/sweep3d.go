// Package sweep3d models the ASCI Sweep3D benchmark the paper uses as its
// full application: a 1-group discrete-ordinates neutron-transport sweep
// over a structured 3-D mesh, parallelized KBA-style on a 2-D process
// grid. Each octant's wavefront pipelines blocking receives from the two
// upstream neighbours, a per-block compute kernel, and sends to the two
// downstream neighbours; iterations end with a global flux-error
// reduction. The trace-level structure — many pipeline segments whose
// message parameters differ by octant and grid position, plus mild
// deterministic compute jitter — is what exercises the reduction methods
// the way the real application did.
package sweep3d

import (
	"fmt"

	"repro/internal/mpisim"
	"repro/internal/trace"
)

// Config sizes the modeled problem.
type Config struct {
	// NX, NY, NZ are the global mesh dimensions.
	NX, NY, NZ int
	// P, Q are the process-grid dimensions (P·Q ranks); the i-axis is
	// decomposed over P, the j-axis over Q.
	P, Q int
	// MK is the k-plane block size of the pipeline.
	MK int
	// MMI is the angle block size.
	MMI int
	// Angles is the number of angles per octant.
	Angles int
	// Iters is the number of outer (timestep/convergence) iterations.
	Iters int
	// KernelNsPerCell is the compute cost per mesh cell·angle in
	// nanoseconds (the kernel duration is cells·angles·this / 1000 µs).
	KernelNsPerCell int64
	// JitterPct is the ± percentage of deterministic pseudo-random
	// variation applied to kernel durations.
	JitterPct int
	// Seed seeds the jitter generator.
	Seed uint64
}

// Input50 returns the configuration modelling the paper's 8-process run
// with input.50 (50³ mesh on a 2×4 grid).
func Input50() Config {
	return Config{NX: 50, NY: 50, NZ: 50, P: 2, Q: 4, MK: 10, MMI: 3,
		Angles: 6, Iters: 4, KernelNsPerCell: 300, JitterPct: 4, Seed: 0x5eed}
}

// Input150 returns the configuration modelling the paper's 32-process run
// with input.150 (150³ mesh on a 4×8 grid). The block counts are kept
// moderate so the generated traces stay tractable while preserving the
// deeper pipeline of the larger run.
func Input150() Config {
	return Config{NX: 150, NY: 150, NZ: 150, P: 4, Q: 8, MK: 15, MMI: 3,
		Angles: 6, Iters: 3, KernelNsPerCell: 100, JitterPct: 4, Seed: 0x5eed}
}

// Ranks returns the process count P·Q.
func (c Config) Ranks() int { return c.P * c.Q }

func (c Config) validate() error {
	switch {
	case c.P < 1 || c.Q < 1:
		return fmt.Errorf("sweep3d: process grid %dx%d invalid", c.P, c.Q)
	case c.NX < c.P || c.NY < c.Q:
		return fmt.Errorf("sweep3d: mesh %dx%dx%d too small for %dx%d grid", c.NX, c.NY, c.NZ, c.P, c.Q)
	case c.MK < 1 || c.MMI < 1 || c.Angles < c.MMI:
		return fmt.Errorf("sweep3d: bad blocking mk=%d mmi=%d angles=%d", c.MK, c.MMI, c.Angles)
	case c.Iters < 1:
		return fmt.Errorf("sweep3d: need at least one iteration")
	}
	return nil
}

// jitter is a small deterministic xorshift generator; the model must not
// depend on global randomness so traces are reproducible.
type jitter struct{ state uint64 }

func newJitter(seed uint64, rank int) *jitter {
	s := seed ^ (uint64(rank+1) * 0x9e3779b97f4a7c15)
	if s == 0 {
		s = 1
	}
	return &jitter{state: s}
}

func (j *jitter) next() uint64 {
	j.state ^= j.state << 13
	j.state ^= j.state >> 7
	j.state ^= j.state << 17
	return j.state
}

// stretch returns dur adjusted by a deterministic ±pct% wobble.
func (j *jitter) stretch(dur mpisim.Time, pct int) mpisim.Time {
	if pct <= 0 || dur <= 0 {
		return dur
	}
	span := 2*pct + 1
	off := int64(j.next()%uint64(span)) - int64(pct) // in [-pct, +pct]
	return dur + dur*off/100
}

// octant describes one sweep direction in the i/j plane (the k direction
// does not change the neighbour pattern).
type octant struct{ di, dj int }

// The eight octants: four i/j direction pairs, each swept for both k
// directions.
var octants = []octant{
	{+1, +1}, {+1, -1}, {-1, +1}, {-1, -1},
	{+1, +1}, {+1, -1}, {-1, +1}, {-1, -1},
}

// Build constructs the Sweep3D program for the given configuration.
func Build(name string, c Config) (*mpisim.Program, error) {
	if err := c.validate(); err != nil {
		return nil, err
	}
	ranks := c.Ranks()
	prog := mpisim.NewProgram(name, ranks)
	kBlocks := (c.NZ + c.MK - 1) / c.MK
	aBlocks := (c.Angles + c.MMI - 1) / c.MMI
	for rank := 0; rank < ranks; rank++ {
		px, py := rank/c.Q, rank%c.Q
		r := prog.Rank(rank)
		j := newJitter(c.Seed, rank)
		nxLocal := c.NX / c.P
		nyLocal := c.NY / c.Q
		// Boundary payloads: ghost faces of one pipeline block.
		iFaceBytes := int64(nyLocal*c.MK*c.MMI) * 8
		jFaceBytes := int64(nxLocal*c.MK*c.MMI) * 8
		kernelCells := int64(nxLocal*nyLocal) * int64(c.MK) * int64(c.MMI)
		kernelDur := mpisim.Time(kernelCells * c.KernelNsPerCell / 1000)
		if kernelDur < 1 {
			kernelDur = 1
		}

		r.InSegment("init", func() {
			r.Compute("decomp", 300)
			r.Bcast(0, 1024) // input broadcast
			r.Barrier()
		})
		for it := 0; it < c.Iters; it++ {
			r.InSegment("iter", func() {
				r.Compute("source", j.stretch(kernelDur/2, c.JitterPct))
			})
			for o, oct := range octants {
				tag := 10 + o
				// Upstream/downstream neighbours for this sweep direction.
				upI, downI := px-oct.di, px+oct.di
				upJ, downJ := py-oct.dj, py+oct.dj
				for kb := 0; kb < kBlocks; kb++ {
					for ab := 0; ab < aBlocks; ab++ {
						r.InSegment("sweep.1", func() {
							if upI >= 0 && upI < c.P {
								r.Recv(upI*c.Q+py, tag, iFaceBytes)
							}
							if upJ >= 0 && upJ < c.Q {
								r.Recv(px*c.Q+upJ, tag+100, jFaceBytes)
							}
							r.Compute("sweep_kernel", j.stretch(kernelDur, c.JitterPct))
							if downI >= 0 && downI < c.P {
								r.Send(downI*c.Q+py, tag, iFaceBytes)
							}
							if downJ >= 0 && downJ < c.Q {
								r.Send(px*c.Q+downJ, tag+100, jFaceBytes)
							}
						})
					}
				}
			}
			r.InSegment("flux", func() {
				r.Compute("flux_err", j.stretch(kernelDur/4, c.JitterPct))
				r.Allreduce(64)
			})
		}
		r.InSegment("final", func() {
			r.Barrier()
			r.Compute("report", 200)
		})
	}
	return prog, nil
}

// Run builds and simulates the configuration under the default cost
// model, returning the generated trace.
func Run(name string, c Config) (*trace.Trace, error) {
	prog, err := Build(name, c)
	if err != nil {
		return nil, err
	}
	return mpisim.Run(prog, mpisim.DefaultConfig())
}
