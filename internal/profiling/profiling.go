// Package profiling wires the standard runtime/pprof profile writers
// into the CLI commands, so matcher and engine changes are measurable
// with -cpuprofile/-memprofile flags instead of editing benchmark code.
package profiling

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins CPU profiling to cpuPath (if non-empty) and arranges a
// heap profile at memPath (if non-empty). It returns a stop function
// that must be called exactly once, before the process exits, to flush
// both profiles; with both paths empty, Start and the stop function are
// no-ops.
func Start(cpuPath, memPath string) (stop func() error, err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("profiling: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("profiling: starting CPU profile: %w", err)
		}
	}
	return func() error {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				return fmt.Errorf("profiling: closing CPU profile: %w", err)
			}
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				return fmt.Errorf("profiling: %w", err)
			}
			runtime.GC() // materialize the final live heap
			if err := pprof.WriteHeapProfile(f); err != nil {
				f.Close()
				return fmt.Errorf("profiling: writing heap profile: %w", err)
			}
			if err := f.Close(); err != nil {
				return fmt.Errorf("profiling: closing heap profile: %w", err)
			}
		}
		return nil
	}, nil
}
