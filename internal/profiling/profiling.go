// Package profiling wires the standard runtime/pprof profile writers
// into the CLI commands, so matcher and engine changes are measurable
// with -cpuprofile/-memprofile/-mutexprofile/-blockprofile flags instead
// of editing benchmark code.
package profiling

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Profiles names the output paths of the supported profile kinds; empty
// paths are skipped.
type Profiles struct {
	// CPU receives a CPU profile covering Start..stop.
	CPU string
	// Mem receives the final live-heap profile at stop.
	Mem string
	// Mutex receives the contended-mutex profile at stop; requesting it
	// sets runtime.SetMutexProfileFraction(1) for the run.
	Mutex string
	// Block receives the blocking profile (channel waits, semaphores) at
	// stop; requesting it sets runtime.SetBlockProfileRate(1) for the run.
	Block string
}

// Start begins CPU profiling to cpuPath (if non-empty) and arranges a
// heap profile at memPath (if non-empty). It returns a stop function
// that must be called exactly once, before the process exits, to flush
// both profiles; with both paths empty, Start and the stop function are
// no-ops.
func Start(cpuPath, memPath string) (stop func() error, err error) {
	return StartProfiles(Profiles{CPU: cpuPath, Mem: memPath})
}

// StartProfiles is Start over the full profile set. Mutex and block
// profiling are enabled only when their paths are set — both add
// per-event bookkeeping to the hot path, so the serve fleet and the
// pipeline run unmetered unless a profile was asked for.
func StartProfiles(p Profiles) (stop func() error, err error) {
	var cpuFile *os.File
	if p.CPU != "" {
		cpuFile, err = os.Create(p.CPU)
		if err != nil {
			return nil, fmt.Errorf("profiling: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("profiling: starting CPU profile: %w", err)
		}
	}
	if p.Mutex != "" {
		runtime.SetMutexProfileFraction(1)
	}
	if p.Block != "" {
		runtime.SetBlockProfileRate(1)
	}
	return func() error {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				return fmt.Errorf("profiling: closing CPU profile: %w", err)
			}
		}
		if p.Mem != "" {
			f, err := os.Create(p.Mem)
			if err != nil {
				return fmt.Errorf("profiling: %w", err)
			}
			runtime.GC() // materialize the final live heap
			if err := pprof.WriteHeapProfile(f); err != nil {
				f.Close()
				return fmt.Errorf("profiling: writing heap profile: %w", err)
			}
			if err := f.Close(); err != nil {
				return fmt.Errorf("profiling: closing heap profile: %w", err)
			}
		}
		if err := writeLookup("mutex", p.Mutex); err != nil {
			return err
		}
		if err := writeLookup("block", p.Block); err != nil {
			return err
		}
		return nil
	}, nil
}

// writeLookup dumps the named runtime profile to path (no-op when path
// is empty).
func writeLookup(name, path string) error {
	if path == "" {
		return nil
	}
	prof := pprof.Lookup(name)
	if prof == nil {
		return fmt.Errorf("profiling: unknown profile %q", name)
	}
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("profiling: %w", err)
	}
	if err := prof.WriteTo(f, 0); err != nil {
		f.Close()
		return fmt.Errorf("profiling: writing %s profile: %w", name, err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("profiling: closing %s profile: %w", name, err)
	}
	return nil
}
