// Package eval assembles the paper's evaluation: the catalog of 20
// workload traces (five regular benchmarks, ten interference benchmarks,
// dyn_load_balance, two scenario-diversity benchmarks — jittered halo
// exchange and bursty I/O — and two Sweep3D runs), the per-(workload,
// method, threshold) evaluation pipeline computing all four criteria,
// and the threshold/comparative studies behind every figure and table.
package eval

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/ats"
	"repro/internal/mpisim"
	"repro/internal/sweep3d"
	"repro/internal/trace"
)

// Workload names one of the evaluation's traces and knows how to build
// it.
type Workload struct {
	// Name is the trace name ("late_sender", "1to1r_1024", ...).
	Name string
	// Group is "regular", "interference", "dynamic", or "application".
	Group string
	// Ranks is the process count.
	Ranks int
	// Build constructs the program and cost model.
	Build func() (*mpisim.Program, mpisim.Config, error)
}

// fromBenchmark adapts an ats.Benchmark into a Workload.
func fromBenchmark(group string, mk func() *ats.Benchmark) Workload {
	b := mk() // build once for metadata; rebuilt on demand
	return Workload{
		Name:  b.Name,
		Group: group,
		Ranks: b.Program.NumRanks(),
		Build: func() (*mpisim.Program, mpisim.Config, error) {
			nb := mk()
			return nb.Program, nb.Config, nil
		},
	}
}

// Catalog returns the study's 20 workloads in presentation order: the
// paper's 18, then the two scenario-diversity extensions before the
// Sweep3D applications.
func Catalog() []Workload {
	var ws []Workload
	reg := ats.DefaultParams()
	for _, mk := range []func(ats.Params) *ats.Benchmark{
		ats.EarlyGather, ats.ImbalanceAtBarrier, ats.LateReceiver, ats.LateSender, ats.LateBroadcast,
	} {
		mk := mk
		ws = append(ws, fromBenchmark("regular", func() *ats.Benchmark { return mk(reg) }))
	}
	intf := ats.InterferenceParams()
	for _, sim := range []int{32, 1024} {
		for _, pat := range []ats.InterferencePattern{
			ats.PatternNto1, ats.PatternNtoN, ats.Pattern1toN, ats.Pattern1to1r, ats.Pattern1to1s,
		} {
			sim, pat := sim, pat
			ws = append(ws, fromBenchmark("interference",
				func() *ats.Benchmark { return ats.Interference(intf, pat, sim) }))
		}
	}
	dyn := ats.DefaultParams()
	dyn.Iterations = 64
	ws = append(ws, fromBenchmark("dynamic", func() *ats.Benchmark { return ats.DynLoadBalance(dyn) }))
	scen := ats.DefaultParams()
	ws = append(ws,
		fromBenchmark("scenario", func() *ats.Benchmark { return ats.HaloJitter(scen) }),
		fromBenchmark("scenario", func() *ats.Benchmark { return ats.BurstyIO(scen) }),
	)
	ws = append(ws,
		Workload{Name: "sweep3d_8p", Group: "application", Ranks: sweep3d.Input50().Ranks(),
			Build: func() (*mpisim.Program, mpisim.Config, error) {
				p, err := sweep3d.Build("sweep3d_8p", sweep3d.Input50())
				return p, mpisim.DefaultConfig(), err
			}},
		Workload{Name: "sweep3d_32p", Group: "application", Ranks: sweep3d.Input150().Ranks(),
			Build: func() (*mpisim.Program, mpisim.Config, error) {
				p, err := sweep3d.Build("sweep3d_32p", sweep3d.Input150())
				return p, mpisim.DefaultConfig(), err
			}},
	)
	return ws
}

// BenchmarkNames returns the 18 non-application workload names (the
// paper's 16 plus the two scenario extensions — the set the threshold
// sweeps of Figures 9–16 cover).
func BenchmarkNames() []string {
	var names []string
	for _, w := range Catalog() {
		if w.Group != "application" {
			names = append(names, w.Name)
		}
	}
	return names
}

// ApplicationNames returns the two Sweep3D workload names.
func ApplicationNames() []string { return []string{"sweep3d_8p", "sweep3d_32p"} }

// AllNames returns all 20 workload names in catalog order.
func AllNames() []string {
	var names []string
	for _, w := range Catalog() {
		names = append(names, w.Name)
	}
	return names
}

// Lookup finds a workload by name.
func Lookup(name string) (Workload, error) {
	for _, w := range Catalog() {
		if w.Name == name {
			return w, nil
		}
	}
	var known []string
	for _, w := range Catalog() {
		known = append(known, w.Name)
	}
	sort.Strings(known)
	return Workload{}, fmt.Errorf("eval: unknown workload %q (known: %v)", name, known)
}

// Generate builds and simulates the workload, producing its full trace.
func (w Workload) Generate() (*trace.Trace, error) {
	prog, cfg, err := w.Build()
	if err != nil {
		return nil, fmt.Errorf("eval: building %s: %w", w.Name, err)
	}
	t, err := mpisim.Run(prog, cfg)
	if err != nil {
		return nil, fmt.Errorf("eval: simulating %s: %w", w.Name, err)
	}
	return t, nil
}

// traceCache memoizes generated traces; the studies reuse each trace
// across dozens of (method, threshold) cells.
type traceCache struct {
	mu sync.Mutex
	m  map[string]*cacheEntry
}

type cacheEntry struct {
	once sync.Once
	t    *trace.Trace
	err  error
}

func newTraceCache() *traceCache { return &traceCache{m: map[string]*cacheEntry{}} }

func (c *traceCache) get(name string) (*trace.Trace, error) {
	c.mu.Lock()
	e, ok := c.m[name]
	if !ok {
		e = &cacheEntry{}
		c.m[name] = e
	}
	c.mu.Unlock()
	e.once.Do(func() {
		w, err := Lookup(name)
		if err != nil {
			e.err = err
			return
		}
		e.t, e.err = w.Generate()
	})
	return e.t, e.err
}
