package eval

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/cube"
	"repro/internal/expert"
	"repro/internal/trace"
)

// Result holds the four evaluation criteria for one
// (workload, method, threshold, match-mode) cell.
type Result struct {
	Workload  string
	Method    string
	Threshold float64
	// Mode is the match mode the reduction ran under (exact by default).
	Mode core.MatchMode

	// PctSize is the reduced file size as a percentage of the full file
	// (criterion 1).
	PctSize float64
	// Degree is the degree of matching: matches / possible matches
	// (criterion 2).
	Degree float64
	// ApproxDist is the 90th-percentile absolute timestamp error of the
	// reconstructed trace in time units (criterion 3).
	ApproxDist trace.Time
	// Retained reports whether the reconstructed trace kept the full
	// trace's performance trends (criterion 4).
	Retained bool
	// Issues explains a false Retained.
	Issues []string

	// FullBytes and ReducedBytes are the raw encoded sizes.
	FullBytes, ReducedBytes int64
	// ReduceNanos is the wall-clock time of the reduction itself
	// (core.ReduceMode), the numerator of the mode study's speedup
	// column. Zero for results scored from a pre-computed reduction.
	ReduceNanos int64
	// StoredSegments and TotalSegments describe the reduction shape.
	StoredSegments, TotalSegments int
	// Diag is the reduction's diagnosis (for chart rendering), computed
	// directly from the reduced form; it equals the diagnosis of the
	// reconstructed trace.
	Diag *expert.Diagnosis
}

// Evaluate runs the complete pipeline for one cell: reduce the full trace
// with the policy, measure sizes and matching, then score timestamp
// error, re-diagnose, and judge trend retention — all directly from the
// reduced form, never reconstructing the approximate trace.
func Evaluate(full *trace.Trace, fullDiag *expert.Diagnosis, method string, threshold float64) (*Result, error) {
	return evaluateCell(full, fullDiag, method, threshold, core.MatchModeExact, trace.EncodedSize(full))
}

// EvaluateMode is Evaluate under an explicit core.MatchMode, timing the
// reduction so mode studies can report speedup next to score loss.
func EvaluateMode(full *trace.Trace, fullDiag *expert.Diagnosis, method string, threshold float64, mode core.MatchMode) (*Result, error) {
	return evaluateCell(full, fullDiag, method, threshold, mode, trace.EncodedSize(full))
}

// evaluateCell is the shared reduce-then-score pipeline behind Evaluate
// and Runner.evaluate; the latter supplies a cached full-trace size.
func evaluateCell(full *trace.Trace, fullDiag *expert.Diagnosis, method string, threshold float64, mode core.MatchMode, fullBytes int64) (*Result, error) {
	p, err := core.NewMethod(method, threshold)
	if err != nil {
		return nil, err
	}
	begin := time.Now()
	red, err := core.ReduceMode(full, p, mode)
	elapsed := time.Since(begin)
	if err != nil {
		return nil, fmt.Errorf("eval: reducing %s with %s: %w", full.Name, method, err)
	}
	res, err := EvaluateReducedSized(full, fullDiag, red, fullBytes)
	if err != nil {
		return nil, err
	}
	res.Threshold = threshold
	res.Mode = mode
	res.ReduceNanos = elapsed.Nanoseconds()
	return res, nil
}

// EvaluateReduced scores an already-computed reduction against the full
// trace and its diagnosis, using the direct-from-reduced engine
// (expert.AnalyzeReduced, core.ApproximationDistanceReduced): scoring
// cost is proportional to representatives + execution records +
// communication events, not the full event count. Result.Threshold is
// left zero; Evaluate fills it for threshold-study cells.
func EvaluateReduced(full *trace.Trace, fullDiag *expert.Diagnosis, red *core.Reduced) (*Result, error) {
	return EvaluateReducedSized(full, fullDiag, red, trace.EncodedSize(full))
}

// EvaluateReducedSized is EvaluateReduced with the full trace's encoded
// byte size supplied by the caller; Runner caches it per workload so
// study grids don't re-encode the same full trace for every cell.
func EvaluateReducedSized(full *trace.Trace, fullDiag *expert.Diagnosis, red *core.Reduced, fullBytes int64) (*Result, error) {
	method := red.Method
	dist, err := core.ApproximationDistanceReduced(full, red, 0.9)
	if err != nil {
		return nil, fmt.Errorf("eval: approximation distance %s/%s: %w", full.Name, method, err)
	}
	diag, err := expert.AnalyzeReduced(red)
	if err != nil {
		return nil, fmt.Errorf("eval: analyzing reduced %s/%s: %w", full.Name, method, err)
	}
	return finishResult(full, fullDiag, red, fullBytes, dist, diag), nil
}

// EvaluateReducedReconstruct is the retained reconstruct-based reference
// scorer, mirroring core.ReduceSequential: it materializes
// red.Reconstruct() and re-walks every event. parity_test.go holds
// EvaluateReduced to byte-for-byte the same Result; library users should
// call EvaluateReduced.
func EvaluateReducedReconstruct(full *trace.Trace, fullDiag *expert.Diagnosis, red *core.Reduced) (*Result, error) {
	return EvaluateReducedReconstructSized(full, fullDiag, red, trace.EncodedSize(full))
}

// EvaluateReducedReconstructSized is EvaluateReducedReconstruct with the
// full trace's encoded size supplied by the caller, the reference
// counterpart of EvaluateReducedSized.
func EvaluateReducedReconstructSized(full *trace.Trace, fullDiag *expert.Diagnosis, red *core.Reduced, fullBytes int64) (*Result, error) {
	method := red.Method
	recon, err := red.Reconstruct()
	if err != nil {
		return nil, fmt.Errorf("eval: reconstructing %s/%s: %w", full.Name, method, err)
	}
	dist, err := core.ApproximationDistance(full, recon, 0.9)
	if err != nil {
		return nil, fmt.Errorf("eval: approximation distance %s/%s: %w", full.Name, method, err)
	}
	diag, err := expert.Analyze(recon)
	if err != nil {
		return nil, fmt.Errorf("eval: analyzing reconstructed %s/%s: %w", full.Name, method, err)
	}
	return finishResult(full, fullDiag, red, fullBytes, dist, diag), nil
}

// finishResult assembles the Result shared by the direct and
// reconstruct-based scorers.
func finishResult(full *trace.Trace, fullDiag *expert.Diagnosis, red *core.Reduced,
	fullBytes int64, dist trace.Time, diag *expert.Diagnosis) *Result {
	verdict := cube.Compare(fullDiag, diag, cube.DefaultCompareOptions())
	sizes := core.SizeReport{FullBytes: fullBytes, ReducedBytes: core.EncodedReducedSize(red)}
	return &Result{
		Workload:       full.Name,
		Method:         red.Method,
		PctSize:        sizes.Percent(),
		Degree:         red.DegreeOfMatching(),
		ApproxDist:     dist,
		Retained:       verdict.Retained,
		Issues:         verdict.Issues,
		FullBytes:      sizes.FullBytes,
		ReducedBytes:   sizes.ReducedBytes,
		StoredSegments: red.StoredSegments(),
		TotalSegments:  red.TotalSegments,
		Diag:           diag,
	}
}

// Runner caches workload traces, full-trace diagnoses, encoded full
// sizes, and per-cell results across evaluation cells, and runs grids of
// cells on a bounded worker pool. Every cell is computed at most once per
// Runner, so overlapping grids (the comparative study, threshold sweeps,
// retention tables) share work.
type Runner struct {
	traces *traceCache

	// workers bounds the grid pool; 0 means GOMAXPROCS.
	workers int

	mu    sync.Mutex
	diags map[string]*expert.Diagnosis
	sizes map[string]int64
	cells map[Cell]*cellEntry
}

// cellEntry memoizes one evaluated cell; once serializes concurrent
// requests for the same cell.
type cellEntry struct {
	once sync.Once
	res  *Result
	err  error
}

// NewRunner returns an empty runner.
func NewRunner() *Runner {
	return &Runner{
		traces: newTraceCache(),
		diags:  map[string]*expert.Diagnosis{},
		sizes:  map[string]int64{},
		cells:  map[Cell]*cellEntry{},
	}
}

// SetWorkers bounds the number of concurrent cell evaluations in RunGrid;
// n <= 0 restores the default (GOMAXPROCS).
func (r *Runner) SetWorkers(n int) {
	r.mu.Lock()
	r.workers = n
	r.mu.Unlock()
}

// ResetCells drops the memoized cell results while keeping the (far more
// expensive) traces, diagnoses, and sizes. Benchmarks that time repeated
// grid evaluations call it between iterations so they measure evaluation
// work, not cache hits.
func (r *Runner) ResetCells() {
	r.mu.Lock()
	r.cells = map[Cell]*cellEntry{}
	r.mu.Unlock()
}

// Trace returns the (cached) full trace of the named workload.
func (r *Runner) Trace(workload string) (*trace.Trace, error) {
	return r.traces.get(workload)
}

// FullBytes returns the (cached) encoded byte size of the workload's full
// trace — the denominator of the file-size criterion, shared across every
// cell of the workload.
func (r *Runner) FullBytes(workload string) (int64, error) {
	r.mu.Lock()
	n, ok := r.sizes[workload]
	r.mu.Unlock()
	if ok {
		return n, nil
	}
	t, err := r.Trace(workload)
	if err != nil {
		return 0, err
	}
	n = trace.EncodedSize(t)
	r.mu.Lock()
	r.sizes[workload] = n
	r.mu.Unlock()
	return n, nil
}

// Diagnosis returns the (cached) EXPERT diagnosis of the workload's full
// trace.
func (r *Runner) Diagnosis(workload string) (*expert.Diagnosis, error) {
	r.mu.Lock()
	d, ok := r.diags[workload]
	r.mu.Unlock()
	if ok {
		return d, nil
	}
	t, err := r.Trace(workload)
	if err != nil {
		return nil, err
	}
	d, err = expert.Analyze(t)
	if err != nil {
		return nil, fmt.Errorf("eval: analyzing full trace of %s: %w", workload, err)
	}
	r.mu.Lock()
	r.diags[workload] = d
	r.mu.Unlock()
	return d, nil
}

// Cell identifies one evaluation in a grid. The zero Mode is
// MatchModeExact, so pre-mode cell literals and map keys keep their
// meaning.
type Cell struct {
	Workload  string
	Method    string
	Threshold float64
	Mode      core.MatchMode
}

// WithMode returns the cell re-keyed to evaluate under mode.
func (c Cell) WithMode(mode core.MatchMode) Cell {
	c.Mode = mode
	return c
}

// DefaultCell returns the cell for a method at its paper-default
// threshold.
func DefaultCell(workload, method string) Cell {
	return Cell{Workload: workload, Method: method, Threshold: core.DefaultThresholds[method]}
}

// Run evaluates one cell, memoizing the result: repeated requests for the
// same cell (the full study's grids overlap heavily) cost one map lookup.
func (r *Runner) Run(c Cell) (*Result, error) {
	r.mu.Lock()
	e, ok := r.cells[c]
	if !ok {
		e = &cellEntry{}
		r.cells[c] = e
	}
	r.mu.Unlock()
	e.once.Do(func() { e.res, e.err = r.evaluate(c) })
	return e.res, e.err
}

// evaluate computes one cell from the caches: reduce, then score directly
// from the reduced form.
func (r *Runner) evaluate(c Cell) (*Result, error) {
	full, err := r.Trace(c.Workload)
	if err != nil {
		return nil, err
	}
	fullDiag, err := r.Diagnosis(c.Workload)
	if err != nil {
		return nil, err
	}
	fullBytes, err := r.FullBytes(c.Workload)
	if err != nil {
		return nil, err
	}
	return evaluateCell(full, fullDiag, c.Method, c.Threshold, c.Mode, fullBytes)
}

// RunGrid evaluates the given cells on a bounded worker pool (SetWorkers,
// default GOMAXPROCS) and returns results in cell order. Duplicate and
// previously evaluated cells are served from the cache; the first error
// in cell order aborts the grid.
func (r *Runner) RunGrid(cells []Cell) ([]*Result, error) {
	return r.RunGridCtx(context.Background(), cells)
}

// RunGridCtx is RunGrid under a context: once ctx is cancelled, workers
// stop claiming cells and the grid returns ctx.Err(). Cells already
// being evaluated run to completion (and stay memoized for later grids).
func (r *Runner) RunGridCtx(ctx context.Context, cells []Cell) ([]*Result, error) {
	// Pre-generate traces sequentially so the workers don't all stampede
	// into the same cache entry (sync.Once already serializes, but this
	// keeps memory growth predictable).
	seen := map[string]bool{}
	for _, c := range cells {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if !seen[c.Workload] {
			seen[c.Workload] = true
			if _, err := r.Diagnosis(c.Workload); err != nil {
				return nil, err
			}
		}
	}
	// Dedupe into a work list; the pool claims cells by atomic counter.
	uniq := make([]Cell, 0, len(cells))
	inList := map[Cell]bool{}
	for _, c := range cells {
		if !inList[c] {
			inList[c] = true
			uniq = append(uniq, c)
		}
	}
	r.mu.Lock()
	workers := r.workers
	r.mu.Unlock()
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(uniq) {
		workers = len(uniq)
	}
	if workers > 1 {
		var next atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					if ctx.Err() != nil {
						return
					}
					i := int(next.Add(1)) - 1
					if i >= len(uniq) {
						return
					}
					r.Run(uniq[i]) // memoized; errors resurface below
				}
			}()
		}
		wg.Wait()
	}
	results := make([]*Result, len(cells))
	for i, c := range cells {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		res, err := r.Run(c)
		if err != nil {
			return nil, err
		}
		results[i] = res
	}
	return results, nil
}

// GridDefault builds the comparative-study grid: every workload × every
// method at default thresholds.
func GridDefault(workloads, methods []string) []Cell {
	var cells []Cell
	for _, w := range workloads {
		for _, m := range methods {
			cells = append(cells, DefaultCell(w, m))
		}
	}
	return cells
}

// GridSweep builds the threshold-study grid for one method: every
// workload × every threshold in the method's sweep.
func GridSweep(workloads []string, method string) []Cell {
	var cells []Cell
	for _, w := range workloads {
		for _, t := range core.ThresholdSweep(method) {
			cells = append(cells, Cell{Workload: w, Method: method, Threshold: t})
		}
	}
	return cells
}
