package eval

import (
	"fmt"
	"runtime"
	"sync"

	"repro/internal/core"
	"repro/internal/cube"
	"repro/internal/expert"
	"repro/internal/trace"
)

// Result holds the four evaluation criteria for one
// (workload, method, threshold) cell.
type Result struct {
	Workload  string
	Method    string
	Threshold float64

	// PctSize is the reduced file size as a percentage of the full file
	// (criterion 1).
	PctSize float64
	// Degree is the degree of matching: matches / possible matches
	// (criterion 2).
	Degree float64
	// ApproxDist is the 90th-percentile absolute timestamp error of the
	// reconstructed trace in time units (criterion 3).
	ApproxDist trace.Time
	// Retained reports whether the reconstructed trace kept the full
	// trace's performance trends (criterion 4).
	Retained bool
	// Issues explains a false Retained.
	Issues []string

	// FullBytes and ReducedBytes are the raw encoded sizes.
	FullBytes, ReducedBytes int64
	// StoredSegments and TotalSegments describe the reduction shape.
	StoredSegments, TotalSegments int
	// Diag is the reconstructed trace's diagnosis (for chart rendering).
	Diag *expert.Diagnosis
}

// Evaluate runs the complete pipeline for one cell: reduce the full trace
// with the policy, measure sizes and matching, reconstruct, measure
// timestamp error, re-analyze, and judge trend retention against the
// full-trace diagnosis.
func Evaluate(full *trace.Trace, fullDiag *expert.Diagnosis, method string, threshold float64) (*Result, error) {
	p, err := core.NewMethod(method, threshold)
	if err != nil {
		return nil, err
	}
	red, err := core.Reduce(full, p)
	if err != nil {
		return nil, fmt.Errorf("eval: reducing %s with %s: %w", full.Name, method, err)
	}
	res, err := EvaluateReduced(full, fullDiag, red)
	if err != nil {
		return nil, err
	}
	res.Threshold = threshold
	return res, nil
}

// EvaluateReduced scores an already-computed reduction against the full
// trace and its diagnosis. Result.Threshold is left zero; Evaluate fills
// it for threshold-study cells.
func EvaluateReduced(full *trace.Trace, fullDiag *expert.Diagnosis, red *core.Reduced) (*Result, error) {
	method := red.Method
	sizes := core.Sizes(full, red)
	recon, err := red.Reconstruct()
	if err != nil {
		return nil, fmt.Errorf("eval: reconstructing %s/%s: %w", full.Name, method, err)
	}
	dist, err := core.ApproximationDistance(full, recon, 0.9)
	if err != nil {
		return nil, fmt.Errorf("eval: approximation distance %s/%s: %w", full.Name, method, err)
	}
	diag, err := expert.Analyze(recon)
	if err != nil {
		return nil, fmt.Errorf("eval: analyzing reconstructed %s/%s: %w", full.Name, method, err)
	}
	verdict := cube.Compare(fullDiag, diag, cube.DefaultCompareOptions())
	return &Result{
		Workload:       full.Name,
		Method:         method,
		PctSize:        sizes.Percent(),
		Degree:         red.DegreeOfMatching(),
		ApproxDist:     dist,
		Retained:       verdict.Retained,
		Issues:         verdict.Issues,
		FullBytes:      sizes.FullBytes,
		ReducedBytes:   sizes.ReducedBytes,
		StoredSegments: red.StoredSegments(),
		TotalSegments:  red.TotalSegments,
		Diag:           diag,
	}, nil
}

// Runner caches workload traces and full-trace diagnoses across
// evaluation cells and runs grids of cells in parallel.
type Runner struct {
	traces *traceCache

	mu    sync.Mutex
	diags map[string]*expert.Diagnosis
}

// NewRunner returns an empty runner.
func NewRunner() *Runner {
	return &Runner{traces: newTraceCache(), diags: map[string]*expert.Diagnosis{}}
}

// Trace returns the (cached) full trace of the named workload.
func (r *Runner) Trace(workload string) (*trace.Trace, error) {
	return r.traces.get(workload)
}

// Diagnosis returns the (cached) EXPERT diagnosis of the workload's full
// trace.
func (r *Runner) Diagnosis(workload string) (*expert.Diagnosis, error) {
	r.mu.Lock()
	d, ok := r.diags[workload]
	r.mu.Unlock()
	if ok {
		return d, nil
	}
	t, err := r.Trace(workload)
	if err != nil {
		return nil, err
	}
	d, err = expert.Analyze(t)
	if err != nil {
		return nil, fmt.Errorf("eval: analyzing full trace of %s: %w", workload, err)
	}
	r.mu.Lock()
	r.diags[workload] = d
	r.mu.Unlock()
	return d, nil
}

// Cell identifies one evaluation in a grid.
type Cell struct {
	Workload  string
	Method    string
	Threshold float64
}

// DefaultCell returns the cell for a method at its paper-default
// threshold.
func DefaultCell(workload, method string) Cell {
	return Cell{Workload: workload, Method: method, Threshold: core.DefaultThresholds[method]}
}

// Run evaluates one cell.
func (r *Runner) Run(c Cell) (*Result, error) {
	full, err := r.Trace(c.Workload)
	if err != nil {
		return nil, err
	}
	fullDiag, err := r.Diagnosis(c.Workload)
	if err != nil {
		return nil, err
	}
	return Evaluate(full, fullDiag, c.Method, c.Threshold)
}

// RunGrid evaluates the given cells concurrently (bounded by GOMAXPROCS
// workers) and returns results in cell order. The first error aborts the
// grid.
func (r *Runner) RunGrid(cells []Cell) ([]*Result, error) {
	// Pre-generate traces sequentially so the workers don't all stampede
	// into the same cache entry (sync.Once already serializes, but this
	// keeps memory growth predictable).
	seen := map[string]bool{}
	for _, c := range cells {
		if !seen[c.Workload] {
			seen[c.Workload] = true
			if _, err := r.Diagnosis(c.Workload); err != nil {
				return nil, err
			}
		}
	}
	results := make([]*Result, len(cells))
	errs := make([]error, len(cells))
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	var wg sync.WaitGroup
	for i, c := range cells {
		wg.Add(1)
		go func(i int, c Cell) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			results[i], errs[i] = r.Run(c)
		}(i, c)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return results, nil
}

// GridDefault builds the comparative-study grid: every workload × every
// method at default thresholds.
func GridDefault(workloads, methods []string) []Cell {
	var cells []Cell
	for _, w := range workloads {
		for _, m := range methods {
			cells = append(cells, DefaultCell(w, m))
		}
	}
	return cells
}

// GridSweep builds the threshold-study grid for one method: every
// workload × every threshold in the method's sweep.
func GridSweep(workloads []string, method string) []Cell {
	var cells []Cell
	for _, w := range workloads {
		for _, t := range core.ThresholdSweep(method) {
			cells = append(cells, Cell{Workload: w, Method: method, Threshold: t})
		}
	}
	return cells
}
