package eval

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/cube"
	"repro/internal/expert"
)

// StudyCells returns the deduplicated union of every cell the full study
// renders: the comparative grid (all workloads × methods at default
// thresholds) plus every method's threshold sweep over all workloads —
// the superset behind Figures 5–19 and the 18 retention tables. Feeding
// it to Runner.RunGrid evaluates the entire 18-workload × 9-method ×
// threshold-sweep study through one worker pool; the per-figure grids
// then render from the runner's cell cache.
func StudyCells() []Cell {
	var cells []Cell
	cells = append(cells, GridDefault(AllNames(), core.MethodNames)...)
	for _, m := range core.MethodNames {
		cells = append(cells, GridSweep(AllNames(), m)...)
	}
	uniq := make([]Cell, 0, len(cells))
	seen := map[Cell]bool{}
	for _, c := range cells {
		if !seen[c] {
			seen[c] = true
			uniq = append(uniq, c)
		}
	}
	return uniq
}

// StudyCellsMode returns StudyCells re-keyed to evaluate under mode: the
// full study grid with every reduction searched through the mode's
// index. Exact mode returns StudyCells itself.
func StudyCellsMode(mode core.MatchMode) []Cell {
	cells := StudyCells()
	if mode == core.MatchModeExact {
		return cells
	}
	for i := range cells {
		cells[i].Mode = mode
	}
	return cells
}

// ModeCells builds the match-mode study grid: every workload × method at
// default thresholds, repeated under each of the given modes. It is the
// cell set behind FormatMatchModes — the measured
// speedup-versus-score-loss comparison.
func ModeCells(workloads, methods []string, modes []core.MatchMode) []Cell {
	var cells []Cell
	for _, mode := range modes {
		for _, c := range GridDefault(workloads, methods) {
			cells = append(cells, c.WithMode(mode))
		}
	}
	return cells
}

// Index organizes grid results for table rendering.
type Index struct {
	m map[Cell]*Result
	// mode is the index's default match mode: exact-mode lookups (what
	// every figure formatter issues) are served under it, so a study run
	// entirely under an approximate mode renders through the unchanged
	// formatters.
	mode core.MatchMode
}

// NewIndex indexes results by their cell.
func NewIndex(results []*Result) *Index {
	return NewIndexMode(results, core.MatchModeExact)
}

// NewIndexMode indexes results by their cell and serves exact-mode
// lookups under the given default mode (see Index.mode).
func NewIndexMode(results []*Result, mode core.MatchMode) *Index {
	ix := &Index{m: map[Cell]*Result{}, mode: mode}
	for _, r := range results {
		ix.m[Cell{Workload: r.Workload, Method: r.Method, Threshold: r.Threshold, Mode: r.Mode}] = r
	}
	return ix
}

// Get returns the result for a cell, or nil. A cell with the zero
// (exact) mode is looked up under the index's default mode; cells with
// an explicit approximate mode are looked up as given.
func (ix *Index) Get(c Cell) *Result {
	if c.Mode == core.MatchModeExact {
		c.Mode = ix.mode
	}
	return ix.m[c]
}

// fmtThreshold prints thresholds compactly (10^k for the absDiff sweep,
// integers for iter_k).
func fmtThreshold(method string, t float64) string {
	switch method {
	case "absDiff":
		return fmt.Sprintf("%.0e", t)
	case "iter_k":
		return fmt.Sprintf("%.0f", t)
	case "iter_avg":
		return "-"
	default:
		return fmt.Sprintf("%.1f", t)
	}
}

// FormatSizeAndMatching renders the paper's Figure 5: one table of
// reduced-size percentages and one of degree-of-matching scores, rows =
// workloads, columns = methods at default thresholds.
func FormatSizeAndMatching(ix *Index, workloads, methods []string) string {
	var b strings.Builder
	b.WriteString("Figure 5a — reduced trace size, % of full trace file\n")
	writeGridTable(&b, ix, workloads, methods, func(r *Result) string {
		return fmt.Sprintf("%6.2f", r.PctSize)
	})
	b.WriteString("\nFigure 5b — degree of matching (matches / possible matches)\n")
	writeGridTable(&b, ix, workloads, methods, func(r *Result) string {
		return fmt.Sprintf("%6.3f", r.Degree)
	})
	return b.String()
}

// FormatApproxDistance renders the paper's Figure 6: the 90th-percentile
// absolute timestamp error per workload and method, in time units.
func FormatApproxDistance(ix *Index, workloads, methods []string) string {
	var b strings.Builder
	b.WriteString("Figure 6 — approximation distance (90th pct |Δt|, time units)\n")
	writeGridTable(&b, ix, workloads, methods, func(r *Result) string {
		return fmt.Sprintf("%6d", r.ApproxDist)
	})
	return b.String()
}

// FormatRetention renders a retained/lost grid for the comparative study
// (the basis of the paper's §5.2.3 per-method counts).
func FormatRetention(ix *Index, workloads, methods []string) string {
	var b strings.Builder
	b.WriteString("Retention of performance trends at default thresholds (Y = retained)\n")
	writeGridTable(&b, ix, workloads, methods, func(r *Result) string {
		if r.Retained {
			return "     Y"
		}
		return "     n"
	})
	return b.String()
}

func writeGridTable(b *strings.Builder, ix *Index, workloads, methods []string, cell func(*Result) string) {
	fmt.Fprintf(b, "%-26s", "workload")
	for _, m := range methods {
		fmt.Fprintf(b, " %9s", m)
	}
	b.WriteString("\n")
	for _, w := range workloads {
		fmt.Fprintf(b, "%-26s", w)
		for _, m := range methods {
			r := ix.Get(DefaultCell(w, m))
			if r == nil {
				fmt.Fprintf(b, " %9s", "-")
				continue
			}
			fmt.Fprintf(b, " %9s", strings.TrimSpace(cell(r)))
		}
		b.WriteString("\n")
	}
}

// FormatSummary renders the §5.2.3 ranking: per method, how many of the
// workloads retain correct performance trends at default thresholds.
func FormatSummary(ix *Index, workloads, methods []string) string {
	type score struct {
		method string
		n      int
	}
	scores := make([]score, 0, len(methods))
	for _, m := range methods {
		s := score{method: m}
		for _, w := range workloads {
			if r := ix.Get(DefaultCell(w, m)); r != nil && r.Retained {
				s.n++
			}
		}
		scores = append(scores, s)
	}
	sort.SliceStable(scores, func(i, j int) bool { return scores[i].n > scores[j].n })
	var b strings.Builder
	fmt.Fprintf(&b, "Methods ranked by correctly diagnosed traces (of %d):\n", len(workloads))
	for _, s := range scores {
		fmt.Fprintf(&b, "  %-10s %2d/%d\n", s.method, s.n, len(workloads))
	}
	return b.String()
}

// FormatTrendChart renders the paper's Figure 7/8 layout for one
// workload: the full trace's chart rows first, then one row set per
// method's reconstruction, over the full trace's significant cells.
func FormatTrendChart(r *Runner, ix *Index, workload string, methods []string) (string, error) {
	fullDiag, err := r.Diagnosis(workload)
	if err != nil {
		return "", err
	}
	keys := cube.SignificantKeys(fullDiag, cube.DefaultCompareOptions().SignificanceFrac)
	if len(keys) > 4 {
		keys = keys[:4]
	}
	labels := []string{"full"}
	diags := []*expert.Diagnosis{fullDiag}
	for _, m := range methods {
		labels = append(labels, m)
		res := ix.Get(DefaultCell(workload, m))
		if res == nil {
			diags = append(diags, nil)
			continue
		}
		diags = append(diags, res.Diag)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "KOJAK-style performance trends for %s (glyph scale: blank=0 .. @=max, '-'=negative)\n", workload)
	b.WriteString(cube.SideBySide(labels, diags, keys))
	return b.String(), nil
}

// FormatThresholdSweep renders one of the paper's Figures 9–19: for one
// method, per workload, the reduced size percentage and approximation
// distance at each threshold of the method's sweep.
func FormatThresholdSweep(ix *Index, method string, workloads []string) string {
	thresholds := core.ThresholdSweep(method)
	var b strings.Builder
	fmt.Fprintf(&b, "Threshold sweep for %s\n", method)
	fmt.Fprintf(&b, "%-26s %10s", "workload", "criterion")
	for _, t := range thresholds {
		fmt.Fprintf(&b, " %8s", fmtThreshold(method, t))
	}
	b.WriteString("\n")
	for _, w := range workloads {
		fmt.Fprintf(&b, "%-26s %10s", w, "%size")
		for _, t := range thresholds {
			r := ix.Get(Cell{Workload: w, Method: method, Threshold: t})
			if r == nil {
				fmt.Fprintf(&b, " %8s", "-")
				continue
			}
			fmt.Fprintf(&b, " %8.2f", r.PctSize)
		}
		b.WriteString("\n")
		fmt.Fprintf(&b, "%-26s %10s", "", "apxdist")
		for _, t := range thresholds {
			r := ix.Get(Cell{Workload: w, Method: method, Threshold: t})
			if r == nil {
				fmt.Fprintf(&b, " %8s", "-")
				continue
			}
			fmt.Fprintf(&b, " %8d", r.ApproxDist)
		}
		b.WriteString("\n")
	}
	return b.String()
}

// FormatMatchModes renders the match-mode study: per method and mode,
// the search structure in use, total reduction wall-clock over the
// workloads with the speedup against exact mode, and the score columns
// that reveal what approximation costs — mean degree of matching, mean
// reduced-size percentage, and how many workloads retain correct
// performance trends. Methods whose index equals the exact scan under a
// mode ("scan") are expected to show ~1× speedup and zero score delta.
func FormatMatchModes(ix *Index, workloads, methods []string, modes []core.MatchMode) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Match-mode study at default thresholds over %d workloads\n", len(workloads))
	fmt.Fprintf(&b, "%-11s %-7s %-7s %10s %8s %8s %8s %10s\n",
		"method", "mode", "index", "reduce-ms", "speedup", "degree", "%size", "retained")
	for _, m := range methods {
		p, err := core.NewMethod(m, core.DefaultThresholds[m])
		if err != nil {
			continue
		}
		var exactNanos int64
		for _, mode := range modes {
			var nanos int64
			var degree, pct float64
			retained, n := 0, 0
			for _, w := range workloads {
				r := ix.Get(DefaultCell(w, m).WithMode(mode))
				if r == nil {
					continue
				}
				n++
				nanos += r.ReduceNanos
				degree += r.Degree
				pct += r.PctSize
				if r.Retained {
					retained++
				}
			}
			if n == 0 {
				continue
			}
			if mode == core.MatchModeExact {
				exactNanos = nanos
			}
			speedup := "-"
			if mode != core.MatchModeExact && nanos > 0 && exactNanos > 0 {
				speedup = fmt.Sprintf("%.2fx", float64(exactNanos)/float64(nanos))
			}
			fmt.Fprintf(&b, "%-11s %-7s %-7s %10.1f %8s %8.3f %8.2f %7d/%d\n",
				m, mode.String(), core.IndexKind(p, mode),
				float64(nanos)/1e6, speedup, degree/float64(n), pct/float64(n), retained, n)
		}
	}
	return b.String()
}

// FormatRetentionTable renders one of the paper's appendix Tables 1–18:
// for one workload, retained/lost across every method and threshold.
func FormatRetentionTable(ix *Index, workload string, methods []string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Retention of performance trends for %s (Y = retained)\n", workload)
	for _, m := range methods {
		thresholds := core.ThresholdSweep(m)
		if thresholds == nil { // iter_avg
			thresholds = []float64{0}
		}
		fmt.Fprintf(&b, "  %-10s", m)
		for _, t := range thresholds {
			r := ix.Get(Cell{Workload: workload, Method: m, Threshold: t})
			mark := "?"
			if r != nil {
				if r.Retained {
					mark = "Y"
				} else {
					mark = "n"
				}
			}
			fmt.Fprintf(&b, " %6s:%s", fmtThreshold(m, t), mark)
		}
		b.WriteString("\n")
	}
	return b.String()
}
