package eval

import (
	"strings"
	"testing"

	"repro/internal/core"
)

func TestCatalogShape(t *testing.T) {
	ws := Catalog()
	if len(ws) != 20 {
		t.Fatalf("catalog has %d workloads, want the paper's 18 plus 2 scenario extensions", len(ws))
	}
	groups := map[string]int{}
	for _, w := range ws {
		groups[w.Group]++
	}
	want := map[string]int{"regular": 5, "interference": 10, "dynamic": 1, "scenario": 2, "application": 2}
	for g, n := range want {
		if groups[g] != n {
			t.Errorf("group %s has %d workloads, want %d", g, groups[g], n)
		}
	}
}

func TestNameLists(t *testing.T) {
	if got := len(AllNames()); got != 20 {
		t.Errorf("AllNames = %d entries, want 20", got)
	}
	if got := len(BenchmarkNames()); got != 18 {
		t.Errorf("BenchmarkNames = %d entries, want 18", got)
	}
	apps := ApplicationNames()
	if len(apps) != 2 || apps[0] != "sweep3d_8p" || apps[1] != "sweep3d_32p" {
		t.Errorf("ApplicationNames = %v", apps)
	}
}

func TestLookup(t *testing.T) {
	w, err := Lookup("late_sender")
	if err != nil {
		t.Fatalf("Lookup: %v", err)
	}
	if w.Ranks != 8 || w.Group != "regular" {
		t.Errorf("late_sender metadata: %+v", w)
	}
	if _, err := Lookup("bogus"); err == nil {
		t.Error("unknown workload must fail")
	}
}

func TestGenerateSmallWorkload(t *testing.T) {
	w, err := Lookup("late_sender")
	if err != nil {
		t.Fatal(err)
	}
	tr, err := w.Generate()
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	if tr.Name != "late_sender" || tr.NumRanks() != 8 {
		t.Errorf("trace metadata: %s %d", tr.Name, tr.NumRanks())
	}
	if err := tr.Validate(); err != nil {
		t.Errorf("generated trace invalid: %v", err)
	}
}

func TestRunnerCaches(t *testing.T) {
	r := NewRunner()
	t1, err := r.Trace("late_sender")
	if err != nil {
		t.Fatal(err)
	}
	t2, err := r.Trace("late_sender")
	if err != nil {
		t.Fatal(err)
	}
	if t1 != t2 {
		t.Error("runner did not cache the trace")
	}
	d1, err := r.Diagnosis("late_sender")
	if err != nil {
		t.Fatal(err)
	}
	d2, err := r.Diagnosis("late_sender")
	if err != nil {
		t.Fatal(err)
	}
	if d1 != d2 {
		t.Error("runner did not cache the diagnosis")
	}
}

func TestEvaluatePipeline(t *testing.T) {
	r := NewRunner()
	res, err := r.Run(DefaultCell("late_sender", "avgWave"))
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Workload != "late_sender" || res.Method != "avgWave" {
		t.Errorf("result identity: %+v", res)
	}
	if res.PctSize <= 0 || res.PctSize >= 100 {
		t.Errorf("PctSize = %v, expected meaningful reduction", res.PctSize)
	}
	if res.Degree <= 0.5 {
		t.Errorf("Degree = %v, expected high matching on a regular benchmark", res.Degree)
	}
	if !res.Retained {
		t.Errorf("avgWave must retain late_sender trends: %v", res.Issues)
	}
	if res.Diag == nil {
		t.Error("reconstructed diagnosis missing")
	}
	if res.FullBytes <= res.ReducedBytes {
		t.Error("reduction did not shrink the trace")
	}
}

func TestEvaluateUnknownMethod(t *testing.T) {
	r := NewRunner()
	if _, err := r.Run(Cell{Workload: "late_sender", Method: "bogus"}); err == nil {
		t.Error("unknown method must fail")
	}
}

func TestRunGridOrderAndParallelism(t *testing.T) {
	r := NewRunner()
	cells := []Cell{
		DefaultCell("late_sender", "absDiff"),
		DefaultCell("late_sender", "iter_k"),
		DefaultCell("late_receiver", "absDiff"),
	}
	results, err := r.RunGrid(cells)
	if err != nil {
		t.Fatalf("RunGrid: %v", err)
	}
	if len(results) != 3 {
		t.Fatalf("got %d results", len(results))
	}
	for i, c := range cells {
		if results[i].Workload != c.Workload || results[i].Method != c.Method {
			t.Errorf("result %d out of order: %+v", i, results[i])
		}
	}
}

func TestGridBuilders(t *testing.T) {
	cells := GridDefault([]string{"a", "b"}, []string{"m1", "m2", "m3"})
	if len(cells) != 6 {
		t.Errorf("GridDefault = %d cells", len(cells))
	}
	sweep := GridSweep([]string{"a"}, "relDiff")
	if len(sweep) != len(core.ThresholdSweep("relDiff")) {
		t.Errorf("GridSweep = %d cells", len(sweep))
	}
}

func TestFormatting(t *testing.T) {
	r := NewRunner()
	methods := []string{"absDiff", "iter_avg"}
	results, err := r.RunGrid(GridDefault([]string{"late_sender"}, methods))
	if err != nil {
		t.Fatal(err)
	}
	ix := NewIndex(results)

	out := FormatSizeAndMatching(ix, []string{"late_sender"}, methods)
	for _, want := range []string{"Figure 5a", "Figure 5b", "late_sender", "absDiff", "iter_avg"} {
		if !strings.Contains(out, want) {
			t.Errorf("Fig5 output missing %q", want)
		}
	}
	out = FormatApproxDistance(ix, []string{"late_sender"}, methods)
	if !strings.Contains(out, "Figure 6") {
		t.Error("Fig6 header missing")
	}
	out = FormatRetention(ix, []string{"late_sender"}, methods)
	if !strings.Contains(out, "Y") {
		t.Errorf("retention grid missing verdicts: %q", out)
	}
	out = FormatSummary(ix, []string{"late_sender"}, methods)
	if !strings.Contains(out, "ranked") {
		t.Error("summary header missing")
	}
	chart, err := FormatTrendChart(r, ix, "late_sender", methods)
	if err != nil {
		t.Fatalf("FormatTrendChart: %v", err)
	}
	for _, want := range []string{"full", "absDiff"} {
		if !strings.Contains(chart, want) {
			t.Errorf("trend chart missing %q", want)
		}
	}
	// Missing cells render as '-'.
	out = FormatApproxDistance(ix, []string{"late_sender"}, []string{"haarWave"})
	if !strings.Contains(out, "-") {
		t.Error("missing cells should render as '-'")
	}
}

func TestFormatThresholdSweepAndTable(t *testing.T) {
	r := NewRunner()
	results, err := r.RunGrid(GridSweep([]string{"late_sender"}, "iter_k"))
	if err != nil {
		t.Fatal(err)
	}
	ix := NewIndex(results)
	out := FormatThresholdSweep(ix, "iter_k", []string{"late_sender"})
	for _, want := range []string{"iter_k", "%size", "apxdist", "late_sender"} {
		if !strings.Contains(out, want) {
			t.Errorf("sweep output missing %q:\n%s", want, out)
		}
	}
	tbl := FormatRetentionTable(ix, "late_sender", []string{"iter_k", "iter_avg"})
	if !strings.Contains(tbl, "iter_k") || !strings.Contains(tbl, "iter_avg") {
		t.Errorf("table missing methods:\n%s", tbl)
	}
}

func TestFmtThreshold(t *testing.T) {
	if got := fmtThreshold("absDiff", 1000); got != "1e+03" {
		t.Errorf("absDiff threshold = %q", got)
	}
	if got := fmtThreshold("iter_k", 10); got != "10" {
		t.Errorf("iter_k threshold = %q", got)
	}
	if got := fmtThreshold("iter_avg", 0); got != "-" {
		t.Errorf("iter_avg threshold = %q", got)
	}
	if got := fmtThreshold("relDiff", 0.4); got != "0.4" {
		t.Errorf("relDiff threshold = %q", got)
	}
}
