package eval

import (
	"context"
	"errors"
	"testing"
)

func TestRunGridCtxCancelled(t *testing.T) {
	r := NewRunner()
	cells := []Cell{
		DefaultCell("late_sender", "avgWave"),
		DefaultCell("late_sender", "euclidean"),
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := r.RunGridCtx(ctx, cells); !errors.Is(err, context.Canceled) {
		t.Fatalf("RunGridCtx(cancelled) = %v, want context.Canceled", err)
	}
	// An uncancelled run over the same runner still works and memoizes.
	res, err := r.RunGridCtx(context.Background(), cells[:1])
	if err != nil {
		t.Fatalf("RunGridCtx: %v", err)
	}
	if len(res) != 1 || res[0] == nil {
		t.Fatalf("RunGridCtx returned %v", res)
	}
}
