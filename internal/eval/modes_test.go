package eval

import (
	"strings"
	"testing"

	"repro/internal/core"
)

// smokeWorkloads is the reduced eval-grid slice the CI approximate-mode
// smoke runs on: one regular benchmark and one interference benchmark.
var smokeWorkloads = []string{"late_sender", "late_receiver"}

// TestApproxModeSmoke is the approximate-mode acceptance gate: over a
// reduced eval-grid slice it holds both approximate modes to their
// documented score bounds.
//
//   - vptree: match decisions are exact, so the stored-segment count,
//     degree of matching, and reduced byte size must equal exact mode.
//   - lsh: misses only duplicate representatives, so the degree may drop
//     but never rise, size may grow but never shrink, and the loss must
//     stay under the documented bound (0.05 absolute degree).
func TestApproxModeSmoke(t *testing.T) {
	r := NewRunner()
	methods := []string{"euclidean", "chebyshev", "avgWave", "haarWave"}
	const lshDegreeLossBound = 0.05
	for _, w := range smokeWorkloads {
		for _, m := range methods {
			exact, err := r.Run(DefaultCell(w, m))
			if err != nil {
				t.Fatalf("%s/%s exact: %v", w, m, err)
			}
			vp, err := r.Run(DefaultCell(w, m).WithMode(core.MatchModeVPTree))
			if err != nil {
				t.Fatalf("%s/%s vptree: %v", w, m, err)
			}
			if vp.StoredSegments != exact.StoredSegments ||
				vp.Degree != exact.Degree ||
				vp.ReducedBytes != exact.ReducedBytes {
				t.Errorf("%s/%s vptree diverged from exact: stored %d/%d degree %.4f/%.4f bytes %d/%d",
					w, m, vp.StoredSegments, exact.StoredSegments,
					vp.Degree, exact.Degree, vp.ReducedBytes, exact.ReducedBytes)
			}
			if core.IndexKind(mustMethod(t, m), core.MatchModeLSH) != "lsh" {
				continue // lsh applies to the wavelet methods only
			}
			lsh, err := r.Run(DefaultCell(w, m).WithMode(core.MatchModeLSH))
			if err != nil {
				t.Fatalf("%s/%s lsh: %v", w, m, err)
			}
			if lsh.Degree > exact.Degree {
				t.Errorf("%s/%s lsh degree %.4f exceeds exact %.4f", w, m, lsh.Degree, exact.Degree)
			}
			if lsh.StoredSegments < exact.StoredSegments {
				t.Errorf("%s/%s lsh stored %d below exact %d", w, m, lsh.StoredSegments, exact.StoredSegments)
			}
			if loss := exact.Degree - lsh.Degree; loss > lshDegreeLossBound {
				t.Errorf("%s/%s lsh degree loss %.4f exceeds bound %.2f", w, m, loss, lshDegreeLossBound)
			}
		}
	}
}

func mustMethod(t *testing.T, name string) core.Policy {
	t.Helper()
	p, err := core.NewMethod(name, core.DefaultThresholds[name])
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestModeCellBuilders pins the shape of the mode-study grids and the
// back-compat of the zero Mode.
func TestModeCellBuilders(t *testing.T) {
	modes := []core.MatchMode{core.MatchModeExact, core.MatchModeVPTree, core.MatchModeLSH}
	cells := ModeCells([]string{"a", "b"}, []string{"m1", "m2"}, modes)
	if len(cells) != 12 {
		t.Fatalf("ModeCells = %d cells, want 12", len(cells))
	}
	if cells[0].Mode != core.MatchModeExact || cells[len(cells)-1].Mode != core.MatchModeLSH {
		t.Errorf("ModeCells mode ordering wrong: first %v last %v", cells[0].Mode, cells[len(cells)-1].Mode)
	}
	if c := DefaultCell("w", "m"); c.Mode != core.MatchModeExact {
		t.Errorf("DefaultCell mode = %v, want exact", c.Mode)
	}
	exactStudy := StudyCells()
	vpStudy := StudyCellsMode(core.MatchModeVPTree)
	if len(vpStudy) != len(exactStudy) {
		t.Fatalf("StudyCellsMode = %d cells, StudyCells = %d", len(vpStudy), len(exactStudy))
	}
	for i := range vpStudy {
		if vpStudy[i].Mode != core.MatchModeVPTree {
			t.Fatalf("StudyCellsMode cell %d mode %v", i, vpStudy[i].Mode)
		}
		if vpStudy[i].WithMode(core.MatchModeExact) != exactStudy[i] {
			t.Fatalf("StudyCellsMode cell %d diverges from StudyCells", i)
		}
	}
}

// TestFormatMatchModes runs the mode study on the smoke slice and checks
// the rendered table carries the index kinds and a speedup column.
func TestFormatMatchModes(t *testing.T) {
	r := NewRunner()
	methods := []string{"relDiff", "euclidean", "avgWave"}
	modes := []core.MatchMode{core.MatchModeExact, core.MatchModeVPTree, core.MatchModeLSH}
	results, err := r.RunGrid(ModeCells(smokeWorkloads[:1], methods, modes))
	if err != nil {
		t.Fatalf("RunGrid: %v", err)
	}
	for _, res := range results {
		if res.ReduceNanos <= 0 {
			t.Errorf("%s/%s/%s: ReduceNanos = %d, want > 0", res.Workload, res.Method, res.Mode, res.ReduceNanos)
		}
	}
	out := FormatMatchModes(NewIndex(results), smokeWorkloads[:1], methods, modes)
	for _, want := range []string{"speedup", "vptree", "lsh", "scan", "euclidean", "avgWave"} {
		if !strings.Contains(out, want) {
			t.Errorf("FormatMatchModes output missing %q:\n%s", want, out)
		}
	}
	// One row per method × mode.
	if got, want := strings.Count(out, "\n"), 2+len(methods)*len(modes); got != want {
		t.Errorf("FormatMatchModes rendered %d lines, want %d:\n%s", got, want, out)
	}
}
