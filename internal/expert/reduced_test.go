package expert

import (
	"testing"

	"repro/internal/core"
	"repro/internal/segment"
	"repro/internal/trace"
)

// seg builds a stored representative with the given relative events.
func seg(ctx string, end trace.Time, events ...trace.Event) *segment.Segment {
	return &segment.Segment{Context: ctx, End: end, Weight: 1, Events: events}
}

func compute(name string, enter, exit trace.Time) trace.Event {
	return trace.Event{Name: name, Kind: trace.KindCompute, Enter: enter, Exit: exit,
		Peer: trace.NoPeer, Root: trace.NoPeer}
}

// analyzeBoth runs the direct and reconstruct-based analyzers and fails
// on any error.
func analyzeBoth(t *testing.T, red *core.Reduced) (direct, ref *Diagnosis) {
	t.Helper()
	direct, err := AnalyzeReduced(red)
	if err != nil {
		t.Fatalf("AnalyzeReduced: %v", err)
	}
	recon, err := red.Reconstruct()
	if err != nil {
		t.Fatalf("Reconstruct: %v", err)
	}
	ref, err = Analyze(recon)
	if err != nil {
		t.Fatalf("Analyze(Reconstruct()): %v", err)
	}
	return direct, ref
}

// requireEqual asserts exact diagnosis equality.
func requireEqual(t *testing.T, direct, ref *Diagnosis) {
	t.Helper()
	if direct.Name != ref.Name || direct.NumRanks != ref.NumRanks || direct.WallTime != ref.WallTime {
		t.Fatalf("metadata differs: direct {%q %d %g} vs reference {%q %d %g}",
			direct.Name, direct.NumRanks, direct.WallTime, ref.Name, ref.NumRanks, ref.WallTime)
	}
	if len(direct.Sev) != len(ref.Sev) {
		t.Fatalf("cell sets differ: direct %v vs reference %v", direct.Keys(), ref.Keys())
	}
	for k, rv := range ref.Sev {
		dv, ok := direct.Sev[k]
		if !ok {
			t.Fatalf("direct diagnosis is missing cell %v", k)
		}
		for i := range rv {
			if dv[i] != rv[i] {
				t.Fatalf("cell %v rank %d: direct %g vs reference %g", k, i, dv[i], rv[i])
			}
		}
	}
}

// TestAnalyzeReducedBoundaryClipping plants a representative whose final
// event overruns the next execution's start, so the merged-stream clip
// crosses the execution boundary — the one place per-execution state
// matters in the scaled analysis.
func TestAnalyzeReducedBoundaryClipping(t *testing.T) {
	// Representative: work spans 0..80 but executions start every 50, so
	// each execution's final (and only) event is clipped by its successor.
	rep := seg("main.1", 80, compute("do_work", 0, 80))
	red := &core.Reduced{
		Name: "boundary", Method: "test",
		Ranks: []core.RankReduced{{
			Rank:   0,
			Stored: []*segment.Segment{rep},
			Execs:  []core.Exec{{ID: 0, Start: 0}, {ID: 0, Start: 50}, {ID: 0, Start: 100}},
		}},
		TotalSegments: 3,
	}
	direct, ref := analyzeBoth(t, red)
	requireEqual(t, direct, ref)
	// Two clipped executions (50 each) plus one final unclipped (80).
	got := direct.Total(Key{Metric: MetricExecution, Location: "do_work"})
	if got != 180 {
		t.Fatalf("do_work total = %g, want 180 (two boundary-clipped executions + one full)", got)
	}
}

// TestAnalyzeReducedEmptyAndUnexecuted covers segments with no events
// (markers only), representatives that are never executed (possible in a
// decoded file), and the wall-time contribution of end markers.
func TestAnalyzeReducedEmptyAndUnexecuted(t *testing.T) {
	red := &core.Reduced{
		Name: "sparse", Method: "test",
		Ranks: []core.RankReduced{{
			Rank: 0,
			Stored: []*segment.Segment{
				seg("init", 10), // executed, but empty
				seg("main.1", 30, compute("do_work", 5, 25)), // executed twice
				seg("orphan", 99, compute("never", 0, 9)),    // never executed
			},
			Execs: []core.Exec{{ID: 0, Start: 0}, {ID: 1, Start: 10}, {ID: 1, Start: 40}},
		}},
		TotalSegments: 3,
	}
	direct, ref := analyzeBoth(t, red)
	requireEqual(t, direct, ref)
	if _, ok := direct.Sev[Key{Metric: MetricExecution, Location: "never"}]; ok {
		t.Fatal("unexecuted representative leaked into the diagnosis")
	}
	// Last execution ends at 40+30=70 (end marker), the trace wall time.
	if direct.WallTime != 70 {
		t.Fatalf("WallTime = %g, want 70", direct.WallTime)
	}
}

// TestAnalyzeReducedBadExec mirrors Reconstruct's id validation.
func TestAnalyzeReducedBadExec(t *testing.T) {
	red := &core.Reduced{
		Name: "bad", Method: "test",
		Ranks: []core.RankReduced{{
			Rank:   0,
			Stored: []*segment.Segment{seg("main.1", 10)},
			Execs:  []core.Exec{{ID: 3, Start: 0}},
		}},
	}
	if _, err := AnalyzeReduced(red); err == nil {
		t.Fatal("AnalyzeReduced accepted an out-of-range execution id")
	}
}
