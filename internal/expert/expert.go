// Package expert is this repository's stand-in for the KOJAK EXPERT
// analyzer: it reads an event trace (original or reconstructed) and
// produces performance diagnoses — (metric, code location, per-rank
// severity) triples — for the inefficiency patterns the paper's
// benchmarks plant: Late Sender, Late Receiver, Early Gather/Reduce,
// Late Broadcast, Wait at Barrier and Wait at N×N, plus plain per-
// location execution time.
//
// Pairing is positional, as in MPI semantics: the k-th send on a
// (src,dst,tag) channel matches the k-th receive, and the k-th collective
// call of every rank forms one instance. Reduction preserves per-rank
// event order, so the pairing survives reconstruction even when
// timestamps skew.
//
// Like the real EXPERT, the analyzer behaves as a consumer of the merged,
// time-ordered event stream: an event's effective exit is clipped at the
// next event's entry on the same rank. Faithful traces are unaffected
// (events never overlap), but reconstructed traces whose representative
// segments are longer or shorter than the executions they stand in for
// produce overlaps — and then clipped, even *negative*, severities. This
// nonlinearity is what lets averaging methods (iter_avg) and coarse
// matches lose diagnoses, and it reproduces the negative severities the
// paper observed for several methods. Point-to-point and rooted-
// collective severities are additionally unclamped (e.g. Late Sender =
// send.enter − recv.enter), a second source of sign flips under skew.
package expert

import (
	"fmt"
	"sort"

	"repro/internal/trace"
)

// Metric identifiers.
const (
	// MetricExecution is inclusive time per location per rank.
	MetricExecution = "execution"
	// MetricLateSender is receiver blocking caused by a late eager send.
	MetricLateSender = "late_sender"
	// MetricLateReceiver is sender blocking in a synchronous send caused
	// by a late receive.
	MetricLateReceiver = "late_receiver"
	// MetricEarlyGather is root waiting in Gather/Reduce for the last
	// contributor (KOJAK: Early Reduce / Wait at N×1).
	MetricEarlyGather = "early_gather"
	// MetricLateBroadcast is non-root waiting in Bcast for the root.
	MetricLateBroadcast = "late_broadcast"
	// MetricWaitBarrier is time from barrier entry to the last entry.
	MetricWaitBarrier = "wait_barrier"
	// MetricWaitNxN is the same wait in N-to-N collectives.
	MetricWaitNxN = "wait_nxn"
)

// MetricNames lists all metrics the analyzer produces.
var MetricNames = []string{
	MetricExecution, MetricLateSender, MetricLateReceiver,
	MetricEarlyGather, MetricLateBroadcast, MetricWaitBarrier, MetricWaitNxN,
}

// Abbrev returns the short chart label used in the paper's figures
// (e.g. "NN" for Wait at N×N, "LS" for Late Sender).
func Abbrev(metric string) string {
	switch metric {
	case MetricExecution:
		return "EX"
	case MetricLateSender:
		return "LS"
	case MetricLateReceiver:
		return "LR"
	case MetricEarlyGather:
		return "N1"
	case MetricLateBroadcast:
		return "1N"
	case MetricWaitBarrier:
		return "BA"
	case MetricWaitNxN:
		return "NN"
	}
	return metric
}

// Key addresses one diagnosis cell: a metric at a code location.
type Key struct {
	Metric   string
	Location string
}

func (k Key) String() string { return k.Metric + "@" + k.Location }

// Diagnosis is the analyzer's output for one trace.
type Diagnosis struct {
	// Name is the analyzed trace's name.
	Name string
	// NumRanks is the process count.
	NumRanks int
	// WallTime is the trace's end time (µs), the normalization basis for
	// significance decisions.
	WallTime float64
	// Sev maps each (metric, location) to the per-rank severity vector
	// in µs. Severities of wait metrics may be negative on skewed traces.
	Sev map[Key][]float64
}

// Keys returns the diagnosis cells in deterministic (metric, location)
// order.
func (d *Diagnosis) Keys() []Key {
	keys := make([]Key, 0, len(d.Sev))
	for k := range d.Sev {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].Metric != keys[j].Metric {
			return keys[i].Metric < keys[j].Metric
		}
		return keys[i].Location < keys[j].Location
	})
	return keys
}

// Total returns the sum of the severity vector for k (0 if absent).
func (d *Diagnosis) Total(k Key) float64 {
	var sum float64
	for _, v := range d.Sev[k] {
		sum += v
	}
	return sum
}

// MaxAbs returns the largest |severity| over all cells and ranks.
func (d *Diagnosis) MaxAbs() float64 {
	var m float64
	for _, v := range d.Sev {
		for _, x := range v {
			if x < 0 {
				x = -x
			}
			if x > m {
				m = x
			}
		}
	}
	return m
}

func (d *Diagnosis) add(metric, location string, rank int, amount float64) {
	k := Key{Metric: metric, Location: location}
	v, ok := d.Sev[k]
	if !ok {
		v = make([]float64, d.NumRanks)
		d.Sev[k] = v
	}
	v[rank] += amount
}

// p2pEvent is one side of a point-to-point operation in stream order.
type p2pEvent struct {
	rank int
	ev   trace.Event
}

// chanKey identifies a point-to-point channel; positional pairing happens
// per channel.
type chanKey struct {
	src, dst int
	tag      int32
}

// commStreams collects the communication events of a trace in per-rank
// stream order, the input of the pattern scoring shared by Analyze (which
// walks a materialized event stream) and AnalyzeReduced (which walks
// representatives and execution records).
type commStreams struct {
	sends map[chanKey][]p2pEvent
	recvs map[chanKey][]p2pEvent
	colls [][]trace.Event
}

func newCommStreams(nRanks int) *commStreams {
	return &commStreams{
		sends: map[chanKey][]p2pEvent{},
		recvs: map[chanKey][]p2pEvent{},
		colls: make([][]trace.Event, nRanks),
	}
}

// sendKey and recvKey name the channel an event belongs to; positional
// pairing matches the k-th send on a channel with its k-th receive.
func sendKey(rank int, e trace.Event) chanKey {
	return chanKey{src: rank, dst: int(e.Peer), tag: e.Tag}
}
func recvKey(rank int, e trace.Event) chanKey {
	return chanKey{src: int(e.Peer), dst: rank, tag: e.Tag}
}

// add routes one (clipped) event of the given rank into the pairing
// streams; compute events are ignored. Events must arrive in per-rank
// stream order — that order is the pairing basis.
func (cs *commStreams) add(rank int, e trace.Event) {
	switch {
	case e.Kind == trace.KindSend || e.Kind == trace.KindSsend:
		k := sendKey(rank, e)
		cs.sends[k] = append(cs.sends[k], p2pEvent{rank: rank, ev: e})
	case e.Kind == trace.KindRecv:
		k := recvKey(rank, e)
		cs.recvs[k] = append(cs.recvs[k], p2pEvent{rank: rank, ev: e})
	case e.Kind.IsCollective():
		cs.colls[rank] = append(cs.colls[rank], e)
	}
}

// score runs the point-to-point and collective pattern analyses over the
// collected streams, accumulating severities into d.
func (cs *commStreams) score(d *Diagnosis) error {
	// Point-to-point patterns: positional pairing per channel.
	for k, ss := range cs.sends {
		rr := cs.recvs[k]
		if len(rr) != len(ss) {
			return fmt.Errorf("expert: channel %d->%d tag %d has %d sends but %d recvs",
				k.src, k.dst, k.tag, len(ss), len(rr))
		}
		for i := range ss {
			s, r := ss[i], rr[i]
			switch s.ev.Kind {
			case trace.KindSend:
				// Waiting cannot extend past the receive's (clipped) exit.
				wait := minTime(s.ev.Enter, r.ev.Exit) - r.ev.Enter
				d.add(MetricLateSender, r.ev.Name, r.rank, float64(wait))
			case trace.KindSsend:
				wait := minTime(r.ev.Enter, s.ev.Exit) - s.ev.Enter
				d.add(MetricLateReceiver, s.ev.Name, s.rank, float64(wait))
				// In a rendezvous the receiver also blocks when the sender
				// is late — the Late Sender pattern on the receive side.
				rwait := minTime(s.ev.Enter, r.ev.Exit) - r.ev.Enter
				d.add(MetricLateSender, r.ev.Name, r.rank, float64(rwait))
			}
		}
	}
	for k, rr := range cs.recvs {
		if _, ok := cs.sends[k]; !ok && len(rr) > 0 {
			return fmt.Errorf("expert: channel %d->%d tag %d has %d recvs but no sends",
				k.src, k.dst, k.tag, len(rr))
		}
	}

	// Collective patterns: the k-th collective call of every rank forms
	// one instance (collectives are globally ordered per communicator).
	n := 0
	for r := range cs.colls {
		if len(cs.colls[r]) > n {
			n = len(cs.colls[r])
		}
	}
	inst := make([]trace.Event, 0, len(cs.colls))
	for i := 0; i < n; i++ {
		inst = inst[:0]
		for r := range cs.colls {
			if i >= len(cs.colls[r]) {
				return fmt.Errorf("expert: rank %d has %d collective calls, others have more", r, len(cs.colls[r]))
			}
			inst = append(inst, cs.colls[r][i])
		}
		if err := analyzeCollective(d, inst); err != nil {
			return fmt.Errorf("expert: collective occurrence %d: %w", i, err)
		}
	}
	return nil
}

// clipExits returns rank r's non-marker events with each event's Exit
// clipped to the next event's Enter — the view a merged time-ordered
// consumer has of a (possibly skewed) trace. Durations can come out
// negative when reconstruction error makes an event start before its
// predecessor nominally ends.
func clipExits(rt *trace.RankTrace) []trace.Event {
	out := make([]trace.Event, 0, len(rt.Events))
	for _, e := range rt.Events {
		if e.Kind.IsMarker() {
			continue
		}
		out = append(out, e)
	}
	for i := 0; i+1 < len(out); i++ {
		if out[i].Exit > out[i+1].Enter {
			out[i].Exit = out[i+1].Enter
		}
	}
	return out
}

// Analyze runs the pattern analysis over t.
func Analyze(t *trace.Trace) (*Diagnosis, error) {
	d := &Diagnosis{
		Name:     t.Name,
		NumRanks: t.NumRanks(),
		WallTime: float64(t.EndTime()),
		Sev:      map[Key][]float64{},
	}
	cs := newCommStreams(t.NumRanks())
	for r := range t.Ranks {
		for _, e := range clipExits(&t.Ranks[r]) {
			d.add(MetricExecution, e.Name, r, float64(e.Duration()))
			cs.add(r, e)
		}
	}
	if err := cs.score(d); err != nil {
		return nil, err
	}
	return d, nil
}

// analyzeCollective scores one collective instance; inst is indexed by
// rank.
func analyzeCollective(d *Diagnosis, inst []trace.Event) error {
	kind, name, root := inst[0].Kind, inst[0].Name, inst[0].Root
	var lastEnter trace.Time
	for r, e := range inst {
		if e.Kind != kind || e.Name != name || e.Root != root {
			return fmt.Errorf("rank %d calls %s(%s root=%d), rank 0 calls %s(%s root=%d)",
				r, e.Name, e.Kind, e.Root, name, kind, root)
		}
		if e.Enter > lastEnter {
			lastEnter = e.Enter
		}
	}
	switch kind {
	case trace.KindBarrier:
		for r, e := range inst {
			d.add(MetricWaitBarrier, name, r, float64(minTime(lastEnter, e.Exit)-e.Enter))
		}
	case trace.KindAllgather, trace.KindAlltoall, trace.KindAllreduce:
		for r, e := range inst {
			d.add(MetricWaitNxN, name, r, float64(minTime(lastEnter, e.Exit)-e.Enter))
		}
	case trace.KindGather, trace.KindReduce:
		// Root waits for the last contributor; unclamped, so a root that
		// arrives last reports negative severity.
		var lastOther trace.Time
		first := true
		for r, e := range inst {
			if int32(r) == root {
				continue
			}
			if first || e.Enter > lastOther {
				lastOther = e.Enter
				first = false
			}
		}
		if !first {
			re := inst[root]
			d.add(MetricEarlyGather, name, int(root), float64(minTime(lastOther, re.Exit)-re.Enter))
		}
	case trace.KindBcast:
		rootEnter := inst[root].Enter
		for r, e := range inst {
			if int32(r) == root {
				continue
			}
			d.add(MetricLateBroadcast, name, r, float64(minTime(rootEnter, e.Exit)-e.Enter))
		}
	default:
		return fmt.Errorf("unexpected collective kind %s", kind)
	}
	return nil
}

func minTime(a, b trace.Time) trace.Time {
	if a < b {
		return a
	}
	return b
}
