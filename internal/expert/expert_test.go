package expert

import (
	"testing"

	"repro/internal/trace"
)

// builder assembles small hand-crafted traces for exact severity checks.
type builder struct {
	t *trace.Trace
}

func newBuilder(ranks int) *builder { return &builder{t: trace.New("hand", ranks)} }

func (b *builder) add(rank int, e trace.Event) *builder {
	b.t.Ranks[rank].Events = append(b.t.Ranks[rank].Events, e)
	return b
}

func (b *builder) compute(rank int, name string, enter, exit trace.Time) *builder {
	return b.add(rank, trace.Event{Name: name, Kind: trace.KindCompute, Enter: enter, Exit: exit, Peer: trace.NoPeer, Root: trace.NoPeer})
}

func (b *builder) send(rank, peer int, kind trace.EventKind, enter, exit trace.Time) *builder {
	name := map[trace.EventKind]string{
		trace.KindSend: "MPI_Send", trace.KindSsend: "MPI_Ssend", trace.KindRecv: "MPI_Recv",
	}[kind]
	return b.add(rank, trace.Event{Name: name, Kind: kind,
		Enter: enter, Exit: exit, Peer: int32(peer), Tag: 7, Bytes: 8, Root: trace.NoPeer})
}

func (b *builder) coll(rank int, kind trace.EventKind, root int32, enter, exit trace.Time) *builder {
	name := map[trace.EventKind]string{
		trace.KindBarrier: "MPI_Barrier", trace.KindBcast: "MPI_Bcast",
		trace.KindGather: "MPI_Gather", trace.KindAlltoall: "MPI_Alltoall",
		trace.KindReduce: "MPI_Reduce", trace.KindAllreduce: "MPI_Allreduce",
		trace.KindAllgather: "MPI_Allgather",
	}[kind]
	return b.add(rank, trace.Event{Name: name, Kind: kind, Enter: enter, Exit: exit,
		Peer: trace.NoPeer, Bytes: 0, Root: root})
}

func sev(t *testing.T, d *Diagnosis, metric, loc string) []float64 {
	t.Helper()
	v, ok := d.Sev[Key{Metric: metric, Location: loc}]
	if !ok {
		t.Fatalf("no severity for %s@%s; have %v", metric, loc, d.Keys())
	}
	return v
}

func TestExecutionSeverity(t *testing.T) {
	b := newBuilder(1)
	b.compute(0, "do_work", 0, 100).compute(0, "do_work", 100, 250)
	d, err := Analyze(b.t)
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	v := sev(t, d, MetricExecution, "do_work")
	if v[0] != 250 {
		t.Errorf("execution = %v, want 250", v[0])
	}
}

// TestLateSenderSeverity: recv enters at 100, the matching send at 400 —
// severity 300 at the receiver.
func TestLateSenderSeverity(t *testing.T) {
	b := newBuilder(2)
	b.compute(0, "w", 0, 400).send(0, 1, trace.KindSend, 400, 410)
	b.send(1, 0, trace.KindRecv, 100, 420)
	d, err := Analyze(b.t)
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	v := sev(t, d, MetricLateSender, "MPI_Recv")
	if v[1] != 300 {
		t.Errorf("late sender = %v, want 300 at rank 1", v)
	}
	if v[0] != 0 {
		t.Errorf("late sender at sender rank = %v, want 0", v[0])
	}
}

// TestLateSenderNegative: if the send happened before the receive was
// posted, the unclamped severity goes negative (the skew signal the
// paper's figures show as white squares).
func TestLateSenderNegative(t *testing.T) {
	b := newBuilder(2)
	b.send(0, 1, trace.KindSend, 50, 60)
	b.send(1, 0, trace.KindRecv, 200, 210)
	d, err := Analyze(b.t)
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	v := sev(t, d, MetricLateSender, "MPI_Recv")
	if v[1] != -150 {
		t.Errorf("early-sender severity = %v, want -150", v[1])
	}
}

// TestLateReceiverSeverity: a synchronous send entered at 100 whose
// receive is posted at 600 blocks the sender for 500; the receiver-side
// late_sender view must be negative.
func TestLateReceiverSeverity(t *testing.T) {
	b := newBuilder(2)
	b.send(0, 1, trace.KindSsend, 100, 620)
	b.compute(1, "w", 0, 600).send(1, 0, trace.KindRecv, 600, 620)
	d, err := Analyze(b.t)
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	v := sev(t, d, MetricLateReceiver, "MPI_Ssend")
	if v[0] != 500 {
		t.Errorf("late receiver = %v, want 500 at rank 0", v)
	}
	ls := sev(t, d, MetricLateSender, "MPI_Recv")
	if ls[1] != -500 {
		t.Errorf("receive-side view = %v, want -500", ls[1])
	}
}

// TestWaitCapByClippedExit: the late-sender wait cannot extend past the
// receive's exit.
func TestWaitCapByExit(t *testing.T) {
	b := newBuilder(2)
	b.compute(0, "w", 0, 900).send(0, 1, trace.KindSend, 900, 910)
	// The recv (claims to) exit at 300, before the send even started —
	// only possible in a skewed reconstruction.
	b.send(1, 0, trace.KindRecv, 100, 300)
	d, err := Analyze(b.t)
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	v := sev(t, d, MetricLateSender, "MPI_Recv")
	if v[1] != 200 { // min(900, 300) - 100
		t.Errorf("capped wait = %v, want 200", v[1])
	}
}

func TestWaitAtBarrier(t *testing.T) {
	b := newBuilder(3)
	enters := []trace.Time{100, 400, 250}
	for r, e := range enters {
		b.coll(r, trace.KindBarrier, -1, e, 410)
	}
	d, err := Analyze(b.t)
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	v := sev(t, d, MetricWaitBarrier, "MPI_Barrier")
	want := []float64{300, 0, 150}
	for r := range want {
		if v[r] != want[r] {
			t.Errorf("barrier wait = %v, want %v", v, want)
			break
		}
	}
}

func TestWaitNxN(t *testing.T) {
	b := newBuilder(2)
	b.coll(0, trace.KindAlltoall, -1, 100, 500)
	b.coll(1, trace.KindAlltoall, -1, 450, 500)
	d, err := Analyze(b.t)
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	v := sev(t, d, MetricWaitNxN, "MPI_Alltoall")
	if v[0] != 350 || v[1] != 0 {
		t.Errorf("NxN wait = %v, want [350 0]", v)
	}
}

// TestEarlyGather: the root (rank 0) enters at 100, the last contributor
// at 700 — root severity 600. A root arriving last yields negative.
func TestEarlyGather(t *testing.T) {
	b := newBuilder(3)
	b.coll(0, trace.KindGather, 0, 100, 710)
	b.coll(1, trace.KindGather, 0, 700, 710)
	b.coll(2, trace.KindGather, 0, 300, 310)
	d, err := Analyze(b.t)
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	v := sev(t, d, MetricEarlyGather, "MPI_Gather")
	if v[0] != 600 || v[1] != 0 || v[2] != 0 {
		t.Errorf("early gather = %v, want [600 0 0]", v)
	}
}

func TestEarlyGatherRootLate(t *testing.T) {
	b := newBuilder(2)
	b.coll(0, trace.KindGather, 0, 900, 910)
	b.coll(1, trace.KindGather, 0, 100, 110)
	d, err := Analyze(b.t)
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	v := sev(t, d, MetricEarlyGather, "MPI_Gather")
	if v[0] >= 0 {
		t.Errorf("late root should give negative early-gather severity, got %v", v[0])
	}
}

// TestLateBroadcast: the root enters at 500; non-roots at 100 and 200
// wait 400 and 300.
func TestLateBroadcast(t *testing.T) {
	b := newBuilder(3)
	b.coll(0, trace.KindBcast, 0, 500, 510)
	b.coll(1, trace.KindBcast, 0, 100, 510)
	b.coll(2, trace.KindBcast, 0, 200, 510)
	d, err := Analyze(b.t)
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	v := sev(t, d, MetricLateBroadcast, "MPI_Bcast")
	if v[0] != 0 || v[1] != 400 || v[2] != 300 {
		t.Errorf("late broadcast = %v, want [0 400 300]", v)
	}
}

// TestClipExits: a trace whose event nominally extends past its
// successor's entry (reconstruction skew) must be clipped, producing a
// shortened — possibly negative — duration.
func TestClipExits(t *testing.T) {
	b := newBuilder(1)
	b.compute(0, "a", 0, 500) // claims to run until 500
	b.compute(0, "b", 300, 400)
	d, err := Analyze(b.t)
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	if v := sev(t, d, MetricExecution, "a"); v[0] != 300 {
		t.Errorf("clipped execution = %v, want 300", v[0])
	}
	// An event starting before its predecessor nominally ended AND
	// "ending" before it started yields negative duration.
	b2 := newBuilder(1)
	b2.compute(0, "a", 0, 500)
	b2.compute(0, "b", 300, 350)
	b2.compute(0, "c", 320, 330) // b clipped to [300,320]
	d2, err := Analyze(b2.t)
	if err != nil {
		t.Fatal(err)
	}
	if v := sev(t, d2, MetricExecution, "b"); v[0] != 20 {
		t.Errorf("clipped b = %v, want 20", v[0])
	}
}

func TestMarkersIgnored(t *testing.T) {
	b := newBuilder(1)
	b.add(0, trace.Event{Name: "main.1", Kind: trace.KindMarkBegin, Peer: trace.NoPeer, Root: trace.NoPeer})
	b.compute(0, "w", 0, 100)
	b.add(0, trace.Event{Name: "main.1", Kind: trace.KindMarkEnd, Enter: 100, Exit: 100, Peer: trace.NoPeer, Root: trace.NoPeer})
	d, err := Analyze(b.t)
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	for _, k := range d.Keys() {
		if k.Location == "main.1" {
			t.Errorf("marker leaked into diagnosis: %v", k)
		}
	}
}

func TestAnalyzeErrors(t *testing.T) {
	t.Run("unbalanced p2p", func(t *testing.T) {
		b := newBuilder(2)
		b.send(0, 1, trace.KindSend, 0, 10)
		if _, err := Analyze(b.t); err == nil {
			t.Error("send without recv must fail")
		}
	})
	t.Run("recv without send", func(t *testing.T) {
		b := newBuilder(2)
		b.send(1, 0, trace.KindRecv, 0, 10)
		if _, err := Analyze(b.t); err == nil {
			t.Error("recv without send must fail")
		}
	})
	t.Run("collective count mismatch", func(t *testing.T) {
		b := newBuilder(2)
		b.coll(0, trace.KindBarrier, -1, 0, 10)
		if _, err := Analyze(b.t); err == nil {
			t.Error("missing collective participant must fail")
		}
	})
	t.Run("collective kind mismatch", func(t *testing.T) {
		b := newBuilder(2)
		b.coll(0, trace.KindBarrier, -1, 0, 10)
		b.coll(1, trace.KindAlltoall, -1, 0, 10)
		if _, err := Analyze(b.t); err == nil {
			t.Error("mixed collective kinds must fail")
		}
	})
}

func TestDiagnosisHelpers(t *testing.T) {
	b := newBuilder(2)
	b.compute(0, "w", 0, 100)
	b.compute(1, "w", 0, 300)
	d, err := Analyze(b.t)
	if err != nil {
		t.Fatal(err)
	}
	k := Key{Metric: MetricExecution, Location: "w"}
	if got := d.Total(k); got != 400 {
		t.Errorf("Total = %v, want 400", got)
	}
	if got := d.MaxAbs(); got != 300 {
		t.Errorf("MaxAbs = %v, want 300", got)
	}
	if got := d.Total(Key{Metric: "nope", Location: "x"}); got != 0 {
		t.Errorf("absent Total = %v, want 0", got)
	}
	if d.WallTime != 300 {
		t.Errorf("WallTime = %v, want 300", d.WallTime)
	}
}

func TestAbbrev(t *testing.T) {
	want := map[string]string{
		MetricExecution: "EX", MetricLateSender: "LS", MetricLateReceiver: "LR",
		MetricEarlyGather: "N1", MetricLateBroadcast: "1N",
		MetricWaitBarrier: "BA", MetricWaitNxN: "NN", "custom": "custom",
	}
	for m, w := range want {
		if got := Abbrev(m); got != w {
			t.Errorf("Abbrev(%s) = %s, want %s", m, got, w)
		}
	}
}
