// Direct-from-reduced analysis: the EXPERT diagnosis computed straight
// from a reduced trace's representatives and 12-byte execution records,
// without materializing the reconstructed event stream.
//
// The key observation: reconstruction replays a representative's events
// shifted to each execution's start time, so every execution of the same
// representative contributes the *same* per-segment severities, just
// displaced in time. Severities are built from durations and waits —
// differences of timestamps — so the time shift cancels everywhere a
// computation stays within one segment. AnalyzeReduced therefore profiles
// each representative once (per-location clipped durations, its
// communication events, its extremes) and then:
//
//   - scales the per-location execution times by the representative's
//     execution count instead of re-walking its events per execution;
//   - fixes up the one place where executions interact — the merged-stream
//     exit clipping of each execution's final event against the next
//     execution's first event — in O(execution records);
//   - places only the communication events (typically a small fraction of
//     a trace) at absolute time for the cross-rank pattern pairing, which
//     is shared verbatim with Analyze.
//
// The result is exactly equal to Analyze(Reconstruct()) — all severities
// are sums of integer microsecond differences, exact in float64 — at a
// cost proportional to representatives + execution records +
// communication events instead of the full event count. parity_test.go
// enforces the equality for every workload × method.

package expert

import (
	"fmt"
	"slices"

	"repro/internal/core"
	"repro/internal/segment"
	"repro/internal/trace"
)

// commEvent is one communication event of a representative, with the
// within-segment clip already applied to its exit.
type commEvent struct {
	ev trace.Event
	// last marks the representative's final event, whose effective exit
	// depends on the following execution and is re-clipped per execution.
	last bool
}

// repProfile caches everything AnalyzeReduced needs about one stored
// representative, so per-execution work is O(1) + O(its comm events).
type repProfile struct {
	// nEvents is the representative's event count.
	nEvents int
	// dur sums each location's clipped durations over all events except
	// the final one (whose clip is per-execution). Locations whose events
	// sum to zero keep their entry: Analyze creates a diagnosis cell for
	// every event, and so must the scaled path.
	dur map[string]int64
	// comm lists the representative's communication events in stream
	// order, times relative to the segment start.
	comm []commEvent
	// firstEnter is the first event's relative enter — the value the
	// previous execution's final exit is clipped against.
	firstEnter trace.Time
	// lastName/lastEnter/lastExit describe the final event.
	lastName            string
	lastEnter, lastExit trace.Time
	// lastIsComm marks a final event that is also a communication event.
	lastIsComm bool
	// maxExit is the latest relative stamp reconstruction would emit for
	// one execution: max(segment end marker, every event exit).
	maxExit trace.Time
}

// profileRep builds the per-representative profile. Within-segment exit
// clipping (event i's exit against event i+1's enter) is shift-invariant,
// so it is resolved here once; only the final event's clip crosses into
// the next execution.
func profileRep(s *segment.Segment) *repProfile {
	p := &repProfile{
		nEvents: len(s.Events),
		dur:     make(map[string]int64, 4),
		maxExit: s.End,
	}
	for i, e := range s.Events {
		if e.Exit > p.maxExit {
			p.maxExit = e.Exit
		}
		clipped := e
		if i+1 < len(s.Events) {
			if next := s.Events[i+1].Enter; clipped.Exit > next {
				clipped.Exit = next
			}
			p.dur[e.Name] += clipped.Exit - clipped.Enter
		} else {
			p.lastName, p.lastEnter, p.lastExit = e.Name, e.Enter, e.Exit
			p.lastIsComm = e.Kind.IsPointToPoint() || e.Kind.IsCollective()
		}
		if e.Kind.IsPointToPoint() || e.Kind.IsCollective() {
			p.comm = append(p.comm, commEvent{ev: clipped, last: i+1 == len(s.Events)})
		}
	}
	if p.nEvents > 0 {
		p.firstEnter = s.Events[0].Enter
	}
	return p
}

// AnalyzeReduced runs the pattern analysis directly over a reduced trace,
// producing the same Diagnosis Analyze would produce for
// r.Reconstruct() without building the reconstruction. See the package
// comment above for the algorithm; Analyze remains the reference path.
func AnalyzeReduced(r *core.Reduced) (*Diagnosis, error) {
	d := &Diagnosis{
		Name:     r.Name,
		NumRanks: len(r.Ranks),
		Sev:      map[Key][]float64{},
	}
	cs := newCommStreams(len(r.Ranks))
	var wall trace.Time
	for rank := range r.Ranks {
		rr := &r.Ranks[rank]

		// Count executions per representative and profile each
		// representative that actually executes.
		counts := make([]int64, len(rr.Stored))
		for _, ex := range rr.Execs {
			if ex.ID < 0 || ex.ID >= len(rr.Stored) {
				return nil, fmt.Errorf("expert: rank %d exec references segment %d of %d",
					rank, ex.ID, len(rr.Stored))
			}
			counts[ex.ID]++
		}
		profiles := make([]*repProfile, len(rr.Stored))
		for id := range rr.Stored {
			if counts[id] > 0 {
				profiles[id] = profileRep(rr.Stored[id])
			}
		}

		// Scaled body contribution: every execution of a representative
		// adds the same within-segment clipped durations. The same pass
		// presizes the rank's pairing streams — exact counts fall out of
		// profile × execution-count, so the placement loop below never
		// regrows a slice.
		totals := map[string]int64{}
		collN := 0
		for id, p := range profiles {
			if p == nil {
				continue
			}
			for loc, sum := range p.dur {
				totals[loc] += sum * counts[id]
			}
			n := int(counts[id])
			for _, ce := range p.comm {
				switch {
				case ce.ev.Kind == trace.KindSend || ce.ev.Kind == trace.KindSsend:
					k := sendKey(rank, ce.ev)
					cs.sends[k] = slices.Grow(cs.sends[k], n)
				case ce.ev.Kind == trace.KindRecv:
					k := recvKey(rank, ce.ev)
					cs.recvs[k] = slices.Grow(cs.recvs[k], n)
				case ce.ev.Kind.IsCollective():
					collN += n
				}
			}
		}
		if collN > 0 {
			cs.colls[rank] = make([]trace.Event, 0, collN)
		}

		// nextEnter[k] is the absolute enter of the first event after
		// execution k in the merged (marker-free) stream — the clip bound
		// for execution k's final event. Computed by a backward sweep that
		// skips executions of empty representatives.
		nextEnter := make([]trace.Time, len(rr.Execs))
		hasNext := make([]bool, len(rr.Execs))
		var curEnter trace.Time
		var curHas bool
		for k := len(rr.Execs) - 1; k >= 0; k-- {
			nextEnter[k], hasNext[k] = curEnter, curHas
			if p := profiles[rr.Execs[k].ID]; p.nEvents > 0 {
				curEnter, curHas = rr.Execs[k].Start+p.firstEnter, true
			}
		}

		// Per-execution pass: O(1) boundary fixup plus communication
		// placement. Compute events are never touched here.
		for k, ex := range rr.Execs {
			p := profiles[ex.ID]
			if w := ex.Start + p.maxExit; w > wall {
				wall = w
			}
			if p.nEvents == 0 {
				continue
			}
			lastExit := ex.Start + p.lastExit
			if hasNext[k] && lastExit > nextEnter[k] {
				lastExit = nextEnter[k]
			}
			totals[p.lastName] += lastExit - (ex.Start + p.lastEnter)
			for _, ce := range p.comm {
				abs := ce.ev
				abs.Enter += ex.Start
				if ce.last {
					abs.Exit = lastExit
				} else {
					abs.Exit += ex.Start
				}
				cs.add(rank, abs)
			}
		}

		for loc, total := range totals {
			d.add(MetricExecution, loc, rank, float64(total))
		}
	}
	d.WallTime = float64(wall)
	if err := cs.score(d); err != nil {
		return nil, err
	}
	return d, nil
}
