// Package cube plays the role of KOJAK's CUBE viewer and its
// cross-experiment algebra for this study: it renders per-rank severity
// charts like the paper's Figures 4/7/8 and, more importantly, decides
// whether a reconstructed trace's diagnosis retains the performance
// trends of the full trace. The paper applied a subjective test under
// fixed guidelines; Compare encodes those guidelines as explicit rules so
// every method faces identical criteria.
package cube

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/expert"
)

// CompareOptions tunes the retention-of-trends rules.
type CompareOptions struct {
	// SignificanceFrac is the fraction of aggregate wall time
	// (NumRanks × WallTime) a cell's |total severity| must reach to be a
	// "performance trend" an analyst would act on.
	SignificanceFrac float64
	// TotalTolerance is the allowed relative deviation of a significant
	// cell's total severity.
	TotalTolerance float64
	// PatternThreshold is the minimum similarity (normalized dot product)
	// between full and reconstructed per-rank severity patterns.
	PatternThreshold float64
	// RankTolerance is the allowed per-rank severity deviation, relative
	// to the cell's largest full-trace rank severity — the paper's
	// "approximately the same severity ... for each thread" requirement.
	RankTolerance float64
	// SpuriousFactor scales the significance bar for diagnoses that
	// appear only in the reconstruction; a reconstructed-only cell above
	// SpuriousFactor × significance fails the verdict.
	SpuriousFactor float64
}

// DefaultCompareOptions returns the guideline parameters used by the
// evaluation: 1.5% significance, 35% total tolerance, 0.8 pattern
// similarity, 2× spurious bar.
func DefaultCompareOptions() CompareOptions {
	return CompareOptions{
		SignificanceFrac: 0.015,
		TotalTolerance:   0.35,
		PatternThreshold: 0.80,
		RankTolerance:    0.50,
		SpuriousFactor:   2,
	}
}

// Verdict is the outcome of a retention comparison.
type Verdict struct {
	// Retained reports whether an analyst reading the reconstructed
	// diagnosis would reach the same conclusions as from the full one.
	Retained bool
	// Issues lists every guideline violation found (empty when retained).
	Issues []string
}

func (v Verdict) String() string {
	if v.Retained {
		return "retained"
	}
	return "lost: " + strings.Join(v.Issues, "; ")
}

// significance returns the severity bar for d under opts.
func significance(d *expert.Diagnosis, opts CompareOptions) float64 {
	return opts.SignificanceFrac * d.WallTime * float64(d.NumRanks)
}

// patternSimilarity measures how well the shape of the reconstructed
// per-rank severity vector matches the full one: the cosine similarity of
// the two vectors. It is 1 for identical shapes, ~0 for unrelated ones,
// and negative when the disparity inverts (the failure the paper calls
// "losing the expected disparity").
func patternSimilarity(full, approx []float64) float64 {
	var dot, nf, na float64
	for i := range full {
		dot += full[i] * approx[i]
		nf += full[i] * full[i]
		na += approx[i] * approx[i]
	}
	if nf == 0 || na == 0 {
		// One vector is all-zero: identical iff both are.
		if nf == na {
			return 1
		}
		return 0
	}
	return dot / math.Sqrt(nf*na)
}

// Compare applies the retention-of-performance-trends guidelines
// (paper §4.3.4): every significant diagnosis of the full trace must
// appear in the reconstruction with the same sign, a comparable total,
// and the same cross-rank disparity pattern; and the reconstruction must
// not invent significant diagnoses of its own.
func Compare(full, approx *expert.Diagnosis, opts CompareOptions) Verdict {
	var issues []string
	sig := significance(full, opts)
	if sig <= 0 {
		sig = 1
	}
	for _, k := range full.Keys() {
		if k.Metric == expert.MetricExecution {
			// Execution time carries trends only through its cross-rank
			// disparity (the paper's do_work columns): compare the
			// mean-centered severity vectors.
			if issue := compareDisparity(k, full.Sev[k], approx.Sev[k], sig, opts); issue != "" {
				issues = append(issues, issue)
			}
			continue
		}
		fTotal := full.Total(k)
		if math.Abs(fTotal) < sig {
			continue
		}
		aVec, ok := approx.Sev[k]
		if !ok {
			issues = append(issues, fmt.Sprintf("%s: diagnosis missing", k))
			continue
		}
		aTotal := approx.Total(k)
		if fTotal*aTotal < 0 {
			issues = append(issues, fmt.Sprintf("%s: severity sign flipped (%.0f vs %.0f)", k, fTotal, aTotal))
			continue
		}
		if rel := math.Abs(aTotal-fTotal) / math.Abs(fTotal); rel > opts.TotalTolerance {
			issues = append(issues, fmt.Sprintf("%s: total severity off by %.0f%% (%.0f vs %.0f)",
				k, 100*rel, fTotal, aTotal))
		}
		if ps := patternSimilarity(full.Sev[k], aVec); ps < opts.PatternThreshold {
			issues = append(issues, fmt.Sprintf("%s: rank disparity not preserved (similarity %.2f)", k, ps))
		}
		if opts.RankTolerance > 0 {
			fVec := full.Sev[k]
			var maxF, worst float64
			worstRank := -1
			for r := range fVec {
				if af := math.Abs(fVec[r]); af > maxF {
					maxF = af
				}
				if d := math.Abs(aVec[r] - fVec[r]); d > worst {
					worst, worstRank = d, r
				}
			}
			if maxF > 0 && worst > opts.RankTolerance*maxF {
				issues = append(issues, fmt.Sprintf("%s: rank %d severity off by %.0f (%.0f%% of cell max)",
					k, worstRank, worst, 100*worst/maxF))
			}
		}
	}
	// Spurious diagnoses: significant in the reconstruction, absent or
	// insignificant in the full trace.
	for _, k := range approx.Keys() {
		if k.Metric == expert.MetricExecution {
			continue
		}
		aTotal := approx.Total(k)
		if math.Abs(aTotal) < opts.SpuriousFactor*sig {
			continue
		}
		if math.Abs(full.Total(k)) < sig {
			issues = append(issues, fmt.Sprintf("%s: spurious diagnosis (total %.0f)", k, aTotal))
		}
	}
	return Verdict{Retained: len(issues) == 0, Issues: issues}
}

// centered returns v minus its mean.
func centered(v []float64) []float64 {
	var mean float64
	for _, x := range v {
		mean += x
	}
	mean /= float64(len(v))
	out := make([]float64, len(v))
	for i, x := range v {
		out[i] = x - mean
	}
	return out
}

// compareDisparity judges an execution-time cell: the reconstructed
// trace must preserve the cross-rank disparity (who does more work), the
// signal an analyst reads from the paper's do_work columns. Totals are
// not judged — reconstruction preserves event counts, so totals only
// drift through clipping.
func compareDisparity(k expert.Key, fVec, aVec []float64, sig float64, opts CompareOptions) string {
	if len(fVec) == 0 || len(aVec) != len(fVec) {
		return ""
	}
	fC := centered(fVec)
	var spread float64
	for _, x := range fC {
		spread += math.Abs(x)
	}
	if spread < sig {
		return "" // no disparity worth preserving
	}
	aC := centered(aVec)
	if ps := patternSimilarity(fC, aC); ps < opts.PatternThreshold {
		return fmt.Sprintf("%s: work disparity not preserved (similarity %.2f)", k, ps)
	}
	return ""
}

// severity glyphs from zero to max; negative severities render as '-',
// matching the paper's "white squares indicate negative severities". The
// ramp deliberately avoids '-' so negatives are unambiguous.
const glyphs = " .:;=+*#%@"

// glyph maps a severity to a chart character given the chart's scale.
// Values within half a glyph step of zero render blank (the paper's gray
// "0 or close to 0"); anything more negative renders '-' (its white
// squares).
func glyph(sev, scale float64) byte {
	if scale <= 0 {
		return glyphs[0]
	}
	step := scale / float64(2*(len(glyphs)-1))
	if sev > -step && sev < step {
		return glyphs[0]
	}
	if sev < 0 {
		return '-'
	}
	i := int(sev / scale * float64(len(glyphs)-1))
	if i >= len(glyphs) {
		i = len(glyphs) - 1
	}
	return glyphs[i]
}

// Chart renders one diagnosis row per (metric, location) cell whose
// |total| exceeds minFrac of the chart scale: the metric abbreviation,
// the location, and one glyph per rank — the textual analogue of the
// paper's Figure 4 representation. Rows are scaled to the diagnosis's
// maximum absolute severity.
func Chart(d *expert.Diagnosis, minFrac float64) string {
	scale := d.MaxAbs()
	var b strings.Builder
	fmt.Fprintf(&b, "%-28s ranks 0..%d (scale %.0fus)\n", d.Name, d.NumRanks-1, scale)
	for _, k := range d.Keys() {
		if k.Metric == expert.MetricExecution {
			continue
		}
		total := math.Abs(d.Total(k))
		if scale > 0 && total < minFrac*scale {
			continue
		}
		fmt.Fprintf(&b, "  %-2s %-20s |", expert.Abbrev(k.Metric), k.Location)
		for _, sev := range d.Sev[k] {
			b.WriteByte(glyph(sev, scale))
		}
		b.WriteString("|\n")
	}
	return b.String()
}

// SideBySide renders the same chart rows for several diagnoses (the full
// trace first, then one per method), keyed by the union of their
// significant cells — the layout of the paper's Figures 7 and 8.
func SideBySide(labels []string, diags []*expert.Diagnosis, keys []expert.Key) string {
	if len(labels) != len(diags) {
		panic("cube: SideBySide labels/diags length mismatch")
	}
	var scale float64
	for _, d := range diags {
		if d == nil {
			continue
		}
		if m := d.MaxAbs(); m > scale {
			scale = m
		}
	}
	var b strings.Builder
	for i, d := range diags {
		fmt.Fprintf(&b, "%-12s", labels[i])
		if d == nil {
			b.WriteString(" (failed)\n")
			continue
		}
		for _, k := range keys {
			fmt.Fprintf(&b, "  %s@%s |", expert.Abbrev(k.Metric), k.Location)
			for _, sev := range d.Sev[k] {
				b.WriteByte(glyph(sev, scale))
			}
			b.WriteString("|")
		}
		b.WriteString("\n")
	}
	return b.String()
}

// SignificantKeys returns d's non-execution cells with |total| >= frac of
// aggregate wall time, in deterministic order — the cells an analyst
// would look at first.
func SignificantKeys(d *expert.Diagnosis, frac float64) []expert.Key {
	bar := frac * d.WallTime * float64(d.NumRanks)
	var out []expert.Key
	for _, k := range d.Keys() {
		if k.Metric == expert.MetricExecution {
			continue
		}
		if math.Abs(d.Total(k)) >= bar {
			out = append(out, k)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		return math.Abs(d.Total(out[i])) > math.Abs(d.Total(out[j]))
	})
	return out
}
