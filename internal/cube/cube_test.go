package cube

import (
	"strings"
	"testing"

	"repro/internal/expert"
)

// diag builds a diagnosis with one wait cell and one execution cell.
func diag(wall float64, waits, exec []float64) *expert.Diagnosis {
	d := &expert.Diagnosis{
		Name:     "d",
		NumRanks: len(waits),
		WallTime: wall,
		Sev:      map[expert.Key][]float64{},
	}
	if waits != nil {
		d.Sev[expert.Key{Metric: expert.MetricLateSender, Location: "MPI_Recv"}] = waits
	}
	if exec != nil {
		d.Sev[expert.Key{Metric: expert.MetricExecution, Location: "do_work"}] = exec
	}
	return d
}

func TestPatternSimilarity(t *testing.T) {
	cases := []struct {
		a, b []float64
		want float64
		tol  float64
	}{
		{[]float64{1, 2, 3}, []float64{1, 2, 3}, 1, 1e-12},
		{[]float64{1, 2, 3}, []float64{2, 4, 6}, 1, 1e-12}, // scale-invariant
		{[]float64{1, 0}, []float64{0, 1}, 0, 1e-12},
		{[]float64{1, 2}, []float64{-1, -2}, -1, 1e-12}, // inverted
		{[]float64{0, 0}, []float64{0, 0}, 1, 0},        // both zero: identical
		{[]float64{0, 0}, []float64{1, 0}, 0, 0},        // one zero: unrelated
	}
	for _, c := range cases {
		got := patternSimilarity(c.a, c.b)
		if got < c.want-c.tol || got > c.want+c.tol {
			t.Errorf("patternSimilarity(%v, %v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestCompareIdenticalRetained(t *testing.T) {
	full := diag(10000, []float64{0, 5000, 0, 5000}, nil)
	v := Compare(full, full, DefaultCompareOptions())
	if !v.Retained {
		t.Errorf("identical diagnoses must be retained: %v", v)
	}
	if v.String() != "retained" {
		t.Errorf("String = %q", v.String())
	}
}

func TestCompareMissingCell(t *testing.T) {
	full := diag(10000, []float64{0, 5000, 0, 5000}, nil)
	approx := diag(10000, nil, nil)
	v := Compare(full, approx, DefaultCompareOptions())
	if v.Retained {
		t.Error("missing significant diagnosis must fail")
	}
	if !strings.Contains(v.String(), "missing") {
		t.Errorf("issues = %v", v.Issues)
	}
}

func TestCompareSignFlip(t *testing.T) {
	full := diag(10000, []float64{0, 5000, 0, 5000}, nil)
	approx := diag(10000, []float64{0, -5000, 0, -5000}, nil)
	v := Compare(full, approx, DefaultCompareOptions())
	if v.Retained || !strings.Contains(v.String(), "sign") {
		t.Errorf("sign flip not caught: %v", v)
	}
}

func TestCompareTotalOff(t *testing.T) {
	full := diag(10000, []float64{0, 5000, 0, 5000}, nil)
	approx := diag(10000, []float64{0, 2000, 0, 2000}, nil)
	v := Compare(full, approx, DefaultCompareOptions())
	if v.Retained || !strings.Contains(v.String(), "total severity") {
		t.Errorf("total deviation not caught: %v", v)
	}
}

func TestCompareDisparityInverted(t *testing.T) {
	full := diag(10000, []float64{100, 8000, 100, 8000}, nil)
	// Same total, disparity moved to the other ranks.
	approx := diag(10000, []float64{8000, 100, 8000, 100}, nil)
	v := Compare(full, approx, DefaultCompareOptions())
	if v.Retained {
		t.Errorf("inverted disparity must fail: %v", v)
	}
}

func TestCompareRankTolerance(t *testing.T) {
	full := diag(100000, []float64{10000, 10000, 10000, 10000}, nil)
	// Total off by 12.5% (passes), pattern similar, but one rank off 50%+.
	approx := diag(100000, []float64{4000, 11000, 10000, 10000}, nil)
	v := Compare(full, approx, DefaultCompareOptions())
	if v.Retained || !strings.Contains(v.String(), "rank") {
		t.Errorf("per-rank deviation not caught: %v", v)
	}
}

func TestCompareInsignificantIgnored(t *testing.T) {
	// A tiny cell (below significance) may be arbitrarily wrong.
	full := diag(1e6, []float64{0, 10, 0, 0}, nil)
	approx := diag(1e6, []float64{0, -10, 0, 0}, nil)
	v := Compare(full, approx, DefaultCompareOptions())
	if !v.Retained {
		t.Errorf("insignificant cells must not fail the verdict: %v", v)
	}
}

func TestCompareSpurious(t *testing.T) {
	full := diag(10000, nil, nil)
	approx := diag(10000, []float64{0, 90000, 0, 0}, nil)
	v := Compare(full, approx, DefaultCompareOptions())
	if v.Retained || !strings.Contains(v.String(), "spurious") {
		t.Errorf("spurious diagnosis not caught: %v", v)
	}
}

func TestCompareExecutionDisparity(t *testing.T) {
	// Planted work disparity: upper ranks do 2x work.
	full := diag(10000, nil, []float64{10000, 10000, 20000, 20000})
	flat := diag(10000, nil, []float64{15000, 15000, 15000, 15000})
	v := Compare(full, flat, DefaultCompareOptions())
	if v.Retained || !strings.Contains(v.String(), "disparity") {
		t.Errorf("lost work disparity not caught: %v", v)
	}
	// Preserved disparity passes even when totals shift a little.
	kept := diag(10000, nil, []float64{10500, 10400, 20300, 20600})
	if v := Compare(full, kept, DefaultCompareOptions()); !v.Retained {
		t.Errorf("preserved disparity wrongly failed: %v", v)
	}
	// Uniform execution (no disparity) is never judged.
	uniform := diag(10000, nil, []float64{10000, 10000, 10000, 10000})
	shifted := diag(10000, nil, []float64{11000, 9000, 10500, 9500})
	if v := Compare(uniform, shifted, DefaultCompareOptions()); !v.Retained {
		t.Errorf("insignificant disparity judged: %v", v)
	}
}

func TestChart(t *testing.T) {
	d := diag(10000, []float64{0, 5000, -2000, 2500}, nil)
	out := Chart(d, 0)
	if !strings.Contains(out, "LS") || !strings.Contains(out, "MPI_Recv") {
		t.Errorf("chart missing metric row: %q", out)
	}
	// Negative severities render as '-'.
	row := out[strings.Index(out, "|"):]
	if !strings.Contains(row, "-") {
		t.Errorf("negative severity not rendered: %q", out)
	}
}

func TestGlyphNearZeroBlank(t *testing.T) {
	// Values within half a glyph step of zero render blank, either sign.
	d := diag(10000, []float64{10, -10, 5000, 0}, nil)
	out := Chart(d, 0)
	row := out[strings.Index(out, "|"):]
	if strings.Contains(row, "-") {
		t.Errorf("tiny negative should render blank: %q", row)
	}
}

func TestChartMinFrac(t *testing.T) {
	d := &expert.Diagnosis{Name: "d", NumRanks: 2, WallTime: 1000, Sev: map[expert.Key][]float64{
		{Metric: expert.MetricLateSender, Location: "big"}:   {1000, 1000},
		{Metric: expert.MetricLateSender, Location: "small"}: {1, 0},
	}}
	out := Chart(d, 0.05)
	if !strings.Contains(out, "big") || strings.Contains(out, "small") {
		t.Errorf("minFrac filtering wrong: %q", out)
	}
}

func TestSideBySide(t *testing.T) {
	full := diag(10000, []float64{0, 5000, 0, 5000}, nil)
	approx := diag(10000, []float64{0, 4000, 0, 4000}, nil)
	keys := SignificantKeys(full, 0.015)
	if len(keys) != 1 {
		t.Fatalf("SignificantKeys = %v", keys)
	}
	out := SideBySide([]string{"full", "m1", "m2"}, []*expert.Diagnosis{full, approx, nil}, keys)
	if !strings.Contains(out, "full") || !strings.Contains(out, "m1") {
		t.Errorf("labels missing: %q", out)
	}
	if !strings.Contains(out, "(failed)") {
		t.Errorf("nil diagnosis not marked failed: %q", out)
	}
	defer func() {
		if recover() == nil {
			t.Error("mismatched labels must panic")
		}
	}()
	SideBySide([]string{"a"}, nil, keys)
}

func TestSignificantKeysOrder(t *testing.T) {
	d := &expert.Diagnosis{Name: "d", NumRanks: 1, WallTime: 1000, Sev: map[expert.Key][]float64{
		{Metric: expert.MetricLateSender, Location: "a"}:    {100},
		{Metric: expert.MetricWaitBarrier, Location: "b"}:   {900},
		{Metric: expert.MetricExecution, Location: "exec"}:  {99999},
		{Metric: expert.MetricLateBroadcast, Location: "c"}: {1}, // insignificant
	}}
	keys := SignificantKeys(d, 0.015)
	if len(keys) != 2 {
		t.Fatalf("keys = %v", keys)
	}
	if keys[0].Location != "b" || keys[1].Location != "a" {
		t.Errorf("keys not ordered by |total|: %v", keys)
	}
	for _, k := range keys {
		if k.Metric == expert.MetricExecution {
			t.Error("execution cells must be excluded")
		}
	}
}
