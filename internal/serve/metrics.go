// Package serve is the multi-tenant trace-reduction service layered on
// the streaming engine: an HTTP API that accepts concurrent trace
// uploads, shards each upload's ranks across a bounded global worker
// fleet, and streams back reduced containers byte-identical to the
// tracereduce CLI's output. It adds what the one-shot CLIs cannot:
// admission control and back-pressure, graceful degradation under load,
// a signature-keyed representative cache, and a live metrics surface.
// See docs/SERVICE.md for the API reference.
package serve

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// The metrics kit is deliberately tiny: counters, gauges, and fixed-
// bucket histograms rendered in the Prometheus text exposition format.
// The repository takes no dependencies, so the service carries its own
// fifty-line implementation instead of a client library.

// Counter is a monotonically increasing metric.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n (n must be non-negative).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a metric that can go up and down.
type Gauge struct{ v atomic.Int64 }

// Set replaces the gauge value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add moves the gauge by n (negative to decrease) and returns the new
// value (admission uses the post-increment occupancy directly).
func (g *Gauge) Add(n int64) int64 { return g.v.Add(n) }

// Value returns the current gauge value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram is a fixed-bucket latency/size histogram with cumulative
// bucket counts, a running sum, and p50/p99 estimates interpolated from
// the bucket boundaries.
type Histogram struct {
	mu      sync.Mutex
	bounds  []float64 // upper bounds, ascending; +Inf is implicit
	counts  []int64   // per-bucket (non-cumulative), len(bounds)+1
	sum     float64
	samples int64
}

// NewHistogram returns a histogram over the given ascending upper
// bounds (the +Inf bucket is implicit).
func NewHistogram(bounds ...float64) *Histogram {
	return &Histogram{bounds: bounds, counts: make([]int64, len(bounds)+1)}
}

// DefaultLatencyBuckets spans 1ms..30s, the service's request range.
func DefaultLatencyBuckets() []float64 {
	return []float64{0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30}
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	h.mu.Lock()
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i]++
	h.sum += v
	h.samples++
	h.mu.Unlock()
}

// Count returns the number of samples observed.
func (h *Histogram) Count() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.samples
}

// Quantile estimates the q-quantile (0..1) by linear interpolation
// inside the owning bucket; NaN with no samples.
func (h *Histogram) Quantile(q float64) float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.quantileLocked(q)
}

func (h *Histogram) quantileLocked(q float64) float64 {
	if h.samples == 0 {
		return math.NaN()
	}
	rank := q * float64(h.samples)
	var seen int64
	for i, c := range h.counts {
		if float64(seen+c) >= rank && c > 0 {
			lo := 0.0
			if i > 0 {
				lo = h.bounds[i-1]
			}
			hi := lo
			if i < len(h.bounds) {
				hi = h.bounds[i]
			}
			frac := (rank - float64(seen)) / float64(c)
			return lo + (hi-lo)*frac
		}
		seen += c
	}
	return h.bounds[len(h.bounds)-1]
}

// Metrics is the service's metric registry. All fields are safe for
// concurrent use; WriteTo renders the Prometheus text form.
type Metrics struct {
	// SessionsTotal counts admitted reduce sessions; SessionsRejected
	// counts 429 back-pressure responses.
	SessionsTotal    Counter
	SessionsRejected Counter
	// SessionsDegraded counts admitted sessions served with coarsened
	// parameters under load.
	SessionsDegraded Counter
	// CacheHits / CacheMisses count representative-cache outcomes.
	CacheHits   Counter
	CacheMisses Counter
	// AnalyzeTotal counts /v1/analyze requests served.
	AnalyzeTotal Counter
	// ErrorsTotal counts requests that failed with a 4xx/5xx other than
	// admission rejections.
	ErrorsTotal Counter
	// BytesIn / BytesOut tally upload and response body bytes.
	BytesIn  Counter
	BytesOut Counter
	// InflightSessions is the current admitted-session count;
	// FleetBusy is the number of fleet worker slots currently leased.
	InflightSessions Gauge
	FleetBusy        Gauge
	// CacheBytes / CacheEntries mirror the representative cache.
	CacheBytes   Gauge
	CacheEntries Gauge
	// ReduceSeconds observes end-to-end /v1/reduce latency.
	ReduceSeconds *Histogram
}

// NewMetrics returns a registry with histograms initialized.
func NewMetrics() *Metrics {
	return &Metrics{ReduceSeconds: NewHistogram(DefaultLatencyBuckets()...)}
}

// WriteTo renders every metric in the Prometheus text exposition
// format, stable-ordered so scrapes diff cleanly.
func (m *Metrics) WriteTo(w io.Writer) (int64, error) {
	var b strings.Builder
	counter := func(name, help string, v int64) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	gauge := func(name, help string, v int64) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n", name, help, name, name, v)
	}
	counter("tracered_sessions_total", "Admitted reduce sessions.", m.SessionsTotal.Value())
	counter("tracered_sessions_rejected_total", "Sessions rejected with 429 back-pressure.", m.SessionsRejected.Value())
	counter("tracered_sessions_degraded_total", "Sessions served with degraded parameters under load.", m.SessionsDegraded.Value())
	counter("tracered_cache_hits_total", "Representative cache hits.", m.CacheHits.Value())
	counter("tracered_cache_misses_total", "Representative cache misses.", m.CacheMisses.Value())
	counter("tracered_analyze_total", "Analyze requests served.", m.AnalyzeTotal.Value())
	counter("tracered_errors_total", "Failed requests (non-admission 4xx/5xx).", m.ErrorsTotal.Value())
	counter("tracered_bytes_in_total", "Upload body bytes read.", m.BytesIn.Value())
	counter("tracered_bytes_out_total", "Response body bytes written.", m.BytesOut.Value())
	gauge("tracered_inflight_sessions", "Currently admitted sessions.", m.InflightSessions.Value())
	gauge("tracered_fleet_busy_workers", "Fleet worker slots currently leased.", m.FleetBusy.Value())
	gauge("tracered_cache_bytes", "Bytes held by the representative cache.", m.CacheBytes.Value())
	gauge("tracered_cache_entries", "Entries held by the representative cache.", m.CacheEntries.Value())

	h := m.ReduceSeconds
	h.mu.Lock()
	fmt.Fprintf(&b, "# HELP tracered_reduce_seconds End-to-end /v1/reduce latency.\n# TYPE tracered_reduce_seconds histogram\n")
	var cum int64
	for i, bound := range h.bounds {
		cum += h.counts[i]
		fmt.Fprintf(&b, "tracered_reduce_seconds_bucket{le=%q} %d\n", trimFloat(bound), cum)
	}
	cum += h.counts[len(h.bounds)]
	fmt.Fprintf(&b, "tracered_reduce_seconds_bucket{le=\"+Inf\"} %d\n", cum)
	fmt.Fprintf(&b, "tracered_reduce_seconds_sum %g\n", h.sum)
	fmt.Fprintf(&b, "tracered_reduce_seconds_count %d\n", h.samples)
	h.mu.Unlock()

	n, err := io.WriteString(w, b.String())
	return int64(n), err
}

// trimFloat formats a bucket bound the way Prometheus clients do.
func trimFloat(v float64) string {
	return strings.TrimRight(strings.TrimRight(fmt.Sprintf("%.4f", v), "0"), ".")
}
