package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/trace"
)

// testTrace caches one generated workload trace per test binary.
var (
	testTraceOnce sync.Once
	testTraceVal  *trace.Trace
	testTraceErr  error
)

func workloadTrace(t *testing.T) *trace.Trace {
	t.Helper()
	testTraceOnce.Do(func() {
		w, err := eval.Lookup("late_sender")
		if err != nil {
			testTraceErr = err
			return
		}
		testTraceVal, testTraceErr = w.Generate()
	})
	if testTraceErr != nil {
		t.Fatalf("generating workload: %v", testTraceErr)
	}
	return testTraceVal
}

// encodeTrace renders tr in the requested container version.
func encodeTrace(t *testing.T, tr *trace.Trace, version int) []byte {
	t.Helper()
	var buf bytes.Buffer
	var err error
	if version == 2 {
		err = trace.EncodeV2(&buf, tr)
	} else {
		err = trace.Encode(&buf, tr)
	}
	if err != nil {
		t.Fatalf("encoding v%d trace: %v", version, err)
	}
	return buf.Bytes()
}

// cliReduce produces the bytes the tracereduce CLI would write for the
// same trace and parameters — the parity reference for served output.
func cliReduce(t *testing.T, upload []byte, method string, threshold float64, mode core.MatchMode, format int) []byte {
	t.Helper()
	dec, err := trace.NewDecoder(bytes.NewReader(upload))
	if err != nil {
		t.Fatalf("NewDecoder: %v", err)
	}
	defer dec.Close()
	m, err := core.NewMethod(method, threshold)
	if err != nil {
		t.Fatalf("NewMethod: %v", err)
	}
	var out bytes.Buffer
	if _, err := core.ReduceStreamToWriterMode(dec.Name(), m, mode, dec.NextRank, &out, format); err != nil {
		t.Fatalf("ReduceStreamToWriterMode: %v", err)
	}
	return out.Bytes()
}

func postReduce(t *testing.T, url string, body []byte, query string) *http.Response {
	t.Helper()
	resp, err := http.Post(url+"/v1/reduce?"+query, "application/octet-stream", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST /v1/reduce: %v", err)
	}
	return resp
}

func readBody(t *testing.T, resp *http.Response) []byte {
	t.Helper()
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("reading response: %v", err)
	}
	return b
}

// TestReduceParity pins the acceptance criterion: served bytes are
// identical to the CLI pipeline's output over a grid sample — both
// upload container versions × methods × match modes × output formats —
// including on cache hits.
func TestReduceParity(t *testing.T) {
	tr := workloadTrace(t)
	srv := NewServer(Config{DegradeAt: 2}) // never degrade in the parity grid
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	type cell struct {
		method string
		mode   core.MatchMode
		format int
	}
	grid := []cell{
		{"avgWave", core.MatchModeExact, 1},
		{"avgWave", core.MatchModeExact, 2},
		{"euclidean", core.MatchModeAuto, 2},
		{"iter_k", core.MatchModeExact, 1},
		{"relDiff", core.MatchModeLSH, 2},
	}
	for _, uploadVersion := range []int{1, 2} {
		upload := encodeTrace(t, tr, uploadVersion)
		for _, c := range grid {
			name := fmt.Sprintf("up_v%d/%s/%s/v%d", uploadVersion, c.method, c.mode, c.format)
			t.Run(name, func(t *testing.T) {
				threshold := core.DefaultThresholds[c.method]
				want := cliReduce(t, upload, c.method, threshold, c.mode, c.format)
				q := fmt.Sprintf("method=%s&match=%s&format=v%d", c.method, c.mode, c.format)
				resp := postReduce(t, ts.URL, upload, q)
				got := readBody(t, resp)
				if resp.StatusCode != http.StatusOK {
					t.Fatalf("status %d: %s", resp.StatusCode, got)
				}
				if !bytes.Equal(want, got) {
					t.Fatalf("served bytes differ from CLI output (%d vs %d bytes)", len(got), len(want))
				}
				// Second request must hit the cache with identical bytes.
				resp2 := postReduce(t, ts.URL, upload, q)
				got2 := readBody(t, resp2)
				if resp2.Header.Get("X-Tracered-Cache") != "hit" {
					t.Errorf("second request missed the cache")
				}
				if !bytes.Equal(want, got2) {
					t.Fatalf("cached bytes differ from CLI output")
				}
			})
		}
	}
}

// TestCacheCrossFormatUploads pins the signature property end to end:
// the v1 and v2 encodings of one trace share a cache entry.
func TestCacheCrossFormatUploads(t *testing.T) {
	tr := workloadTrace(t)
	srv := NewServer(Config{DegradeAt: 2})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	respV1 := postReduce(t, ts.URL, encodeTrace(t, tr, 1), "method=avgWave")
	bodyV1 := readBody(t, respV1)
	if respV1.StatusCode != http.StatusOK {
		t.Fatalf("v1 upload: status %d", respV1.StatusCode)
	}
	respV2 := postReduce(t, ts.URL, encodeTrace(t, tr, 2), "method=avgWave")
	bodyV2 := readBody(t, respV2)
	if respV2.StatusCode != http.StatusOK {
		t.Fatalf("v2 upload: status %d", respV2.StatusCode)
	}
	if respV1.Header.Get("X-Tracered-Signature") != respV2.Header.Get("X-Tracered-Signature") {
		t.Fatalf("signatures differ across upload encodings")
	}
	if respV2.Header.Get("X-Tracered-Cache") != "hit" {
		t.Errorf("v2 re-upload of the same trace missed the cache")
	}
	if !bytes.Equal(bodyV1, bodyV2) {
		t.Fatalf("cached reply differs across upload encodings")
	}
	if got := srv.Metrics().CacheHits.Value(); got != 1 {
		t.Errorf("cache hits = %d, want 1", got)
	}
}

// TestAdmissionBackpressure saturates the session pool directly and
// asserts 429 + Retry-After, then shows the slot freeing re-admits.
func TestAdmissionBackpressure(t *testing.T) {
	tr := workloadTrace(t)
	upload := encodeTrace(t, tr, 1)
	srv := NewServer(Config{MaxSessions: 1, DegradeAt: 2})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Occupy the only session slot so the outcome is deterministic.
	srv.sessions <- struct{}{}
	resp := postReduce(t, ts.URL, upload, "method=avgWave")
	readBody(t, resp)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated status = %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}
	<-srv.sessions
	resp = postReduce(t, ts.URL, upload, "method=avgWave")
	body := readBody(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-release status = %d: %s", resp.StatusCode, body)
	}
	if srv.Metrics().SessionsRejected.Value() != 1 {
		t.Errorf("rejected counter = %d, want 1", srv.Metrics().SessionsRejected.Value())
	}
}

// TestConcurrentUploadStress fires more concurrent sessions than the
// pool admits: every response must be a clean 200 or 429 (never a hang,
// never corruption), 200 bodies must be byte-identical, and the
// counters must account for every request.
func TestConcurrentUploadStress(t *testing.T) {
	tr := workloadTrace(t)
	upload := encodeTrace(t, tr, 2)
	srv := NewServer(Config{MaxSessions: 2, FleetWorkers: 4, DegradeAt: 2, CacheBytes: -1})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	want := cliReduce(t, upload, "avgWave", core.DefaultThresholds["avgWave"], core.MatchModeExact, 2)

	const N = 16
	type outcome struct {
		status int
		body   []byte
	}
	results := make([]outcome, N)
	var wg sync.WaitGroup
	for i := 0; i < N; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/v1/reduce?method=avgWave&format=v2",
				"application/octet-stream", bytes.NewReader(upload))
			if err != nil {
				t.Errorf("request %d: %v", i, err)
				return
			}
			defer resp.Body.Close()
			b, err := io.ReadAll(resp.Body)
			if err != nil {
				t.Errorf("request %d read: %v", i, err)
				return
			}
			results[i] = outcome{resp.StatusCode, b}
		}(i)
	}
	wg.Wait()

	var ok, rejected int
	for i, res := range results {
		switch res.status {
		case http.StatusOK:
			ok++
			if !bytes.Equal(res.body, want) {
				t.Errorf("request %d: 200 body differs from CLI output", i)
			}
		case http.StatusTooManyRequests:
			rejected++
		default:
			t.Errorf("request %d: unexpected status %d: %s", i, res.status, res.body)
		}
	}
	if ok == 0 {
		t.Error("no request succeeded")
	}
	m := srv.Metrics()
	if got := m.SessionsTotal.Value() + m.SessionsRejected.Value(); got != N {
		t.Errorf("admitted %d + rejected %d != %d requests", m.SessionsTotal.Value(), m.SessionsRejected.Value(), N)
	}
	if int(m.SessionsRejected.Value()) != rejected {
		t.Errorf("rejected counter %d, saw %d 429s", m.SessionsRejected.Value(), rejected)
	}
	t.Logf("stress: %d ok, %d rejected", ok, rejected)
}

// TestDegradedUnderLoad pins the degradation contract: at or above the
// DegradeAt load fraction a session is served with the next-coarser
// threshold and auto matching, reports both in headers, and the bytes
// still match the CLI for those effective parameters.
func TestDegradedUnderLoad(t *testing.T) {
	tr := workloadTrace(t)
	upload := encodeTrace(t, tr, 1)
	// MaxSessions 1 + DegradeAt 0.5: every admitted session sees
	// inflight 1 >= 0.5, so degradation is deterministic.
	srv := NewServer(Config{MaxSessions: 1, DegradeAt: 0.5})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp := postReduce(t, ts.URL, upload, "method=avgWave&format=v2")
	body := readBody(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	deg := resp.Header.Get("X-Tracered-Degraded")
	if !strings.Contains(deg, "threshold") || !strings.Contains(deg, "match") {
		t.Fatalf("X-Tracered-Degraded = %q, want threshold and match", deg)
	}
	def := core.DefaultThresholds["avgWave"]
	var coarser float64
	for _, v := range core.ThresholdSweep("avgWave") {
		if v > def {
			coarser = v
			break
		}
	}
	if got := resp.Header.Get("X-Tracered-Threshold"); got != fmt.Sprintf("%g", coarser) {
		t.Errorf("X-Tracered-Threshold = %s, want %g", got, coarser)
	}
	if got := resp.Header.Get("X-Tracered-Match"); got != "auto" {
		t.Errorf("X-Tracered-Match = %s, want auto", got)
	}
	want := cliReduce(t, upload, "avgWave", coarser, core.MatchModeAuto, 2)
	if !bytes.Equal(body, want) {
		t.Fatalf("degraded bytes differ from CLI at the degraded parameters")
	}
	if srv.Metrics().SessionsDegraded.Value() != 1 {
		t.Errorf("degraded counter = %d, want 1", srv.Metrics().SessionsDegraded.Value())
	}
}

// TestAnalyze reduces a trace and fetches its diagnosis by signature.
func TestAnalyze(t *testing.T) {
	tr := workloadTrace(t)
	upload := encodeTrace(t, tr, 2)
	srv := NewServer(Config{DegradeAt: 2})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp := postReduce(t, ts.URL, upload, "method=avgWave&format=v2")
	readBody(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("reduce status %d", resp.StatusCode)
	}
	sig := resp.Header.Get("X-Tracered-Signature")

	aresp, err := http.Get(ts.URL + "/v1/analyze?sig=" + sig + "&method=avgWave&format=v2")
	if err != nil {
		t.Fatalf("GET /v1/analyze: %v", err)
	}
	abody := readBody(t, aresp)
	if aresp.StatusCode != http.StatusOK {
		t.Fatalf("analyze status %d: %s", aresp.StatusCode, abody)
	}
	var diag struct {
		Name     string `json:"name"`
		NumRanks int    `json:"num_ranks"`
		Cells    []struct {
			Metric   string    `json:"metric"`
			Location string    `json:"location"`
			Sev      []float64 `json:"sev"`
		} `json:"cells"`
		Stats struct {
			StoredSegments int `json:"stored_segments"`
		} `json:"stats"`
	}
	if err := json.Unmarshal(abody, &diag); err != nil {
		t.Fatalf("decoding analyze response: %v", err)
	}
	if diag.Name != tr.Name || diag.NumRanks != tr.NumRanks() {
		t.Errorf("diagnosis header = %q/%d, want %q/%d", diag.Name, diag.NumRanks, tr.Name, tr.NumRanks())
	}
	if len(diag.Cells) == 0 {
		t.Error("late_sender diagnosis has no severity cells")
	}
	if diag.Stats.StoredSegments == 0 {
		t.Error("analyze stats lost the stored-segment count")
	}

	// Unknown signature and junk signatures fail cleanly.
	aresp, _ = http.Get(ts.URL + "/v1/analyze?sig=" + strings.Repeat("00", 32) + "&method=avgWave")
	readBody(t, aresp)
	if aresp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown signature status = %d, want 404", aresp.StatusCode)
	}
	aresp, _ = http.Get(ts.URL + "/v1/analyze?sig=nope")
	readBody(t, aresp)
	if aresp.StatusCode != http.StatusBadRequest {
		t.Errorf("junk signature status = %d, want 400", aresp.StatusCode)
	}
}

// TestUploadLimits pins the per-tenant decode caps and body budget.
func TestUploadLimits(t *testing.T) {
	tr := workloadTrace(t)
	upload := encodeTrace(t, tr, 1)
	srv := NewServer(Config{
		DegradeAt: 2,
		Limits:    trace.DecodeLimits{MaxRanks: 2},
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp := postReduce(t, ts.URL, upload, "method=avgWave")
	body := readBody(t, resp)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("over-cap upload status = %d (%s), want 400", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), "rank count") {
		t.Errorf("error %q does not mention the rank cap", body)
	}

	small := NewServer(Config{DegradeAt: 2, MaxUploadBytes: 16})
	ts2 := httptest.NewServer(small.Handler())
	defer ts2.Close()
	resp = postReduce(t, ts2.URL, upload, "method=avgWave")
	readBody(t, resp)
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body status = %d, want 413", resp.StatusCode)
	}
}

// TestBadRequests covers parameter validation.
func TestBadRequests(t *testing.T) {
	srv := NewServer(Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	for _, q := range []string{"method=nope", "threshold=x", "match=nope", "format=v3"} {
		resp := postReduce(t, ts.URL, []byte("TRC1junk"), q)
		readBody(t, resp)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", q, resp.StatusCode)
		}
	}
	resp := postReduce(t, ts.URL, []byte("not a trace at all"), "method=avgWave")
	readBody(t, resp)
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("junk upload: status %d, want 400", resp.StatusCode)
	}
}

// TestHealthMetricsDrain covers the observability surface and the
// drain flip.
func TestHealthMetricsDrain(t *testing.T) {
	tr := workloadTrace(t)
	upload := encodeTrace(t, tr, 1)
	srv := NewServer(Config{DegradeAt: 2})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	readBody(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %d", resp.StatusCode)
	}

	r2 := postReduce(t, ts.URL, upload, "method=avgWave")
	readBody(t, r2)

	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics := string(readBody(t, resp))
	for _, want := range []string{
		"tracered_sessions_total 1",
		"tracered_cache_misses_total 1",
		"tracered_bytes_in_total",
		"tracered_reduce_seconds_bucket{le=\"+Inf\"} 1",
		"tracered_fleet_busy_workers 0",
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("metrics output missing %q", want)
		}
	}

	srv.Drain()
	resp, _ = http.Get(ts.URL + "/healthz")
	readBody(t, resp)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("draining healthz = %d, want 503", resp.StatusCode)
	}
	r3 := postReduce(t, ts.URL, upload, "method=avgWave")
	readBody(t, r3)
	if r3.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("draining reduce = %d, want 503", r3.StatusCode)
	}
}
