package serve

import "context"

// Fleet is the global worker-slot pool every reduce session draws
// from. Slots bound the total reduce/encode parallelism across all
// concurrent sessions, so N uploads share one machine-wide budget
// instead of each spinning up its own GOMAXPROCS pool.
//
// Sessions lease a batch of slots with Acquire: the first slot blocks
// (a session is always granted at least one worker eventually), and up
// to want-1 further slots are taken opportunistically if free — a lone
// session gets the whole fleet, while under contention sessions shrink
// toward one worker each. That keeps latency flat under light load and
// degrades throughput smoothly under heavy load.
type Fleet struct {
	slots chan struct{}
	busy  *Gauge
}

// NewFleet returns a fleet of n slots (n must be >= 1), mirroring its
// occupancy into the gauge when non-nil.
func NewFleet(n int, busy *Gauge) *Fleet {
	f := &Fleet{slots: make(chan struct{}, n), busy: busy}
	for i := 0; i < n; i++ {
		f.slots <- struct{}{}
	}
	return f
}

// Size returns the fleet's total slot count.
func (f *Fleet) Size() int { return cap(f.slots) }

// Acquire leases up to want slots (at least 1), blocking for the first
// slot until one frees or ctx is done. It returns the number of slots
// actually granted; 0 with ctx.Err() when the context won the race.
func (f *Fleet) Acquire(ctx context.Context, want int) (int, error) {
	if want < 1 {
		want = 1
	}
	select {
	case <-f.slots:
	case <-ctx.Done():
		return 0, ctx.Err()
	}
	granted := 1
	for granted < want {
		select {
		case <-f.slots:
			granted++
		default:
			// No free slot — run with what we have rather than wait.
			f.track(granted)
			return granted, nil
		}
	}
	f.track(granted)
	return granted, nil
}

// Release returns n previously acquired slots.
func (f *Fleet) Release(n int) {
	for i := 0; i < n; i++ {
		f.slots <- struct{}{}
	}
	f.track(-n)
}

func (f *Fleet) track(delta int) {
	if f.busy != nil {
		f.busy.Add(int64(delta))
	}
}
