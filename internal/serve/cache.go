package serve

import (
	"container/list"
	"sync"

	"repro/internal/core"
	"repro/internal/trace"
)

// CacheKey addresses one cached reduction: the upload's content
// signature plus every parameter that shapes the output bytes. Two
// uploads of the same trace — even in different container versions —
// share a signature, so a v2 re-upload hits the entry a v1 upload
// populated, and the reply is byte-identical either way.
type CacheKey struct {
	Sig       trace.Signature
	Method    string
	Threshold float64
	Mode      core.MatchMode
	Format    int
}

// CacheEntry is one cached reduction: the exact reduced-container
// bytes previously served plus the run's stats (replayed into response
// headers on a hit).
type CacheEntry struct {
	Body  []byte
	Stats core.StreamStats
}

// Cache is a byte-budgeted LRU over reduced containers. A zero budget
// disables caching (every Get misses, Put drops).
type Cache struct {
	mu      sync.Mutex
	budget  int64
	used    int64
	order   *list.List // front = most recent; values are *cacheItem
	entries map[CacheKey]*list.Element

	bytes, count *Gauge
}

type cacheItem struct {
	key CacheKey
	ent *CacheEntry
}

// NewCache returns a cache bounded to budget bytes of cached container
// bodies, mirroring its occupancy into the gauges when non-nil.
func NewCache(budget int64, bytes, count *Gauge) *Cache {
	return &Cache{
		budget:  budget,
		order:   list.New(),
		entries: map[CacheKey]*list.Element{},
		bytes:   bytes,
		count:   count,
	}
}

// Get returns the cached entry for k, refreshing its recency.
func (c *Cache) Get(k CacheKey) (*CacheEntry, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[k]
	if !ok {
		return nil, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*cacheItem).ent, true
}

// Put inserts (or replaces) the entry for k, evicting least-recently
// used entries until the byte budget holds. Entries larger than the
// whole budget are not cached.
func (c *Cache) Put(k CacheKey, ent *CacheEntry) {
	size := int64(len(ent.Body))
	c.mu.Lock()
	defer c.mu.Unlock()
	if size > c.budget {
		return
	}
	if el, ok := c.entries[k]; ok {
		c.used -= int64(len(el.Value.(*cacheItem).ent.Body))
		c.order.Remove(el)
		delete(c.entries, k)
	}
	for c.used+size > c.budget {
		back := c.order.Back()
		if back == nil {
			break
		}
		item := back.Value.(*cacheItem)
		c.used -= int64(len(item.ent.Body))
		c.order.Remove(back)
		delete(c.entries, item.key)
	}
	c.entries[k] = c.order.PushFront(&cacheItem{key: k, ent: ent})
	c.used += size
	c.sync()
}

// Len returns the number of cached entries.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Used returns the cached body bytes currently held.
func (c *Cache) Used() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.used
}

func (c *Cache) sync() {
	if c.bytes != nil {
		c.bytes.Set(c.used)
	}
	if c.count != nil {
		c.count.Set(int64(len(c.entries)))
	}
}
