package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"runtime/pprof"
	"strconv"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/expert"
	"repro/internal/trace"
)

// Config tunes the service. The zero value serves with the defaults
// noted per field.
type Config struct {
	// MaxSessions bounds concurrently admitted /v1/reduce sessions;
	// above it requests get 429 + Retry-After. Default 8.
	MaxSessions int
	// FleetWorkers is the global worker-slot budget shared by all
	// sessions. Default GOMAXPROCS.
	FleetWorkers int
	// SessionWorkers is how many fleet slots one session asks for (it
	// may be granted fewer under contention, never zero). Default
	// FleetWorkers — a lone session uses the whole machine.
	SessionWorkers int
	// MaxUploadBytes bounds one upload's spooled body — the per-session
	// memory budget. Default 256 MiB.
	MaxUploadBytes int64
	// CacheBytes budgets the representative cache. Default 256 MiB;
	// negative disables caching.
	CacheBytes int64
	// DegradeAt is the inflight/MaxSessions load fraction at which new
	// sessions are served with coarsened parameters (next-coarser
	// threshold, auto match mode). Default 0.75; >= 1 never degrades.
	DegradeAt float64
	// RetryAfter is the Retry-After hint on 429 responses. Default 1s.
	RetryAfter time.Duration
	// Limits are the per-tenant decode caps applied to uploads; the
	// zero value keeps the library defaults.
	Limits trace.DecodeLimits
}

func (c Config) withDefaults() Config {
	if c.MaxSessions <= 0 {
		c.MaxSessions = 8
	}
	if c.FleetWorkers <= 0 {
		c.FleetWorkers = runtime.GOMAXPROCS(0)
	}
	if c.SessionWorkers <= 0 {
		c.SessionWorkers = c.FleetWorkers
	}
	if c.MaxUploadBytes == 0 {
		c.MaxUploadBytes = 256 << 20
	}
	if c.CacheBytes == 0 {
		c.CacheBytes = 256 << 20
	}
	if c.DegradeAt == 0 {
		c.DegradeAt = 0.75
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	return c
}

// Server is the trace-reduction service: construct with NewServer,
// mount Handler on an http.Server, call Drain before shutdown.
type Server struct {
	cfg      Config
	fleet    *Fleet
	cache    *Cache
	metrics  *Metrics
	sessions chan struct{}
	draining atomic.Bool
}

// NewServer returns a service with the given configuration.
func NewServer(cfg Config) *Server {
	cfg = cfg.withDefaults()
	m := NewMetrics()
	cacheBytes := cfg.CacheBytes
	if cacheBytes < 0 {
		cacheBytes = 0
	}
	return &Server{
		cfg:      cfg,
		fleet:    NewFleet(cfg.FleetWorkers, &m.FleetBusy),
		cache:    NewCache(cacheBytes, &m.CacheBytes, &m.CacheEntries),
		metrics:  m,
		sessions: make(chan struct{}, cfg.MaxSessions),
	}
}

// Metrics exposes the server's registry (tests and embedders read it).
func (s *Server) Metrics() *Metrics { return s.metrics }

// Drain marks the server as draining: /healthz flips to 503 so load
// balancers stop routing here, and new reduce sessions are refused
// while in-flight ones run to completion (http.Server.Shutdown waits
// for those). Safe to call more than once.
func (s *Server) Drain() { s.draining.Store(true) }

// Draining reports whether Drain has been called.
func (s *Server) Draining() bool { return s.draining.Load() }

// Handler returns the service's HTTP routes.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/reduce", s.handleReduce)
	mux.HandleFunc("GET /v1/analyze", s.handleAnalyze)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	return mux
}

// reduceParams are one session's resolved request parameters.
type reduceParams struct {
	method    string
	threshold float64
	mode      core.MatchMode
	format    int
}

// parseReduceParams resolves and validates the query parameters,
// filling the paper-default threshold when none is given.
func parseReduceParams(r *http.Request) (reduceParams, error) {
	q := r.URL.Query()
	p := reduceParams{method: q.Get("method"), format: 1}
	if p.method == "" {
		p.method = "avgWave"
	}
	def, ok := core.DefaultThresholds[p.method]
	if !ok {
		return p, fmt.Errorf("unknown method %q", p.method)
	}
	p.threshold = def
	if t := q.Get("threshold"); t != "" {
		v, err := strconv.ParseFloat(t, 64)
		if err != nil || v < 0 {
			return p, fmt.Errorf("bad threshold %q", t)
		}
		p.threshold = v
	}
	if m := q.Get("match"); m != "" {
		mode, err := core.ParseMatchMode(m)
		if err != nil {
			return p, err
		}
		p.mode = mode
	}
	switch f := q.Get("format"); f {
	case "", "v1", "1":
		p.format = 1
	case "v2", "2":
		p.format = 2
	default:
		return p, fmt.Errorf("unknown format %q (want v1 or v2)", f)
	}
	return p, nil
}

// degrade coarsens p under load: the threshold steps to the next
// coarser value in the method's sweep (when one exists) and exact
// matching falls back to the auto index. It returns the adjustments
// actually applied, for the response header.
func degrade(p reduceParams) (reduceParams, []string) {
	var applied []string
	for _, t := range core.ThresholdSweep(p.method) {
		if t > p.threshold {
			p.threshold = t
			applied = append(applied, "threshold")
			break
		}
	}
	if p.mode == core.MatchModeExact {
		p.mode = core.MatchModeAuto
		applied = append(applied, "match")
	}
	return p, applied
}

// httpError reports a request failure, counting it.
func (s *Server) httpError(w http.ResponseWriter, code int, err error) {
	s.metrics.ErrorsTotal.Inc()
	http.Error(w, err.Error(), code)
}

func (s *Server) handleReduce(w http.ResponseWriter, r *http.Request) {
	begin := time.Now()
	if s.draining.Load() {
		http.Error(w, "server is draining", http.StatusServiceUnavailable)
		return
	}
	// Admission control: a bounded session pool, refused without
	// queueing. Waiting here would hide the overload from the client
	// while uploads pile up in memory; a fast 429 + Retry-After lets
	// well-behaved clients pace themselves instead.
	select {
	case s.sessions <- struct{}{}:
	default:
		s.metrics.SessionsRejected.Inc()
		w.Header().Set("Retry-After", strconv.Itoa(int((s.cfg.RetryAfter+time.Second-1)/time.Second)))
		http.Error(w, "too many concurrent reductions", http.StatusTooManyRequests)
		return
	}
	inflight := s.metrics.InflightSessions.Add(1)
	s.metrics.SessionsTotal.Inc()
	defer func() {
		s.metrics.InflightSessions.Add(-1)
		<-s.sessions
	}()

	params, err := parseReduceParams(r)
	if err != nil {
		s.httpError(w, http.StatusBadRequest, err)
		return
	}
	// Graceful degradation: once the session pool is mostly full, new
	// sessions get coarser parameters — cheaper to compute and smaller
	// to ship — and the response says so, so clients can re-request at
	// full fidelity later.
	var degraded []string
	if float64(inflight) >= s.cfg.DegradeAt*float64(s.cfg.MaxSessions) {
		params, degraded = degrade(params)
		if len(degraded) > 0 {
			s.metrics.SessionsDegraded.Inc()
		}
	}

	// Spool the upload: the signature pass and the reduce pass each
	// decode it, and a bytes.Reader gives the v2 decoder its
	// random-access block-parallel path. MaxUploadBytes is the
	// per-session memory budget; beyond it the request fails cleanly.
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxUploadBytes))
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			s.httpError(w, http.StatusRequestEntityTooLarge,
				fmt.Errorf("upload exceeds the %d-byte budget", s.cfg.MaxUploadBytes))
		} else {
			s.httpError(w, http.StatusBadRequest, fmt.Errorf("reading upload: %w", err))
		}
		return
	}
	s.metrics.BytesIn.Add(int64(len(body)))

	decOpts := trace.DecoderOptions{Ctx: r.Context(), Limits: s.cfg.Limits}
	sig, err := trace.SignatureOfWith(bytes.NewReader(body), decOpts)
	if err != nil {
		s.failDecode(w, r, err)
		return
	}

	key := CacheKey{Sig: sig, Method: params.method, Threshold: params.threshold, Mode: params.mode, Format: params.format}
	if ent, ok := s.cache.Get(key); ok {
		s.metrics.CacheHits.Inc()
		s.writeReduced(w, params, sig, degraded, ent, true, begin)
		return
	}
	s.metrics.CacheMisses.Inc()

	m, err := core.NewMethod(params.method, params.threshold)
	if err != nil {
		s.httpError(w, http.StatusBadRequest, err)
		return
	}
	// Lease a share of the global fleet — the whole fleet when idle,
	// down to one slot under contention — and run the pipelined
	// decode → reduce → encode path with exactly that parallelism.
	granted, err := s.fleet.Acquire(r.Context(), s.cfg.SessionWorkers)
	if err != nil {
		s.httpError(w, http.StatusServiceUnavailable, fmt.Errorf("acquiring workers: %w", err))
		return
	}
	dec, err := trace.NewDecoderWith(bytes.NewReader(body), trace.DecoderOptions{
		Workers: granted, Ctx: r.Context(), Limits: s.cfg.Limits,
	})
	if err != nil {
		s.fleet.Release(granted)
		s.failDecode(w, r, err)
		return
	}
	var out bytes.Buffer
	var stats *core.StreamStats
	// Label the session's reduce so fleet CPU profiles attribute time per
	// tenant workload and method (tracereduced -cpuprofile); the pipeline
	// workers add their own per-stage labels underneath.
	pprof.Do(r.Context(), pprof.Labels(
		"subsystem", "serve-session",
		"workload", dec.Name(),
		"method", params.method,
		"mode", params.mode.String(),
	), func(ctx context.Context) {
		stats, err = core.ReduceStreamToWriterOpts(dec.Name(), m, dec.NextRank, &out, params.format,
			core.StreamOptions{Mode: params.mode, Workers: granted, Ctx: ctx, Recycle: dec.Recycle})
	})
	dec.Close()
	s.fleet.Release(granted)
	if err != nil {
		s.failDecode(w, r, err)
		return
	}
	ent := &CacheEntry{Body: out.Bytes(), Stats: *stats}
	s.cache.Put(key, ent)
	s.writeReduced(w, params, sig, degraded, ent, false, begin)
}

// failDecode maps a decode/reduce failure to a status: client
// cancellation gets the nginx-convention 499 (never seen by the
// client, but it keeps the access log honest), anything else is a 400 —
// the upload, not the server, is at fault.
func (s *Server) failDecode(w http.ResponseWriter, r *http.Request, err error) {
	if r.Context().Err() != nil {
		s.metrics.ErrorsTotal.Inc()
		w.WriteHeader(499)
		return
	}
	s.httpError(w, http.StatusBadRequest, err)
}

// writeReduced sends the reduced container plus the session's metadata
// headers; cached replies replay the exact bytes and stats of the run
// that populated the entry.
func (s *Server) writeReduced(w http.ResponseWriter, p reduceParams, sig trace.Signature,
	degraded []string, ent *CacheEntry, hit bool, begin time.Time) {
	h := w.Header()
	h.Set("Content-Type", "application/octet-stream")
	h.Set("Content-Length", strconv.Itoa(len(ent.Body)))
	h.Set("X-Tracered-Signature", sig.String())
	h.Set("X-Tracered-Method", p.method)
	h.Set("X-Tracered-Threshold", strconv.FormatFloat(p.threshold, 'g', -1, 64))
	h.Set("X-Tracered-Match", p.mode.String())
	h.Set("X-Tracered-Format", "v"+strconv.Itoa(p.format))
	h.Set("X-Tracered-Stored-Segments", strconv.Itoa(ent.Stats.StoredSegments))
	h.Set("X-Tracered-Degree", strconv.FormatFloat(ent.Stats.DegreeOfMatching(), 'g', -1, 64))
	if hit {
		h.Set("X-Tracered-Cache", "hit")
	} else {
		h.Set("X-Tracered-Cache", "miss")
	}
	if len(degraded) > 0 {
		h.Set("X-Tracered-Degraded", joinComma(degraded))
	}
	n, _ := w.Write(ent.Body)
	s.metrics.BytesOut.Add(int64(n))
	s.metrics.ReduceSeconds.Observe(time.Since(begin).Seconds())
}

func joinComma(parts []string) string {
	out := parts[0]
	for _, p := range parts[1:] {
		out += "," + p
	}
	return out
}

// analyzeResponse is the JSON shape of /v1/analyze: the EXPERT-style
// diagnosis of a cached reduction, flattened for transport (Diagnosis
// keys severity by a struct, which JSON maps cannot express).
type analyzeResponse struct {
	Name     string        `json:"name"`
	Method   string        `json:"method"`
	NumRanks int           `json:"num_ranks"`
	WallTime float64       `json:"wall_time"`
	Cells    []analyzeCell `json:"cells"`
	Stats    analyzeStats  `json:"stats"`
}

type analyzeCell struct {
	Metric   string    `json:"metric"`
	Location string    `json:"location"`
	Total    float64   `json:"total"`
	Sev      []float64 `json:"sev"`
}

type analyzeStats struct {
	StoredSegments int     `json:"stored_segments"`
	TotalSegments  int     `json:"total_segments"`
	Degree         float64 `json:"degree_of_matching"`
	Bytes          int64   `json:"reduced_bytes"`
}

// handleAnalyze serves the diagnosis of a previously reduced trace,
// addressed by the signature (and parameters) the reduce response
// reported. Reductions age out of the cache; a miss is a 404 and the
// client re-reduces.
func (s *Server) handleAnalyze(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	sig, err := trace.ParseSignature(q.Get("sig"))
	if err != nil {
		s.httpError(w, http.StatusBadRequest, err)
		return
	}
	req := r.Clone(r.Context())
	params, err := parseReduceParams(req)
	if err != nil {
		s.httpError(w, http.StatusBadRequest, err)
		return
	}
	key := CacheKey{Sig: sig, Method: params.method, Threshold: params.threshold, Mode: params.mode, Format: params.format}
	ent, ok := s.cache.Get(key)
	if !ok {
		s.httpError(w, http.StatusNotFound, errors.New("no cached reduction for that signature and parameters"))
		return
	}
	red, err := core.DecodeReducedWith(bytes.NewReader(ent.Body), trace.DecoderOptions{Ctx: r.Context(), Limits: s.cfg.Limits})
	if err != nil {
		s.httpError(w, http.StatusInternalServerError, fmt.Errorf("decoding cached reduction: %w", err))
		return
	}
	diag, err := expert.AnalyzeReduced(red)
	if err != nil {
		s.httpError(w, http.StatusInternalServerError, fmt.Errorf("analyzing: %w", err))
		return
	}
	resp := analyzeResponse{
		Name:     diag.Name,
		Method:   params.method,
		NumRanks: diag.NumRanks,
		WallTime: diag.WallTime,
		Cells:    []analyzeCell{},
		Stats: analyzeStats{
			StoredSegments: ent.Stats.StoredSegments,
			TotalSegments:  ent.Stats.TotalSegments,
			Degree:         ent.Stats.DegreeOfMatching(),
			Bytes:          int64(len(ent.Body)),
		},
	}
	for _, k := range diag.Keys() {
		resp.Cells = append(resp.Cells, analyzeCell{
			Metric:   k.Metric,
			Location: k.Location,
			Total:    diag.Total(k),
			Sev:      diag.Sev[k],
		})
	}
	s.metrics.AnalyzeTotal.Inc()
	w.Header().Set("Content-Type", "application/json")
	buf, _ := json.Marshal(resp)
	n, _ := w.Write(append(buf, '\n'))
	s.metrics.BytesOut.Add(int64(n))
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	s.metrics.WriteTo(w)
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	if s.draining.Load() {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	io.WriteString(w, "ok\n")
}
