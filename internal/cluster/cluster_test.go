package cluster

import (
	"math"
	"testing"

	"repro/internal/trace"
)

// groupedTrace builds a trace whose ranks fall into two obvious behaviour
// groups: the first half spends time in "fast", the second half 10× more
// time in "slow".
func groupedTrace(n int) *trace.Trace {
	t := trace.New("grouped", n)
	for r := 0; r < n; r++ {
		name, dur := "fast", trace.Time(100+r) // small within-group variation
		if r >= n/2 {
			name, dur = "slow", trace.Time(1000+10*r)
		}
		t.Ranks[r].Events = []trace.Event{
			{Name: "s", Kind: trace.KindMarkBegin, Peer: trace.NoPeer, Root: trace.NoPeer},
			{Name: name, Kind: trace.KindCompute, Enter: 0, Exit: dur, Peer: trace.NoPeer, Root: trace.NoPeer},
			{Name: "s", Kind: trace.KindMarkEnd, Enter: dur, Exit: dur, Peer: trace.NoPeer, Root: trace.NoPeer},
		}
	}
	return t
}

func TestProfiles(t *testing.T) {
	tr := groupedTrace(4)
	ps := Profiles(tr)
	if len(ps) != 4 {
		t.Fatalf("got %d profiles", len(ps))
	}
	// Dimension order is the sorted union: fast, slow.
	if ps[0].Values[0] != 100 || ps[0].Values[1] != 0 {
		t.Errorf("rank 0 profile = %v", ps[0].Values)
	}
	if ps[3].Values[0] != 0 || ps[3].Values[1] != 1030 {
		t.Errorf("rank 3 profile = %v", ps[3].Values)
	}
}

func TestKMedoidsTwoGroups(t *testing.T) {
	tr := groupedTrace(8)
	c, err := KMedoids(Profiles(tr), 2)
	if err != nil {
		t.Fatalf("KMedoids: %v", err)
	}
	if len(c.Medoids) != 2 {
		t.Fatalf("medoids = %v", c.Medoids)
	}
	// Ranks 0-3 must share a cluster; ranks 4-7 the other.
	for r := 1; r < 4; r++ {
		if c.Assign[r] != c.Assign[0] {
			t.Errorf("rank %d not with rank 0: %v", r, c.Assign)
		}
	}
	for r := 5; r < 8; r++ {
		if c.Assign[r] != c.Assign[4] {
			t.Errorf("rank %d not with rank 4: %v", r, c.Assign)
		}
	}
	if c.Assign[0] == c.Assign[4] {
		t.Errorf("distinct groups merged: %v", c.Assign)
	}
	sizes := c.ClusterSizes()
	if sizes[0] != 4 || sizes[1] != 4 {
		t.Errorf("cluster sizes = %v, want [4 4]", sizes)
	}
}

func TestKMedoidsEdgeCases(t *testing.T) {
	tr := groupedTrace(4)
	ps := Profiles(tr)
	// k = 1: everything in one cluster.
	c, err := KMedoids(ps, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range c.Assign {
		if a != 0 {
			t.Errorf("k=1 assign = %v", c.Assign)
		}
	}
	// k = n: every rank its own medoid, zero cost.
	c, err = KMedoids(ps, 4)
	if err != nil {
		t.Fatal(err)
	}
	if c.Cost != 0 {
		t.Errorf("k=n cost = %v, want 0", c.Cost)
	}
	// Errors.
	if _, err := KMedoids(ps, 0); err == nil {
		t.Error("k=0 must fail")
	}
	if _, err := KMedoids(ps, 5); err == nil {
		t.Error("k>n must fail")
	}
	if _, err := KMedoids(nil, 1); err == nil {
		t.Error("empty profiles must fail")
	}
}

func TestKMedoidsDeterministic(t *testing.T) {
	tr := groupedTrace(8)
	a, err := KMedoids(Profiles(tr), 3)
	if err != nil {
		t.Fatal(err)
	}
	b, err := KMedoids(Profiles(tr), 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Medoids {
		if a.Medoids[i] != b.Medoids[i] {
			t.Fatalf("medoids differ: %v vs %v", a.Medoids, b.Medoids)
		}
	}
}

func TestReduceShrinksAndTracksError(t *testing.T) {
	tr := groupedTrace(8)
	red, err := Reduce(tr, 2)
	if err != nil {
		t.Fatalf("Reduce: %v", err)
	}
	fullSize := trace.EncodedSize(tr)
	if red.EncodedSize() >= fullSize {
		t.Errorf("clustered size %d not smaller than full %d", red.EncodedSize(), fullSize)
	}
	// With the clean two-group structure the profile error is small but
	// non-zero (within-group variation).
	errRMS := ProfileError(tr, red)
	if errRMS <= 0 || errRMS > 0.2 {
		t.Errorf("profile RMS error = %v, want small non-zero", errRMS)
	}
	// k = n reproduces every rank exactly.
	full, err := Reduce(tr, 8)
	if err != nil {
		t.Fatal(err)
	}
	if got := ProfileError(tr, full); got != 0 {
		t.Errorf("k=n profile error = %v, want 0", got)
	}
}

// TestMoreClustersMonotone: adding clusters never increases cost.
func TestMoreClustersMonotone(t *testing.T) {
	tr := groupedTrace(8)
	ps := Profiles(tr)
	prev := math.Inf(1)
	for k := 1; k <= 8; k++ {
		c, err := KMedoids(ps, k)
		if err != nil {
			t.Fatal(err)
		}
		if c.Cost > prev+1e-9 {
			t.Errorf("cost increased at k=%d: %v > %v", k, c.Cost, prev)
		}
		prev = c.Cost
	}
}
