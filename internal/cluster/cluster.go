// Package cluster implements the inter-process trace reduction of the
// paper's related work (§2: Nickolayev, Roth & Reed; Lee, Mendes & Kalé):
// processes with similar performance profiles are grouped by statistical
// clustering over per-location execution-time vectors using the Euclidean
// distance, and only one representative trace per cluster is kept. This
// is the axis *orthogonal* to the paper's contribution — the paper
// reduces each per-task trace internally; clustering reduces the number
// of per-task traces — and the two compose: cluster first, then reduce
// each representative with a similarity method.
package cluster

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/trace"
)

// Profile is one rank's feature vector: total inclusive time per
// function, over the sorted union of function names in the trace.
type Profile struct {
	Rank   int
	Values []float64
}

// Profiles computes the per-rank execution profiles of t. All profiles
// share one dimension order (the sorted union of non-marker event names).
func Profiles(t *trace.Trace) []Profile {
	names := t.FunctionNames()
	index := make(map[string]int, len(names))
	for i, n := range names {
		index[n] = i
	}
	out := make([]Profile, t.NumRanks())
	for r := range t.Ranks {
		v := make([]float64, len(names))
		for _, e := range t.Ranks[r].Events {
			if e.Kind.IsMarker() {
				continue
			}
			v[index[e.Name]] += float64(e.Duration())
		}
		out[r] = Profile{Rank: r, Values: v}
	}
	return out
}

// euclidean returns the L2 distance between two equal-length vectors.
func euclidean(a, b []float64) float64 {
	var sum float64
	for i := range a {
		d := a[i] - b[i]
		sum += d * d
	}
	return math.Sqrt(sum)
}

// Clustering is the result of grouping ranks.
type Clustering struct {
	// Medoids lists the representative rank of each cluster.
	Medoids []int
	// Assign maps every rank to its cluster index (into Medoids).
	Assign []int
	// Cost is the total distance of ranks to their medoids.
	Cost float64
}

// ClusterSizes returns the number of ranks per cluster.
func (c *Clustering) ClusterSizes() []int {
	sizes := make([]int, len(c.Medoids))
	for _, ci := range c.Assign {
		sizes[ci]++
	}
	return sizes
}

// KMedoids clusters the profiles into k groups with a deterministic
// PAM-style alternation: medoids are seeded by a farthest-first sweep
// from rank 0, then assignment and medoid-update steps repeat until the
// cost stops improving. Euclidean distance follows Nickolayev and Lee.
func KMedoids(profiles []Profile, k int) (*Clustering, error) {
	n := len(profiles)
	if n == 0 {
		return nil, fmt.Errorf("cluster: no profiles")
	}
	if k < 1 || k > n {
		return nil, fmt.Errorf("cluster: k=%d out of range 1..%d", k, n)
	}
	dist := make([][]float64, n)
	for i := range dist {
		dist[i] = make([]float64, n)
		for j := range dist[i] {
			dist[i][j] = euclidean(profiles[i].Values, profiles[j].Values)
		}
	}
	// Farthest-first seeding from rank 0 (deterministic).
	medoids := []int{0}
	for len(medoids) < k {
		best, bestD := -1, -1.0
		for i := 0; i < n; i++ {
			d := math.Inf(1)
			for _, m := range medoids {
				if dist[i][m] < d {
					d = dist[i][m]
				}
			}
			if d > bestD {
				best, bestD = i, d
			}
		}
		medoids = append(medoids, best)
	}
	assign := make([]int, n)
	var cost float64
	for iter := 0; iter < 100; iter++ {
		// Assignment step.
		cost = 0
		for i := 0; i < n; i++ {
			bestC, bestD := 0, math.Inf(1)
			for ci, m := range medoids {
				if dist[i][m] < bestD {
					bestC, bestD = ci, dist[i][m]
				}
			}
			assign[i] = bestC
			cost += bestD
		}
		// Medoid-update step: for each cluster pick the member minimizing
		// the within-cluster distance sum.
		changed := false
		for ci := range medoids {
			bestM, bestSum := medoids[ci], math.Inf(1)
			for i := 0; i < n; i++ {
				if assign[i] != ci {
					continue
				}
				var sum float64
				for j := 0; j < n; j++ {
					if assign[j] == ci {
						sum += dist[i][j]
					}
				}
				if sum < bestSum || (sum == bestSum && i < bestM) {
					bestM, bestSum = i, sum
				}
			}
			if bestM != medoids[ci] {
				medoids[ci] = bestM
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	sortClusters(medoids, assign)
	return &Clustering{Medoids: medoids, Assign: assign, Cost: cost}, nil
}

// sortClusters renumbers clusters by ascending medoid rank so results are
// stable for tests and display.
func sortClusters(medoids []int, assign []int) {
	order := make([]int, len(medoids))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return medoids[order[a]] < medoids[order[b]] })
	remap := make([]int, len(medoids))
	newMedoids := make([]int, len(medoids))
	for newIdx, oldIdx := range order {
		remap[oldIdx] = newIdx
		newMedoids[newIdx] = medoids[oldIdx]
	}
	copy(medoids, newMedoids)
	for i, a := range assign {
		assign[i] = remap[a]
	}
}

// Reduced is an inter-process reduction: representative rank traces plus
// the rank→cluster assignment.
type Reduced struct {
	// Name is the source trace's name.
	Name string
	// Clustering records medoids and assignment.
	Clustering *Clustering
	// Representatives holds the medoid ranks' full event streams.
	Representatives []trace.RankTrace
}

// Reduce clusters t's ranks into k groups and keeps only the medoid
// traces.
func Reduce(t *trace.Trace, k int) (*Reduced, error) {
	c, err := KMedoids(Profiles(t), k)
	if err != nil {
		return nil, err
	}
	reps := make([]trace.RankTrace, len(c.Medoids))
	for i, m := range c.Medoids {
		reps[i] = t.Ranks[m]
	}
	return &Reduced{Name: t.Name, Clustering: c, Representatives: reps}, nil
}

// EncodedSize returns the byte size of the reduced form: the
// representative traces in the standard codec plus 4 bytes of cluster
// assignment per rank.
func (r *Reduced) EncodedSize() int64 {
	sub := &trace.Trace{Name: r.Name, Ranks: r.Representatives}
	return trace.EncodedSize(sub) + int64(4*len(r.Clustering.Assign))
}

// ProfileError reports the fidelity of the clustering as the root-mean-
// square relative error between each rank's profile and its medoid's
// profile — the quantitative stand-in for "the representative behaves
// like the cluster".
func ProfileError(t *trace.Trace, r *Reduced) float64 {
	profiles := Profiles(t)
	var sum float64
	var count int
	for i, p := range profiles {
		m := r.Clustering.Medoids[r.Clustering.Assign[i]]
		mp := profiles[m]
		for j := range p.Values {
			denom := math.Max(math.Abs(p.Values[j]), math.Abs(mp.Values[j]))
			if denom == 0 {
				continue
			}
			d := (p.Values[j] - mp.Values[j]) / denom
			sum += d * d
			count++
		}
	}
	if count == 0 {
		return 0
	}
	return math.Sqrt(sum / float64(count))
}
