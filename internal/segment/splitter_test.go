package segment

import (
	"testing"

	"repro/internal/trace"
)

// feedAll feeds every event of rt through a fresh Splitter, returning the
// yielded segments.
func feedAll(t *testing.T, rt *trace.RankTrace) []*Segment {
	t.Helper()
	sp := NewSplitter(rt.Rank)
	var segs []*Segment
	for _, e := range rt.Events {
		s, err := sp.Feed(e)
		if err != nil {
			t.Fatalf("Feed: %v", err)
		}
		if s != nil {
			segs = append(segs, s)
		}
	}
	if err := sp.Finish(); err != nil {
		t.Fatalf("Finish: %v", err)
	}
	return segs
}

func TestSplitterYieldsAtClosingMarker(t *testing.T) {
	rt := &trace.RankTrace{Rank: 3}
	add := func(e trace.Event) { rt.Events = append(rt.Events, e) }
	add(trace.Event{Name: "main.1", Kind: trace.KindMarkBegin, Enter: 100, Exit: 100})
	add(trace.Event{Name: "w", Kind: trace.KindCompute, Enter: 100, Exit: 110})
	add(trace.Event{Name: "main.1", Kind: trace.KindMarkEnd, Enter: 112, Exit: 112})
	add(trace.Event{Name: "main.1", Kind: trace.KindMarkBegin, Enter: 120, Exit: 120})
	add(trace.Event{Name: "w", Kind: trace.KindCompute, Enter: 121, Exit: 130})
	add(trace.Event{Name: "main.1", Kind: trace.KindMarkEnd, Enter: 131, Exit: 131})

	sp := NewSplitter(rt.Rank)
	var got []*Segment
	for i, e := range rt.Events {
		s, err := sp.Feed(e)
		if err != nil {
			t.Fatalf("Feed(%d): %v", i, err)
		}
		// A segment must surface exactly when its end marker is fed.
		if wantSeg := e.Kind == trace.KindMarkEnd; (s != nil) != wantSeg {
			t.Fatalf("Feed(%d): segment yielded = %v, want %v", i, s != nil, wantSeg)
		}
		if e.Kind == trace.KindMarkBegin && !sp.Open() {
			t.Fatalf("Feed(%d): Open() = false inside a segment", i)
		}
		if s != nil {
			got = append(got, s)
		}
	}
	if err := sp.Finish(); err != nil {
		t.Fatalf("Finish: %v", err)
	}
	if len(got) != 2 {
		t.Fatalf("yielded %d segments, want 2", len(got))
	}
	if got[0].Start != 100 || got[0].End != 12 || got[0].Rank != 3 {
		t.Errorf("segment 0 = start %d end %d rank %d, want 100/12/3", got[0].Start, got[0].End, got[0].Rank)
	}
	if got[0].Events[0].Enter != 0 || got[0].Events[0].Exit != 10 {
		t.Errorf("segment 0 events not rebased: %+v", got[0].Events[0])
	}
	if got[1].Start != 120 || got[1].End != 11 {
		t.Errorf("segment 1 = start %d end %d, want 120/11", got[1].Start, got[1].End)
	}
}

func TestSplitterMatchesBatchSplit(t *testing.T) {
	rt := &trace.RankTrace{Rank: 1}
	now := trace.Time(0)
	for i := 0; i < 5; i++ {
		rt.Events = append(rt.Events,
			trace.Event{Name: "main.1", Kind: trace.KindMarkBegin, Enter: now, Exit: now},
			trace.Event{Name: "send", Kind: trace.KindSend, Enter: now + 1, Exit: now + 2, Peer: 1, Tag: 7, Bytes: 64},
			trace.Event{Name: "main.1", Kind: trace.KindMarkEnd, Enter: now + 3, Exit: now + 3},
		)
		now += 10
	}
	batch, err := Split(rt)
	if err != nil {
		t.Fatalf("Split: %v", err)
	}
	streamed := feedAll(t, rt)
	if len(batch) != len(streamed) {
		t.Fatalf("batch %d segments, streamed %d", len(batch), len(streamed))
	}
	for i := range batch {
		b, s := batch[i], streamed[i]
		if b.Context != s.Context || b.Start != s.Start || b.End != s.End || len(b.Events) != len(s.Events) {
			t.Errorf("segment %d differs: batch %+v streamed %+v", i, b, s)
		}
		for j := range b.Events {
			if b.Events[j] != s.Events[j] {
				t.Errorf("segment %d event %d differs: %+v vs %+v", i, j, b.Events[j], s.Events[j])
			}
		}
	}
}

func TestSplitterErrors(t *testing.T) {
	mk := func(name string, kind trace.EventKind) trace.Event {
		return trace.Event{Name: name, Kind: kind}
	}
	cases := []struct {
		name   string
		events []trace.Event
	}{
		{"nested begin", []trace.Event{mk("a", trace.KindMarkBegin), mk("b", trace.KindMarkBegin)}},
		{"end without begin", []trace.Event{mk("a", trace.KindMarkEnd)}},
		{"mismatched end", []trace.Event{mk("a", trace.KindMarkBegin), mk("b", trace.KindMarkEnd)}},
		{"event outside segment", []trace.Event{mk("w", trace.KindCompute)}},
	}
	for _, tc := range cases {
		sp := NewSplitter(0)
		var err error
		for _, e := range tc.events {
			if _, err = sp.Feed(e); err != nil {
				break
			}
		}
		if err == nil {
			t.Errorf("%s: no error", tc.name)
		}
	}
	// Unclosed segment surfaces at Finish, not Feed.
	sp := NewSplitter(0)
	if _, err := sp.Feed(mk("a", trace.KindMarkBegin)); err != nil {
		t.Fatalf("Feed: %v", err)
	}
	if err := sp.Finish(); err == nil {
		t.Error("Finish with open segment: no error")
	}
}

func TestSegmentMeasCache(t *testing.T) {
	s := &Segment{End: 49, Events: []trace.Event{{Name: "w", Kind: trace.KindCompute, Enter: 1, Exit: 17}}}
	want := s.Measurements(nil)
	got := s.Meas()
	if len(got) != len(want) {
		t.Fatalf("Meas len %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Meas[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	// Cached: same backing array on second call.
	if again := s.Meas(); &again[0] != &got[0] {
		t.Error("Meas recomputed instead of returning the cache")
	}
	// Mutation + ResetMeas recomputes.
	s.Events[0].Exit = 18
	s.ResetMeas()
	if got = s.Meas(); got[2] != 18 {
		t.Errorf("after ResetMeas, Meas[2] = %v, want 18", got[2])
	}
}
