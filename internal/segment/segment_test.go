package segment

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/trace"
)

func mark(ctx string, kind trace.EventKind, at trace.Time) trace.Event {
	return trace.Event{Name: ctx, Kind: kind, Enter: at, Exit: at, Peer: trace.NoPeer, Root: trace.NoPeer}
}

func comp(name string, enter, exit trace.Time) trace.Event {
	return trace.Event{Name: name, Kind: trace.KindCompute, Enter: enter, Exit: exit, Peer: trace.NoPeer, Root: trace.NoPeer}
}

// paperTrace reproduces the segment structure of the paper's Figure 2:
// three main.1 segments containing do_work and MPI_Allgather.
func paperTrace() *trace.RankTrace {
	send := func(enter, exit trace.Time) trace.Event {
		return trace.Event{Name: "MPI_Allgather", Kind: trace.KindAllgather,
			Enter: enter, Exit: exit, Peer: trace.NoPeer, Tag: 0, Bytes: 8, Root: -1}
	}
	return &trace.RankTrace{Rank: 0, Events: []trace.Event{
		mark("main.1", trace.KindMarkBegin, 100),
		comp("do_work", 101, 120),
		send(121, 149),
		mark("main.1", trace.KindMarkEnd, 150),
		mark("main.1", trace.KindMarkBegin, 152),
		comp("do_work", 153, 192),
		send(193, 201),
		mark("main.1", trace.KindMarkEnd, 203),
		mark("main.1", trace.KindMarkBegin, 210),
		comp("do_work", 211, 227),
		send(228, 258),
		mark("main.1", trace.KindMarkEnd, 259),
	}}
}

func TestSplitBasic(t *testing.T) {
	segs, err := Split(paperTrace())
	if err != nil {
		t.Fatalf("Split: %v", err)
	}
	if len(segs) != 3 {
		t.Fatalf("got %d segments, want 3", len(segs))
	}
	s0 := segs[0]
	if s0.Context != "main.1" || s0.Rank != 0 {
		t.Errorf("segment identity wrong: %+v", s0)
	}
	if s0.Start != 100 {
		t.Errorf("Start = %d, want 100", s0.Start)
	}
	if s0.End != 50 {
		t.Errorf("End = %d, want 50 (relative)", s0.End)
	}
	if len(s0.Events) != 2 {
		t.Fatalf("segment has %d events, want 2", len(s0.Events))
	}
	// Event times must be rebased relative to segment start.
	if s0.Events[0].Enter != 1 || s0.Events[0].Exit != 20 {
		t.Errorf("do_work rebased to (%d,%d), want (1,20)", s0.Events[0].Enter, s0.Events[0].Exit)
	}
	if s0.Events[1].Enter != 21 || s0.Events[1].Exit != 49 {
		t.Errorf("allgather rebased to (%d,%d), want (21,49)", s0.Events[1].Enter, s0.Events[1].Exit)
	}
	if s0.Weight != 1 {
		t.Errorf("Weight = %d, want 1", s0.Weight)
	}
}

func TestSplitErrors(t *testing.T) {
	cases := []struct {
		name   string
		events []trace.Event
		want   string
	}{
		{"nested", []trace.Event{
			mark("a", trace.KindMarkBegin, 0), mark("b", trace.KindMarkBegin, 1),
		}, "nested"},
		{"end without begin", []trace.Event{
			mark("a", trace.KindMarkEnd, 0),
		}, "without begin"},
		{"context mismatch", []trace.Event{
			mark("a", trace.KindMarkBegin, 0), mark("b", trace.KindMarkEnd, 1),
		}, "does not match"},
		{"event outside", []trace.Event{
			comp("w", 0, 1),
		}, "outside"},
		{"never closed", []trace.Event{
			mark("a", trace.KindMarkBegin, 0), comp("w", 1, 2),
		}, "never closed"},
	}
	for _, c := range cases {
		_, err := Split(&trace.RankTrace{Rank: 3, Events: c.events})
		if err == nil {
			t.Errorf("%s: want error", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.want)
		}
	}
}

func TestSignatureAndComparable(t *testing.T) {
	segs, err := Split(paperTrace())
	if err != nil {
		t.Fatalf("Split: %v", err)
	}
	if segs[0].Sig() != segs[1].Sig() || !segs[0].Comparable(segs[1]) {
		t.Error("same-shape segments must be comparable with equal signatures")
	}
	// Different context.
	other := segs[1].Clone()
	other.Context = "main.2"
	other.ResetSig()
	if segs[0].Comparable(other) {
		t.Error("different contexts must not be comparable")
	}
	// Different event count.
	shorter := segs[1].Clone()
	shorter.Events = shorter.Events[:1]
	shorter.ResetSig()
	if segs[0].Comparable(shorter) {
		t.Error("different event counts must not be comparable")
	}
	// Different message parameter (paper: "all message passing calls and
	// parameters are the same").
	diffBytes := segs[1].Clone()
	diffBytes.Events[1].Bytes = 1024
	diffBytes.ResetSig()
	if segs[0].Comparable(diffBytes) {
		t.Error("different message sizes must not be comparable")
	}
	// Timing differences must NOT affect comparability.
	if segs[0].Sig() == diffBytes.Sig() {
		t.Error("signature must cover message parameters")
	}
}

// TestMeasurementsLayout pins the canonical measurement vector order to
// the paper's worked example: segment s2 of Figure 2 yields
// (49, 1, 17, 18, 48) — segment end first, then event enter/exit pairs.
func TestMeasurementsLayout(t *testing.T) {
	s := &Segment{
		Context: "main.1", End: 49,
		Events: []trace.Event{comp("do_work", 1, 17), comp("MPI_Allgather", 18, 48)},
	}
	got := s.Measurements(nil)
	want := []float64{49, 1, 17, 18, 48}
	if len(got) != len(want) {
		t.Fatalf("Measurements = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Measurements = %v, want %v", got, want)
		}
	}
	if s.NumMeasurements() != 5 {
		t.Errorf("NumMeasurements = %d, want 5", s.NumMeasurements())
	}
}

// TestStampVectorLayout pins the wavelet input vector: leading relative
// start (0), the stamps, and the segment end (paper §3.2.1).
func TestStampVectorLayout(t *testing.T) {
	s := &Segment{
		Context: "main.1", End: 50,
		Events: []trace.Event{comp("do_work", 1, 20), comp("MPI_Allgather", 21, 49)},
	}
	got := s.StampVector(nil)
	want := []float64{0, 1, 20, 21, 49, 50}
	if len(got) != len(want) {
		t.Fatalf("StampVector = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("StampVector = %v, want %v", got, want)
		}
	}
}

func TestCloneIndependence(t *testing.T) {
	segs, _ := Split(paperTrace())
	c := segs[0].Clone()
	c.Events[0].Enter = 999
	if segs[0].Events[0].Enter == 999 {
		t.Error("Clone must deep-copy events")
	}
}

func TestSplitTrace(t *testing.T) {
	tr := trace.New("t", 2)
	for r := 0; r < 2; r++ {
		tr.Ranks[r].Events = paperTrace().Events
	}
	perRank, err := SplitTrace(tr)
	if err != nil {
		t.Fatalf("SplitTrace: %v", err)
	}
	if len(perRank) != 2 || len(perRank[0]) != 3 || len(perRank[1]) != 3 {
		t.Errorf("unexpected shape: %d ranks", len(perRank))
	}
	if perRank[1][0].Rank != 1 {
		t.Errorf("rank not propagated: %d", perRank[1][0].Rank)
	}
}

// TestQuickSplitPreservesEvents: for random well-formed marker streams,
// splitting preserves every non-marker event (count and identity) and
// rebasing is exact.
func TestQuickSplitPreservesEvents(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var events []trace.Event
		now := trace.Time(0)
		total := 0
		nSegs := 1 + rng.Intn(8)
		for s := 0; s < nSegs; s++ {
			ctx := []string{"init", "main.1", "main.2.1"}[rng.Intn(3)]
			events = append(events, mark(ctx, trace.KindMarkBegin, now))
			start := now
			n := rng.Intn(5)
			for i := 0; i < n; i++ {
				d := trace.Time(1 + rng.Intn(50))
				events = append(events, comp("w", now, now+d))
				now += d
				total++
			}
			events = append(events, mark(ctx, trace.KindMarkEnd, now))
			_ = start
			now += trace.Time(rng.Intn(10))
		}
		segs, err := Split(&trace.RankTrace{Rank: 0, Events: events})
		if err != nil {
			return false
		}
		if len(segs) != nSegs {
			return false
		}
		got := 0
		for _, s := range segs {
			got += len(s.Events)
			for _, e := range s.Events {
				if e.Enter < 0 || e.Exit > s.End {
					return false // rebased events must lie inside the segment
				}
			}
		}
		return got == total
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
