package segment

import (
	"fmt"

	"repro/internal/trace"
)

// Splitter cuts one rank's event stream into segments incrementally: feed
// events in trace order and a completed segment comes back as soon as its
// closing marker arrives. It is the streaming form of Split — the batch
// functions are reimplemented on top of it — and enforces the same marker
// discipline (alternating, non-nested, matching contexts).
type Splitter struct {
	rank int
	pos  int // events consumed, for error positions
	cur  *Segment
	// free is recycled event storage donated back via Recycle; the next
	// begin marker adopts it instead of growing a fresh slice.
	free []trace.Event
}

// NewSplitter returns a Splitter for the given rank's event stream.
func NewSplitter(rank int) *Splitter {
	return &Splitter{rank: rank}
}

// Feed consumes the next event of the stream. When the event closes a
// segment, the completed segment (times rebased relative to its begin
// marker) is returned; otherwise the segment result is nil. Feed returns
// an error on marker-discipline violations, after which the Splitter must
// not be used further.
func (sp *Splitter) Feed(e trace.Event) (*Segment, error) {
	i := sp.pos
	sp.pos++
	switch e.Kind {
	case trace.KindMarkBegin:
		if sp.cur != nil {
			return nil, fmt.Errorf("segment: rank %d event %d: nested segment %q inside %q",
				sp.rank, i, e.Name, sp.cur.Context)
		}
		sp.cur = &Segment{Context: e.Name, Rank: sp.rank, Start: e.Enter, Weight: 1, Events: sp.free}
		sp.free = nil
		return nil, nil
	case trace.KindMarkEnd:
		if sp.cur == nil {
			return nil, fmt.Errorf("segment: rank %d event %d: end %q without begin", sp.rank, i, e.Name)
		}
		if sp.cur.Context != e.Name {
			return nil, fmt.Errorf("segment: rank %d event %d: end %q does not match open %q",
				sp.rank, i, e.Name, sp.cur.Context)
		}
		done := sp.cur
		done.End = e.Enter - done.Start
		sp.cur = nil
		return done, nil
	default:
		if sp.cur == nil {
			return nil, fmt.Errorf("segment: rank %d event %d (%s): event outside any segment",
				sp.rank, i, e.Name)
		}
		rel := e
		rel.Enter -= sp.cur.Start
		rel.Exit -= sp.cur.Start
		sp.cur.Events = append(sp.cur.Events, rel)
		return nil, nil
	}
}

// Finish declares the stream complete. It fails if a segment is still
// open.
func (sp *Splitter) Finish() error {
	if sp.cur != nil {
		return fmt.Errorf("segment: rank %d: segment %q never closed", sp.rank, sp.cur.Context)
	}
	return nil
}

// Open reports whether a segment is currently open (a begin marker has
// been fed without its matching end).
func (sp *Splitter) Open() bool { return sp.cur != nil }

// Recycle donates a delivered segment's event storage back to the
// splitter for the next segment, eliminating the per-segment slice
// growth in fused split-and-consume loops. The caller must be finished
// with s and must not have retained s.Events or anything aliasing it
// (Segment.Clone copies the events, so cloned-and-kept segments are
// safe to recycle).
func (sp *Splitter) Recycle(s *Segment) {
	if s != nil && cap(s.Events) > cap(sp.free) {
		sp.free = s.Events[:0]
	}
}
