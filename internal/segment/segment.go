// Package segment splits per-rank event traces into segments at the
// marker boundaries the instrumentation inserts around loops (paper §3.1),
// normalizes event times relative to the segment start, and computes the
// signatures that decide whether two segments are comparable at all.
package segment

import (
	"fmt"

	"repro/internal/trace"
)

// Segment is one contiguous marked region of a single rank's trace with
// event timestamps normalized relative to the segment start.
type Segment struct {
	// Context is the hierarchical code location ("init", "main.1",
	// "main.2.1", "final").
	Context string
	// Rank is the process the segment was collected from.
	Rank int
	// Start is the absolute start timestamp in the original trace.
	Start trace.Time
	// End is the segment duration (end marker time relative to Start).
	End trace.Time
	// Events holds the segment's events with Enter/Exit relative to Start.
	Events []trace.Event
	// Weight counts how many raw segments this one represents; iter_avg
	// folds matches into a running average and increments Weight.
	Weight int

	sig  Signature // cached; computed on first use
	meas []float64 // cached Measurements; computed on first use of Meas
}

// Signature identifies the pattern class of a segment: context plus the
// identity (name, kind, message parameters) of every event in order. Two
// segments are a "possible match" in the paper's sense iff their
// signatures are equal.
type Signature uint64

// FNV-64a parameters, inlined so signature hashing runs without
// interface dispatch or decimal formatting on the per-segment hot path.
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// fnvStr folds a length-prefixed string into an FNV-64a state.
func fnvStr(h uint64, x string) uint64 {
	h = fnvInt(h, uint64(len(x)))
	for i := 0; i < len(x); i++ {
		h = (h ^ uint64(x[i])) * fnvPrime64
	}
	return h
}

// fnvInt folds a 64-bit value into an FNV-64a state byte by byte.
func fnvInt(h, v uint64) uint64 {
	for i := 0; i < 8; i++ {
		h = (h ^ (v & 0xff)) * fnvPrime64
		v >>= 8
	}
	return h
}

// Sig returns the segment's signature, computing and caching it on first
// call.
func (s *Segment) Sig() Signature {
	if s.sig != 0 {
		return s.sig
	}
	h := uint64(fnvOffset64)
	h = fnvStr(h, s.Context)
	h = fnvInt(h, uint64(len(s.Events)))
	for i := range s.Events {
		e := &s.Events[i]
		h = fnvStr(h, e.Name)
		h = fnvInt(h, uint64(e.Kind))
		h = fnvInt(h, uint64(e.Peer))
		h = fnvInt(h, uint64(e.Tag))
		h = fnvInt(h, uint64(e.Bytes))
		h = fnvInt(h, uint64(e.Root))
	}
	s.sig = Signature(h)
	if s.sig == 0 {
		s.sig = 1 // reserve 0 for "not yet computed"
	}
	return s.sig
}

// ResetSig clears the cached signature; call it after mutating a
// segment's identity fields (context, event shapes).
func (s *Segment) ResetSig() { s.sig = 0 }

// ForceSig overrides the cached signature. It exists solely so tests can
// simulate FNV-64 signature collisions between non-comparable segments —
// infeasible to construct organically — and exercise the collision
// defenses downstream. Never call it outside tests.
func (s *Segment) ForceSig(sig Signature) { s.sig = sig }

// Comparable reports whether two segments have the same context and the
// same events (names, kinds, message parameters) in the same order — the
// precondition every similarity method shares (paper compareSegments).
func (s *Segment) Comparable(o *Segment) bool {
	if s.Context != o.Context || len(s.Events) != len(o.Events) {
		return false
	}
	if s.Sig() != o.Sig() {
		return false
	}
	for i := range s.Events {
		if !s.Events[i].SameShape(o.Events[i]) {
			return false
		}
	}
	return true
}

// Measurements appends the segment's measurement values in the canonical
// order used by the pairwise and Minkowski methods — segment end first,
// then each event's enter and exit stamp (paper Figure 2: s2 ↦
// (49, 1, 17, 18, 48)) — and returns the extended slice.
func (s *Segment) Measurements(dst []float64) []float64 {
	dst = append(dst, float64(s.End))
	for _, e := range s.Events {
		dst = append(dst, float64(e.Enter), float64(e.Exit))
	}
	return dst
}

// Meas returns the segment's measurement vector (see Measurements),
// computing and caching it on first call. Stored representatives are
// compared against every later instance of their pattern class, so the
// cache turns the per-comparison vector build into a one-time cost. The
// caller must not modify the returned slice; after mutating measurement
// fields (End, event stamps) call ResetMeas.
func (s *Segment) Meas() []float64 {
	if s.meas == nil {
		s.meas = s.Measurements(make([]float64, 0, s.NumMeasurements()))
	}
	return s.meas
}

// ResetMeas clears the cached measurement vector; call it after mutating
// a segment's timing fields (iter_avg's Absorb does).
func (s *Segment) ResetMeas() { s.meas = nil }

// StampVector appends the wavelet input vector: the relative start (always
// 0), every event enter/exit stamp, and the segment end (paper §3.2.1),
// returning the extended slice.
func (s *Segment) StampVector(dst []float64) []float64 {
	dst = append(dst, 0)
	for _, e := range s.Events {
		dst = append(dst, float64(e.Enter), float64(e.Exit))
	}
	return append(dst, float64(s.End))
}

// NumMeasurements returns len(Measurements): 2*len(Events)+1.
func (s *Segment) NumMeasurements() int { return 2*len(s.Events) + 1 }

// Clone returns a deep copy of the segment.
func (s *Segment) Clone() *Segment {
	c := *s
	c.Events = append([]trace.Event(nil), s.Events...)
	return &c
}

// Split cuts one rank's event stream into segments. Marker events delimit
// segments; event times inside each segment are rebased relative to the
// begin-marker time. The input trace must satisfy trace.Validate's marker
// discipline (alternating, non-nested, matching contexts). Split is the
// batch form of Splitter.
func Split(rt *trace.RankTrace) ([]*Segment, error) {
	sp := NewSplitter(rt.Rank)
	var segs []*Segment
	for _, e := range rt.Events {
		s, err := sp.Feed(e)
		if err != nil {
			return nil, err
		}
		if s != nil {
			segs = append(segs, s)
		}
	}
	if err := sp.Finish(); err != nil {
		return nil, err
	}
	return segs, nil
}

// SplitTrace segments every rank of t. The result is indexed by rank.
func SplitTrace(t *trace.Trace) ([][]*Segment, error) {
	out := make([][]*Segment, len(t.Ranks))
	for i := range t.Ranks {
		segs, err := Split(&t.Ranks[i])
		if err != nil {
			return nil, fmt.Errorf("trace %q: %w", t.Name, err)
		}
		out[i] = segs
	}
	return out, nil
}
