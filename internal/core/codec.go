package core

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"repro/internal/segment"
	"repro/internal/trace"
)

// Reduced trace file format (TRR1). The byte-level specification lives
// in docs/FORMATS.md; this comment is the summary.
//
// All integers little-endian. Layout:
//
//	magic  "TRR1"
//	name   length-prefixed workload name
//	method length-prefixed policy name
//	names  u32 count + length-prefixed strings (event names AND contexts)
//	nranks u32
//	per rank:
//	  rank u32, nstored u32, nexecs u32
//	  per stored segment: contextID u32, end i64, weight u32,
//	                      nevents u32, then 41-byte event records
//	  per exec: id u32, start i64            (12 bytes each)
//
// The 12-byte exec record is what makes reduction pay: a matched segment
// costs 12 bytes instead of nevents × 41.

const reducedMagic = "TRR1"

// ExecRecordSize is the encoded size of one segment-execution record.
const ExecRecordSize = 4 + 8

// EncodedReducedSize returns the byte size EncodeReduced would write.
func EncodedReducedSize(r *Reduced) int64 {
	var c trace.CountingWriter
	if err := EncodeReduced(&c, r); err != nil {
		panic("core: EncodedReducedSize: " + err.Error())
	}
	return c.N
}

// EncodeReduced writes r to w in the reduced binary format.
func EncodeReduced(w io.Writer, r *Reduced) error {
	bw := bufio.NewWriter(w)
	nt := reducedNameTable(r)
	if err := writeReducedV1Header(bw, r.Name, r.Method, nt, len(r.Ranks)); err != nil {
		return err
	}
	var chunk []byte
	for i := range r.Ranks {
		chunk = appendRankReducedV1(chunk[:0], nt, &r.Ranks[i])
		if _, err := bw.Write(chunk); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// writeReducedV1Header writes the TRR1 header: magic, workload name,
// method, name table, rank count.
func writeReducedV1Header(bw io.Writer, name, method string, nt *trace.NameTable, nRanks int) error {
	if _, err := io.WriteString(bw, reducedMagic); err != nil {
		return err
	}
	if err := trace.WriteString(bw, name); err != nil {
		return err
	}
	if err := trace.WriteString(bw, method); err != nil {
		return err
	}
	le := binary.LittleEndian
	if err := binary.Write(bw, le, uint32(len(nt.Names()))); err != nil {
		return err
	}
	for _, s := range nt.Names() {
		if err := trace.WriteString(bw, s); err != nil {
			return err
		}
	}
	return binary.Write(bw, le, uint32(nRanks))
}

// appendRankReducedV1 appends one rank's TRR1 section — rank header,
// stored segments with fixed-width event records, 12-byte exec records —
// to dst and returns the extended slice. Both the batch encoder above
// and the pipelined reduce-to-writer path emit rank sections through
// this helper, so their bytes agree by construction.
func appendRankReducedV1(dst []byte, nt trace.NameIDs, rr *RankReduced) []byte {
	le := binary.LittleEndian
	dst = le.AppendUint32(dst, uint32(rr.Rank))
	dst = le.AppendUint32(dst, uint32(len(rr.Stored)))
	dst = le.AppendUint32(dst, uint32(len(rr.Execs)))
	var rec [trace.EventRecordSize]byte
	for _, s := range rr.Stored {
		dst = le.AppendUint32(dst, uint32(nt.ID(s.Context)))
		dst = le.AppendUint64(dst, uint64(s.End))
		dst = le.AppendUint32(dst, uint32(s.Weight))
		dst = le.AppendUint32(dst, uint32(len(s.Events)))
		for _, e := range s.Events {
			trace.PutEventRecord(rec[:], nt.ID(e.Name), e)
			dst = append(dst, rec[:]...)
		}
	}
	var exrec [ExecRecordSize]byte
	for _, ex := range rr.Execs {
		le.PutUint32(exrec[0:], uint32(ex.ID))
		le.PutUint64(exrec[4:], uint64(ex.Start))
		dst = append(dst, exrec[:]...)
	}
	return dst
}

// DecodeReduced reads a reduced trace in the binary format from rd.
// Both container versions are accepted; the magic selects the codec.
// Version-2 (TRR2) files on a random-access input (io.ReaderAt +
// io.Seeker) decode their blocks in parallel.
func DecodeReduced(rd io.Reader) (*Reduced, error) {
	return DecodeReducedWith(rd, trace.DecoderOptions{})
}

// DecodeReducedWith is DecodeReduced with explicit options: worker
// count for v2 block-parallel decode, allocation caps, and a context
// that cancels the decode between ranks.
func DecodeReducedWith(rd io.Reader, opts trace.DecoderOptions) (*Reduced, error) {
	opts = opts.Resolve()
	sr, ok, err := trace.SectionFor(rd)
	if err != nil {
		return nil, err
	}
	if ok {
		if magic, err := trace.PeekMagic(sr); err == nil && magic == reducedMagicV2 {
			return decodeReducedV2Parallel(sr, opts)
		}
	}
	cr := &v2countingReader{r: rd}
	br := bufio.NewReader(cr)
	magic := make([]byte, len(reducedMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("core: reading magic: %w", err)
	}
	switch string(magic) {
	case reducedMagic:
		return decodeReducedV1(br, opts)
	case reducedMagicV2:
		return decodeReducedV2Sequential(cr, br, opts)
	default:
		return nil, fmt.Errorf("core: bad magic %q", magic)
	}
}

// decodeReducedV1 reads the TRR1 body after the magic.
func decodeReducedV1(br *bufio.Reader, opts trace.DecoderOptions) (*Reduced, error) {
	lim := opts.Limits
	name, err := trace.ReadStringLimit(br, lim.MaxStringLen)
	if err != nil {
		return nil, err
	}
	method, err := trace.ReadStringLimit(br, lim.MaxStringLen)
	if err != nil {
		return nil, err
	}
	le := binary.LittleEndian
	var nNames uint32
	if err := binary.Read(br, le, &nNames); err != nil {
		return nil, err
	}
	if nNames > lim.MaxNames {
		return nil, fmt.Errorf("core: name table size %d exceeds the %d-entry cap", nNames, lim.MaxNames)
	}
	names := make([]string, 0, min(nNames, 1<<12))
	for i := uint32(0); i < nNames; i++ {
		s, err := trace.ReadStringLimit(br, lim.MaxStringLen)
		if err != nil {
			return nil, err
		}
		names = append(names, s)
	}
	var nRanks uint32
	if err := binary.Read(br, le, &nRanks); err != nil {
		return nil, err
	}
	if nRanks > lim.MaxRanks {
		return nil, fmt.Errorf("core: rank count %d exceeds the %d cap", nRanks, lim.MaxRanks)
	}
	r := &Reduced{Name: name, Method: method, Ranks: make([]RankReduced, nRanks)}
	rec := make([]byte, trace.EventRecordSize)
	for i := range r.Ranks {
		if err := opts.Ctx.Err(); err != nil {
			return nil, err
		}
		var hdr [3]uint32
		if err := binary.Read(br, le, &hdr); err != nil {
			return nil, err
		}
		rr := &r.Ranks[i]
		rr.Rank = int(hdr[0])
		nStored, nExecs := hdr[1], hdr[2]
		if nStored > 1<<24 || nExecs > 1<<28 {
			return nil, fmt.Errorf("core: rank %d: implausible counts stored=%d execs=%d", rr.Rank, nStored, nExecs)
		}
		// Initial capacities are capped below the declared counts: a
		// hostile header can promise huge counts, but every record costs
		// input bytes, so growth-by-append bounds memory by stream size.
		rr.Stored = make([]*segment.Segment, 0, min(nStored, 1<<12))
		for j := uint32(0); j < nStored; j++ {
			var ctxID uint32
			var end int64
			var weight, nEvents uint32
			if err := binary.Read(br, le, &ctxID); err != nil {
				return nil, err
			}
			if err := binary.Read(br, le, &end); err != nil {
				return nil, err
			}
			if err := binary.Read(br, le, &weight); err != nil {
				return nil, err
			}
			if err := binary.Read(br, le, &nEvents); err != nil {
				return nil, err
			}
			if int(ctxID) >= len(names) {
				return nil, fmt.Errorf("core: context id %d out of range", ctxID)
			}
			s := &segment.Segment{Context: names[ctxID], Rank: rr.Rank, End: end, Weight: int(weight)}
			s.Events = make([]trace.Event, 0, min(nEvents, 1<<12))
			for k := uint32(0); k < nEvents; k++ {
				if _, err := io.ReadFull(br, rec); err != nil {
					return nil, err
				}
				e, err := trace.GetEventRecord(rec, names)
				if err != nil {
					return nil, err
				}
				s.Events = append(s.Events, e)
			}
			rr.Stored = append(rr.Stored, s)
		}
		rr.Execs = make([]Exec, 0, min(nExecs, 1<<16))
		for j := uint32(0); j < nExecs; j++ {
			var id uint32
			var start int64
			if err := binary.Read(br, le, &id); err != nil {
				return nil, err
			}
			if err := binary.Read(br, le, &start); err != nil {
				return nil, err
			}
			rr.Execs = append(rr.Execs, Exec{ID: int(id), Start: start})
		}
	}
	return r, nil
}
