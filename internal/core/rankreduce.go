package core

import (
	"slices"

	"repro/internal/segment"
	"repro/internal/trace"
)

// RankReducer is the incremental, per-rank form of the reduction engine:
// a state machine that consumes one rank's segments in trace order and
// maintains the stored representatives, the execution log, and the
// matching counters as it goes. It exists so callers can reduce a trace
// while it is still being decoded or generated — one rank at a time, one
// segment at a time — instead of materializing every segment of every
// rank first. Reduce itself is a thin driver that runs one RankReducer
// per rank on a worker pool.
//
// Matching goes through a Matcher: representatives are indexed by
// signature, partitioned into comparability classes at insertion, and
// carry the policy's prepared state, so a scan costs one class lookup
// plus prepared-state comparisons instead of per-comparison Comparable
// checks and derived-data recomputation.
//
// A RankReducer is not safe for concurrent use; use one per goroutine.
type RankReducer struct {
	m   *Matcher
	out RankReduced

	total, matches, possible int
}

// NewRankReducer returns a reducer for one rank's segment stream using
// policy p with the exact first-match scan.
func NewRankReducer(rank int, p Policy) *RankReducer {
	return NewRankReducerMode(rank, p, MatchModeExact)
}

// NewRankReducerMode returns a reducer for one rank's segment stream
// using policy p under the given MatchMode; approximate modes search
// each pattern class through a sublinear index where the policy
// supports one (see MatchMode).
func NewRankReducerMode(rank int, p Policy, mode MatchMode) *RankReducer {
	return &RankReducer{
		m:   NewMatcherMode(p, mode),
		out: RankReduced{Rank: rank},
	}
}

// Feed consumes the rank's next segment: it is either logged as an
// execution of a matching stored representative of its pattern class or
// kept (normalized to start 0) as a new representative. Feed takes
// ownership of s for matching but stores only a clone, so callers may
// reuse or discard the segment afterwards.
func (r *RankReducer) Feed(s *segment.Segment) {
	r.total++
	rr := &r.out
	cls, idx, cs := r.m.Scan(s)
	if cls != nil {
		r.possible++
	}
	if idx >= 0 {
		storedID := cls.StoredID(idx)
		r.m.Absorb(cls, idx, s)
		rr.Execs = append(rr.Execs, Exec{ID: storedID, Start: s.Start})
		r.matches++
		return
	}
	id := len(rr.Stored)
	kept := s.Clone()
	kept.Start = 0
	rr.Stored = append(rr.Stored, kept)
	rr.Execs = append(rr.Execs, Exec{ID: id, Start: s.Start})
	r.m.Insert(cls, kept, id, cs)
}

// FeedEvents splits one rank's raw event stream incrementally and feeds
// every completed segment, fusing segment.Splitter with the reducer so a
// decoded rank trace never holds its segment list in memory. Because the
// reducer clones what it keeps, each delivered segment's event storage
// is recycled into the splitter, and the execution log is pre-grown to
// the stream's segment count.
func (r *RankReducer) FeedEvents(rank int, events []trace.Event) error {
	nseg := 0
	for i := range events {
		if events[i].Kind == trace.KindMarkBegin {
			nseg++
		}
	}
	r.out.Execs = slices.Grow(r.out.Execs, nseg)
	sp := segment.NewSplitter(rank)
	for _, e := range events {
		s, err := sp.Feed(e)
		if err != nil {
			return err
		}
		if s != nil {
			r.Feed(s)
			sp.Recycle(s)
		}
	}
	return sp.Finish()
}

// Finish returns the rank's reduction. The reducer must not be fed
// afterwards.
func (r *RankReducer) Finish() RankReduced { return r.out }

// TotalSegments returns the number of segments fed so far.
func (r *RankReducer) TotalSegments() int { return r.total }

// Matches returns how many fed segments matched a stored representative.
func (r *RankReducer) Matches() int { return r.matches }

// PossibleMatches returns how many fed segments had any comparable
// predecessor — the denominator of the degree-of-matching metric.
func (r *RankReducer) PossibleMatches() int { return r.possible }
