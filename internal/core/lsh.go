package core

import (
	"repro/internal/segment"
)

// LSH parameters. Each class keeps lshTables independent hash tables of
// lshBits-bit random-hyperplane signatures over the prepared wavelet
// transform rows of the class slab. A candidate scans only the
// representatives that share a full signature with it in at least one
// table, so the expected scan cost is the hashing work (lshTables ×
// lshBits dot products) plus a handful of verified near neighbours,
// independent of class size.
//
// Two transforms within the match threshold of each other subtend a
// small angle, so each hyperplane separates them with low probability;
// with 8-bit signatures and 4 tables the measured recall of
// within-threshold neighbours on random stamp vectors stays above 90%
// (lsh_test.go pins a floor). A missed match stores a duplicate
// representative — the reduction stays valid, just slightly larger —
// which is the score loss the eval grid's mode dimension quantifies.
const (
	lshTables = 4
	lshBits   = 8
	// lshSeed fixes the hyperplane stream so reductions are reproducible
	// across runs and platforms.
	lshSeed = 0x5ca1ab1e0ddba11
)

// splitmix64 advances the SplitMix64 generator state and returns the
// next value; the standard parameterization (Steele et al.).
func splitmix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// lshPlanes returns the lshTables×lshBits hyperplanes for dimension dim,
// components uniform in [-1, 1), generated deterministically from
// lshSeed. Signature hashing only uses the sign of a dot product, so the
// uniform components serve as well as Gaussians and avoid transcendental
// math that could differ across platforms.
func lshPlanes(dim int) [][]float64 {
	planes := make([][]float64, lshTables*lshBits)
	state := uint64(lshSeed)
	for i := range planes {
		p := make([]float64, dim)
		for d := range p {
			p[d] = float64(splitmix64(&state))/(1<<63) - 1
		}
		planes[i] = p
	}
	return planes
}

// lshIndex is the IndexedClass for the wavelet policies: bucketed
// random-hyperplane signatures over the slab's prepared transform rows.
// Vectors are read out of the class slab at use time (rows may relocate
// as the slab grows), so the index owns no vector storage of its own.
type lshIndex struct {
	cls   *Class
	bound func(candMaxAbs, repMaxAbs float64) float64
	dist  func(a, b []float64) float64

	dim     int // transform length, fixed per class; 0 until first Add
	planes  [][]float64
	buckets [lshTables]map[uint16][]int32

	scratch []int32   // reusable candidate-collection buffer
	cvec    []float64 // reusable centered-vector buffer
	seen    []uint32  // per-representative visit epoch, for sort-free dedup
	epoch   uint32
}

// center is the first representative's slab row. Signatures hash the
// offset from it, not the raw vector: class members share large common
// components (the wavelet DC coefficient above all), and raw dot
// products are dominated by that shared part, pushing every member to
// the same side of most hyperplanes — one giant bucket. Offsets from a
// fixed member cancel the common structure, so signs spread by what
// actually differs; nearby vectors still land in the same bucket because
// their offsets are nearly equal. The wavelet policies never mutate
// representatives, so row 0's values are stable across the class's life.
func (x *lshIndex) center() []float64 { return x.cls.Row(0) }

// signature computes the table-th hash code of an already-centered
// vector (vec minus the class center).
func (x *lshIndex) signature(table int, centered []float64) uint16 {
	var code uint16
	base := table * lshBits
	for b := 0; b < lshBits; b++ {
		p := x.planes[base+b]
		var dot float64
		for d, v := range centered {
			dot += v * p[d]
		}
		if dot >= 0 {
			code |= 1 << b
		}
	}
	return code
}

// centered writes vec minus the class center into the reusable buffer.
func (x *lshIndex) centered(vec []float64) []float64 {
	if cap(x.cvec) < len(vec) {
		x.cvec = make([]float64, len(vec))
	}
	c := x.cvec[:len(vec)]
	center := x.center()
	for d, v := range vec {
		c[d] = v - center[d]
	}
	return c
}

// Add indexes the class's i-th representative in every table. All
// members of a comparability class share one event count and therefore
// one padded transform length, so the hyperplanes are sized lazily from
// the first representative.
func (x *lshIndex) Add(i int) {
	vec := x.cls.Row(i)
	if x.planes == nil {
		x.dim = len(vec)
		x.planes = lshPlanes(x.dim)
		for t := range x.buckets {
			x.buckets[t] = make(map[uint16][]int32)
		}
	}
	cvec := x.centered(vec)
	for t := range x.buckets {
		code := x.signature(t, cvec)
		x.buckets[t][code] = append(x.buckets[t][code], int32(i))
	}
}

// Search hashes the candidate, collects the union of its buckets across
// all tables, and verifies each surfaced representative once with the
// exact acceptance test, keeping the lowest matching index — so among
// the representatives LSH surfaces, the returned match is the true first
// match. Returns -1 when no surfaced representative matches (either none
// exists, or hashing missed it). Dedup uses a per-representative epoch
// array rather than sorting: skewed buckets can surface the same
// representative from all four tables, and sorting the raw union was the
// dominant scan cost.
func (x *lshIndex) Search(cand *segment.Segment, cs *RepState) int {
	if x.planes == nil {
		return -1
	}
	vec, candMaxAbs := cs.Vec, cs.MaxAbs
	// The class center is representative 0's vector, so a candidate
	// matching representative 0 has a near-zero offset whose hyperplane
	// signs are noise — hashing would miss it systematically. Stored
	// representatives are mutually non-matching, so representative 0 is
	// the only one a near-zero offset can match: verify it directly.
	// It is also the lowest index, so a hit here is the first match.
	if x.dist(vec, x.cls.Row(0)) <= x.bound(candMaxAbs, x.cls.maxAbs[0]) {
		return 0
	}
	cvec := x.centered(vec)
	found := x.scratch[:0]
	for t := range x.buckets {
		found = append(found, x.buckets[t][x.signature(t, cvec)]...)
	}
	x.scratch = found
	if len(found) == 0 {
		return -1
	}
	if n := x.cls.Len(); len(x.seen) < n {
		grown := make([]uint32, 2*n)
		copy(grown, x.seen)
		x.seen = grown
	}
	x.epoch++
	if x.epoch == 0 { // wrapped: stale marks would alias the new epoch
		clear(x.seen)
		x.epoch = 1
	}
	best := int32(-1)
	for _, i := range found {
		if x.seen[i] == x.epoch || (best >= 0 && i >= best) {
			continue
		}
		x.seen[i] = x.epoch
		if x.dist(vec, x.cls.Row(int(i))) <= x.bound(candMaxAbs, x.cls.maxAbs[i]) {
			best = i
		}
	}
	return int(best)
}

// Rebuild re-hashes every representative (after in-place state
// mutation; the wavelet policies never mutate, so this is a cold path).
func (x *lshIndex) Rebuild() {
	x.planes = nil
	x.dim = 0
	for i, n := 0, x.cls.Len(); i < n; i++ {
		x.Add(i)
	}
}
