package core

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"runtime"
	"runtime/pprof"
	"strconv"
	"sync"

	"repro/internal/trace"
)

// Pipelined reduce-to-writer path: decode, per-rank reduction, and
// reduced-block encode all overlap. Each rank's reduced block is encoded
// by the worker that finished reducing that rank, while other workers
// are still pulling ranks from the source; only the final container
// assembly (header + spooled blocks + footer) is serial. The output is
// byte-identical to encoding the batch ReduceStreamMode result.
//
// Byte identity hinges on the name table: the batch encoders assign ids
// in first-use order scanning ranks 0,1,2,…, so the ids a rank's block
// needs depend only on ranks ≤ it. The pipeline reproduces that by
// registering each rank's names in strict rank order (a turnstile on the
// shared table) and snapshotting the rank's ids into a private read-only
// map, which the worker then encodes from without further
// synchronization. Because the table and the rank count live in the
// container header, no output byte can be emitted before the source is
// exhausted — encoded blocks are spooled in memory instead. Peak memory
// is O(workers) raw ranks plus the compact encoded blocks, far below the
// batch path's full trace + full Reduced.

// StreamStats summarizes a pipelined reduce-to-writer run: the reduction
// counters (matching the Reduced the batch path would have built) plus
// the bytes written.
type StreamStats struct {
	// Name and Method identify the workload and similarity policy.
	Name   string
	Method string
	// Ranks counts the ranks reduced and written.
	Ranks int
	// TotalSegments, Matches, and PossibleMatches mirror the Reduced
	// counters of the batch reduction.
	TotalSegments   int
	Matches         int
	PossibleMatches int
	// StoredSegments counts the representatives kept across all ranks.
	StoredSegments int
	// BytesWritten is the size of the reduced container produced.
	BytesWritten int64
}

// DegreeOfMatching returns Matches/PossibleMatches, the paper's quality
// metric, mirroring Reduced.DegreeOfMatching.
func (s *StreamStats) DegreeOfMatching() float64 {
	if s.PossibleMatches == 0 {
		return 1
	}
	return float64(s.Matches) / float64(s.PossibleMatches)
}

// rankNameIDs is one rank's slice of the shared name table, captured at
// registration time while the turnstile lock is held. Encode workers
// read it lock-free while later ranks keep registering new names into
// the shared table.
type rankNameIDs map[string]uint32

func (m rankNameIDs) ID(name string) uint32 { return m[name] }

// snapshotRankNames registers one rank's names into nt (in the batch
// prescan's visit order) and returns the rank's private id snapshot.
func snapshotRankNames(nt *trace.NameTable, rr *RankReduced) rankNameIDs {
	ids := make(rankNameIDs)
	for _, s := range rr.Stored {
		ids[s.Context] = nt.ID(s.Context)
		for _, e := range s.Events {
			ids[e.Name] = nt.ID(e.Name)
		}
	}
	return ids
}

// passthroughCounter counts the bytes actually forwarded to w.
type passthroughCounter struct {
	w io.Writer
	n int64
}

func (c *passthroughCounter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

// ReduceStreamToWriter reduces the rank stream next (ReduceStream's
// contract: one rank per call, io.EOF at the end) and writes the reduced
// container to w in the given format version (1 = TRR1, 2 = TRR2),
// byte-identical to EncodeReduced/EncodeReducedV2 of the batch
// ReduceStream result, with the exact first-match scan.
func ReduceStreamToWriter(name string, p Policy, next func() (*trace.RankTrace, error), w io.Writer, version int) (*StreamStats, error) {
	return ReduceStreamToWriterMode(name, p, MatchModeExact, next, w, version)
}

// ReduceStreamToWriterMode is ReduceStreamToWriter under an explicit
// MatchMode (see MatchMode for the per-mode guarantees).
func ReduceStreamToWriterMode(name string, p Policy, mode MatchMode, next func() (*trace.RankTrace, error), w io.Writer, version int) (*StreamStats, error) {
	return ReduceStreamToWriterOpts(name, p, next, w, version, StreamOptions{Mode: mode})
}

// StreamOptions configure the pipelined reduce-to-writer path. The zero
// value is the exact-scan default on a GOMAXPROCS pool.
type StreamOptions struct {
	// Mode selects the matcher's search mode (see MatchMode).
	Mode MatchMode
	// Workers bounds the reduce/encode pool; non-positive means
	// GOMAXPROCS. Output bytes are identical at every setting.
	Workers int
	// Ctx cancels the run: workers stop claiming ranks, turnstile
	// waiters are released, and ctx.Err() is returned. nil means
	// context.Background().
	Ctx context.Context
	// Recycle, when non-nil, receives each rank back as soon as its
	// events have been split into segments (the reducer copies what it
	// keeps), letting the trace decoder reuse the event storage for a
	// later rank. Wire it to trace.Decoder.Recycle to bound a session's
	// event allocation at O(workers) buffers however many ranks stream
	// through. Must be safe for concurrent calls from the worker pool.
	Recycle func(*trace.RankTrace)
}

// ReduceStreamToWriterOpts is ReduceStreamToWriterMode with an explicit
// worker count and cancellation context.
func ReduceStreamToWriterOpts(name string, p Policy, next func() (*trace.RankTrace, error), w io.Writer, version int, opts StreamOptions) (*StreamStats, error) {
	mode := opts.Mode
	if version != 1 && version != 2 {
		return nil, fmt.Errorf("core: unknown reduced container version %d", version)
	}
	ctx := opts.Ctx
	if ctx == nil {
		ctx = context.Background()
	}
	var (
		srcMu    sync.Mutex // serializes next and the arrival counter
		arrivals int
		firstErr error

		// The registration turnstile: rank i's worker may register its
		// names only once ranks 0..i-1 have registered theirs, so the
		// shared table grows exactly as the batch prescan would.
		regMu   sync.Mutex
		regCond = sync.NewCond(&regMu)
		regTurn int
		aborted bool

		nt = trace.NewNameTable()

		outMu  sync.Mutex // guards chunks/metas growth and the counters
		chunks [][]byte
		ranks  []uint32
		counts []uint32
	)
	abortReg := func() {
		regMu.Lock()
		aborted = true
		regCond.Broadcast()
		regMu.Unlock()
	}
	fail := func(err error) {
		srcMu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		srcMu.Unlock()
		// Wake turnstile waiters: the failed rank will never take its
		// turn, so blocked later ranks must be released.
		abortReg()
	}
	stats := &StreamStats{Name: name, Method: p.Name()}
	// Cancellation rides the existing failure path: fail latches the
	// error and wakes every turnstile waiter, so blocked workers unwind
	// exactly as they would on a decode error.
	// Latch an already-dead context synchronously: AfterFunc fires on its
	// own goroutine, and a small stream can finish before it runs.
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	stopCancel := context.AfterFunc(ctx, func() { fail(ctx.Err()) })
	defer stopCancel()
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	var wg sync.WaitGroup
	for wkr := 0; wkr < workers; wkr++ {
		wg.Add(1)
		// Label the worker goroutines so CPU profiles split pipeline time
		// by stage and method instead of lumping it under one anonymous
		// function (tracereduce -cpuprofile, tracereduced -cpuprofile).
		go pprof.Do(ctx, pprof.Labels(
			"subsystem", "reduce-pipeline",
			"method", p.Name(),
			"worker", strconv.Itoa(wkr),
		), func(context.Context) {
			defer wg.Done()
			for {
				srcMu.Lock()
				if firstErr != nil {
					srcMu.Unlock()
					return
				}
				rt, err := next()
				i := arrivals
				if err == nil {
					arrivals++
				} else if err != io.EOF {
					firstErr = err
				}
				srcMu.Unlock()
				if err != nil {
					if err != io.EOF {
						abortReg()
					}
					return
				}
				r := NewRankReducerMode(i, p, mode)
				if err := r.FeedEvents(rt.Rank, rt.Events); err != nil {
					fail(fmt.Errorf("trace %q: %w", name, err))
					return
				}
				// The reducer copied everything it keeps out of rt.Events,
				// so the rank's storage can go back to the decoder now.
				if opts.Recycle != nil {
					opts.Recycle(rt)
				}
				rr := r.Finish()
				// Every claimed index takes its registration turn unless
				// the run aborts, so the turn sequence stays contiguous
				// and no waiter is stranded.
				regMu.Lock()
				for regTurn != i && !aborted {
					regCond.Wait()
				}
				if aborted {
					regMu.Unlock()
					return
				}
				ids := snapshotRankNames(nt, &rr)
				regTurn++
				regCond.Broadcast()
				regMu.Unlock()
				// Encode this rank's block concurrently from the private
				// id snapshot; the raw rank and reducer state die here,
				// only the compact chunk is spooled.
				var chunk []byte
				if version == 2 {
					chunk = appendRankReducedV2(nil, ids, &rr)
				} else {
					chunk = appendRankReducedV1(nil, ids, &rr)
				}
				outMu.Lock()
				for len(chunks) <= i {
					chunks = append(chunks, nil)
					ranks = append(ranks, 0)
					counts = append(counts, 0)
				}
				chunks[i] = chunk
				ranks[i] = uint32(rr.Rank)
				counts[i] = uint32(len(rr.Stored) + len(rr.Execs))
				stats.TotalSegments += r.TotalSegments()
				stats.Matches += r.Matches()
				stats.PossibleMatches += r.PossibleMatches()
				stats.StoredSegments += len(rr.Stored)
				outMu.Unlock()
			}
		})
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	stats.Ranks = len(chunks)
	cw := &passthroughCounter{w: w}
	switch version {
	case 2:
		bw := trace.NewBlockWriter(cw)
		if err := writeReducedV2Header(bw, name, p.Name(), nt, len(chunks)); err != nil {
			return nil, err
		}
		for i, chunk := range chunks {
			if err := bw.WriteBlock(ranks[i], counts[i], chunk); err != nil {
				return nil, err
			}
		}
		if err := bw.Finish(reducedMagicV2); err != nil {
			return nil, err
		}
	default:
		bw := bufio.NewWriter(cw)
		if err := writeReducedV1Header(bw, name, p.Name(), nt, len(chunks)); err != nil {
			return nil, err
		}
		for _, chunk := range chunks {
			if _, err := bw.Write(chunk); err != nil {
				return nil, err
			}
		}
		if err := bw.Flush(); err != nil {
			return nil, err
		}
	}
	stats.BytesWritten = cw.n
	return stats, nil
}
