package core

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"sync"
	"sync/atomic"

	"repro/internal/segment"
	"repro/internal/trace"
)

// Columnar reduced-trace container, version 2 (TRR2). The byte-level
// specification lives in docs/FORMATS.md; this comment is the summary.
//
// TRR2 shares the v2 block machinery with TRC2 (internal/trace): one
// self-contained block per rank with an inline header (rank, records,
// payload length, CRC32-C), a footer block index, and a trailer, so the
// reader can verify the layout once and decode blocks independently —
// in parallel on random-access inputs. Layout:
//
//	magic   "TRR2" (4 bytes)
//	name    length-prefixed workload name
//	method  length-prefixed similarity-method name
//	names   u32 count + length-prefixed strings (event names AND contexts)
//	nranks  u32
//	per rank, in file order: one block (records = nstored + nexecs)
//	  u32 rank, u32 records, u32 payload length, u32 CRC32-C(payload)
//	  payload:
//	    uvarint nstored, uvarint nexecs
//	    per stored segment: uvarint contextID, svarint end,
//	      uvarint weight, uvarint nevents, then v2 event records
//	      (the Δenter chain restarts per segment)
//	    per exec: uvarint id, svarint Δstart (vs the previous exec)
//	footer  block index + trailer, as in TRC2, trailing magic "TRR2"

const reducedMagicV2 = "TRR2"

// EncodedReducedSizeV2 returns the byte size EncodeReducedV2 would
// write, computed in a single size-only pass (no second encode).
func EncodedReducedSizeV2(r *Reduced) int64 {
	nt := reducedNameTable(r)
	size := int64(len(reducedMagicV2)) + trace.V2StringSize(r.Name) + trace.V2StringSize(r.Method) + 4
	for _, name := range nt.Names() {
		size += trace.V2StringSize(name)
	}
	size += 4 // rank count
	for i := range r.Ranks {
		payload := rankReducedV2Size(nt, &r.Ranks[i])
		if payload > trace.MaxBlockPayload {
			panic(fmt.Sprintf("core: EncodedReducedSizeV2: rank %d block payload %d bytes exceeds the %d-byte format limit",
				r.Ranks[i].Rank, payload, trace.MaxBlockPayload))
		}
		size += trace.V2BlockSize(payload)
	}
	return size + trace.V2ContainerTail(len(r.Ranks))
}

// rankReducedV2Size returns len(appendRankReducedV2(nil, nt, rr)) as a
// pure size walk.
func rankReducedV2Size(nt trace.NameIDs, rr *RankReduced) int64 {
	n := int64(trace.UvarintSize(uint64(len(rr.Stored))) + trace.UvarintSize(uint64(len(rr.Execs))))
	for _, s := range rr.Stored {
		n += int64(trace.UvarintSize(uint64(nt.ID(s.Context))))
		n += int64(trace.VarintSize(s.End))
		n += int64(trace.UvarintSize(uint64(s.Weight)))
		n += int64(trace.UvarintSize(uint64(len(s.Events))))
		n += trace.EventsV2Size(nt, s.Events)
	}
	var prev int64
	for _, ex := range rr.Execs {
		n += int64(trace.UvarintSize(uint64(ex.ID)))
		n += int64(trace.VarintSize(ex.Start - prev))
		prev = ex.Start
	}
	return n
}

// reducedNameTable prescans r and assigns name-table ids rank by rank in
// first-use order — the id assignment every reduced encoder (v1, v2, and
// the pipelined writer, which registers one rank at a time) shares.
func reducedNameTable(r *Reduced) *trace.NameTable {
	nt := trace.NewNameTable()
	for i := range r.Ranks {
		registerRankNames(nt, &r.Ranks[i])
	}
	return nt
}

// registerRankNames assigns ids for one rank's names in the exact order
// the batch prescan visits them: per stored segment, the context first,
// then its event names. The pipelined writer calls this per rank as
// ranks complete, in rank order, which yields the same table.
func registerRankNames(nt *trace.NameTable, rr *RankReduced) {
	for _, s := range rr.Stored {
		nt.ID(s.Context)
		for _, e := range s.Events {
			nt.ID(e.Name)
		}
	}
}

// writeReducedV2Header writes the TRR2 container header: magic, workload
// name, method, name table, rank count.
func writeReducedV2Header(bw *trace.BlockWriter, name, method string, nt *trace.NameTable, nRanks int) error {
	if _, err := io.WriteString(bw, reducedMagicV2); err != nil {
		return err
	}
	if err := trace.WriteString(bw, name); err != nil {
		return err
	}
	if err := trace.WriteString(bw, method); err != nil {
		return err
	}
	le := binary.LittleEndian
	if err := binary.Write(bw, le, uint32(len(nt.Names()))); err != nil {
		return err
	}
	for _, s := range nt.Names() {
		if err := trace.WriteString(bw, s); err != nil {
			return err
		}
	}
	return binary.Write(bw, le, uint32(nRanks))
}

// EncodeReducedV2 writes r to w in the columnar v2 reduced format
// (TRR2). It is the sequential reference; EncodeReducedV2With produces
// identical bytes on a worker pool. The v1 format remains the default
// interchange form.
func EncodeReducedV2(w io.Writer, r *Reduced) error {
	return encodeReducedV2(w, r, 1)
}

// EncodeReducedV2With is EncodeReducedV2 with explicit options: rank
// blocks are encoded concurrently by opts.Workers goroutines and
// committed in file order, byte-identical to the sequential encoder.
func EncodeReducedV2With(w io.Writer, r *Reduced, opts trace.EncoderOptions) error {
	return encodeReducedV2(w, r, trace.DefaultEncodeWorkers(opts.Workers))
}

func encodeReducedV2(w io.Writer, r *Reduced, workers int) error {
	bw := trace.NewBlockWriter(w)
	nt := reducedNameTable(r)
	if err := writeReducedV2Header(bw, r.Name, r.Method, nt, len(r.Ranks)); err != nil {
		return err
	}
	// The prescan registered every name, so concurrent encoders only
	// read the table — safe without locks.
	err := bw.WriteBlocksParallel(len(r.Ranks), workers,
		func(i int) (uint32, uint32) {
			rr := &r.Ranks[i]
			return uint32(rr.Rank), uint32(len(rr.Stored) + len(rr.Execs))
		},
		func(i int, dst []byte) []byte {
			return appendRankReducedV2(dst, nt, &r.Ranks[i])
		})
	if err != nil {
		return err
	}
	return bw.Finish(reducedMagicV2)
}

// appendRankReducedV2 appends one rank's v2 block payload to dst.
func appendRankReducedV2(dst []byte, nt trace.NameIDs, rr *RankReduced) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(rr.Stored)))
	dst = binary.AppendUvarint(dst, uint64(len(rr.Execs)))
	for _, s := range rr.Stored {
		dst = binary.AppendUvarint(dst, uint64(nt.ID(s.Context)))
		dst = binary.AppendVarint(dst, s.End)
		dst = binary.AppendUvarint(dst, uint64(s.Weight))
		dst = binary.AppendUvarint(dst, uint64(len(s.Events)))
		dst = trace.AppendEventsV2(dst, nt, s.Events)
	}
	var prev int64
	for _, ex := range rr.Execs {
		dst = binary.AppendUvarint(dst, uint64(ex.ID))
		dst = binary.AppendVarint(dst, ex.Start-prev)
		prev = ex.Start
	}
	return dst
}

// parseRankReducedV2 parses one rank's block payload. The result mirrors
// the v1 decoder's shapes exactly (always-allocated Stored/Execs/Events
// slices, ranks threaded into segments), so a v2 decode is structurally
// identical to a v1 decode of the same reduction.
func parseRankReducedV2(e trace.BlockEntry, payload []byte, names []string) (RankReduced, error) {
	rr := RankReduced{Rank: int(e.Rank)}
	c := trace.NewCursor(payload)
	nStored, err := c.Uvarint()
	if err != nil {
		return rr, err
	}
	nExecs, err := c.Uvarint()
	if err != nil {
		return rr, err
	}
	if nStored > 1<<24 || nExecs > 1<<28 {
		return rr, fmt.Errorf("core: rank %d: implausible counts stored=%d execs=%d", rr.Rank, nStored, nExecs)
	}
	if nStored+nExecs != uint64(e.Records) {
		return rr, fmt.Errorf("core: rank %d: block declares %d records but payload holds %d stored + %d execs",
			rr.Rank, e.Records, nStored, nExecs)
	}
	// Stored segments cost ≥ 4 payload bytes each and execs ≥ 2, so the
	// declared counts are bounded by the payload actually present.
	if uint64(c.Len()) < nStored*4+nExecs*2 {
		return rr, fmt.Errorf("core: rank %d: %d stored + %d execs declared but only %d payload bytes remain",
			rr.Rank, nStored, nExecs, c.Len())
	}
	rr.Stored = make([]*segment.Segment, 0, nStored)
	for j := uint64(0); j < nStored; j++ {
		ctxID, err := c.Uvarint()
		if err != nil {
			return rr, err
		}
		if ctxID >= uint64(len(names)) {
			return rr, fmt.Errorf("core: context id %d out of range", ctxID)
		}
		end, err := c.Varint()
		if err != nil {
			return rr, err
		}
		weight, err := c.Uvarint()
		if err != nil {
			return rr, err
		}
		if weight > math.MaxUint32 {
			return rr, fmt.Errorf("core: segment weight %d overflows uint32", weight)
		}
		nEvents, err := c.Uvarint()
		if err != nil {
			return rr, err
		}
		if nEvents > math.MaxUint32 {
			return rr, fmt.Errorf("core: event count %d overflows uint32", nEvents)
		}
		s := &segment.Segment{Context: names[ctxID], Rank: rr.Rank, End: end, Weight: int(weight)}
		events, err := trace.ParseEventsV2(c, names, uint32(nEvents))
		if err != nil {
			return rr, err
		}
		if events == nil {
			events = make([]trace.Event, 0)
		}
		s.Events = events
		rr.Stored = append(rr.Stored, s)
	}
	rr.Execs = make([]Exec, 0, nExecs)
	var prev int64
	for j := uint64(0); j < nExecs; j++ {
		id, err := c.Uvarint()
		if err != nil {
			return rr, err
		}
		if id >= nStored {
			return rr, fmt.Errorf("core: rank %d exec %d: segment id %d out of range (%d stored)",
				rr.Rank, j, id, nStored)
		}
		dStart, err := c.Varint()
		if err != nil {
			return rr, err
		}
		start := prev + dStart
		prev = start
		rr.Execs = append(rr.Execs, Exec{ID: int(id), Start: start})
	}
	if err := c.Done(); err != nil {
		return rr, fmt.Errorf("core: rank %d block: %w", rr.Rank, err)
	}
	return rr, nil
}

// readReducedV2Header reads the TRR2 header after the magic: workload
// name, method, name table, rank count — the same caps as v1.
func readReducedV2Header(br *bufio.Reader, lim trace.DecodeLimits) (name, method string, names []string, nRanks int, err error) {
	name, err = trace.ReadStringLimit(br, lim.MaxStringLen)
	if err != nil {
		return "", "", nil, 0, err
	}
	method, err = trace.ReadStringLimit(br, lim.MaxStringLen)
	if err != nil {
		return "", "", nil, 0, err
	}
	le := binary.LittleEndian
	var nNames uint32
	if err = binary.Read(br, le, &nNames); err != nil {
		return "", "", nil, 0, err
	}
	if nNames > lim.MaxNames {
		return "", "", nil, 0, fmt.Errorf("core: name table size %d exceeds the %d-entry cap", nNames, lim.MaxNames)
	}
	names = make([]string, 0, min(nNames, 1<<12))
	for i := uint32(0); i < nNames; i++ {
		s, err := trace.ReadStringLimit(br, lim.MaxStringLen)
		if err != nil {
			return "", "", nil, 0, err
		}
		names = append(names, s)
	}
	var n uint32
	if err = binary.Read(br, le, &n); err != nil {
		return "", "", nil, 0, err
	}
	if n > lim.MaxRanks {
		return "", "", nil, 0, fmt.Errorf("core: rank count %d exceeds the %d cap", n, lim.MaxRanks)
	}
	return name, method, names, int(n), nil
}

// decodeReducedV2Parallel decodes a TRR2 container from a random-access
// input: the footer index is validated once, then blocks are decoded
// into their rank slots by a bounded worker pool.
func decodeReducedV2Parallel(sr *io.SectionReader, opts trace.DecoderOptions) (*Reduced, error) {
	workers := opts.Workers
	cr := &v2countingReader{r: io.NewSectionReader(sr, 0, sr.Size())}
	br := bufio.NewReader(cr)
	magic := make([]byte, len(reducedMagicV2))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("core: reading magic: %w", err)
	}
	name, method, names, nRanks, err := readReducedV2Header(br, opts.Limits)
	if err != nil {
		return nil, err
	}
	headerEnd := uint64(cr.n) - uint64(br.Buffered())
	entries, err := trace.ReadBlockIndexLimit(sr, sr.Size(), reducedMagicV2, headerEnd, opts.Limits.MaxRanks)
	if err != nil {
		return nil, err
	}
	if len(entries) != nRanks {
		return nil, fmt.Errorf("core: %d blocks indexed for %d ranks", len(entries), nRanks)
	}
	r := &Reduced{Name: name, Method: method, Ranks: make([]RankReduced, nRanks)}
	if workers > nRanks {
		workers = nRanks
	}
	var (
		claim   atomic.Int64
		wg      sync.WaitGroup
		errOnce sync.Once
		failed  atomic.Bool
		firstEr error
		// bufs recycles block read buffers: parsed segments hold
		// name-table strings and decoded values, never payload bytes, so
		// a buffer is free for reuse once its block has been parsed.
		bufs sync.Pool
	)
	claim.Store(-1)
	for w := 0; w < max(workers, 1); w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				// Stop claiming once any worker has failed or the decode
				// was cancelled, so a corrupt block or a disconnected
				// caller aborts the whole decode promptly instead of
				// decoding every remaining block first.
				if failed.Load() {
					return
				}
				if err := opts.Ctx.Err(); err != nil {
					errOnce.Do(func() { firstEr = err })
					failed.Store(true)
					return
				}
				i := int(claim.Add(1))
				if i >= len(entries) {
					return
				}
				var buf []byte
				if bp, _ := bufs.Get().(*[]byte); bp != nil {
					buf = *bp
				}
				payload, buf, err := trace.ReadBlockAtBuf(sr, entries[i], buf)
				if err == nil {
					r.Ranks[i], err = parseRankReducedV2(entries[i], payload, names)
				}
				bufs.Put(&buf)
				if err != nil {
					errOnce.Do(func() { firstEr = err })
					failed.Store(true)
					return
				}
			}
		}()
	}
	wg.Wait()
	if firstEr != nil {
		return nil, firstEr
	}
	return r, nil
}

// decodeReducedV2Sequential decodes a TRR2 container from a plain
// stream: blocks in file order via the inline headers, then the footer
// is verified against the observed blocks.
func decodeReducedV2Sequential(cr *v2countingReader, br *bufio.Reader, opts trace.DecoderOptions) (*Reduced, error) {
	name, method, names, nRanks, err := readReducedV2Header(br, opts.Limits)
	if err != nil {
		return nil, err
	}
	pos := func() uint64 { return uint64(cr.n) - uint64(br.Buffered()) }
	r := &Reduced{Name: name, Method: method, Ranks: make([]RankReduced, nRanks)}
	observed := make([]trace.BlockEntry, 0, nRanks)
	for i := 0; i < nRanks; i++ {
		if err := opts.Ctx.Err(); err != nil {
			return nil, err
		}
		e, payload, err := trace.ReadBlock(br, pos())
		if err != nil {
			return nil, fmt.Errorf("core: rank %d of %d block: %w", i, nRanks, err)
		}
		observed = append(observed, e)
		r.Ranks[i], err = parseRankReducedV2(e, payload, names)
		if err != nil {
			return nil, err
		}
	}
	if err := trace.CheckBlockFooter(br, reducedMagicV2, observed, pos()); err != nil {
		return nil, err
	}
	return r, nil
}

// v2countingReader mirrors the trace package's position tracking for the
// sequential v2 path.
type v2countingReader struct {
	r io.Reader
	n int64
}

func (c *v2countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}
