package core
