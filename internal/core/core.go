// Package core is the reduction engine: the nine segment-similarity
// policies of the SC'09 study, the per-rank reducer state machine and its
// batch/parallel/streaming drivers, the Reduced data model with its
// TRR1 binary codec (byte-level spec in docs/FORMATS.md), trace
// reconstruction, and the size and approximation-distance metrics —
// computable both from a reconstruction and directly from the reduced
// form (ApproximationDistanceReduced).
package core
