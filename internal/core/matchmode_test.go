package core

import (
	"testing"
)

func TestParseMatchModeRoundTrip(t *testing.T) {
	for i, name := range MatchModeNames {
		m, err := ParseMatchMode(name)
		if err != nil {
			t.Fatalf("ParseMatchMode(%q): %v", name, err)
		}
		if m != MatchMode(i) || m.String() != name {
			t.Fatalf("ParseMatchMode(%q) = %v (String %q)", name, m, m.String())
		}
	}
	if _, err := ParseMatchMode("bogus"); err == nil {
		t.Fatal("ParseMatchMode(bogus) did not fail")
	}
	if s := MatchMode(200).String(); s != "MatchMode(200)" {
		t.Fatalf("out-of-range String = %q", s)
	}
}

// TestIndexKind pins which search structure each method gets per mode —
// the dispatch table README and the benchmarks rely on.
func TestIndexKind(t *testing.T) {
	euclidean := NewEuclidean(0.2)
	cheb := NewChebyshev(0.2)
	wave := NewAvgWave(0.2)
	abs := NewAbsDiff(1000)
	rel := NewRelDiff(0.2)
	iterAvgP := NewIterAvg()
	cases := []struct {
		p    Policy
		mode MatchMode
		want string
	}{
		{euclidean, MatchModeExact, "scan"},
		{euclidean, MatchModeVPTree, "vptree"},
		{euclidean, MatchModeLSH, "scan"},
		{euclidean, MatchModeAuto, "vptree"},
		// Chebyshev and absDiff build a VP-tree only on explicit request:
		// auto keeps the exact scan, which BENCH_matcher.json shows is
		// faster for both (concentrated max-distances / early-exit test).
		{cheb, MatchModeVPTree, "vptree"},
		{cheb, MatchModeAuto, "scan"},
		{abs, MatchModeVPTree, "vptree"},
		{abs, MatchModeLSH, "scan"},
		{abs, MatchModeAuto, "scan"},
		{wave, MatchModeExact, "scan"},
		{wave, MatchModeVPTree, "vptree"},
		{wave, MatchModeLSH, "lsh"},
		{wave, MatchModeAuto, "lsh"},
		{rel, MatchModeVPTree, "scan"},
		{rel, MatchModeLSH, "scan"},
		{rel, MatchModeAuto, "scan"},
		{iterAvgP, MatchModeAuto, "scan"},
	}
	for _, tc := range cases {
		if got := IndexKind(tc.p, tc.mode); got != tc.want {
			t.Errorf("IndexKind(%s, %s) = %q, want %q", tc.p.Name(), tc.mode, got, tc.want)
		}
	}
}

// modeMethods are the pairwise methods with at least one supported
// approximate index, with representative thresholds.
var modeMethods = []struct {
	name string
	mk   func() Policy
}{
	{"absDiff", func() Policy { return NewAbsDiff(1000) }},
	{"manhattan", func() Policy { return NewManhattan(0.4) }},
	{"euclidean", func() Policy { return NewEuclidean(0.2) }},
	{"chebyshev", func() Policy { return NewChebyshev(0.2) }},
	{"minkowski3", func() Policy { p, _ := NewMinkowski(3, 0.2); return p }},
	{"avgWave", func() Policy { return NewAvgWave(0.2) }},
	{"haarWave", func() Policy { return NewHaarWave(0.2) }},
}

func runMode(mk func() Policy, mode MatchMode, n int) (*RankReducer, RankReduced) {
	rr := NewRankReducerMode(0, mk(), mode)
	for _, s := range genSegments(n) {
		rr.Feed(s.Clone())
	}
	return rr, rr.Finish()
}

// TestVPTreeModeMatchesExactDecisions holds MatchModeVPTree to the
// documented guarantee: the tree search finds a match exactly when the
// exact scan does, so the kept representatives, the execution start
// times, and all three counters are identical to exact mode — only which
// representative an execution references may differ.
func TestVPTreeModeMatchesExactDecisions(t *testing.T) {
	for _, m := range modeMethods {
		m := m
		t.Run(m.name, func(t *testing.T) {
			exRed, exOut := runMode(m.mk, MatchModeExact, 3000)
			vpRed, vpOut := runMode(m.mk, MatchModeVPTree, 3000)
			if len(vpOut.Stored) != len(exOut.Stored) {
				t.Fatalf("stored %d, exact stored %d", len(vpOut.Stored), len(exOut.Stored))
			}
			for i := range exOut.Stored {
				if !exOut.Stored[i].Comparable(vpOut.Stored[i]) || exOut.Stored[i].End != vpOut.Stored[i].End {
					t.Fatalf("stored %d differs from exact mode", i)
				}
			}
			if len(vpOut.Execs) != len(exOut.Execs) {
				t.Fatalf("execs %d, exact %d", len(vpOut.Execs), len(exOut.Execs))
			}
			for i := range exOut.Execs {
				if vpOut.Execs[i].Start != exOut.Execs[i].Start {
					t.Fatalf("exec %d start %d, exact %d", i, vpOut.Execs[i].Start, exOut.Execs[i].Start)
				}
				if id := vpOut.Execs[i].ID; id < 0 || id >= len(vpOut.Stored) {
					t.Fatalf("exec %d references stored %d of %d", i, id, len(vpOut.Stored))
				}
			}
			if vpRed.TotalSegments() != exRed.TotalSegments() ||
				vpRed.Matches() != exRed.Matches() ||
				vpRed.PossibleMatches() != exRed.PossibleMatches() {
				t.Fatalf("counters (%d,%d,%d), exact (%d,%d,%d)",
					vpRed.TotalSegments(), vpRed.Matches(), vpRed.PossibleMatches(),
					exRed.TotalSegments(), exRed.Matches(), exRed.PossibleMatches())
			}
		})
	}
}

// TestLSHModeOnlyWeakens holds MatchModeLSH to its guarantee: hashing
// can miss matches but never invent them, so the reduction stores at
// least as many representatives and matches at most as many segments as
// exact mode — and on realistic streams recall stays high.
func TestLSHModeOnlyWeakens(t *testing.T) {
	for _, name := range []string{"avgWave", "haarWave"} {
		name := name
		mk := func() Policy {
			if name == "avgWave" {
				return NewAvgWave(0.2)
			}
			return NewHaarWave(0.2)
		}
		t.Run(name, func(t *testing.T) {
			exRed, exOut := runMode(mk, MatchModeExact, 3000)
			lsRed, lsOut := runMode(mk, MatchModeLSH, 3000)
			if lsRed.TotalSegments() != exRed.TotalSegments() {
				t.Fatalf("total %d, exact %d", lsRed.TotalSegments(), exRed.TotalSegments())
			}
			if lsRed.PossibleMatches() != exRed.PossibleMatches() {
				t.Fatalf("possible %d, exact %d (class structure must not change)",
					lsRed.PossibleMatches(), exRed.PossibleMatches())
			}
			if lsRed.Matches() > exRed.Matches() {
				t.Fatalf("matches %d exceeds exact %d", lsRed.Matches(), exRed.Matches())
			}
			if len(lsOut.Stored) < len(exOut.Stored) {
				t.Fatalf("stored %d below exact %d", len(lsOut.Stored), len(exOut.Stored))
			}
			if len(lsOut.Execs) != len(exOut.Execs) {
				t.Fatalf("execs %d, exact %d", len(lsOut.Execs), len(exOut.Execs))
			}
			if exRed.Matches() > 0 {
				recall := float64(lsRed.Matches()) / float64(exRed.Matches())
				if recall < 0.85 {
					t.Fatalf("stream recall %.3f, want >= 0.85", recall)
				}
				t.Logf("stream recall: %.3f (%d/%d matches)", recall, lsRed.Matches(), exRed.Matches())
			}
		})
	}
}

// TestUnsupportedModeFallsBackExact requires policies with no index for
// a mode to produce byte-identical output to exact mode under it.
func TestUnsupportedModeFallsBackExact(t *testing.T) {
	cases := []struct {
		name string
		mk   func() Policy
		mode MatchMode
	}{
		{"relDiff/vptree", func() Policy { return NewRelDiff(0.2) }, MatchModeVPTree},
		{"relDiff/auto", func() Policy { return NewRelDiff(0.2) }, MatchModeAuto},
		{"iter_k/auto", func() Policy { p, _ := NewIterK(10); return p }, MatchModeAuto},
		{"iter_avg/lsh", func() Policy { return NewIterAvg() }, MatchModeLSH},
		{"sample_n/vptree", func() Policy { p, _ := NewSampleN(3); return p }, MatchModeVPTree},
		{"euclidean/lsh", func() Policy { return NewEuclidean(0.2) }, MatchModeLSH},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			_, exOut := runMode(tc.mk, MatchModeExact, 2000)
			_, out := runMode(tc.mk, tc.mode, 2000)
			if len(out.Stored) != len(exOut.Stored) || len(out.Execs) != len(exOut.Execs) {
				t.Fatalf("shape differs: stored %d/%d execs %d/%d",
					len(out.Stored), len(exOut.Stored), len(out.Execs), len(exOut.Execs))
			}
			for i := range exOut.Execs {
				if out.Execs[i] != exOut.Execs[i] {
					t.Fatalf("exec %d: %+v vs exact %+v", i, out.Execs[i], exOut.Execs[i])
				}
			}
		})
	}
}

// TestAutoModePicksDocumentedIndex: auto must behave exactly like vptree
// for the metric family and exactly like lsh for the wavelets.
func TestAutoModePicksDocumentedIndex(t *testing.T) {
	type pick struct {
		name string
		mk   func() Policy
		same MatchMode
	}
	for _, tc := range []pick{
		{"euclidean", func() Policy { return NewEuclidean(0.2) }, MatchModeVPTree},
		{"avgWave", func() Policy { return NewAvgWave(0.2) }, MatchModeLSH},
	} {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			_, want := runMode(tc.mk, tc.same, 2000)
			_, got := runMode(tc.mk, MatchModeAuto, 2000)
			if len(got.Stored) != len(want.Stored) || len(got.Execs) != len(want.Execs) {
				t.Fatalf("auto shape differs from %v", tc.same)
			}
			for i := range want.Execs {
				if got.Execs[i] != want.Execs[i] {
					t.Fatalf("exec %d: auto %+v vs %v %+v", i, got.Execs[i], tc.same, want.Execs[i])
				}
			}
		})
	}
}
