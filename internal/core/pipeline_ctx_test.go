package core

import (
	"bytes"
	"context"
	"errors"
	"math/rand"
	"testing"
	"time"

	"repro/internal/trace"
)

// TestReduceStreamToWriterOptsCancel cancels the pipeline mid-stream:
// the source respects the shared context (as a real decoder under the
// same DecoderOptions.Ctx does), and the run must return the
// cancellation error instead of wedging in the registration turnstile.
func TestReduceStreamToWriterOptsCancel(t *testing.T) {
	forceWorkers(t, 4)
	rng := rand.New(rand.NewSource(7))
	tr := buildMultiRankTrace("cancelled", 32, 10, rng)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	src := rankSource(tr)
	calls := 0
	next := func() (*trace.RankTrace, error) {
		calls++
		if calls == 4 {
			cancel()
		}
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		return src()
	}
	p, _ := DefaultMethod("avgWave")
	done := make(chan struct{})
	var runErr error
	go func() {
		defer close(done)
		var buf bytes.Buffer
		_, runErr = ReduceStreamToWriterOpts(tr.Name, p, next, &buf, 2,
			StreamOptions{Workers: 4, Ctx: ctx})
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("cancelled pipeline did not return")
	}
	if !errors.Is(runErr, context.Canceled) {
		t.Fatalf("ReduceStreamToWriterOpts = %v, want context.Canceled", runErr)
	}
}

// TestReduceStreamToWriterOptsPreCancelled pins the upfront context
// check: a context dead before the call must fail deterministically —
// the async AfterFunc hook alone can lose the race against a small
// stream finishing first.
func TestReduceStreamToWriterOptsPreCancelled(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	tr := buildMultiRankTrace("precancelled", 2, 4, rng)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	p, _ := DefaultMethod("avgWave")
	var buf bytes.Buffer
	if _, err := ReduceStreamToWriterOpts(tr.Name, p, rankSource(tr), &buf, 1,
		StreamOptions{Ctx: ctx}); !errors.Is(err, context.Canceled) {
		t.Fatalf("ReduceStreamToWriterOpts(pre-cancelled) = %v, want context.Canceled", err)
	}
}

// TestReduceStreamToWriterOptsWorkers pins that an explicit worker
// bound still produces the batch-identical bytes.
func TestReduceStreamToWriterOptsWorkers(t *testing.T) {
	forceWorkers(t, 4)
	rng := rand.New(rand.NewSource(8))
	tr := buildMultiRankTrace("bounded", 12, 8, rng)
	p1, _ := DefaultMethod("euclidean")
	batch, err := ReduceStream(tr.Name, p1, rankSource(tr))
	if err != nil {
		t.Fatalf("ReduceStream: %v", err)
	}
	var want bytes.Buffer
	if err := EncodeReducedV2(&want, batch); err != nil {
		t.Fatalf("EncodeReducedV2: %v", err)
	}
	for _, workers := range []int{1, 2, 3} {
		p2, _ := DefaultMethod("euclidean")
		var got bytes.Buffer
		if _, err := ReduceStreamToWriterOpts(tr.Name, p2, rankSource(tr), &got, 2,
			StreamOptions{Workers: workers}); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !bytes.Equal(want.Bytes(), got.Bytes()) {
			t.Errorf("workers=%d: bytes differ from batch encode", workers)
		}
	}
}

// TestDecodeReducedWithCancelled pins that the reduced-container
// decoders respect the context too.
func TestDecodeReducedWithCancelled(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	tr := buildMultiRankTrace("reduced_cancel", 8, 8, rng)
	p, _ := DefaultMethod("avgWave")
	red, err := Reduce(tr, p)
	if err != nil {
		t.Fatalf("Reduce: %v", err)
	}
	var buf bytes.Buffer
	if err := EncodeReducedV2(&buf, red); err != nil {
		t.Fatalf("EncodeReducedV2: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := DecodeReducedWith(bytes.NewReader(buf.Bytes()),
		trace.DecoderOptions{Ctx: ctx}); !errors.Is(err, context.Canceled) {
		t.Fatalf("DecodeReducedWith(cancelled) = %v, want context.Canceled", err)
	}
}
