package core

import (
	"fmt"
	"io"
	"runtime"
	"sync"

	"repro/internal/trace"
)

// ReduceStream reduces a trace that is still being produced: next is
// called until it returns io.EOF and must yield one rank's event stream
// per call (trace.Decoder's NextRank, a generator, a network receiver).
// Ranks are handed to a GOMAXPROCS-bounded pool of RankReducers as they
// arrive, so at most `workers` ranks are in memory at once — the whole
// trace never is. The result is byte-identical to Reduce over the
// materialized trace: ranks land in the Reduced.Ranks slice in arrival
// order and the counters are merged after the workers join.
//
// next is called from one goroutine at a time (serialized internally),
// so an unsynchronized decoder is fine. Policies must be safe for
// concurrent use on distinct ranks' segments, as with Reduce.
func ReduceStream(name string, p Policy, next func() (*trace.RankTrace, error)) (*Reduced, error) {
	return ReduceStreamMode(name, p, MatchModeExact, next)
}

// ReduceStreamMode is ReduceStream under an explicit MatchMode (see
// MatchMode for the per-mode guarantees).
func ReduceStreamMode(name string, p Policy, mode MatchMode, next func() (*trace.RankTrace, error)) (*Reduced, error) {
	var (
		srcMu    sync.Mutex // serializes next and the arrival counter
		arrivals int
		firstErr error

		resMu    sync.Mutex // guards the growing reducer slice
		reducers []*RankReducer
	)
	fail := func(err error) {
		srcMu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		srcMu.Unlock()
	}
	workers := runtime.GOMAXPROCS(0)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				srcMu.Lock()
				if firstErr != nil {
					srcMu.Unlock()
					return
				}
				rt, err := next()
				i := arrivals
				if err == nil {
					arrivals++
				} else if err != io.EOF {
					firstErr = err
				}
				srcMu.Unlock()
				if err != nil {
					return
				}
				r := NewRankReducerMode(i, p, mode)
				if err := r.FeedEvents(rt.Rank, rt.Events); err != nil {
					fail(fmt.Errorf("trace %q: %w", name, err))
					return
				}
				resMu.Lock()
				for len(reducers) <= i {
					reducers = append(reducers, nil)
				}
				reducers[i] = r
				resMu.Unlock()
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	red := &Reduced{Name: name, Method: p.Name(), Ranks: make([]RankReduced, len(reducers))}
	for i, r := range reducers {
		red.Ranks[i] = r.Finish()
		red.TotalSegments += r.TotalSegments()
		red.Matches += r.Matches()
		red.PossibleMatches += r.PossibleMatches()
	}
	return red, nil
}
