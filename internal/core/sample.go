package core

import (
	"fmt"

	"repro/internal/segment"
)

// sampleN implements the trace-sampling reduction the paper names as
// future work (§6, citing Carrington and Vetter): instead of comparing
// measurements, keep every n-th instance of each segment pattern and let
// the most recent kept instance stand in for the skipped ones. n = 1
// degenerates to keeping everything; large n approaches iter_k's data
// volume with a different bias — samples spread across the run instead of
// clustering at the start, so slowly-varying behaviour (dyn_load_balance)
// is tracked better while short-lived anomalies can be missed entirely.
type sampleN struct{ n int }

// NewSampleN returns the systematic-sampling policy that keeps every n-th
// instance of each pattern class. n must be >= 1.
func NewSampleN(n int) (Policy, error) {
	if n < 1 {
		return nil, fmt.Errorf("core: sample_n requires n >= 1, got %d", n)
	}
	return &sampleN{n: n}, nil
}

func (p *sampleN) Name() string { return "sample_n" }

// Prepare only clears cs: sampling matches on instance counts, not
// measurements.
func (p *sampleN) Prepare(_ *segment.Segment, cs *RepState) { cs.reset() }

// Match consults the per-class instance count encoded in the stored
// representatives' weights: the class has seen sum(Weight) instances so
// far; instance i is kept iff i ≡ 0 (mod n). Skipped instances match the
// most recently kept representative.
func (p *sampleN) Match(cls *Class, _ *segment.Segment, _ *RepState) int {
	seen := 0
	for i, n := 0, cls.Len(); i < n; i++ {
		seen += cls.Rep(i).Weight
	}
	if seen%p.n == 0 {
		return -1 // due for a fresh sample: keep cand verbatim
	}
	return cls.Len() - 1
}

// Absorb counts the skipped instance against the representative so the
// sampling cadence stays aligned with the run. The weight bump leaves
// the measurements untouched, so no state refresh is needed.
func (p *sampleN) Absorb(matched, cand *segment.Segment) bool {
	matched.Weight++
	return false
}
