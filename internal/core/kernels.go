package core

import "math"

// Fused batch distance kernels over the class slab. Each kernel walks
// the row-major slab directly — contiguous rows plus the parallel
// norm/max-abs columns — fusing the lower-bound prune and the full
// distance test into one pass and returning the first matching row in
// scan order (or -1).
//
// Decision identity with the pre-slab per-representative loops is a hard
// requirement (it is what keeps exact-mode output byte-identical), so
// the kernels respect two rules:
//
//   - Sum-accumulating distances (L1, L2, general Lm, and the wavelets'
//     Euclidean) are order-sensitive under floating point, so the 4-wide
//     unroll runs ACROSS rows — four independent accumulators, one per
//     row, each summing coordinates in index order — never within a row.
//   - A pruned row is skipped without consulting its computed distance,
//     exactly as the old loops did: the match test is
//     !pruned(lb, bound) && dist <= bound, evaluated per row in order.
//   - Partial-distance early exit (the checkpoint every scanCheckStep
//     coordinates in the L1/L2/Chebyshev kernels) applies the EXACT
//     final predicate to the partial accumulation. Each accumulator only
//     grows — float addition of non-negative terms and float max are
//     monotone, and math.Sqrt is a monotone correctly-rounded function —
//     so a partial distance already past its bound proves the full
//     distance is past it too, and skipping the rest of the row can
//     never flip a decision. Rows that survive every checkpoint finish
//     their accumulation in the unchanged coordinate order, so their
//     final sums stay bit-identical. The general-Lm kernel takes no
//     early exit: math.Pow is not guaranteed monotone, so no partial
//     predicate is provably conservative there.
//
// Comparison-only tests (relDiff, absDiff) are order-insensitive, so
// those kernels may unroll within a row as well.

// scanCheckStep is the number of coordinates the accumulating kernels
// advance between early-exit checkpoints: small enough to bail out of
// hopeless rows after a fraction of the width, large enough that the
// checkpoint's comparisons amortize.
const scanCheckStep = 8

// scanL2 returns the first row whose Euclidean distance to cs.Vec is
// within t × max(maxAbs pair), the shared match rule of the euclidean
// and wavelet policies.
func (c *Class) scanL2(t float64, cs *RepState) int {
	v := cs.Vec
	w := c.width
	n := len(c.norm)
	data := c.data
	i := 0
	for ; i+4 <= n; i += 4 {
		b0, p0 := c.l2Row(t, cs, i)
		b1, p1 := c.l2Row(t, cs, i+1)
		b2, p2 := c.l2Row(t, cs, i+2)
		b3, p3 := c.l2Row(t, cs, i+3)
		if p0 && p1 && p2 && p3 {
			continue
		}
		r0 := data[i*w : i*w+w]
		r1 := data[(i+1)*w : (i+1)*w+w]
		r2 := data[(i+2)*w : (i+2)*w+w]
		r3 := data[(i+3)*w : (i+3)*w+w]
		var s0, s1, s2, s3 float64
		dead := false
		for j := 0; j < w; {
			end := j + scanCheckStep
			if end > w {
				end = w
			}
			for ; j < end; j++ {
				x := v[j]
				d0 := r0[j] - x
				d1 := r1[j] - x
				d2 := r2[j] - x
				d3 := r3[j] - x
				s0 += d0 * d0
				s1 += d1 * d1
				s2 += d2 * d2
				s3 += d3 * d3
			}
			if j < w &&
				(p0 || math.Sqrt(s0) > b0) && (p1 || math.Sqrt(s1) > b1) &&
				(p2 || math.Sqrt(s2) > b2) && (p3 || math.Sqrt(s3) > b3) {
				dead = true
				break
			}
		}
		if dead {
			continue
		}
		switch {
		case !p0 && math.Sqrt(s0) <= b0:
			return i
		case !p1 && math.Sqrt(s1) <= b1:
			return i + 1
		case !p2 && math.Sqrt(s2) <= b2:
			return i + 2
		case !p3 && math.Sqrt(s3) <= b3:
			return i + 3
		}
	}
	for ; i < n; i++ {
		b, p := c.l2Row(t, cs, i)
		if p {
			continue
		}
		row := data[i*w : i*w+w]
		var s float64
		dead := false
		for j := 0; j < w; {
			end := j + scanCheckStep
			if end > w {
				end = w
			}
			for ; j < end; j++ {
				d := row[j] - v[j]
				s += d * d
			}
			if j < w && math.Sqrt(s) > b {
				dead = true
				break
			}
		}
		if !dead && math.Sqrt(s) <= b {
			return i
		}
	}
	return -1
}

// l2Row computes row i's acceptance bound and prune verdict for the
// pair-max L2 rule (also the exact bound math of the pre-slab loop).
func (c *Class) l2Row(t float64, cs *RepState, i int) (bound float64, prune bool) {
	maxVal := cs.MaxAbs
	if rm := c.maxAbs[i]; rm > maxVal {
		maxVal = rm
	}
	bound = t * maxVal
	return bound, pruned(math.Abs(c.norm[i]-cs.Norm), bound)
}

// scanL1 is scanL2's Manhattan (order-1) counterpart.
func (c *Class) scanL1(t float64, cs *RepState) int {
	v := cs.Vec
	w := c.width
	n := len(c.norm)
	data := c.data
	i := 0
	for ; i+4 <= n; i += 4 {
		b0, p0 := c.l2Row(t, cs, i)
		b1, p1 := c.l2Row(t, cs, i+1)
		b2, p2 := c.l2Row(t, cs, i+2)
		b3, p3 := c.l2Row(t, cs, i+3)
		if p0 && p1 && p2 && p3 {
			continue
		}
		r0 := data[i*w : i*w+w]
		r1 := data[(i+1)*w : (i+1)*w+w]
		r2 := data[(i+2)*w : (i+2)*w+w]
		r3 := data[(i+3)*w : (i+3)*w+w]
		var s0, s1, s2, s3 float64
		dead := false
		for j := 0; j < w; {
			end := j + scanCheckStep
			if end > w {
				end = w
			}
			for ; j < end; j++ {
				x := v[j]
				s0 += math.Abs(r0[j] - x)
				s1 += math.Abs(r1[j] - x)
				s2 += math.Abs(r2[j] - x)
				s3 += math.Abs(r3[j] - x)
			}
			if j < w &&
				(p0 || s0 > b0) && (p1 || s1 > b1) &&
				(p2 || s2 > b2) && (p3 || s3 > b3) {
				dead = true
				break
			}
		}
		if dead {
			continue
		}
		switch {
		case !p0 && s0 <= b0:
			return i
		case !p1 && s1 <= b1:
			return i + 1
		case !p2 && s2 <= b2:
			return i + 2
		case !p3 && s3 <= b3:
			return i + 3
		}
	}
	for ; i < n; i++ {
		b, p := c.l2Row(t, cs, i)
		if p {
			continue
		}
		row := data[i*w : i*w+w]
		var s float64
		dead := false
		for j := 0; j < w; {
			end := j + scanCheckStep
			if end > w {
				end = w
			}
			for ; j < end; j++ {
				s += math.Abs(row[j] - v[j])
			}
			if j < w && s > b {
				dead = true
				break
			}
		}
		if !dead && s <= b {
			return i
		}
	}
	return -1
}

// scanLinf is the Chebyshev (m = 0) kernel: the distance is the largest
// per-coordinate difference, an exact max that tolerates any evaluation
// order, and the norm column holds each row's max-abs. The max update
// uses the builtin max — branchless on amd64, where minkowskiDist's
// `d > m` comparison mispredicts its way through random data — which
// agrees with the comparison on every finite input and differs only on
// NaN coordinates, unreachable from the engine's integer-time
// measurements. The checkpoint skips a group once every unpruned row's
// running max is already past its bound — the max only grows, so the
// skip is decision-neutral.
func (c *Class) scanLinf(t float64, cs *RepState) int {
	v := cs.Vec
	w := c.width
	n := len(c.norm)
	data := c.data
	i := 0
	for ; i+4 <= n; i += 4 {
		b0, p0 := c.l2Row(t, cs, i)
		b1, p1 := c.l2Row(t, cs, i+1)
		b2, p2 := c.l2Row(t, cs, i+2)
		b3, p3 := c.l2Row(t, cs, i+3)
		if p0 && p1 && p2 && p3 {
			continue
		}
		r0 := data[i*w : i*w+w]
		r1 := data[(i+1)*w : (i+1)*w+w]
		r2 := data[(i+2)*w : (i+2)*w+w]
		r3 := data[(i+3)*w : (i+3)*w+w]
		var m0, m1, m2, m3 float64
		dead := false
		for j := 0; j < w; {
			end := j + scanCheckStep
			if end > w {
				end = w
			}
			for ; j < end; j++ {
				x := v[j]
				m0 = max(m0, math.Abs(r0[j]-x))
				m1 = max(m1, math.Abs(r1[j]-x))
				m2 = max(m2, math.Abs(r2[j]-x))
				m3 = max(m3, math.Abs(r3[j]-x))
			}
			if j < w &&
				(p0 || m0 > b0) && (p1 || m1 > b1) &&
				(p2 || m2 > b2) && (p3 || m3 > b3) {
				dead = true
				break
			}
		}
		if dead {
			continue
		}
		switch {
		case !p0 && m0 <= b0:
			return i
		case !p1 && m1 <= b1:
			return i + 1
		case !p2 && m2 <= b2:
			return i + 2
		case !p3 && m3 <= b3:
			return i + 3
		}
	}
	for ; i < n; i++ {
		b, p := c.l2Row(t, cs, i)
		if p {
			continue
		}
		row := data[i*w : i*w+w]
		var m float64
		dead := false
		for j := 0; j < w; {
			end := j + scanCheckStep
			if end > w {
				end = w
			}
			for ; j < end; j++ {
				m = max(m, math.Abs(row[j]-v[j]))
			}
			if j < w && m > b {
				dead = true
				break
			}
		}
		if !dead && m <= b {
			return i
		}
	}
	return -1
}

// scanLm is the general order-m kernel (m >= 3), matching minkowskiDist's
// Pow accumulation term for term.
func (c *Class) scanLm(m int, t float64, cs *RepState) int {
	v := cs.Vec
	w := c.width
	n := len(c.norm)
	data := c.data
	fm := float64(m)
	inv := 1 / fm
	i := 0
	for ; i+4 <= n; i += 4 {
		b0, p0 := c.l2Row(t, cs, i)
		b1, p1 := c.l2Row(t, cs, i+1)
		b2, p2 := c.l2Row(t, cs, i+2)
		b3, p3 := c.l2Row(t, cs, i+3)
		if p0 && p1 && p2 && p3 {
			continue
		}
		r0 := data[i*w : i*w+w]
		r1 := data[(i+1)*w : (i+1)*w+w]
		r2 := data[(i+2)*w : (i+2)*w+w]
		r3 := data[(i+3)*w : (i+3)*w+w]
		var s0, s1, s2, s3 float64
		for j := 0; j < w; j++ {
			x := v[j]
			s0 += math.Pow(math.Abs(r0[j]-x), fm)
			s1 += math.Pow(math.Abs(r1[j]-x), fm)
			s2 += math.Pow(math.Abs(r2[j]-x), fm)
			s3 += math.Pow(math.Abs(r3[j]-x), fm)
		}
		switch {
		case !p0 && math.Pow(s0, inv) <= b0:
			return i
		case !p1 && math.Pow(s1, inv) <= b1:
			return i + 1
		case !p2 && math.Pow(s2, inv) <= b2:
			return i + 2
		case !p3 && math.Pow(s3, inv) <= b3:
			return i + 3
		}
	}
	for ; i < n; i++ {
		b, p := c.l2Row(t, cs, i)
		if p {
			continue
		}
		row := data[i*w : i*w+w]
		var s float64
		for j := 0; j < w; j++ {
			s += math.Pow(math.Abs(row[j]-v[j]), fm)
		}
		if math.Pow(s, inv) <= b {
			return i
		}
	}
	return -1
}

// scanRelDiff returns the first row matching cs under the relDiff rule:
// every paired measurement within relative threshold t. A match forces
// every pair within a factor of (1−t), in particular at the coordinate
// holding either vector's max-abs, so rows whose max-abs falls outside
// that factor of the candidate's are pruned. factor ≤ 0 (t ≥ 1) disables
// pruning, as does a degenerate negative threshold, where factor > 1
// would wrongly prune the identical vectors the pair test still accepts.
func (c *Class) scanRelDiff(t float64, cs *RepState) int {
	factor := 1 - t - pruneMargin
	if t < 0 {
		factor = 0
	}
	v := cs.Vec
	w := c.width
	cm := cs.MaxAbs
	for i, n := 0, len(c.maxAbs); i < n; i++ {
		rm := c.maxAbs[i]
		if factor > 0 && (cm < factor*rm || rm < factor*cm) {
			continue
		}
		if relDiffRow(t, c.data[i*w:i*w+w], v) {
			return i
		}
	}
	return -1
}

// relDiffRow reports whether every paired measurement of va and vb is
// within relative threshold t (equal pairs — including the zero padding —
// always pass).
func relDiffRow(t float64, va, vb []float64) bool {
	j := 0
	for ; j+4 <= len(va); j += 4 {
		if !relDiffPair(t, va[j], vb[j]) ||
			!relDiffPair(t, va[j+1], vb[j+1]) ||
			!relDiffPair(t, va[j+2], vb[j+2]) ||
			!relDiffPair(t, va[j+3], vb[j+3]) {
			return false
		}
	}
	for ; j < len(va); j++ {
		if !relDiffPair(t, va[j], vb[j]) {
			return false
		}
	}
	return true
}

func relDiffPair(t, x, y float64) bool {
	d := math.Abs(x - y)
	if d == 0 {
		return true
	}
	m := math.Max(math.Abs(x), math.Abs(y))
	return d/m <= t
}

// scanAbsDiff returns the first row within per-measurement absolute
// threshold t of cs. Rows are pruned by the sup-norm reverse triangle
// inequality: the max-abs gap bounds the largest per-measurement
// difference from below.
func (c *Class) scanAbsDiff(t float64, cs *RepState) int {
	v := cs.Vec
	w := c.width
	cm := cs.MaxAbs
	for i, n := 0, len(c.maxAbs); i < n; i++ {
		if pruned(math.Abs(c.maxAbs[i]-cm), t) {
			continue
		}
		if absDiffRow(t, c.data[i*w:i*w+w], v) {
			return i
		}
	}
	return -1
}

// absDiffRow reports whether every paired measurement differs by at most
// t (the zero padding contributes |0−0| = 0, which passes for t ≥ 0 and
// is no stricter than the real coordinates for degenerate t < 0).
func absDiffRow(t float64, va, vb []float64) bool {
	j := 0
	for ; j+4 <= len(va); j += 4 {
		if math.Abs(va[j]-vb[j]) > t ||
			math.Abs(va[j+1]-vb[j+1]) > t ||
			math.Abs(va[j+2]-vb[j+2]) > t ||
			math.Abs(va[j+3]-vb[j+3]) > t {
			return false
		}
	}
	for ; j < len(va); j++ {
		if math.Abs(va[j]-vb[j]) > t {
			return false
		}
	}
	return true
}
