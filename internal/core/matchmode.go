package core

import (
	"fmt"
	"strings"

	"repro/internal/segment"
)

// MatchMode selects how Matcher.Scan searches a comparability class for
// a matching representative.
//
// MatchModeExact is the default and the parity reference: the
// first-match linear scan (with conservative lower-bound pruning) that
// every result in the paper's evaluation is defined against. The
// approximate modes trade exact first-match order — and, for LSH, a
// bounded amount of recall — for a sublinear search per candidate:
//
//   - MatchModeVPTree queries a vantage-point metric tree with the
//     policy's threshold ball. It applies to the Minkowski-family
//     distances, absDiff (a fixed-radius Chebyshev ball), and the two
//     wavelet methods (Euclidean distance between transforms). Pruning
//     uses the exact triangle inequality with the same conservative
//     margin as the linear scan, so a VP-tree search finds a match if
//     and only if the exact scan would — only *which* representative is
//     matched may differ (near-first instead of first). Stored
//     representatives, degree of matching, and reduced size are
//     therefore identical to exact mode.
//   - MatchModeLSH hashes the prepared wavelet stamp vectors with
//     random-hyperplane signatures and scans only the candidate's hash
//     buckets. It applies to avgWave/haarWave; a match can be missed
//     when no hash table collides, so the reduction may store extra
//     representatives (degree of matching can only drop, never rise).
//   - MatchModeAuto picks the best *measured* structure per policy:
//     LSH for the wavelet methods, a VP-tree for Manhattan, Euclidean,
//     and higher Minkowski orders, and the exact scan otherwise —
//     including Chebyshev and absDiff, whose trees lose to the linear
//     scan (BENCH_matcher.json), so auto is never slower than exact by
//     construction.
//
// Policies with no supported index under a mode (relDiff, whose
// per-measurement relative test is not a metric, and the counting
// policies iter_k/iter_avg/sample_n) always fall back to the exact
// scan, so every mode is safe to apply to every method.
type MatchMode uint8

const (
	// MatchModeExact is the paper's first-match linear scan (default).
	MatchModeExact MatchMode = iota
	// MatchModeVPTree searches a vantage-point metric tree.
	MatchModeVPTree
	// MatchModeLSH searches random-hyperplane hash buckets.
	MatchModeLSH
	// MatchModeAuto selects the best supported index per policy.
	MatchModeAuto
)

// MatchModeNames lists the accepted -match flag spellings in display
// order.
var MatchModeNames = []string{"exact", "vptree", "lsh", "auto"}

// String returns the mode's canonical name.
func (m MatchMode) String() string {
	if int(m) < len(MatchModeNames) {
		return MatchModeNames[m]
	}
	return fmt.Sprintf("MatchMode(%d)", uint8(m))
}

// ParseMatchMode parses a -match flag value.
func ParseMatchMode(s string) (MatchMode, error) {
	for i, name := range MatchModeNames {
		if s == name {
			return MatchMode(i), nil
		}
	}
	return MatchModeExact, fmt.Errorf("core: unknown match mode %q (known: %s)",
		s, strings.Join(MatchModeNames, ", "))
}

// IndexedClass is a sublinear search structure over one comparability
// class's representatives — the seam DESIGN.md's matcher layer reserved
// for approximate matching. The matcher owns the lifecycle: Add after
// every insertion, Search instead of the policy's linear Match, Rebuild
// after a mutating Absorb. Implementations read representative vectors
// and prepared state through the owning Class, so they never copy
// measurement data.
type IndexedClass interface {
	// Add indexes the class's i-th representative (just appended).
	Add(i int)
	// Search returns the position within the class of a representative
	// the candidate matches — near-first rather than strictly first in
	// collection order — or -1 when none matches. cs is the candidate's
	// prepared state from Policy.Prepare.
	Search(cand *segment.Segment, cs *RepState) int
	// Rebuild re-indexes the whole class after representative state
	// changed in place (a mutating Absorb re-Prepared a member).
	Rebuild()
}

// ApproxIndexer is implemented by policies that can build a sublinear
// per-class index for at least one approximate MatchMode. NewClassIndex
// returns nil when the policy has no index for the mode; the matcher
// then keeps the exact linear scan for that class.
type ApproxIndexer interface {
	NewClassIndex(mode MatchMode, cls *Class) IndexedClass
}

// IndexKind reports which search structure policy p uses under mode:
// "scan" (exact linear scan), "vptree", or "lsh". It answers the
// question benchmarks and docs care about — whether a mode actually
// changes a method's scan — without building an index.
func IndexKind(p Policy, mode MatchMode) string {
	ix, ok := p.(ApproxIndexer)
	if !ok || mode == MatchModeExact {
		return "scan"
	}
	probe := ix.NewClassIndex(mode, &Class{})
	switch probe.(type) {
	case *vpIndex:
		return "vptree"
	case *lshIndex:
		return "lsh"
	default:
		return "scan"
	}
}
