package core

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/segment"
	"repro/internal/trace"
)

// Exec records one execution of a stored segment: which representative
// stands in for it and when it started (paper: segmentExecs).
type Exec struct {
	// ID indexes the owning RankReduced.Stored slice.
	ID int
	// Start is the absolute start time of the execution.
	Start trace.Time
}

// RankReduced is the reduced form of one rank's trace: the representative
// segments plus the (id, start-time) execution log. The paper reduces each
// per-task trace independently before merging, and so do we.
type RankReduced struct {
	Rank   int
	Stored []*segment.Segment
	Execs  []Exec
}

// Reduced is a reduced application trace with the bookkeeping needed by
// the evaluation criteria.
type Reduced struct {
	// Name is the workload name, copied from the input trace.
	Name string
	// Method is the similarity policy that produced the reduction.
	Method string
	// Ranks holds the per-rank reductions, indexed by rank.
	Ranks []RankReduced

	// TotalSegments counts segments over all ranks before reduction.
	TotalSegments int
	// Matches counts segments that matched a stored representative.
	Matches int
	// PossibleMatches counts segments that had any comparable predecessor
	// (total minus the number of distinct pattern classes), the
	// denominator of the degree-of-matching metric.
	PossibleMatches int
}

// DegreeOfMatching returns Matches / PossibleMatches (paper §4.3.2), or 1
// when the workload structure admits no matches at all.
func (r *Reduced) DegreeOfMatching() float64 {
	if r.PossibleMatches == 0 {
		return 1
	}
	return float64(r.Matches) / float64(r.PossibleMatches)
}

// StoredSegments returns the total number of representatives kept across
// all ranks.
func (r *Reduced) StoredSegments() int {
	n := 0
	for i := range r.Ranks {
		n += len(r.Ranks[i].Stored)
	}
	return n
}

// Reduce segments t and reduces every rank's trace with policy p,
// following the paper's algorithm: each new segment is normalized
// relative to its start, compared against the stored representatives of
// its pattern class, and either logged as an execution of a match or
// appended as a new representative.
//
// Ranks are independent (the paper reduces intra-process), so Reduce runs
// one RankReducer per rank on a GOMAXPROCS-bounded worker pool. The
// output is deterministic — per-rank results land in the rank-indexed
// Ranks slice and the counters are merged after the workers join — and
// byte-identical to the single-threaded reference ReduceSequential.
// Because p is shared by the workers, policies must be safe for
// concurrent use on distinct ranks' segments; every built-in policy is
// stateless and qualifies.
func Reduce(t *trace.Trace, p Policy) (*Reduced, error) {
	return ReduceMode(t, p, MatchModeExact)
}

// ReduceMode is Reduce under an explicit MatchMode: MatchModeExact is
// Reduce itself, the approximate modes search each pattern class
// through a sublinear index where the policy supports one (see
// MatchMode for the per-mode guarantees).
func ReduceMode(t *trace.Trace, p Policy, mode MatchMode) (*Reduced, error) {
	red := &Reduced{Name: t.Name, Method: p.Name(), Ranks: make([]RankReduced, len(t.Ranks))}
	workers := runtime.GOMAXPROCS(0)
	if workers > len(t.Ranks) {
		workers = len(t.Ranks)
	}
	reducers := make([]*RankReducer, len(t.Ranks))
	errs := make([]error, len(t.Ranks))
	if workers <= 1 {
		for i := range t.Ranks {
			reducers[i], errs[i] = reduceRank(t, i, p, mode)
		}
	} else {
		var next atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					i := int(next.Add(1)) - 1
					if i >= len(t.Ranks) {
						return
					}
					reducers[i], errs[i] = reduceRank(t, i, p, mode)
				}
			}()
		}
		wg.Wait()
	}
	for i, err := range errs {
		if err != nil {
			return nil, err
		}
		rr := reducers[i]
		red.Ranks[i] = rr.Finish()
		red.TotalSegments += rr.TotalSegments()
		red.Matches += rr.Matches()
		red.PossibleMatches += rr.PossibleMatches()
	}
	return red, nil
}

// reduceRank streams rank i of t through a fused splitter + reducer.
// RankReduced.Rank is the slice index, matching the historical batch
// behaviour; the splitter reports errors under the rank's own ID.
func reduceRank(t *trace.Trace, i int, p Policy, mode MatchMode) (*RankReducer, error) {
	r := NewRankReducerMode(i, p, mode)
	if err := r.FeedEvents(t.Ranks[i].Rank, t.Ranks[i].Events); err != nil {
		return nil, fmt.Errorf("trace %q: %w", t.Name, err)
	}
	return r, nil
}

// ReduceSequential is the retained single-threaded reference
// implementation of Reduce: it materializes every segment of every rank,
// then runs the matching loop inline. It exists for parity testing and
// as the baseline the parallel engine is benchmarked against; library
// users should call Reduce.
func ReduceSequential(t *trace.Trace, p Policy) (*Reduced, error) {
	return ReduceSequentialMode(t, p, MatchModeExact)
}

// ReduceSequentialMode is ReduceSequential under an explicit MatchMode,
// the single-threaded reference for ReduceMode.
func ReduceSequentialMode(t *trace.Trace, p Policy, mode MatchMode) (*Reduced, error) {
	perRank, err := segment.SplitTrace(t)
	if err != nil {
		return nil, err
	}
	red := &Reduced{Name: t.Name, Method: p.Name(), Ranks: make([]RankReduced, len(t.Ranks))}
	for rank, segs := range perRank {
		rr := &red.Ranks[rank]
		rr.Rank = rank
		// One matcher per rank, mirroring the per-rank class index the
		// incremental engine builds.
		m := NewMatcherMode(p, mode)
		for _, s := range segs {
			red.TotalSegments++
			cls, idx, cs := m.Scan(s)
			if cls != nil {
				red.PossibleMatches++
			}
			if idx >= 0 {
				storedID := cls.StoredID(idx)
				m.Absorb(cls, idx, s)
				rr.Execs = append(rr.Execs, Exec{ID: storedID, Start: s.Start})
				red.Matches++
				continue
			}
			id := len(rr.Stored)
			kept := s.Clone()
			kept.Start = 0
			rr.Stored = append(rr.Stored, kept)
			rr.Execs = append(rr.Execs, Exec{ID: id, Start: s.Start})
			m.Insert(cls, kept, id, cs)
		}
	}
	return red, nil
}

// Reconstruct re-creates an approximate full trace from the reduction:
// for every logged execution the representative's events are replayed
// shifted to the recorded start time, bracketed by the segment markers
// (paper §4.3.3). The result has exactly the same event structure as the
// original trace, with approximated timestamps.
func (r *Reduced) Reconstruct() (*trace.Trace, error) {
	t := trace.New(r.Name, len(r.Ranks))
	for rank := range r.Ranks {
		rr := &r.Ranks[rank]
		rt := &t.Ranks[rank]
		for _, ex := range rr.Execs {
			if ex.ID < 0 || ex.ID >= len(rr.Stored) {
				return nil, fmt.Errorf("core: rank %d exec references segment %d of %d", rank, ex.ID, len(rr.Stored))
			}
			s := rr.Stored[ex.ID]
			rt.Events = append(rt.Events, trace.Event{
				Name: s.Context, Kind: trace.KindMarkBegin, Enter: ex.Start, Exit: ex.Start,
				Peer: trace.NoPeer, Root: trace.NoPeer,
			})
			for _, e := range s.Events {
				abs := e
				abs.Enter += ex.Start
				abs.Exit += ex.Start
				rt.Events = append(rt.Events, abs)
			}
			end := ex.Start + s.End
			rt.Events = append(rt.Events, trace.Event{
				Name: s.Context, Kind: trace.KindMarkEnd, Enter: end, Exit: end,
				Peer: trace.NoPeer, Root: trace.NoPeer,
			})
		}
	}
	return t, nil
}
