package core

import (
	"bytes"
	"io"
	"math/rand"
	"testing"

	"repro/internal/segment"
	"repro/internal/trace"
)

// buildMultiRankTrace makes an nRanks-rank trace whose per-rank loop
// durations are drawn from rng, so ranks differ and matching is
// non-trivial.
func buildMultiRankTrace(name string, nRanks, iters int, rng *rand.Rand) *trace.Trace {
	t := trace.New(name, nRanks)
	for r := 0; r < nRanks; r++ {
		now := trace.Time(0)
		add := func(e trace.Event) { t.Ranks[r].Events = append(t.Ranks[r].Events, e) }
		for i := 0; i < iters; i++ {
			d := trace.Time(10 + rng.Intn(20))
			add(trace.Event{Name: "main.1", Kind: trace.KindMarkBegin, Enter: now, Exit: now, Peer: trace.NoPeer, Root: trace.NoPeer})
			add(trace.Event{Name: "do_work", Kind: trace.KindCompute, Enter: now, Exit: now + d, Peer: trace.NoPeer, Root: trace.NoPeer})
			now += d
			add(trace.Event{Name: "main.1", Kind: trace.KindMarkEnd, Enter: now, Exit: now, Peer: trace.NoPeer, Root: trace.NoPeer})
			now += 2
		}
	}
	return t
}

// assertSameReduced fails unless a and b are identical reductions:
// equal counters and byte-identical encoded form.
func assertSameReduced(t *testing.T, label string, a, b *Reduced) {
	t.Helper()
	if a.TotalSegments != b.TotalSegments || a.Matches != b.Matches || a.PossibleMatches != b.PossibleMatches {
		t.Errorf("%s: counters differ: (%d,%d,%d) vs (%d,%d,%d)", label,
			a.TotalSegments, a.Matches, a.PossibleMatches,
			b.TotalSegments, b.Matches, b.PossibleMatches)
	}
	var ab, bb bytes.Buffer
	if err := EncodeReduced(&ab, a); err != nil {
		t.Fatalf("%s: encoding a: %v", label, err)
	}
	if err := EncodeReduced(&bb, b); err != nil {
		t.Fatalf("%s: encoding b: %v", label, err)
	}
	if !bytes.Equal(ab.Bytes(), bb.Bytes()) {
		t.Errorf("%s: encoded reductions differ (%d vs %d bytes)", label, ab.Len(), bb.Len())
	}
}

func TestReduceParallelMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	tr := buildMultiRankTrace("multi", 16, 12, rng)
	for _, name := range MethodNames {
		p1, err := DefaultMethod(name)
		if err != nil {
			t.Fatal(err)
		}
		p2, err := DefaultMethod(name)
		if err != nil {
			t.Fatal(err)
		}
		par, err := Reduce(tr, p1)
		if err != nil {
			t.Fatalf("%s: Reduce: %v", name, err)
		}
		seq, err := ReduceSequential(tr, p2)
		if err != nil {
			t.Fatalf("%s: ReduceSequential: %v", name, err)
		}
		assertSameReduced(t, name, par, seq)
	}
}

func TestRankReducerCountersAndFinish(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	tr := buildMultiRankTrace("one", 1, 10, rng)
	p := NewAbsDiff(1000) // everything in a class matches
	r := NewRankReducer(0, p)
	if err := r.FeedEvents(tr.Ranks[0].Rank, tr.Ranks[0].Events); err != nil {
		t.Fatalf("FeedEvents: %v", err)
	}
	if r.TotalSegments() != 10 {
		t.Errorf("TotalSegments = %d, want 10", r.TotalSegments())
	}
	if r.Matches() != 9 || r.PossibleMatches() != 9 {
		t.Errorf("Matches, PossibleMatches = %d, %d; want 9, 9", r.Matches(), r.PossibleMatches())
	}
	rr := r.Finish()
	if rr.Rank != 0 || len(rr.Stored) != 1 || len(rr.Execs) != 10 {
		t.Errorf("Finish: rank %d, %d stored, %d execs; want 0, 1, 10", rr.Rank, len(rr.Stored), len(rr.Execs))
	}
	if rr.Stored[0].Start != 0 {
		t.Errorf("stored representative not normalized: start %d", rr.Stored[0].Start)
	}
}

func TestRankReducerFeedMatchesBatchPerRank(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	tr := buildMultiRankTrace("one", 1, 20, rng)
	segs, err := segment.Split(&tr.Ranks[0])
	if err != nil {
		t.Fatal(err)
	}
	r := NewRankReducer(0, NewRelDiff(0.3))
	for _, s := range segs {
		r.Feed(s)
	}
	streamed := &Reduced{Name: tr.Name, Method: "relDiff", Ranks: []RankReduced{r.Finish()},
		TotalSegments: r.TotalSegments(), Matches: r.Matches(), PossibleMatches: r.PossibleMatches()}
	batch, err := ReduceSequential(tr, NewRelDiff(0.3))
	if err != nil {
		t.Fatal(err)
	}
	assertSameReduced(t, "relDiff", streamed, batch)
}

func TestReduceStreamMatchesBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	tr := buildMultiRankTrace("streamed", 8, 15, rng)
	var buf bytes.Buffer
	if err := trace.Encode(&buf, tr); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"avgWave", "iter_avg", "euclidean"} {
		p1, _ := DefaultMethod(name)
		p2, _ := DefaultMethod(name)
		d, err := trace.NewDecoder(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		streamed, err := ReduceStream(d.Name(), p1, d.NextRank)
		if err != nil {
			t.Fatalf("%s: ReduceStream: %v", name, err)
		}
		batch, err := ReduceSequential(tr, p2)
		if err != nil {
			t.Fatalf("%s: ReduceSequential: %v", name, err)
		}
		assertSameReduced(t, name, streamed, batch)
	}
}

func TestReduceStreamPropagatesErrors(t *testing.T) {
	// A rank with an unclosed segment must fail the whole stream.
	tr := trace.New("bad", 2)
	tr.Ranks[0].Events = []trace.Event{
		{Name: "main.1", Kind: trace.KindMarkBegin, Peer: trace.NoPeer, Root: trace.NoPeer},
		{Name: "w", Kind: trace.KindCompute, Exit: 5, Peer: trace.NoPeer, Root: trace.NoPeer},
		{Name: "main.1", Kind: trace.KindMarkEnd, Enter: 6, Exit: 6, Peer: trace.NoPeer, Root: trace.NoPeer},
	}
	tr.Ranks[1].Events = []trace.Event{
		{Name: "main.1", Kind: trace.KindMarkBegin, Peer: trace.NoPeer, Root: trace.NoPeer},
	}
	i := 0
	next := func() (*trace.RankTrace, error) {
		if i >= len(tr.Ranks) {
			return nil, io.EOF
		}
		rt := &tr.Ranks[i]
		i++
		return rt, nil
	}
	if _, err := ReduceStream("bad", NewIterAvg(), next); err == nil {
		t.Error("ReduceStream with unclosed segment: no error")
	}
	// The parallel batch driver must report it too.
	if _, err := Reduce(tr, NewIterAvg()); err == nil {
		t.Error("Reduce with unclosed segment: no error")
	}
}
