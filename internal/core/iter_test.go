package core

import (
	"testing"

	"repro/internal/segment"
)

func TestIterKSemantics(t *testing.T) {
	p, err := NewIterK(3)
	if err != nil {
		t.Fatalf("NewIterK: %v", err)
	}
	if p.Name() != "iter_k" {
		t.Errorf("Name = %q", p.Name())
	}
	// Fewer than k stored: no match, the segment must be kept.
	if got := scanMatch(p, []*segment.Segment{s0(), s1()}, s2()); got != -1 {
		t.Errorf("with 2 < k stored, Match = %d, want -1", got)
	}
	// Exactly k stored: match the last collected copy (paper footnote 1).
	if got := scanMatch(p, []*segment.Segment{s0(), s1(), s2()}, s0()); got != 2 {
		t.Errorf("with k stored, Match = %d, want 2 (last)", got)
	}
	if _, err := NewIterK(0); err == nil {
		t.Error("k=0 must be rejected")
	}
}

func TestIterAvgSemantics(t *testing.T) {
	p := NewIterAvg()
	if p.Name() != "iter_avg" {
		t.Errorf("Name = %q", p.Name())
	}
	if got := scanMatch(p, nil, s2()); got != -1 {
		t.Errorf("first instance must not match, got %d", got)
	}
	if got := scanMatch(p, []*segment.Segment{s0()}, s2()); got != 0 {
		t.Errorf("later instances must match index 0, got %d", got)
	}
}

// TestIterAvgAbsorb verifies the running-average arithmetic: folding s2
// into s0 (both weight considerations) produces element-wise means.
func TestIterAvgAbsorb(t *testing.T) {
	p := NewIterAvg()
	rep := s0() // (50, 1, 20, 21, 49), weight 1
	p.Absorb(rep, s2())
	if rep.Weight != 2 {
		t.Fatalf("Weight = %d, want 2", rep.Weight)
	}
	// Means of (50,49), (1,1), (20,17), (21,18), (49,48) with integer
	// truncation: 49, 1, 18, 19, 48.
	if rep.End != 49 {
		t.Errorf("End = %d, want 49", rep.End)
	}
	if rep.Events[0].Enter != 1 || rep.Events[0].Exit != 18 {
		t.Errorf("do_work = (%d,%d), want (1,18)", rep.Events[0].Enter, rep.Events[0].Exit)
	}
	if rep.Events[1].Enter != 19 || rep.Events[1].Exit != 48 {
		t.Errorf("allgather = (%d,%d), want (19,48)", rep.Events[1].Enter, rep.Events[1].Exit)
	}
	// Folding a third instance weights the existing average by 2.
	p.Absorb(rep, s1()) // s1 = (51, 1, 40, 41, 50)
	if rep.Weight != 3 {
		t.Fatalf("Weight = %d, want 3", rep.Weight)
	}
	if rep.End != (49*2+51)/3 {
		t.Errorf("End = %d, want %d", rep.End, (49*2+51)/3)
	}
}

// TestIterAvgPreservesOrdering: averaging valid segments must keep event
// times ordered and within the segment.
func TestIterAvgPreservesOrdering(t *testing.T) {
	p := NewIterAvg()
	rep := s0()
	for _, s := range []*segment.Segment{s1(), s2(), s1(), s2(), s1()} {
		p.Absorb(rep, s)
	}
	last := int64(0)
	for _, e := range rep.Events {
		if e.Enter < last || e.Exit < e.Enter {
			t.Fatalf("averaging broke ordering: %+v", rep.Events)
		}
		last = e.Enter
	}
	if rep.Events[len(rep.Events)-1].Exit > rep.End {
		t.Errorf("last exit %d beyond segment end %d", rep.Events[len(rep.Events)-1].Exit, rep.End)
	}
}

func TestDistancePoliciesAbsorbIsNoop(t *testing.T) {
	rep := s0()
	before := *rep
	NewAbsDiff(20).Absorb(rep, s2())
	if rep.End != before.End || rep.Weight != before.Weight {
		t.Error("distance policies must not mutate representatives")
	}
}
