package core

import (
	"testing"

	"repro/internal/trace"
)

func TestSampleNValidation(t *testing.T) {
	if _, err := NewSampleN(0); err == nil {
		t.Error("n=0 must be rejected")
	}
	p, err := NewSampleN(3)
	if err != nil {
		t.Fatalf("NewSampleN: %v", err)
	}
	if p.Name() != "sample_n" {
		t.Errorf("Name = %q", p.Name())
	}
}

// TestSampleNCadence: with n=3 over 9 instances, instances 0, 3, 6 are
// kept and the rest reference the most recent kept copy.
func TestSampleNCadence(t *testing.T) {
	durs := make([]trace.Time, 9)
	for i := range durs {
		durs[i] = trace.Time(10 + i)
	}
	tr := buildLoopTrace("loop", durs)
	p, _ := NewSampleN(3)
	red, err := Reduce(tr, p)
	if err != nil {
		t.Fatalf("Reduce: %v", err)
	}
	if got := red.StoredSegments(); got != 3 {
		t.Fatalf("stored %d, want 3 (instances 0, 3, 6)", got)
	}
	wantIDs := []int{0, 0, 0, 1, 1, 1, 2, 2, 2}
	for i, ex := range red.Ranks[0].Execs {
		if ex.ID != wantIDs[i] {
			t.Errorf("exec %d -> stored %d, want %d", i, ex.ID, wantIDs[i])
		}
	}
	// Kept samples are spread across the run: the stored durations are
	// those of iterations 0, 3, 6.
	for i, want := range []trace.Time{10, 13, 16} {
		if got := red.Ranks[0].Stored[i].Events[0].Duration(); got != want {
			t.Errorf("stored %d duration = %d, want %d", i, got, want)
		}
	}
}

func TestSampleNOneKeepsEverything(t *testing.T) {
	tr := buildLoopTrace("loop", []trace.Time{10, 20, 30})
	p, _ := NewSampleN(1)
	red, err := Reduce(tr, p)
	if err != nil {
		t.Fatal(err)
	}
	if red.StoredSegments() != 3 || red.Matches != 0 {
		t.Errorf("n=1 should keep everything: stored=%d matches=%d", red.StoredSegments(), red.Matches)
	}
}

// TestSampleNTracksDrift: on a slowly drifting workload, systematic
// sampling reconstructs with less error than iter_k at equal data volume,
// because its samples cover the whole run instead of the first k
// iterations.
func TestSampleNTracksDrift(t *testing.T) {
	durs := make([]trace.Time, 40)
	for i := range durs {
		durs[i] = trace.Time(100 + 10*i) // steady drift
	}
	tr := buildLoopTrace("drift", durs)

	sp, _ := NewSampleN(4) // keeps 10 of 40
	sredu, err := Reduce(tr, sp)
	if err != nil {
		t.Fatal(err)
	}
	kp, _ := NewIterK(10) // also keeps 10 of 40
	kredu, err := Reduce(tr, kp)
	if err != nil {
		t.Fatal(err)
	}
	if sredu.StoredSegments() != kredu.StoredSegments() {
		t.Fatalf("unequal data volume: %d vs %d", sredu.StoredSegments(), kredu.StoredSegments())
	}
	srec, err := sredu.Reconstruct()
	if err != nil {
		t.Fatal(err)
	}
	krec, err := kredu.Reconstruct()
	if err != nil {
		t.Fatal(err)
	}
	sdist, err := ApproximationDistance(tr, srec, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	kdist, err := ApproximationDistance(tr, krec, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	if sdist >= kdist {
		t.Errorf("sampling should track drift better: sample %d vs iter_k %d", sdist, kdist)
	}
}
