package core

import (
	"testing"

	"repro/internal/segment"
	"repro/internal/trace"
)

// The paper's Figure 2 segments. Measurement vectors:
//
//	s0 = (50, 1, 20, 21, 49)
//	s1 = (51, 1, 40, 41, 50)
//	s2 = (49, 1, 17, 18, 48)
//
// Every worked example in §3.2 is expressed over these three segments;
// the tests below pin our implementation to the paper's arithmetic.
func figure2Segment(end, wEnter, wExit, aEnter, aExit trace.Time) *segment.Segment {
	return &segment.Segment{
		Context: "main.1",
		End:     end,
		Weight:  1,
		Events: []trace.Event{
			{Name: "do_work", Kind: trace.KindCompute, Enter: wEnter, Exit: wExit, Peer: trace.NoPeer, Root: trace.NoPeer},
			{Name: "MPI_Allgather", Kind: trace.KindAllgather, Enter: aEnter, Exit: aExit, Peer: trace.NoPeer, Bytes: 8, Root: -1},
		},
	}
}

func s0() *segment.Segment { return figure2Segment(50, 1, 20, 21, 49) }
func s1() *segment.Segment { return figure2Segment(51, 1, 40, 41, 50) }
func s2() *segment.Segment { return figure2Segment(49, 1, 17, 18, 48) }

// scanMatch runs a policy over stored in collection order through a
// hand-built class, preparing representative and candidate state exactly
// as the matcher would.
func scanMatch(p Policy, stored []*segment.Segment, cand *segment.Segment) int {
	cls := &Class{}
	var rs RepState
	for i, s := range stored {
		p.Prepare(s, &rs)
		cls.add(s, i, &rs)
	}
	var cs RepState
	p.Prepare(cand, &cs)
	return p.Match(cls, cand, &cs)
}

// matchOne runs a policy against a single stored candidate.
func matchOne(p Policy, stored, cand *segment.Segment) bool {
	return scanMatch(p, []*segment.Segment{stored}, cand) == 0
}

// TestRelDiffPaperExample: at threshold 0.5, s2 does not match s1
// (do_work exits 17 vs 40 → 0.58) but matches s0 (all ≤ 0.15).
func TestRelDiffPaperExample(t *testing.T) {
	p := NewRelDiff(0.5)
	if matchOne(p, s1(), s2()) {
		t.Error("relDiff(0.5): s2 must not match s1 (rel diff 0.58)")
	}
	if !matchOne(p, s0(), s2()) {
		t.Error("relDiff(0.5): s2 must match s0 (max rel diff 0.15)")
	}
}

// TestRelDiffTimestampBias pins the paper's observation: starts at 1 vs 2
// differ by 0.5 relatively, 100 vs 125 only by 0.2, although the absolute
// gap is 25× larger.
func TestRelDiffTimestampBias(t *testing.T) {
	early1 := figure2Segment(200, 1, 150, 151, 199)
	early2 := figure2Segment(200, 2, 150, 151, 199)
	late1 := figure2Segment(200, 100, 150, 151, 199)
	late2 := figure2Segment(200, 125, 150, 151, 199)
	p := NewRelDiff(0.25)
	if matchOne(p, early1, early2) {
		t.Error("relDiff(0.25): starts 1 vs 2 must fail (0.5)")
	}
	if !matchOne(p, late1, late2) {
		t.Error("relDiff(0.25): starts 100 vs 125 must pass (0.2)")
	}
}

// TestAbsDiffPaperExample: at threshold 20, s2 does not match s1 (end
// times 23 apart) but matches s0 (no difference above 3).
func TestAbsDiffPaperExample(t *testing.T) {
	p := NewAbsDiff(20)
	if matchOne(p, s1(), s2()) {
		t.Error("absDiff(20): s2 must not match s1 (23 apart)")
	}
	if !matchOne(p, s0(), s2()) {
		t.Error("absDiff(20): s2 must match s0 (max 3 apart)")
	}
}

// TestMinkowskiPaperExample pins the paper's distances: s2 vs s1 gives
// Manhattan 50, Euclidean 32.6, Chebyshev 23 — all above 0.2·51 = 10.2;
// s0 vs s2 gives 8, 4.5, 3 — all within 0.2·50 = 10.
func TestMinkowskiPaperExample(t *testing.T) {
	for _, tc := range []struct {
		name string
		mk   func(float64) Policy
	}{
		{"manhattan", NewManhattan},
		{"euclidean", NewEuclidean},
		{"chebyshev", NewChebyshev},
	} {
		p := tc.mk(0.2)
		if matchOne(p, s1(), s2()) {
			t.Errorf("%s(0.2): s2 must not match s1", tc.name)
		}
		if !matchOne(p, s0(), s2()) {
			t.Errorf("%s(0.2): s2 must match s0", tc.name)
		}
	}
}

// TestMinkowskiDistancesExact verifies the raw distance arithmetic via
// threshold bisection: the paper gives d(s2,s1) = 50, 32.6, 23 with
// max measurement 51.
func TestMinkowskiDistancesExact(t *testing.T) {
	cases := []struct {
		name string
		mk   func(float64) Policy
		dist float64
	}{
		{"manhattan", NewManhattan, 50},
		{"euclidean", NewEuclidean, 32.65}, // √1066
		{"chebyshev", NewChebyshev, 23},
	}
	const maxVal = 51.0
	for _, c := range cases {
		just := c.mk(c.dist/maxVal + 0.001)
		if !matchOne(just, s1(), s2()) {
			t.Errorf("%s: threshold just above d/max must match", c.name)
		}
		below := c.mk(c.dist/maxVal - 0.001)
		if matchOne(below, s1(), s2()) {
			t.Errorf("%s: threshold just below d/max must not match", c.name)
		}
	}
}

// TestMinkowskiGeneralOrder: higher orders interpolate between Manhattan
// and Chebyshev.
func TestMinkowskiGeneralOrder(t *testing.T) {
	p3, err := NewMinkowski(3, 0.2)
	if err != nil {
		t.Fatalf("NewMinkowski: %v", err)
	}
	if got := p3.Name(); got != "minkowski3" {
		t.Errorf("Name = %q", got)
	}
	if matchOne(p3, s1(), s2()) {
		t.Error("minkowski3(0.2): s2 must not match s1")
	}
	if !matchOne(p3, s0(), s2()) {
		t.Error("minkowski3(0.2): s2 must match s0")
	}
	if _, err := NewMinkowski(0, 0.2); err == nil {
		t.Error("order 0 must be rejected")
	}
}

// TestWaveletPaperExample pins Figure 3: the average-transform distance
// between s0 and s2 is √3.75 ≈ 1.94, within 0.2 × the largest transformed
// value, so they match; s1 vs s2 must not match at 0.2.
func TestWaveletPaperExample(t *testing.T) {
	for _, tc := range []struct {
		name string
		mk   func(float64) Policy
	}{
		{"avgWave", NewAvgWave},
		{"haarWave", NewHaarWave},
	} {
		p := tc.mk(0.2)
		if !matchOne(p, s0(), s2()) {
			t.Errorf("%s(0.2): s2 must match s0 (paper Figure 3)", tc.name)
		}
		if matchOne(p, s1(), s2()) {
			t.Errorf("%s(0.2): s2 must not match s1", tc.name)
		}
	}
}

// TestWaveletTrendValues verifies the level-2 trends of the paper's
// Figure 3 walkthrough for s2's stamp vector: (9, 24.25).
func TestWaveletTrendValues(t *testing.T) {
	// Reconstruct the intermediate transform by hand here rather than
	// exporting internals: the stamp vector of s2 is
	// (0, 1, 17, 18, 48, 49, 0, 0); after one averaging level the trends
	// are (0.5, 17.5, 48.5, 0); after two, (9, 24.25) — the values the
	// paper quotes.
	v := []float64{0, 1, 17, 18, 48, 49, 0, 0}
	l1 := []float64{(v[0] + v[1]) / 2, (v[2] + v[3]) / 2, (v[4] + v[5]) / 2, (v[6] + v[7]) / 2}
	l2 := []float64{(l1[0] + l1[1]) / 2, (l1[2] + l1[3]) / 2}
	if l2[0] != 9 || l2[1] != 24.25 {
		t.Errorf("level-2 trends = %v, want (9, 24.25)", l2)
	}
}

// TestDistancePoliciesMatchFirstFit: Match must return the index of the
// first acceptable stored representative.
func TestDistancePoliciesMatchFirstFit(t *testing.T) {
	p := NewAbsDiff(20)
	stored := []*segment.Segment{s1(), s0()} // s2 fails s1, matches s0
	if got := scanMatch(p, stored, s2()); got != 1 {
		t.Errorf("Match = %d, want 1", got)
	}
	if got := scanMatch(p, nil, s2()); got != -1 {
		t.Errorf("Match with no candidates = %d, want -1", got)
	}
}

// TestZeroMeasurements: two all-zero segments are identical under every
// distance policy (the relDiff 0/0 case).
func TestZeroMeasurements(t *testing.T) {
	mk := func() *segment.Segment {
		return &segment.Segment{Context: "c", End: 0, Weight: 1,
			Events: []trace.Event{{Name: "w", Kind: trace.KindCompute, Peer: trace.NoPeer, Root: trace.NoPeer}}}
	}
	for _, p := range []Policy{
		NewRelDiff(0.1), NewAbsDiff(1), NewManhattan(0.1), NewEuclidean(0.1),
		NewChebyshev(0.1), NewAvgWave(0.1), NewHaarWave(0.1),
	} {
		if !matchOne(p, mk(), mk()) {
			t.Errorf("%s: identical zero segments must match", p.Name())
		}
	}
}

// TestRelDiffDegenerateThresholds: relDiffMatch accepts identical
// vectors at any threshold (every zero difference is skipped), so the
// max-abs pruning must never reject an exact copy — including at the
// degenerate thresholds 0 and below, where the prune factor would
// otherwise exceed 1.
func TestRelDiffDegenerateThresholds(t *testing.T) {
	for _, th := range []float64{-1, -0.1, 0, 0.1} {
		p := NewRelDiff(th)
		if !matchOne(p, s0(), s0()) {
			t.Errorf("relDiff(%v): identical segments must match", th)
		}
	}
}

// TestIdenticalSegmentsAlwaysMatch: every distance policy must accept an
// exact copy at any positive threshold.
func TestIdenticalSegmentsAlwaysMatch(t *testing.T) {
	for _, p := range []Policy{
		NewRelDiff(0.01), NewAbsDiff(0.5), NewManhattan(0.01), NewEuclidean(0.01),
		NewChebyshev(0.01), NewAvgWave(0.01), NewHaarWave(0.01),
	} {
		if !matchOne(p, s0(), s0()) {
			t.Errorf("%s: identical segments must match", p.Name())
		}
	}
}
