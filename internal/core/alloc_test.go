package core

import (
	"slices"
	"testing"

	"repro/internal/matchbench"
	"repro/internal/segment"
)

// Steady-state allocation gates for the matcher hot path. The slab
// refactor's allocation discipline — candidate state prepared into the
// matcher's reusable scratch, kernels and indexes reading slab rows in
// place, pooled index scratch — is pinned here with testing.AllocsPerRun:
// once a class is warm, Matcher.Scan and RankReducer.Feed on matching
// candidates must not allocate at all, for every method under every
// match mode. A regression to per-scan garbage shows up as a hard test
// failure, not a quiet benchmark drift.

const (
	// allocClasses ≥ indexMinClassSize so the approximate modes actually
	// exercise their index search paths, not just the exact fallback.
	allocClasses = 2 * indexMinClassSize
	allocCands   = 128
)

var allocModes = []MatchMode{MatchModeExact, MatchModeVPTree, MatchModeLSH, MatchModeAuto}

// warmAllocMatcher builds a matcher over the shared matchbench class,
// inserts every representative, and runs one full warm pass over the
// exact candidate sequence the gate will replay, so every lazily grown
// buffer (prepared-vector scratch, wavelet transform scratch, VP-tree
// traversal stack, LSH candidate/dedup arrays) reaches steady-state
// capacity before allocations are counted.
func warmAllocMatcher(t *testing.T, method string, mode MatchMode) (*Matcher, []*segment.Segment) {
	t.Helper()
	p, err := DefaultMethod(method)
	if err != nil {
		t.Fatal(err)
	}
	m := NewMatcherMode(p, mode)
	id := 0
	for _, r := range matchbench.Reps(allocClasses) {
		cls, idx, cs := m.Scan(r)
		if idx >= 0 {
			m.Absorb(cls, idx, r)
			continue
		}
		kept := r.Clone()
		kept.Start = 0
		m.Insert(cls, kept, id, cs)
		id++
	}
	cands := matchbench.Candidates(allocClasses, allocCands)
	for _, c := range cands {
		m.Scan(c)
	}
	return m, cands
}

// TestScanSteadyStateAllocFree: a warm Matcher.Scan allocates nothing,
// for all nine methods under all four match modes.
func TestScanSteadyStateAllocFree(t *testing.T) {
	for _, method := range MethodNames {
		for _, mode := range allocModes {
			t.Run(method+"/"+mode.String(), func(t *testing.T) {
				m, cands := warmAllocMatcher(t, method, mode)
				avg := testing.AllocsPerRun(10, func() {
					for _, c := range cands {
						m.Scan(c)
					}
				})
				if avg != 0 {
					t.Errorf("%s/%s: warm Scan allocates %.1f objects per %d-candidate pass, want 0",
						method, mode, avg, len(cands))
				}
			})
		}
	}
}

// TestFeedSteadyStateAllocFree: a warm RankReducer.Feed of matching
// candidates allocates nothing once the execution log has capacity —
// the reducer's steady state on a long homogeneous stream.
func TestFeedSteadyStateAllocFree(t *testing.T) {
	for _, method := range MethodNames {
		for _, mode := range allocModes {
			t.Run(method+"/"+mode.String(), func(t *testing.T) {
				p, err := DefaultMethod(method)
				if err != nil {
					t.Fatal(err)
				}
				r := NewRankReducerMode(0, p, mode)
				for _, s := range matchbench.Stream(allocClasses, allocCands) {
					r.Feed(s)
				}
				cands := matchbench.Candidates(allocClasses, allocCands)
				for _, s := range cands {
					r.Feed(s)
				}
				// Every gated candidate matches a stored representative
				// (the stream warm-up stored the centers), so Feed's only
				// append target is the execution log: give it the whole
				// gate's capacity up front, as FeedEvents does per rank.
				const runs = 10
				r.out.Execs = slices.Grow(r.out.Execs, (runs+1)*len(cands))
				stored := len(r.out.Stored)
				avg := testing.AllocsPerRun(runs, func() {
					for _, s := range cands {
						r.Feed(s)
					}
				})
				if avg != 0 {
					t.Errorf("%s/%s: warm Feed allocates %.1f objects per %d-candidate pass, want 0",
						method, mode, avg, len(cands))
				}
				if got := len(r.out.Stored); got != stored {
					t.Fatalf("%s/%s: gate stored %d new representatives, want 0 (workload not steady-state)",
						method, mode, got-stored)
				}
			})
		}
	}
}
