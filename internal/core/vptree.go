package core

import (
	"sort"

	"repro/internal/segment"
)

// vpTree is a vantage-point metric tree over the representative rows of
// one comparability class's slab, answering "is any stored vector within
// its acceptance ball of this candidate?" in sublinear time. It relies
// only on dist being a metric (the triangle inequality), which holds for
// the whole Minkowski family and for Euclidean distance between wavelet
// transforms.
//
// The tree stores only item numbers: vectors and max-abs values are read
// out of the class slab at use time (the slab is append-grown and rows
// may relocate, so holding row slices across insertions would dangle).
// Re-pointing the tree at the slab removes the per-item vector copies
// the previous implementation kept and gives tree descents the same
// cache locality as the linear kernels.
//
// The acceptance ball's radius is pairwise — bound(candMaxAbs,
// repMaxAbs), e.g. threshold × the larger max-abs of the pair — so each
// node carries the maximum max-abs over its subtree and pruning uses the
// radius that subtree maximum implies. That keeps pruning conservative:
// a subtree is skipped only when the triangle-inequality lower bound
// provably exceeds every member's acceptance bound, with the same
// pruneMargin slack as the linear scan's norm pruning. A search
// therefore finds a match if and only if the exact scan would; only
// which member it returns may differ.
//
// Representatives arrive one at a time as the reduction keeps them, so
// the tree is maintained by logarithmic rebuilding: new items join a
// small pending list that searches scan linearly, and once pending grows
// past a quarter of the indexed items the whole tree is rebuilt. Each
// item takes part in O(log n) rebuilds of geometrically growing size.
//
// Search favours first-match order without paying for it: every node's
// vantage point is the lowest-numbered (earliest-kept) item of its
// subtree, children are visited lowest-minimum-first, and the pending
// list (always the newest suffix) is scanned last, so the returned match
// is usually the exact scan's first match. The traversal stack is
// retained across searches (and across rebuilds), keeping steady-state
// scans allocation-free.
type vpTree struct {
	cls *Class
	// dist is the metric between vectors; bound maps the candidate's and
	// a representative's max-abs to the pair's acceptance radius.
	dist  func(a, b []float64) float64
	bound func(candMaxAbs, repMaxAbs float64) float64

	n int // items indexed so far (tree + pending)

	nodes   []vpNode
	root    int32
	pending []int32 // items not yet in the tree, ascending, scanned linearly

	stack []int32 // reusable DFS stack
	items []int32 // reusable rebuild scratch
}

// vpNode is one tree node. Items with dist(vp, x) <= mu live in the
// inner subtree, the rest in the outer subtree.
type vpNode struct {
	item         int32 // vantage point: the subtree's lowest item number
	inner, outer int32 // node indices, -1 when absent
	mu           float64
	subMaxAbs    float64 // max of maxAbs over the whole subtree
}

func newVPTree(cls *Class, dist func(a, b []float64) float64, bound func(candMaxAbs, repMaxAbs float64) float64) *vpTree {
	return &vpTree{cls: cls, dist: dist, bound: bound, root: -1}
}

// row and itemMaxAbs fetch an indexed item's vector and max-abs from the
// slab at use time.
func (t *vpTree) row(i int32) []float64      { return t.cls.Row(int(i)) }
func (t *vpTree) itemMaxAbs(i int32) float64 { return t.cls.maxAbs[i] }

// add indexes the class's i-th slab row.
func (t *vpTree) add(i int) {
	t.n++
	t.pending = append(t.pending, int32(i))
	inTree := t.n - len(t.pending)
	if len(t.pending)*4 >= inTree+4 {
		t.rebuild()
	}
}

// reset empties the tree (keeping its pooled buffers) so every indexed
// item can be re-added after representative state changed in place.
func (t *vpTree) reset() {
	t.n = 0
	t.pending = t.pending[:0]
	t.nodes = t.nodes[:0]
	t.root = -1
}

// rebuild reconstructs the tree over every item and empties the pending
// list.
func (t *vpTree) rebuild() {
	t.pending = t.pending[:0]
	t.nodes = t.nodes[:0]
	items := t.items[:0]
	for i := 0; i < t.n; i++ {
		items = append(items, int32(i))
	}
	t.items = items
	t.root = t.build(items)
}

// build constructs the subtree over items (ascending on entry) and
// returns its node index, or -1 for an empty set.
func (t *vpTree) build(items []int32) int32 {
	if len(items) == 0 {
		return -1
	}
	// The lowest item is first (partitioning below preserves that the
	// minimum stays at index 0) and becomes the vantage point, so a
	// pre-order visit sees items in near-collection order.
	vp := items[0]
	rest := items[1:]
	ni := int32(len(t.nodes))
	t.nodes = append(t.nodes, vpNode{item: vp, inner: -1, outer: -1, subMaxAbs: t.itemMaxAbs(vp)})
	if len(rest) > 0 {
		// Split the remaining items at the median distance from vp.
		// Rebuilds are amortized O(log n) per item, so allocating the
		// scratch here is fine; searches stay allocation-free.
		dists := make([]float64, len(rest))
		for j, it := range rest {
			dists[j] = t.dist(t.row(vp), t.row(it))
		}
		sorted := append([]float64(nil), dists...)
		sort.Float64s(sorted)
		mu := sorted[(len(sorted)-1)/2]
		// Partition in place, stably enough to keep each side's minimum
		// item first: collect inner then outer in item order.
		inner := make([]int32, 0, len(rest))
		outer := make([]int32, 0, len(rest))
		for j, it := range rest {
			if dists[j] <= mu {
				inner = append(inner, it)
			} else {
				outer = append(outer, it)
			}
		}
		t.nodes[ni].mu = mu
		in := t.build(inner)
		out := t.build(outer)
		n := &t.nodes[ni]
		n.inner, n.outer = in, out
		if in >= 0 && t.nodes[in].subMaxAbs > n.subMaxAbs {
			n.subMaxAbs = t.nodes[in].subMaxAbs
		}
		if out >= 0 && t.nodes[out].subMaxAbs > n.subMaxAbs {
			n.subMaxAbs = t.nodes[out].subMaxAbs
		}
	}
	return ni
}

// search returns an item whose acceptance ball contains vec — near-first
// in collection order — or -1 when no indexed item matches. It performs
// the exact per-pair acceptance test dist <= bound(candMaxAbs, itemMaxAbs)
// on every item it reaches, and prunes subtrees only via the triangle
// inequality against the subtree's conservative radius.
func (t *vpTree) search(vec []float64, candMaxAbs float64) int {
	if t.root >= 0 {
		stack := t.stack[:0]
		stack = append(stack, t.root)
		for len(stack) > 0 {
			ni := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			n := &t.nodes[ni]
			d := t.dist(vec, t.row(n.item))
			if d <= t.bound(candMaxAbs, t.itemMaxAbs(n.item)) {
				t.stack = stack
				return int(n.item)
			}
			// Push outer before inner: the inner subtree holds the
			// earlier-kept items more often and is popped first. A child
			// is skipped only when the reverse triangle inequality puts
			// every member outside its own acceptance ball, judged with
			// the subtree's largest possible radius and the scan's
			// conservative margin.
			if out := n.outer; out >= 0 {
				if lb := n.mu - d; !pruned(lb, t.bound(candMaxAbs, t.nodes[out].subMaxAbs)) {
					stack = append(stack, out)
				}
			}
			if in := n.inner; in >= 0 {
				if lb := d - n.mu; !pruned(lb, t.bound(candMaxAbs, t.nodes[in].subMaxAbs)) {
					stack = append(stack, in)
				}
			}
		}
		t.stack = stack
	}
	for _, it := range t.pending {
		if t.dist(vec, t.row(it)) <= t.bound(candMaxAbs, t.itemMaxAbs(it)) {
			return int(it)
		}
	}
	return -1
}

// size returns the number of indexed items.
func (t *vpTree) size() int { return t.n }

// vpIndex adapts a vpTree to the IndexedClass interface. The policies
// all index the prepared slab rows (padded measurements for the
// Minkowski family and absDiff, transforms for the wavelet methods), so
// the candidate side is uniformly cs.Vec/cs.MaxAbs.
type vpIndex struct {
	tree *vpTree
}

func (x *vpIndex) Add(i int) { x.tree.add(i) }

func (x *vpIndex) Search(cand *segment.Segment, cs *RepState) int {
	return x.tree.search(cs.Vec, cs.MaxAbs)
}

func (x *vpIndex) Rebuild() {
	t := x.tree
	t.reset()
	for i, n := 0, t.cls.Len(); i < n; i++ {
		t.add(i)
	}
}
