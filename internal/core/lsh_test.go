package core

import (
	"math"
	"testing"

	"repro/internal/wavelet"
)

// lshTestClass builds a Class whose slab rows hold the given transform
// vectors, plus the lshIndex over it — the shape the wavelet policies
// hand to the matcher.
func lshTestClass(threshold float64, vecs [][]float64) (*Class, *lshIndex) {
	cls := &Class{}
	for i, v := range vecs {
		cls.add(nil, i, &RepState{Vec: v, MaxAbs: maxAbsOf(v)})
	}
	x := &lshIndex{
		cls:   cls,
		dist:  wavelet.Euclidean,
		bound: pairMaxBound(threshold),
	}
	for i := range vecs {
		x.Add(i)
	}
	return cls, x
}

// lshStampVectors builds n seeded random stamp-style vectors of dimension
// dim: positive monotone-ish components in a realistic timestamp range.
func lshStampVectors(n, dim int, seed uint64) [][]float64 {
	rng := &xorshift{s: seed}
	out := make([][]float64, n)
	for i := range out {
		v := make([]float64, dim)
		acc := float64(rng.next()%500) + 50
		for d := range v {
			acc += float64(rng.next()%200) + 1
			v[d] = acc
		}
		out[i] = v
	}
	return out
}

// TestLSHRecall pins the documented recall floor: for queries lying well
// inside a representative's acceptance ball (noise at ~30% of the
// threshold radius), the 4-table × 8-bit random-hyperplane index must
// surface a match at least 90% of the time. Misses are legal — they cost
// only a duplicate stored representative — but the rate bounds the score
// loss the eval grid reports.
func TestLSHRecall(t *testing.T) {
	const (
		threshold = 0.2
		dim       = 16
		nReps     = 200
		nQueries  = 400
	)
	reps := lshStampVectors(nReps, dim, 0x1234567887654321)
	_, x := lshTestClass(threshold, reps)
	rng := &xorshift{s: 0xfeedfacecafebeef}
	found, total := 0, 0
	for q := 0; q < nQueries; q++ {
		base := reps[rng.next()%nReps]
		radius := threshold * maxAbsOf(base)
		// Perturb each component by a bounded jitter keeping the query at
		// ~30% of the acceptance radius from its base representative.
		query := make([]float64, dim)
		perComp := 0.3 * radius / math.Sqrt(float64(dim))
		for d := range query {
			jitter := (float64(rng.next()%2000)/1000 - 1) * perComp
			query[d] = base[d] + jitter
		}
		// Confirm with brute force that a true match exists (the jitter
		// construction guarantees it, but keep the test self-checking).
		brute := false
		for _, r := range reps {
			if wavelet.Euclidean(query, r) <= x.bound(maxAbsOf(query), maxAbsOf(r)) {
				brute = true
				break
			}
		}
		if !brute {
			t.Fatalf("query %d: construction failed to produce a true match", q)
		}
		total++
		got := x.Search(nil, &RepState{Vec: query, MaxAbs: maxAbsOf(query)})
		if got >= 0 {
			found++
			// Whatever LSH returns must itself pass the acceptance test:
			// hashing narrows the scan, verification stays exact.
			rv, rm := x.cls.Row(got), x.cls.maxAbs[got]
			if d, b := wavelet.Euclidean(query, rv), x.bound(maxAbsOf(query), rm); d > b {
				t.Fatalf("query %d: returned rep %d at distance %g outside bound %g", q, got, d, b)
			}
		}
	}
	recall := float64(found) / float64(total)
	if recall < 0.9 {
		t.Fatalf("LSH recall %.3f over %d queries, want >= 0.90", recall, total)
	}
	t.Logf("LSH recall: %.3f (%d/%d)", recall, found, total)
}

// TestLSHNoFalseAccepts drives far-away queries through the index: LSH
// may share buckets with anything, but verification must reject every
// out-of-ball representative.
func TestLSHNoFalseAccepts(t *testing.T) {
	reps := lshStampVectors(100, 8, 0xdeadbeef12345678)
	_, x := lshTestClass(0.01, reps) // tiny ball: distinct stamps never match
	queries := lshStampVectors(200, 8, 0x0123456789abcdef)
	for q, query := range queries {
		got := x.Search(nil, &RepState{Vec: query, MaxAbs: maxAbsOf(query)})
		if got < 0 {
			continue
		}
		rv, rm := x.cls.Row(got), x.cls.maxAbs[got]
		if d, b := wavelet.Euclidean(query, rv), x.bound(maxAbsOf(query), rm); d > b {
			t.Fatalf("query %d: accepted rep %d at distance %g > bound %g", q, got, d, b)
		}
	}
}

// TestLSHDeterminism rebuilds the index from scratch over the same data
// and requires identical search results: the hyperplanes are seeded, so
// reductions must be reproducible run to run.
func TestLSHDeterminism(t *testing.T) {
	reps := lshStampVectors(150, 16, 0x5ca1ab1e)
	_, x1 := lshTestClass(0.15, reps)
	_, x2 := lshTestClass(0.15, reps)
	queries := lshStampVectors(150, 16, 0xfaceb00c)
	for q, query := range queries {
		cs := &RepState{Vec: query, MaxAbs: maxAbsOf(query)}
		if g1, g2 := x1.Search(nil, cs), x2.Search(nil, cs); g1 != g2 {
			t.Fatalf("query %d: index 1 returned %d, index 2 returned %d", q, g1, g2)
		}
	}
	// Rebuild must reproduce the same hashing as incremental Adds.
	x1.Rebuild()
	for q, query := range queries {
		cs := &RepState{Vec: query, MaxAbs: maxAbsOf(query)}
		if g1, g2 := x1.Search(nil, cs), x2.Search(nil, cs); g1 != g2 {
			t.Fatalf("query %d after Rebuild: %d vs %d", q, g1, g2)
		}
	}
}

// TestLSHSearchAllocFree verifies the reusable scratch buffer: warm
// searches allocate nothing.
func TestLSHSearchAllocFree(t *testing.T) {
	reps := lshStampVectors(300, 16, 0xabad1dea)
	_, x := lshTestClass(0.2, reps)
	queries := lshStampVectors(64, 16, 0x600dcafe)
	states := make([]*RepState, len(queries))
	for i, q := range queries {
		states[i] = &RepState{Vec: q, MaxAbs: maxAbsOf(q)}
	}
	x.Search(nil, states[0]) // warm the scratch buffer
	q := 0
	allocs := testing.AllocsPerRun(200, func() {
		x.Search(nil, states[q%len(states)])
		q++
	})
	if allocs != 0 {
		t.Fatalf("lshIndex.Search allocates %.1f objects per search, want 0", allocs)
	}
}
