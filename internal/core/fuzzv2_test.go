package core

import (
	"bytes"
	"encoding/binary"
	"testing"
)

// hostileReducedV2Seeds derives adversarial variants of a valid TRR2
// container for the fuzz corpus: overlapping, out-of-range, and
// zero-length block indexes, plus checksum and truncation damage.
func hostileReducedV2Seeds(valid []byte) [][]byte {
	le := binary.LittleEndian
	indexOff := le.Uint64(valid[len(valid)-v2TrailerSize:])
	entry := func(b []byte, i int) []byte { return b[indexOff+4+uint64(i)*v2BlockEntrySize:] }
	clone := func() []byte { return append([]byte{}, valid...) }

	overlap := clone()
	le.PutUint64(entry(overlap, 1), le.Uint64(entry(overlap, 1))-3)

	outOfRange := clone()
	le.PutUint64(entry(outOfRange, 0), uint64(len(valid))+100)

	zeroLen := clone()
	le.PutUint32(entry(zeroLen, 0)[8:], 0) // zero-length block, records kept

	badCRC := clone()
	le.PutUint32(entry(badCRC, 0)[20:], 0xdeadbeef)

	truncated := clone()[: int(indexOff)+6 : int(indexOff)+6]

	return [][]byte{overlap, outOfRange, zeroLen, badCRC, truncated}
}

// FuzzDecodeReducedV2RoundTrip drives the TRR2 decoder (both the
// block-parallel and the sequential stream path) with arbitrary bytes
// and, whenever they decode, requires encode→decode→encode to be a
// fixed point and the two paths to agree. Run as a smoke pass with
//
//	go test -fuzz=FuzzDecodeReducedV2RoundTrip -fuzztime=10s ./internal/core
func FuzzDecodeReducedV2RoundTrip(f *testing.F) {
	var seed bytes.Buffer
	if err := EncodeReducedV2(&seed, fuzzSeedReduced()); err != nil {
		f.Fatal(err)
	}
	f.Add(seed.Bytes())
	f.Add(seed.Bytes()[:len(seed.Bytes())/2]) // truncated file
	f.Add([]byte(reducedMagicV2))             // bare magic
	f.Add([]byte{})
	var empty bytes.Buffer
	if err := EncodeReducedV2(&empty, &Reduced{Name: "empty", Method: "none"}); err != nil {
		f.Fatal(err)
	}
	f.Add(empty.Bytes())
	for _, hostile := range hostileReducedV2Seeds(seed.Bytes()) {
		f.Add(hostile)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<20 {
			return // bound fuzz memory, not a format property
		}
		r1, err := DecodeReduced(bytes.NewReader(data)) // random-access path
		r1Seq, errSeq := DecodeReduced(streamOnly{bytes.NewReader(data)})
		if (err == nil) != (errSeq == nil) {
			t.Fatalf("decode paths disagree: parallel err=%v, sequential err=%v", err, errSeq)
		}
		if err != nil {
			return // invalid input is fine; not crashing is the property
		}
		var enc1 bytes.Buffer
		if err := EncodeReducedV2(&enc1, r1); err != nil {
			t.Fatalf("re-encoding decoded reduction: %v", err)
		}
		var encSeq bytes.Buffer
		if err := EncodeReducedV2(&encSeq, r1Seq); err != nil {
			t.Fatalf("re-encoding stream-decoded reduction: %v", err)
		}
		if !bytes.Equal(enc1.Bytes(), encSeq.Bytes()) {
			t.Fatal("parallel and sequential decodes re-encode differently")
		}
		r2, err := DecodeReduced(bytes.NewReader(enc1.Bytes()))
		if err != nil {
			t.Fatalf("decoding re-encoded reduction: %v", err)
		}
		var enc2 bytes.Buffer
		if err := EncodeReducedV2(&enc2, r2); err != nil {
			t.Fatalf("third encode: %v", err)
		}
		if !bytes.Equal(enc1.Bytes(), enc2.Bytes()) {
			t.Fatal("encode→decode→encode is not a fixed point")
		}
		if r1.Name != r2.Name || r1.Method != r2.Method || len(r1.Ranks) != len(r2.Ranks) ||
			r1.StoredSegments() != r2.StoredSegments() {
			t.Fatal("round trip changed reduction shape")
		}
	})
}
