package core

import (
	"testing"

	"repro/internal/trace"
)

// pairTraces builds two single-rank traces whose non-marker timestamps
// differ by the given per-event deltas.
func pairTraces(deltas []trace.Time) (*trace.Trace, *trace.Trace) {
	mk := func(shift []trace.Time) *trace.Trace {
		t := trace.New("t", 1)
		now := trace.Time(100)
		add := func(e trace.Event) { t.Ranks[0].Events = append(t.Ranks[0].Events, e) }
		add(trace.Event{Name: "s", Kind: trace.KindMarkBegin, Enter: 0, Exit: 0, Peer: trace.NoPeer, Root: trace.NoPeer})
		for i := range deltas {
			d := trace.Time(0)
			if shift != nil {
				d = shift[i]
			}
			add(trace.Event{Name: "w", Kind: trace.KindCompute,
				Enter: now + d, Exit: now + 10 + d, Peer: trace.NoPeer, Root: trace.NoPeer})
			now += 20
		}
		add(trace.Event{Name: "s", Kind: trace.KindMarkEnd, Enter: now, Exit: now, Peer: trace.NoPeer, Root: trace.NoPeer})
		return t
	}
	return mk(nil), mk(deltas)
}

func TestApproximationDistanceExact(t *testing.T) {
	full, approx := pairTraces([]trace.Time{0, 0, 0, 0})
	d, err := ApproximationDistance(full, approx, 0.9)
	if err != nil {
		t.Fatalf("ApproximationDistance: %v", err)
	}
	if d != 0 {
		t.Errorf("distance = %d, want 0", d)
	}
}

// TestApproximationDistanceQuantile: with 10 events (20 stamps), one
// outlier of 1000 lands in the top 10%, so the 90th-percentile distance
// must stay at the small error.
func TestApproximationDistanceQuantile(t *testing.T) {
	deltas := make([]trace.Time, 10)
	for i := range deltas {
		deltas[i] = 5
	}
	deltas[9] = 1000 // one event (2 stamps = top 10%) far off
	full, approx := pairTraces(deltas)
	d, err := ApproximationDistance(full, approx, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	if d != 5 {
		t.Errorf("90th-pct distance = %d, want 5 (outlier excluded)", d)
	}
	dAll, err := ApproximationDistance(full, approx, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if dAll != 1000 {
		t.Errorf("100th-pct distance = %d, want 1000", dAll)
	}
}

func TestApproximationDistanceNegativeDeltas(t *testing.T) {
	full, approx := pairTraces([]trace.Time{-7, -7, -7, -7})
	d, err := ApproximationDistance(full, approx, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	if d != 7 {
		t.Errorf("distance = %d, want 7 (absolute)", d)
	}
}

func TestApproximationDistanceErrors(t *testing.T) {
	full, approx := pairTraces([]trace.Time{0})
	if _, err := ApproximationDistance(full, approx, 0); err == nil {
		t.Error("quantile 0 must be rejected")
	}
	if _, err := ApproximationDistance(full, approx, 1.5); err == nil {
		t.Error("quantile > 1 must be rejected")
	}
	other := trace.New("other", 2)
	if _, err := ApproximationDistance(full, other, 0.9); err == nil {
		t.Error("rank count mismatch must be rejected")
	}
	// Same ranks, different event counts.
	short := trace.New("short", 1)
	if _, err := ApproximationDistance(full, short, 0.9); err == nil {
		t.Error("timestamp count mismatch must be rejected")
	}
}

func TestApproximationDistanceEmpty(t *testing.T) {
	a, b := trace.New("a", 1), trace.New("b", 1)
	d, err := ApproximationDistance(a, b, 0.9)
	if err != nil || d != 0 {
		t.Errorf("empty traces: d=%d err=%v", d, err)
	}
}

func TestSizeReportPercent(t *testing.T) {
	s := SizeReport{FullBytes: 200, ReducedBytes: 30}
	if got := s.Percent(); got != 15 {
		t.Errorf("Percent = %v, want 15", got)
	}
	if got := (SizeReport{}).Percent(); got != 0 {
		t.Errorf("empty Percent = %v, want 0", got)
	}
}
