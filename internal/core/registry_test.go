package core

import "testing"

func TestNewMethodAllNames(t *testing.T) {
	for _, name := range MethodNames {
		p, err := NewMethod(name, DefaultThresholds[name])
		if err != nil {
			t.Errorf("NewMethod(%q): %v", name, err)
			continue
		}
		if p.Name() != name {
			t.Errorf("NewMethod(%q).Name() = %q", name, p.Name())
		}
	}
}

func TestNewMethodUnknown(t *testing.T) {
	if _, err := NewMethod("nope", 1); err == nil {
		t.Error("unknown method must fail")
	}
}

func TestDefaultMethodsComplete(t *testing.T) {
	ms := DefaultMethods()
	if len(ms) != len(MethodNames) {
		t.Fatalf("DefaultMethods returned %d policies, want %d", len(ms), len(MethodNames))
	}
	for i, m := range ms {
		if m.Name() != MethodNames[i] {
			t.Errorf("method %d = %q, want %q", i, m.Name(), MethodNames[i])
		}
	}
}

func TestDefaultThresholdsMatchPaper(t *testing.T) {
	// §5.2: 0.8 relDiff, 1000 absDiff, 0.4 Manhattan, 0.2 Euclidean and
	// Chebyshev, 10 iterations iter_k, 0.2 for the wavelets.
	want := map[string]float64{
		"relDiff": 0.8, "absDiff": 1000, "manhattan": 0.4,
		"euclidean": 0.2, "chebyshev": 0.2, "iter_k": 10,
		"avgWave": 0.2, "haarWave": 0.2,
	}
	for name, wantT := range want {
		if got := DefaultThresholds[name]; got != wantT {
			t.Errorf("default threshold %s = %v, want %v", name, got, wantT)
		}
	}
}

func TestThresholdSweeps(t *testing.T) {
	// §5.1's grids.
	if got := ThresholdSweep("relDiff"); len(got) != 6 || got[0] != 0.1 || got[5] != 1.0 {
		t.Errorf("relDiff sweep = %v", got)
	}
	if got := ThresholdSweep("absDiff"); len(got) != 6 || got[0] != 10 || got[5] != 1e6 {
		t.Errorf("absDiff sweep = %v", got)
	}
	if got := ThresholdSweep("iter_k"); len(got) != 6 || got[0] != 1 || got[5] != 1000 {
		t.Errorf("iter_k sweep = %v", got)
	}
	if got := ThresholdSweep("iter_avg"); got != nil {
		t.Errorf("iter_avg sweep = %v, want nil", got)
	}
	if got := ThresholdSweep("unknown"); got != nil {
		t.Errorf("unknown sweep = %v, want nil", got)
	}
}

func TestDefaultMethodUnknown(t *testing.T) {
	if _, err := DefaultMethod("nope"); err == nil {
		t.Error("unknown method must fail")
	}
}
