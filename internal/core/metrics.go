package core

import (
	"fmt"
	"slices"

	"repro/internal/trace"
)

// ApproximationDistance implements the paper's §4.3.3 error metric: the
// reconstructed trace is compared with the original time stamp by time
// stamp and the metric reports the absolute difference that the given
// quantile of stamps stays within (the paper uses 0.9: "what absolute
// difference 90% of time stamps had"). Marker stamps are excluded; they
// are bookkeeping, not measurements.
func ApproximationDistance(full, approx *trace.Trace, quantile float64) (trace.Time, error) {
	if quantile <= 0 || quantile > 1 {
		return 0, fmt.Errorf("core: quantile must be in (0,1], got %g", quantile)
	}
	if len(full.Ranks) != len(approx.Ranks) {
		return 0, fmt.Errorf("core: rank count mismatch %d vs %d", len(full.Ranks), len(approx.Ranks))
	}
	var diffs []trace.Time
	var fb, ab []trace.Time
	for r := range full.Ranks {
		fb = full.Timestamps(r, fb[:0])
		ab = approx.Timestamps(r, ab[:0])
		if len(fb) != len(ab) {
			return 0, fmt.Errorf("core: rank %d timestamp count mismatch %d vs %d", r, len(fb), len(ab))
		}
		for i := range fb {
			d := fb[i] - ab[i]
			if d < 0 {
				d = -d
			}
			diffs = append(diffs, d)
		}
	}
	return quantileAbsDiff(diffs, quantile), nil
}

// ApproximationDistanceReduced computes the same §4.3.3 error metric
// directly from the reduced form: the timestamps reconstruction would
// emit are each representative's relative stamps shifted by the
// execution's start, so the comparison walks the execution records in
// lockstep with the full trace instead of materializing a
// reconstruction (or even the stamp vectors). The result is identical to
// ApproximationDistance(full, red.Reconstruct(), quantile); that path
// remains as the parity reference.
func ApproximationDistanceReduced(full *trace.Trace, red *Reduced, quantile float64) (trace.Time, error) {
	if quantile <= 0 || quantile > 1 {
		return 0, fmt.Errorf("core: quantile must be in (0,1], got %g", quantile)
	}
	if len(full.Ranks) != len(red.Ranks) {
		return 0, fmt.Errorf("core: rank count mismatch %d vs %d", len(full.Ranks), len(red.Ranks))
	}
	// One counting pass sizes the diff buffer and validates execution ids.
	total := 0
	for r := range red.Ranks {
		rr := &red.Ranks[r]
		for _, ex := range rr.Execs {
			if ex.ID < 0 || ex.ID >= len(rr.Stored) {
				return 0, fmt.Errorf("core: rank %d exec references segment %d of %d", r, ex.ID, len(rr.Stored))
			}
			total += 2 * len(rr.Stored[ex.ID].Events)
		}
	}
	diffs := make([]trace.Time, 0, total)
	for r := range full.Ranks {
		events := full.Ranks[r].Events
		rr := &red.Ranks[r]
		i := 0 // cursor over the full rank's non-marker events
		for _, ex := range rr.Execs {
			for _, e := range rr.Stored[ex.ID].Events {
				for i < len(events) && events[i].Kind.IsMarker() {
					i++
				}
				if i >= len(events) {
					return 0, stampCountMismatch(full, red, r)
				}
				fe := &events[i]
				i++
				d1 := fe.Enter - (e.Enter + ex.Start)
				if d1 < 0 {
					d1 = -d1
				}
				d2 := fe.Exit - (e.Exit + ex.Start)
				if d2 < 0 {
					d2 = -d2
				}
				diffs = append(diffs, d1, d2)
			}
		}
		for ; i < len(events); i++ {
			if !events[i].Kind.IsMarker() {
				return 0, stampCountMismatch(full, red, r)
			}
		}
	}
	return quantileAbsDiff(diffs, quantile), nil
}

// stampCountMismatch builds the timestamp-count error for rank r in the
// same shape the reconstruct-based path reports.
func stampCountMismatch(full *trace.Trace, red *Reduced, r int) error {
	nFull := 0
	for _, e := range full.Ranks[r].Events {
		if !e.Kind.IsMarker() {
			nFull += 2
		}
	}
	nRed := 0
	rr := &red.Ranks[r]
	for _, ex := range rr.Execs {
		nRed += 2 * len(rr.Stored[ex.ID].Events)
	}
	return fmt.Errorf("core: rank %d timestamp count mismatch %d vs %d", r, nFull, nRed)
}

// quantileAbsDiff sorts the collected absolute differences and returns
// the value the given quantile of them stays within (0 for no stamps).
func quantileAbsDiff(diffs []trace.Time, quantile float64) trace.Time {
	if len(diffs) == 0 {
		return 0
	}
	slices.Sort(diffs)
	idx := int(quantile*float64(len(diffs))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(diffs) {
		idx = len(diffs) - 1
	}
	return diffs[idx]
}

// SizeReport summarizes the file-size criterion for one reduction.
type SizeReport struct {
	// FullBytes is the encoded size of the original trace.
	FullBytes int64
	// ReducedBytes is the encoded size of the reduced trace.
	ReducedBytes int64
}

// Percent returns the reduced size as a percentage of the full size
// (paper §4.3.1).
func (s SizeReport) Percent() float64 {
	if s.FullBytes == 0 {
		return 0
	}
	return 100 * float64(s.ReducedBytes) / float64(s.FullBytes)
}

// Sizes computes the file-size criterion by encoding both forms.
func Sizes(full *trace.Trace, red *Reduced) SizeReport {
	return SizeReport{
		FullBytes:    trace.EncodedSize(full),
		ReducedBytes: EncodedReducedSize(red),
	}
}
