package core

import (
	"fmt"
	"sort"

	"repro/internal/trace"
)

// ApproximationDistance implements the paper's §4.3.3 error metric: the
// reconstructed trace is compared with the original time stamp by time
// stamp and the metric reports the absolute difference that the given
// quantile of stamps stays within (the paper uses 0.9: "what absolute
// difference 90% of time stamps had"). Marker stamps are excluded; they
// are bookkeeping, not measurements.
func ApproximationDistance(full, approx *trace.Trace, quantile float64) (trace.Time, error) {
	if quantile <= 0 || quantile > 1 {
		return 0, fmt.Errorf("core: quantile must be in (0,1], got %g", quantile)
	}
	if len(full.Ranks) != len(approx.Ranks) {
		return 0, fmt.Errorf("core: rank count mismatch %d vs %d", len(full.Ranks), len(approx.Ranks))
	}
	var diffs []trace.Time
	var fb, ab []trace.Time
	for r := range full.Ranks {
		fb = full.Timestamps(r, fb[:0])
		ab = approx.Timestamps(r, ab[:0])
		if len(fb) != len(ab) {
			return 0, fmt.Errorf("core: rank %d timestamp count mismatch %d vs %d", r, len(fb), len(ab))
		}
		for i := range fb {
			d := fb[i] - ab[i]
			if d < 0 {
				d = -d
			}
			diffs = append(diffs, d)
		}
	}
	if len(diffs) == 0 {
		return 0, nil
	}
	sort.Slice(diffs, func(i, j int) bool { return diffs[i] < diffs[j] })
	idx := int(quantile*float64(len(diffs))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(diffs) {
		idx = len(diffs) - 1
	}
	return diffs[idx], nil
}

// SizeReport summarizes the file-size criterion for one reduction.
type SizeReport struct {
	// FullBytes is the encoded size of the original trace.
	FullBytes int64
	// ReducedBytes is the encoded size of the reduced trace.
	ReducedBytes int64
}

// Percent returns the reduced size as a percentage of the full size
// (paper §4.3.1).
func (s SizeReport) Percent() float64 {
	if s.FullBytes == 0 {
		return 0
	}
	return 100 * float64(s.ReducedBytes) / float64(s.FullBytes)
}

// Sizes computes the file-size criterion by encoding both forms.
func Sizes(full *trace.Trace, red *Reduced) SizeReport {
	return SizeReport{
		FullBytes:    trace.EncodedSize(full),
		ReducedBytes: EncodedReducedSize(red),
	}
}
