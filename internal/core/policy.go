// Package core implements the paper's primary contribution: segment-
// similarity policies (relDiff, absDiff, the Minkowski family, the two
// wavelet transforms, iter_k and iter_avg), the trace-reduction engine
// that keeps one representative per repeating pattern, reconstruction of
// approximate full traces, the reduced-trace file format, and the
// evaluation metrics built on them (file-size percentage, degree of
// matching, approximation distance).
package core

import (
	"fmt"
	"math"

	"repro/internal/segment"
	"repro/internal/wavelet"
)

// RepState is a policy's prepared, policy-specific derived state for one
// segment: whatever the policy wants computed once — at storage time for
// representatives, once per incoming segment for candidates — instead of
// on every pairwise comparison. Prepare fills it in place so the matcher
// can reuse one scratch instance for every scanned candidate; the slab in
// Class copies the contents at insertion, so a filled RepState is valid
// only until the next Prepare into it.
//
// Vec is the vector the policy matches on (the zero-padded measurement
// vector for the pairwise and Minkowski policies, the transformed stamp
// vector for the wavelets, empty for the counting policies), Norm the
// policy's pruning norm over Vec, and MaxAbs the largest absolute value
// in Vec.
type RepState struct {
	Vec    []float64
	Norm   float64
	MaxAbs float64
	tmp    []float64 // wavelet transform scratch, reused across Prepares
}

// reset empties the state for policies that keep no vector.
func (cs *RepState) reset() {
	cs.Vec = cs.Vec[:0]
	cs.Norm = 0
	cs.MaxAbs = 0
}

// Policy decides whether a new segment matches one of the stored
// representatives of its pattern class. The matcher guarantees that
// every class passed to Match holds only segments Comparable with cand
// (same context, same events, same message parameters), so policies only
// judge the timing measurements.
type Policy interface {
	// Name returns the method's canonical name (e.g. "relDiff").
	Name() string
	// Prepare computes the derived matching state for a segment into cs,
	// overwriting (and reusing the storage of) whatever cs held. The
	// matcher calls it once per stored representative (at insertion, and
	// again after a mutating Absorb) and once per scanned candidate,
	// then hands the results back to Match.
	Prepare(seg *segment.Segment, cs *RepState)
	// Match returns the index within cls of the first representative
	// cand matches, or -1 for no match. cls holds, in collection order,
	// the representatives already kept for cand's pattern class; cs is
	// cand's own Prepare result.
	Match(cls *Class, cand *segment.Segment, cs *RepState) int
	// Absorb folds cand into the matched representative, reporting
	// whether it mutated the representative's measurements (only
	// iter_avg does; the matcher re-Prepares mutated representatives).
	Absorb(matched *segment.Segment, cand *segment.Segment) bool
}

// pruneMargin is the conservative relative slack the lower-bound pruning
// leaves for floating-point rounding. Pruning invariant: a representative
// is skipped only when its lower bound provably exceeds the acceptance
// bound — mathematically dist ≥ |‖a‖−‖b‖| holds exactly, and the margin
// (1e-9, against accumulated rounding below ~1e-12 for the
// integer-microsecond measurements the engine sees) guarantees the
// computed comparison can never reject a pair the full distance test
// would accept. First-match order is preserved because pruning only
// skips representatives that cannot match; the scan order is unchanged.
const pruneMargin = 1e-9

// pruned reports whether lower bound lb provably exceeds the acceptance
// bound, with pruneMargin's slack.
func pruned(lb, bound float64) bool {
	return lb > bound+pruneMargin*(bound+lb)
}

// maxAbsOf returns the largest absolute value in v.
func maxAbsOf(v []float64) float64 {
	var m float64
	for _, x := range v {
		if ax := math.Abs(x); ax > m {
			m = ax
		}
	}
	return m
}

// pad4 rounds a vector length up to a multiple of four, the kernel
// unroll width. The pad slots are zero in both the slab rows and the
// candidate vector, and zero-against-zero coordinates are neutral for
// every policy's test (|0−0| = 0 contributes nothing to any Minkowski
// sum or max, and relDiff/absDiff accept a zero difference outright), so
// padded decisions are bit-identical to unpadded ones.
func pad4(n int) int { return (n + 3) &^ 3 }

// prepareMeas fills cs with the measurement-space state shared by the
// pairwise and Minkowski policies: the candidate's measurement vector
// zero-padded to the kernel width, plus its max-abs. It never touches
// the segment's cached Meas (which allocates); the vector is built into
// cs.Vec's storage so steady-state Prepare is allocation-free.
func prepareMeas(seg *segment.Segment, cs *RepState) {
	v := seg.Measurements(cs.Vec[:0])
	for n := pad4(len(v)); len(v) < n; {
		v = append(v, 0)
	}
	cs.Vec = v
	cs.MaxAbs = maxAbsOf(v)
	cs.Norm = 0
}

// pairMaxBound returns the acceptance-radius function dist ≤ t ×
// max(candMaxAbs, repMaxAbs) shared by the Minkowski and wavelet match
// rules (paper Eq. 1).
func pairMaxBound(t float64) func(candMaxAbs, repMaxAbs float64) float64 {
	return func(candMaxAbs, repMaxAbs float64) float64 {
		if repMaxAbs > candMaxAbs {
			candMaxAbs = repMaxAbs
		}
		return t * candMaxAbs
	}
}

// relDiff compares each paired measurement in isolation:
// |a−b| / max(a, b) must not exceed the threshold (paper §3.2.1; the
// worked example gives |17−40|/40 = 0.58). Two zero measurements are
// equal by definition.
type relDiffPolicy struct{ threshold float64 }

func (p *relDiffPolicy) Name() string { return "relDiff" }

func (p *relDiffPolicy) Prepare(seg *segment.Segment, cs *RepState) {
	prepareMeas(seg, cs)
}

func (p *relDiffPolicy) Match(cls *Class, cand *segment.Segment, cs *RepState) int {
	return cls.scanRelDiff(p.threshold, cs)
}

func (p *relDiffPolicy) Absorb(*segment.Segment, *segment.Segment) bool { return false }

// absDiff allows a fixed absolute difference per paired measurement.
type absDiffPolicy struct{ threshold float64 }

func (p *absDiffPolicy) Name() string { return "absDiff" }

func (p *absDiffPolicy) Prepare(seg *segment.Segment, cs *RepState) {
	prepareMeas(seg, cs)
}

func (p *absDiffPolicy) Match(cls *Class, cand *segment.Segment, cs *RepState) int {
	return cls.scanAbsDiff(p.threshold, cs)
}

func (p *absDiffPolicy) Absorb(*segment.Segment, *segment.Segment) bool { return false }

// NewClassIndex builds absDiff's VP-tree: the per-measurement absolute
// test is exactly a Chebyshev-distance ball of fixed radius threshold,
// so the metric query needs no per-pair radius at all. The tree is
// opt-in only (not auto): the exact per-measurement test bails at the
// first out-of-threshold component, so a linear scan is cheaper than
// tree descent on this policy (BENCH_matcher.json records the gap).
func (p *absDiffPolicy) NewClassIndex(mode MatchMode, cls *Class) IndexedClass {
	if mode != MatchModeVPTree {
		return nil
	}
	t := p.threshold
	return &vpIndex{
		tree: newVPTree(
			cls,
			func(a, b []float64) float64 { return minkowskiDist(0, a, b) },
			func(_, _ float64) float64 { return t },
		),
	}
}

// minkowskiPolicy computes the order-m Minkowski distance between the
// measurement vectors and accepts when it is at most threshold × the
// largest measurement in the pair of vectors (paper Eq. 1 and the worked
// example: max(51) × 0.2 = 10.2). m = 0 selects Chebyshev (m → ∞).
type minkowskiPolicy struct {
	name      string
	threshold float64
	m         int
}

func (p *minkowskiPolicy) Name() string { return p.name }

func (p *minkowskiPolicy) Prepare(seg *segment.Segment, cs *RepState) {
	prepareMeas(seg, cs)
	cs.Norm = minkowskiNorm(p.m, cs.Vec)
}

func (p *minkowskiPolicy) Match(cls *Class, cand *segment.Segment, cs *RepState) int {
	switch p.m {
	case 0:
		return cls.scanLinf(p.threshold, cs)
	case 1:
		return cls.scanL1(p.threshold, cs)
	case 2:
		return cls.scanL2(p.threshold, cs)
	}
	return cls.scanLm(p.m, p.threshold, cs)
}

func (p *minkowskiPolicy) Absorb(*segment.Segment, *segment.Segment) bool { return false }

// NewClassIndex builds the Minkowski family's VP-tree over the slab's
// measurement rows. Every order-m distance (m >= 1, plus the Chebyshev
// limit) satisfies the triangle inequality, and the pairwise acceptance
// radius t × max(maxAbs) is handled by the tree's subtree-maximum
// pruning. Chebyshev (m = 0) gets the tree only on explicit request, not
// auto: max-of-differences distances concentrate in a narrow band (one
// large component dominates regardless of the rest), so
// |d(cand, vp) − mu| rarely exceeds the acceptance radius and the tree
// descends nearly everywhere while paying node overhead the plain scan
// doesn't (BENCH_matcher.json records the gap).
func (p *minkowskiPolicy) NewClassIndex(mode MatchMode, cls *Class) IndexedClass {
	if mode != MatchModeVPTree && !(mode == MatchModeAuto && p.m != 0) {
		return nil
	}
	m := p.m
	return &vpIndex{
		tree: newVPTree(
			cls,
			func(a, b []float64) float64 { return minkowskiDist(m, a, b) },
			pairMaxBound(p.threshold),
		),
	}
}

// minkowskiDist accumulates the order-m distance exactly as the
// pre-matcher engine did, so cached-state matching stays bit-identical.
func minkowskiDist(m int, va, vb []float64) float64 {
	var dist float64
	for i := range va {
		d := math.Abs(va[i] - vb[i])
		switch m {
		case 0: // Chebyshev
			if d > dist {
				dist = d
			}
		case 1:
			dist += d
		case 2:
			dist += d * d
		default:
			dist += math.Pow(d, float64(m))
		}
	}
	switch m {
	case 0, 1:
		// done
	case 2:
		dist = math.Sqrt(dist)
	default:
		dist = math.Pow(dist, 1/float64(m))
	}
	return dist
}

// minkowskiNorm returns the order-m Minkowski norm of v (m = 0 is the
// Chebyshev/sup norm).
func minkowskiNorm(m int, v []float64) float64 {
	var n float64
	switch m {
	case 0:
		n = maxAbsOf(v)
	case 1:
		for _, x := range v {
			n += math.Abs(x)
		}
	case 2:
		for _, x := range v {
			n += x * x
		}
		n = math.Sqrt(n)
	default:
		for _, x := range v {
			n += math.Pow(math.Abs(x), float64(m))
		}
		n = math.Pow(n, 1/float64(m))
	}
	return n
}

// wavePolicy transforms both stamp vectors (zero-padded to a power of
// two) and accepts when the Euclidean distance between the transforms is
// at most threshold × the largest value in the pair of transformed
// vectors (paper Figure 3: 1.9 ≤ 0.2 × 17.625).
type wavePolicy struct {
	name      string
	threshold float64
	haar      bool
}

func (p *wavePolicy) Name() string { return p.name }

func (p *wavePolicy) Prepare(seg *segment.Segment, cs *RepState) {
	// The stamp vector [0, enters/exits..., end] is laid out directly
	// from the segment's events into cs.Vec and zero-padded to the next
	// power of two before transforming in place — no StampVector or Meas
	// allocation. The padded length depends only on the segment's own
	// event count, and Comparable segments have equal event counts, so
	// every in-class comparison sees equal-length transforms — the same
	// lengths the pre-matcher engine used. The width is NOT rounded to
	// the kernel unroll (pad4): the LSH index seeds its hyperplanes from
	// the vector dimension, so the transform width must stay exactly
	// what the pre-slab engine produced.
	n := wavelet.NextPow2(seg.NumMeasurements() + 1)
	v := seg.StampVector(cs.Vec[:0])
	for len(v) < n {
		v = append(v, 0)
	}
	if cap(cs.tmp) < n {
		cs.tmp = make([]float64, n)
	}
	if p.haar {
		wavelet.HaarInPlaceScratch(v, cs.tmp[:n])
	} else {
		wavelet.AverageInPlaceScratch(v, cs.tmp[:n])
	}
	var sum float64
	for _, x := range v {
		sum += x * x
	}
	cs.Vec = v
	cs.Norm = math.Sqrt(sum)
	cs.MaxAbs = maxAbsOf(v)
}

func (p *wavePolicy) Match(cls *Class, cand *segment.Segment, cs *RepState) int {
	// Wavelet matching is the L2 rule over the prepared transforms, so
	// it shares the Euclidean slab kernel.
	return cls.scanL2(p.threshold, cs)
}

func (p *wavePolicy) Absorb(*segment.Segment, *segment.Segment) bool { return false }

// NewClassIndex builds the wavelet policies' index: random-hyperplane
// LSH buckets over the slab's transform rows under MatchModeLSH (and
// auto, where hashing beats tree descent because a scan then costs no
// distance computations at all on clean misses), or a VP-tree under
// MatchModeVPTree — Euclidean distance between transforms is a metric,
// so the tree search loses no matches.
func (p *wavePolicy) NewClassIndex(mode MatchMode, cls *Class) IndexedClass {
	bound := pairMaxBound(p.threshold)
	switch mode {
	case MatchModeVPTree:
		return &vpIndex{tree: newVPTree(cls, wavelet.Euclidean, bound)}
	case MatchModeLSH, MatchModeAuto:
		return &lshIndex{cls: cls, dist: wavelet.Euclidean, bound: bound}
	}
	return nil
}

// NewRelDiff returns the relative-difference policy with the given
// per-measurement threshold.
func NewRelDiff(threshold float64) Policy {
	return &relDiffPolicy{threshold: threshold}
}

// NewAbsDiff returns the absolute-difference policy; threshold is in time
// units (microseconds).
func NewAbsDiff(threshold float64) Policy {
	return &absDiffPolicy{threshold: threshold}
}

// NewManhattan returns the Minkowski m=1 policy.
func NewManhattan(threshold float64) Policy {
	return &minkowskiPolicy{name: "manhattan", threshold: threshold, m: 1}
}

// NewEuclidean returns the Minkowski m=2 policy.
func NewEuclidean(threshold float64) Policy {
	return &minkowskiPolicy{name: "euclidean", threshold: threshold, m: 2}
}

// NewChebyshev returns the Minkowski m→∞ policy (largest single
// measurement difference).
func NewChebyshev(threshold float64) Policy {
	return &minkowskiPolicy{name: "chebyshev", threshold: threshold, m: 0}
}

// NewMinkowski returns a Minkowski policy of arbitrary order m >= 1; the
// paper evaluates m = 1, 2 and the Chebyshev limit, but other orders are
// useful for ablation.
func NewMinkowski(m int, threshold float64) (Policy, error) {
	if m < 1 {
		return nil, fmt.Errorf("core: Minkowski order must be >= 1, got %d", m)
	}
	return &minkowskiPolicy{name: fmt.Sprintf("minkowski%d", m), threshold: threshold, m: m}, nil
}

// NewAvgWave returns the average-wavelet-transform policy.
func NewAvgWave(threshold float64) Policy {
	return &wavePolicy{name: "avgWave", threshold: threshold, haar: false}
}

// NewHaarWave returns the Haar-wavelet-transform policy.
func NewHaarWave(threshold float64) Policy {
	return &wavePolicy{name: "haarWave", threshold: threshold, haar: true}
}
