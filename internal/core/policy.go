// Package core implements the paper's primary contribution: segment-
// similarity policies (relDiff, absDiff, the Minkowski family, the two
// wavelet transforms, iter_k and iter_avg), the trace-reduction engine
// that keeps one representative per repeating pattern, reconstruction of
// approximate full traces, the reduced-trace file format, and the
// evaluation metrics built on them (file-size percentage, degree of
// matching, approximation distance).
package core

import (
	"fmt"
	"math"

	"repro/internal/segment"
	"repro/internal/wavelet"
)

// RepState is a policy's prepared, policy-specific derived state for one
// segment: whatever the policy wants computed once — at storage time for
// representatives, once per incoming segment for candidates — instead of
// on every pairwise comparison. Policies that need none return nil.
type RepState any

// Policy decides whether a new segment matches one of the stored
// representatives of its pattern class. The matcher guarantees that
// every class passed to Match holds only segments Comparable with cand
// (same context, same events, same message parameters), so policies only
// judge the timing measurements.
type Policy interface {
	// Name returns the method's canonical name (e.g. "relDiff").
	Name() string
	// Prepare computes the derived matching state for a segment. The
	// matcher calls it once per stored representative (at insertion, and
	// again after a mutating Absorb) and once per scanned candidate,
	// then hands the results back to Match.
	Prepare(seg *segment.Segment) RepState
	// Match returns the index within cls of the first representative
	// cand matches, or -1 for no match. cls holds, in collection order,
	// the representatives already kept for cand's pattern class; cs is
	// cand's own Prepare result.
	Match(cls *Class, cand *segment.Segment, cs RepState) int
	// Absorb folds cand into the matched representative, reporting
	// whether it mutated the representative's measurements (only
	// iter_avg does; the matcher re-Prepares mutated representatives).
	Absorb(matched *segment.Segment, cand *segment.Segment) bool
}

// measState is the prepared state of the pairwise and Minkowski-family
// policies: the measurement vector's largest absolute value and (for the
// Minkowski family) its order-m norm, the two scalars the scan's
// lower-bound pruning compares before running a full distance loop.
type measState struct {
	maxAbs float64
	norm   float64
}

// pruneMargin is the conservative relative slack the lower-bound pruning
// leaves for floating-point rounding. Pruning invariant: a representative
// is skipped only when its lower bound provably exceeds the acceptance
// bound — mathematically dist ≥ |‖a‖−‖b‖| holds exactly, and the margin
// (1e-9, against accumulated rounding below ~1e-12 for the
// integer-microsecond measurements the engine sees) guarantees the
// computed comparison can never reject a pair the full distance test
// would accept. First-match order is preserved because pruning only
// skips representatives that cannot match; the scan order is unchanged.
const pruneMargin = 1e-9

// pruned reports whether lower bound lb provably exceeds the acceptance
// bound, with pruneMargin's slack.
func pruned(lb, bound float64) bool {
	return lb > bound+pruneMargin*(bound+lb)
}

// maxAbsOf returns the largest absolute value in v.
func maxAbsOf(v []float64) float64 {
	var m float64
	for _, x := range v {
		if ax := math.Abs(x); ax > m {
			m = ax
		}
	}
	return m
}

// measRepVec and measCandVec extract the vector and max-abs the
// measurement-space policies (absDiff, Minkowski family) match on, for
// the approximate indexes.
func measRepVec(cls *Class, i int) ([]float64, float64) {
	return cls.Rep(i).Meas(), cls.State(i).(*measState).maxAbs
}

func measCandVec(cand *segment.Segment, cs RepState) ([]float64, float64) {
	return cand.Meas(), cs.(*measState).maxAbs
}

// waveRepVec and waveCandVec extract the prepared transform the wavelet
// policies match on.
func waveRepVec(cls *Class, i int) ([]float64, float64) {
	st := cls.State(i).(*waveState)
	return st.tr, st.maxAbs
}

func waveCandVec(_ *segment.Segment, cs RepState) ([]float64, float64) {
	st := cs.(*waveState)
	return st.tr, st.maxAbs
}

// pairMaxBound returns the acceptance-radius function dist ≤ t ×
// max(candMaxAbs, repMaxAbs) shared by the Minkowski and wavelet match
// rules (paper Eq. 1).
func pairMaxBound(t float64) func(candMaxAbs, repMaxAbs float64) float64 {
	return func(candMaxAbs, repMaxAbs float64) float64 {
		if repMaxAbs > candMaxAbs {
			candMaxAbs = repMaxAbs
		}
		return t * candMaxAbs
	}
}

// relDiff compares each paired measurement in isolation:
// |a−b| / max(a, b) must not exceed the threshold (paper §3.2.1; the
// worked example gives |17−40|/40 = 0.58). Two zero measurements are
// equal by definition.
type relDiffPolicy struct{ threshold float64 }

func (p *relDiffPolicy) Name() string { return "relDiff" }

func (p *relDiffPolicy) Prepare(seg *segment.Segment) RepState {
	return &measState{maxAbs: maxAbsOf(seg.Meas())}
}

func (p *relDiffPolicy) Match(cls *Class, cand *segment.Segment, cs RepState) int {
	c := cs.(*measState)
	vb := cand.Meas()
	// Prune: a match forces every paired measurement within a factor of
	// (1−t), in particular at the coordinate holding either vector's
	// max-abs, so the two max-abs values must be within that factor of
	// each other. factor ≤ 0 (t ≥ 1) disables pruning, as does a
	// degenerate negative threshold, where factor > 1 would wrongly
	// prune the identical vectors relDiffMatch still accepts.
	factor := 1 - p.threshold - pruneMargin
	if p.threshold < 0 {
		factor = 0
	}
	for i, n := 0, cls.Len(); i < n; i++ {
		r := cls.State(i).(*measState)
		if factor > 0 && (c.maxAbs < factor*r.maxAbs || r.maxAbs < factor*c.maxAbs) {
			continue
		}
		if relDiffMatch(p.threshold, cls.Rep(i).Meas(), vb) {
			return i
		}
	}
	return -1
}

func (p *relDiffPolicy) Absorb(*segment.Segment, *segment.Segment) bool { return false }

func relDiffMatch(t float64, va, vb []float64) bool {
	for i := range va {
		x, y := va[i], vb[i]
		d := math.Abs(x - y)
		if d == 0 {
			continue
		}
		m := math.Max(math.Abs(x), math.Abs(y))
		if d/m > t {
			return false
		}
	}
	return true
}

// absDiff allows a fixed absolute difference per paired measurement.
type absDiffPolicy struct{ threshold float64 }

func (p *absDiffPolicy) Name() string { return "absDiff" }

func (p *absDiffPolicy) Prepare(seg *segment.Segment) RepState {
	return &measState{maxAbs: maxAbsOf(seg.Meas())}
}

func (p *absDiffPolicy) Match(cls *Class, cand *segment.Segment, cs RepState) int {
	c := cs.(*measState)
	vb := cand.Meas()
	for i, n := 0, cls.Len(); i < n; i++ {
		r := cls.State(i).(*measState)
		// Prune: the sup-norm reverse triangle inequality bounds the
		// max-abs gap by the largest per-measurement difference.
		if lb := math.Abs(r.maxAbs - c.maxAbs); pruned(lb, p.threshold) {
			continue
		}
		if absDiffMatch(p.threshold, cls.Rep(i).Meas(), vb) {
			return i
		}
	}
	return -1
}

func (p *absDiffPolicy) Absorb(*segment.Segment, *segment.Segment) bool { return false }

// NewClassIndex builds absDiff's VP-tree: the per-measurement absolute
// test is exactly a Chebyshev-distance ball of fixed radius threshold,
// so the metric query needs no per-pair radius at all. The tree is
// opt-in only (not auto): the exact per-measurement test bails at the
// first out-of-threshold component, so a linear scan is cheaper than
// tree descent on this policy (BENCH_matcher.json records the gap).
func (p *absDiffPolicy) NewClassIndex(mode MatchMode, cls *Class) IndexedClass {
	if mode != MatchModeVPTree {
		return nil
	}
	t := p.threshold
	return &vpIndex{
		cls: cls,
		tree: newVPTree(
			func(a, b []float64) float64 { return minkowskiDist(0, a, b) },
			func(_, _ float64) float64 { return t },
		),
		repVec:  measRepVec,
		candVec: measCandVec,
	}
}

func absDiffMatch(t float64, va, vb []float64) bool {
	for i := range va {
		if math.Abs(va[i]-vb[i]) > t {
			return false
		}
	}
	return true
}

// minkowskiPolicy computes the order-m Minkowski distance between the
// measurement vectors and accepts when it is at most threshold × the
// largest measurement in the pair of vectors (paper Eq. 1 and the worked
// example: max(51) × 0.2 = 10.2). m = 0 selects Chebyshev (m → ∞).
type minkowskiPolicy struct {
	name      string
	threshold float64
	m         int
}

func (p *minkowskiPolicy) Name() string { return p.name }

func (p *minkowskiPolicy) Prepare(seg *segment.Segment) RepState {
	v := seg.Meas()
	return &measState{maxAbs: maxAbsOf(v), norm: minkowskiNorm(p.m, v)}
}

func (p *minkowskiPolicy) Match(cls *Class, cand *segment.Segment, cs RepState) int {
	c := cs.(*measState)
	vb := cand.Meas()
	for i, n := 0, cls.Len(); i < n; i++ {
		r := cls.State(i).(*measState)
		maxVal := c.maxAbs
		if r.maxAbs > maxVal {
			maxVal = r.maxAbs
		}
		bound := p.threshold * maxVal
		// Prune: the reverse triangle inequality gives
		// dist(a, b) ≥ |‖a‖ − ‖b‖| for every Minkowski order.
		if lb := math.Abs(r.norm - c.norm); pruned(lb, bound) {
			continue
		}
		if minkowskiDist(p.m, cls.Rep(i).Meas(), vb) <= bound {
			return i
		}
	}
	return -1
}

func (p *minkowskiPolicy) Absorb(*segment.Segment, *segment.Segment) bool { return false }

// NewClassIndex builds the Minkowski family's VP-tree over the raw
// measurement vectors. Every order-m distance (m >= 1, plus the
// Chebyshev limit) satisfies the triangle inequality, and the pairwise
// acceptance radius t × max(maxAbs) is handled by the tree's
// subtree-maximum pruning. Chebyshev (m = 0) gets the tree only on
// explicit request, not auto: max-of-differences distances concentrate
// in a narrow band (one large component dominates regardless of the
// rest), so |d(cand, vp) − mu| rarely exceeds the acceptance radius and
// the tree descends nearly everywhere while paying node overhead the
// plain scan doesn't (BENCH_matcher.json records the gap).
func (p *minkowskiPolicy) NewClassIndex(mode MatchMode, cls *Class) IndexedClass {
	if mode != MatchModeVPTree && !(mode == MatchModeAuto && p.m != 0) {
		return nil
	}
	m := p.m
	return &vpIndex{
		cls: cls,
		tree: newVPTree(
			func(a, b []float64) float64 { return minkowskiDist(m, a, b) },
			pairMaxBound(p.threshold),
		),
		repVec:  measRepVec,
		candVec: measCandVec,
	}
}

// minkowskiDist accumulates the order-m distance exactly as the
// pre-matcher engine did, so cached-state matching stays bit-identical.
func minkowskiDist(m int, va, vb []float64) float64 {
	var dist float64
	for i := range va {
		d := math.Abs(va[i] - vb[i])
		switch m {
		case 0: // Chebyshev
			if d > dist {
				dist = d
			}
		case 1:
			dist += d
		case 2:
			dist += d * d
		default:
			dist += math.Pow(d, float64(m))
		}
	}
	switch m {
	case 0, 1:
		// done
	case 2:
		dist = math.Sqrt(dist)
	default:
		dist = math.Pow(dist, 1/float64(m))
	}
	return dist
}

// minkowskiNorm returns the order-m Minkowski norm of v (m = 0 is the
// Chebyshev/sup norm).
func minkowskiNorm(m int, v []float64) float64 {
	var n float64
	switch m {
	case 0:
		n = maxAbsOf(v)
	case 1:
		for _, x := range v {
			n += math.Abs(x)
		}
	case 2:
		for _, x := range v {
			n += x * x
		}
		n = math.Sqrt(n)
	default:
		for _, x := range v {
			n += math.Pow(math.Abs(x), float64(m))
		}
		n = math.Pow(n, 1/float64(m))
	}
	return n
}

// waveState is the prepared state of the wavelet policies: the
// transformed, zero-padded stamp vector — the expensive per-comparison
// computation of the pre-matcher engine, now done once per segment —
// with its Euclidean norm and max-abs for pruning and threshold scaling.
type waveState struct {
	tr     []float64
	norm   float64
	maxAbs float64
}

// wavePolicy transforms both stamp vectors (zero-padded to a power of
// two) and accepts when the Euclidean distance between the transforms is
// at most threshold × the largest value in the pair of transformed
// vectors (paper Figure 3: 1.9 ≤ 0.2 × 17.625).
type wavePolicy struct {
	name      string
	threshold float64
	haar      bool
}

func (p *wavePolicy) Name() string { return p.name }

func (p *wavePolicy) Prepare(seg *segment.Segment) RepState {
	// The stamp vector is a rotation of the cached measurement vector —
	// [0, enters/exits..., end] vs [end, enters/exits...] — so build the
	// zero-padded transform input straight from Meas without a
	// StampVector allocation. The padded length depends only on the
	// segment's own event count, and Comparable segments have equal
	// event counts, so every in-class comparison sees equal-length
	// transforms — the same lengths the pre-matcher engine used.
	meas := seg.Meas()
	tr := padStamps(meas, wavelet.NextPow2(len(meas)+1))
	if p.haar {
		wavelet.HaarInPlace(tr)
	} else {
		wavelet.AverageInPlace(tr)
	}
	var sum float64
	for _, x := range tr {
		sum += x * x
	}
	return &waveState{tr: tr, norm: math.Sqrt(sum), maxAbs: maxAbsOf(tr)}
}

func (p *wavePolicy) Match(cls *Class, cand *segment.Segment, cs RepState) int {
	c := cs.(*waveState)
	for i, n := 0, cls.Len(); i < n; i++ {
		r := cls.State(i).(*waveState)
		maxVal := c.maxAbs
		if r.maxAbs > maxVal {
			maxVal = r.maxAbs
		}
		bound := p.threshold * maxVal
		// Prune: Euclidean distance between the transforms is bounded
		// below by the gap between their norms.
		if lb := math.Abs(r.norm - c.norm); pruned(lb, bound) {
			continue
		}
		if wavelet.Euclidean(r.tr, c.tr) <= bound {
			return i
		}
	}
	return -1
}

func (p *wavePolicy) Absorb(*segment.Segment, *segment.Segment) bool { return false }

// NewClassIndex builds the wavelet policies' index: random-hyperplane
// LSH buckets over the prepared transform vectors under MatchModeLSH
// (and auto, where hashing beats tree descent because a scan then costs
// no distance computations at all on clean misses), or a VP-tree under
// MatchModeVPTree — Euclidean distance between transforms is a metric,
// so the tree search loses no matches.
func (p *wavePolicy) NewClassIndex(mode MatchMode, cls *Class) IndexedClass {
	bound := pairMaxBound(p.threshold)
	switch mode {
	case MatchModeVPTree:
		return &vpIndex{
			cls:     cls,
			tree:    newVPTree(wavelet.Euclidean, bound),
			repVec:  waveRepVec,
			candVec: waveCandVec,
		}
	case MatchModeLSH, MatchModeAuto:
		return &lshIndex{
			cls:     cls,
			dist:    wavelet.Euclidean,
			bound:   bound,
			repVec:  waveRepVec,
			candVec: waveCandVec,
		}
	}
	return nil
}

// padStamps lays a measurement vector [end, stamps...] out as the
// zero-padded stamp vector [0, stamps..., end, 0...] of length n.
func padStamps(meas []float64, n int) []float64 {
	p := make([]float64, n)
	copy(p[1:], meas[1:])
	p[len(meas)] = meas[0]
	return p
}

// NewRelDiff returns the relative-difference policy with the given
// per-measurement threshold.
func NewRelDiff(threshold float64) Policy {
	return &relDiffPolicy{threshold: threshold}
}

// NewAbsDiff returns the absolute-difference policy; threshold is in time
// units (microseconds).
func NewAbsDiff(threshold float64) Policy {
	return &absDiffPolicy{threshold: threshold}
}

// NewManhattan returns the Minkowski m=1 policy.
func NewManhattan(threshold float64) Policy {
	return &minkowskiPolicy{name: "manhattan", threshold: threshold, m: 1}
}

// NewEuclidean returns the Minkowski m=2 policy.
func NewEuclidean(threshold float64) Policy {
	return &minkowskiPolicy{name: "euclidean", threshold: threshold, m: 2}
}

// NewChebyshev returns the Minkowski m→∞ policy (largest single
// measurement difference).
func NewChebyshev(threshold float64) Policy {
	return &minkowskiPolicy{name: "chebyshev", threshold: threshold, m: 0}
}

// NewMinkowski returns a Minkowski policy of arbitrary order m >= 1; the
// paper evaluates m = 1, 2 and the Chebyshev limit, but other orders are
// useful for ablation.
func NewMinkowski(m int, threshold float64) (Policy, error) {
	if m < 1 {
		return nil, fmt.Errorf("core: Minkowski order must be >= 1, got %d", m)
	}
	return &minkowskiPolicy{name: fmt.Sprintf("minkowski%d", m), threshold: threshold, m: m}, nil
}

// NewAvgWave returns the average-wavelet-transform policy.
func NewAvgWave(threshold float64) Policy {
	return &wavePolicy{name: "avgWave", threshold: threshold, haar: false}
}

// NewHaarWave returns the Haar-wavelet-transform policy.
func NewHaarWave(threshold float64) Policy {
	return &wavePolicy{name: "haarWave", threshold: threshold, haar: true}
}
