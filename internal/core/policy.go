// Package core implements the paper's primary contribution: segment-
// similarity policies (relDiff, absDiff, the Minkowski family, the two
// wavelet transforms, iter_k and iter_avg), the trace-reduction engine
// that keeps one representative per repeating pattern, reconstruction of
// approximate full traces, the reduced-trace file format, and the
// evaluation metrics built on them (file-size percentage, degree of
// matching, approximation distance).
package core

import (
	"fmt"
	"math"

	"repro/internal/segment"
	"repro/internal/wavelet"
)

// Policy decides whether a new segment matches one of the stored
// representatives of its pattern class. The reduction engine guarantees
// that every candidate passed to Match is Comparable with cand (same
// context, same events, same message parameters), so policies only judge
// the timing measurements.
type Policy interface {
	// Name returns the method's canonical name (e.g. "relDiff").
	Name() string
	// Match returns the index within stored of the representative cand
	// matches, or -1 for no match. stored holds, in collection order, the
	// representatives already kept for cand's pattern class.
	Match(stored []*segment.Segment, cand *segment.Segment) int
	// Absorb folds cand into the matched representative. Only iter_avg
	// mutates the representative; every other policy is a no-op.
	Absorb(matched *segment.Segment, cand *segment.Segment)
}

// distancePolicy adapts a pairwise segment predicate to the Policy
// interface: a candidate matches the first stored representative the
// predicate accepts.
type distancePolicy struct {
	name      string
	threshold float64
	match     func(threshold float64, a, b *segment.Segment) bool
}

func (p *distancePolicy) Name() string { return p.name }

func (p *distancePolicy) Match(stored []*segment.Segment, cand *segment.Segment) int {
	for i, s := range stored {
		if p.match(p.threshold, s, cand) {
			return i
		}
	}
	return -1
}

func (p *distancePolicy) Absorb(*segment.Segment, *segment.Segment) {}

// relDiff compares each paired measurement in isolation:
// |a−b| / max(a, b) must not exceed the threshold (paper §3.2.1; the
// worked example gives |17−40|/40 = 0.58). Two zero measurements are
// equal by definition.
func relDiffMatch(t float64, a, b *segment.Segment) bool {
	va := a.Meas()
	vb := b.Meas()
	for i := range va {
		x, y := va[i], vb[i]
		d := math.Abs(x - y)
		if d == 0 {
			continue
		}
		m := math.Max(math.Abs(x), math.Abs(y))
		if d/m > t {
			return false
		}
	}
	return true
}

// absDiff allows a fixed absolute difference per paired measurement.
func absDiffMatch(t float64, a, b *segment.Segment) bool {
	va := a.Meas()
	vb := b.Meas()
	for i := range va {
		if math.Abs(va[i]-vb[i]) > t {
			return false
		}
	}
	return true
}

// minkowskiMatch computes the order-m Minkowski distance between the
// measurement vectors and accepts when it is at most threshold × the
// largest measurement in the pair of vectors (paper Eq. 1 and the worked
// example: max(51) × 0.2 = 10.2). m = 0 selects Chebyshev (m → ∞).
func minkowskiMatch(t float64, m int, a, b *segment.Segment) bool {
	va := a.Meas()
	vb := b.Meas()
	var dist float64
	var maxVal float64
	for i := range va {
		if av := math.Abs(va[i]); av > maxVal {
			maxVal = av
		}
		if bv := math.Abs(vb[i]); bv > maxVal {
			maxVal = bv
		}
		d := math.Abs(va[i] - vb[i])
		switch m {
		case 0: // Chebyshev
			if d > dist {
				dist = d
			}
		case 1:
			dist += d
		case 2:
			dist += d * d
		default:
			dist += math.Pow(d, float64(m))
		}
	}
	switch m {
	case 0, 1:
		// done
	case 2:
		dist = math.Sqrt(dist)
	default:
		dist = math.Pow(dist, 1/float64(m))
	}
	return dist <= t*maxVal
}

// waveMatch transforms both stamp vectors (zero-padded to a power of two)
// and accepts when the Euclidean distance between the transforms is at
// most threshold × the largest value in the pair of transformed vectors
// (paper Figure 3: 1.9 ≤ 0.2 × 17.625).
func waveMatch(t float64, haar bool, a, b *segment.Segment) bool {
	// The stamp vector is a rotation of the cached measurement vector —
	// [0, enters/exits..., end] vs [end, enters/exits...] — so build the
	// zero-padded transform input straight from Meas without a StampVector
	// allocation. Segments passed here always have equal event counts, so
	// the padding is symmetric.
	ma := a.Meas()
	mb := b.Meas()
	n := wavelet.NextPow2(len(ma) + 1)
	if m := wavelet.NextPow2(len(mb) + 1); m > n {
		n = m
	}
	pa := padStamps(ma, n)
	pb := padStamps(mb, n)
	var ta, tb []float64
	if haar {
		ta, tb = wavelet.Haar(pa), wavelet.Haar(pb)
	} else {
		ta, tb = wavelet.Average(pa), wavelet.Average(pb)
	}
	d := wavelet.Euclidean(ta, tb)
	return d <= t*wavelet.MaxAbs(ta, tb)
}

// padStamps lays a measurement vector [end, stamps...] out as the
// zero-padded stamp vector [0, stamps..., end, 0...] of length n.
func padStamps(meas []float64, n int) []float64 {
	p := make([]float64, n)
	copy(p[1:], meas[1:])
	p[len(meas)] = meas[0]
	return p
}

// NewRelDiff returns the relative-difference policy with the given
// per-measurement threshold.
func NewRelDiff(threshold float64) Policy {
	return &distancePolicy{name: "relDiff", threshold: threshold, match: relDiffMatch}
}

// NewAbsDiff returns the absolute-difference policy; threshold is in time
// units (microseconds).
func NewAbsDiff(threshold float64) Policy {
	return &distancePolicy{name: "absDiff", threshold: threshold, match: absDiffMatch}
}

// NewManhattan returns the Minkowski m=1 policy.
func NewManhattan(threshold float64) Policy {
	return &distancePolicy{name: "manhattan", threshold: threshold,
		match: func(t float64, a, b *segment.Segment) bool { return minkowskiMatch(t, 1, a, b) }}
}

// NewEuclidean returns the Minkowski m=2 policy.
func NewEuclidean(threshold float64) Policy {
	return &distancePolicy{name: "euclidean", threshold: threshold,
		match: func(t float64, a, b *segment.Segment) bool { return minkowskiMatch(t, 2, a, b) }}
}

// NewChebyshev returns the Minkowski m→∞ policy (largest single
// measurement difference).
func NewChebyshev(threshold float64) Policy {
	return &distancePolicy{name: "chebyshev", threshold: threshold,
		match: func(t float64, a, b *segment.Segment) bool { return minkowskiMatch(t, 0, a, b) }}
}

// NewMinkowski returns a Minkowski policy of arbitrary order m >= 1; the
// paper evaluates m = 1, 2 and the Chebyshev limit, but other orders are
// useful for ablation.
func NewMinkowski(m int, threshold float64) (Policy, error) {
	if m < 1 {
		return nil, fmt.Errorf("core: Minkowski order must be >= 1, got %d", m)
	}
	return &distancePolicy{name: fmt.Sprintf("minkowski%d", m), threshold: threshold,
		match: func(t float64, a, b *segment.Segment) bool { return minkowskiMatch(t, m, a, b) }}, nil
}

// NewAvgWave returns the average-wavelet-transform policy.
func NewAvgWave(threshold float64) Policy {
	return &distancePolicy{name: "avgWave", threshold: threshold,
		match: func(t float64, a, b *segment.Segment) bool { return waveMatch(t, false, a, b) }}
}

// NewHaarWave returns the Haar-wavelet-transform policy.
func NewHaarWave(threshold float64) Policy {
	return &distancePolicy{name: "haarWave", threshold: threshold,
		match: func(t float64, a, b *segment.Segment) bool { return waveMatch(t, true, a, b) }}
}
