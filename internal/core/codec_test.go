package core

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"repro/internal/trace"
)

func TestReducedCodecRoundtrip(t *testing.T) {
	tr := buildLoopTrace("loop", []trace.Time{10, 12, 9, 14})
	red, err := Reduce(tr, NewAbsDiff(3))
	if err != nil {
		t.Fatalf("Reduce: %v", err)
	}
	var buf bytes.Buffer
	if err := EncodeReduced(&buf, red); err != nil {
		t.Fatalf("EncodeReduced: %v", err)
	}
	got, err := DecodeReduced(&buf)
	if err != nil {
		t.Fatalf("DecodeReduced: %v", err)
	}
	if got.Name != red.Name || got.Method != red.Method {
		t.Errorf("metadata lost: %q/%q vs %q/%q", got.Name, got.Method, red.Name, red.Method)
	}
	if len(got.Ranks) != len(red.Ranks) {
		t.Fatalf("rank count %d, want %d", len(got.Ranks), len(red.Ranks))
	}
	if !reflect.DeepEqual(got.Ranks[0].Execs, red.Ranks[0].Execs) {
		t.Errorf("execs mismatch: %v vs %v", got.Ranks[0].Execs, red.Ranks[0].Execs)
	}
	for i, s := range red.Ranks[0].Stored {
		g := got.Ranks[0].Stored[i]
		if g.Context != s.Context || g.End != s.End || g.Weight != s.Weight {
			t.Errorf("stored %d header mismatch: %+v vs %+v", i, g, s)
		}
		if !reflect.DeepEqual(g.Events, s.Events) {
			t.Errorf("stored %d events mismatch", i)
		}
	}
	// The decoded reduction must reconstruct identically.
	a, err := red.Reconstruct()
	if err != nil {
		t.Fatal(err)
	}
	b, err := got.Reconstruct()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Error("reconstruction differs after codec roundtrip")
	}
}

func TestEncodedReducedSizeMatches(t *testing.T) {
	tr := buildLoopTrace("loop", []trace.Time{10, 11, 12, 13})
	red, err := Reduce(tr, NewAbsDiff(100))
	if err != nil {
		t.Fatalf("Reduce: %v", err)
	}
	var buf bytes.Buffer
	if err := EncodeReduced(&buf, red); err != nil {
		t.Fatalf("EncodeReduced: %v", err)
	}
	if got := EncodedReducedSize(red); got != int64(buf.Len()) {
		t.Errorf("EncodedReducedSize = %d, wrote %d", got, buf.Len())
	}
}

// TestReductionActuallyShrinks: a highly repetitive trace must encode
// much smaller reduced than full — the paper's entire premise.
func TestReductionActuallyShrinks(t *testing.T) {
	durs := make([]trace.Time, 200)
	for i := range durs {
		durs[i] = 10
	}
	tr := buildLoopTrace("loop", durs)
	red, err := Reduce(tr, NewAbsDiff(1))
	if err != nil {
		t.Fatalf("Reduce: %v", err)
	}
	s := Sizes(tr, red)
	if s.Percent() > 15 {
		t.Errorf("repetitive trace reduced to %.1f%%, expected <15%%", s.Percent())
	}
	if s.FullBytes <= s.ReducedBytes {
		t.Errorf("reduced (%d) not smaller than full (%d)", s.ReducedBytes, s.FullBytes)
	}
}

// TestNoMatchOverheadBounded: with nothing matching, the reduced form is
// at most moderately larger than the full trace (representatives plus
// exec records plus headers).
func TestNoMatchOverheadBounded(t *testing.T) {
	tr := buildLoopTrace("loop", []trace.Time{1, 10, 100, 1000, 10000})
	red, err := Reduce(tr, NewAbsDiff(0))
	if err != nil {
		t.Fatalf("Reduce: %v", err)
	}
	s := Sizes(tr, red)
	if s.ReducedBytes > s.FullBytes+int64(len(red.Ranks[0].Execs)*ExecRecordSize)+64 {
		t.Errorf("no-match overhead too large: %d vs %d", s.ReducedBytes, s.FullBytes)
	}
}

func TestDecodeReducedErrors(t *testing.T) {
	tr := buildLoopTrace("loop", []trace.Time{10, 12})
	red, _ := Reduce(tr, NewAbsDiff(100))
	var buf bytes.Buffer
	if err := EncodeReduced(&buf, red); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()

	bad := append([]byte("YYYY"), raw[4:]...)
	if _, err := DecodeReduced(bytes.NewReader(bad)); err == nil || !strings.Contains(err.Error(), "magic") {
		t.Errorf("want magic error, got %v", err)
	}
	for _, cut := range []int{3, 9, len(raw) / 2, len(raw) - 2} {
		if _, err := DecodeReduced(bytes.NewReader(raw[:cut])); err == nil {
			t.Errorf("truncation at %d not detected", cut)
		}
	}
}
