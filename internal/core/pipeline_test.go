package core

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"runtime"
	"testing"
	"time"

	"repro/internal/trace"
)

// rankSource returns a ReduceStream-style next function over tr's ranks.
func rankSource(tr *trace.Trace) func() (*trace.RankTrace, error) {
	i := 0
	return func() (*trace.RankTrace, error) {
		if i >= len(tr.Ranks) {
			return nil, io.EOF
		}
		rt := &tr.Ranks[i]
		i++
		return rt, nil
	}
}

// forceWorkers raises GOMAXPROCS for the test so the pipeline actually
// runs multiple workers (and the registration turnstile is exercised)
// even on a single-CPU machine.
func forceWorkers(t *testing.T, n int) {
	t.Helper()
	prev := runtime.GOMAXPROCS(n)
	t.Cleanup(func() { runtime.GOMAXPROCS(prev) })
}

// TestReduceStreamToWriterParity pins the tentpole guarantee end to end:
// the pipelined reduce-to-writer bytes are identical to encoding the
// batch ReduceStream result, for both container versions, and the
// returned stats match the batch reduction's counters.
func TestReduceStreamToWriterParity(t *testing.T) {
	forceWorkers(t, 4)
	rng := rand.New(rand.NewSource(99))
	tr := buildMultiRankTrace("pipelined", 16, 15, rng)
	for _, name := range []string{"avgWave", "iter_avg", "euclidean"} {
		p1, _ := DefaultMethod(name)
		batch, err := ReduceStream(tr.Name, p1, rankSource(tr))
		if err != nil {
			t.Fatalf("%s: ReduceStream: %v", name, err)
		}
		for _, version := range []int{1, 2} {
			var want bytes.Buffer
			var encErr error
			if version == 2 {
				encErr = EncodeReducedV2(&want, batch)
			} else {
				encErr = EncodeReduced(&want, batch)
			}
			if encErr != nil {
				t.Fatalf("%s v%d: batch encode: %v", name, version, encErr)
			}
			p2, _ := DefaultMethod(name)
			var got bytes.Buffer
			stats, err := ReduceStreamToWriter(tr.Name, p2, rankSource(tr), &got, version)
			if err != nil {
				t.Fatalf("%s v%d: ReduceStreamToWriter: %v", name, version, err)
			}
			if !bytes.Equal(want.Bytes(), got.Bytes()) {
				t.Errorf("%s v%d: pipelined container differs from batch (%d vs %d bytes)",
					name, version, got.Len(), want.Len())
			}
			if stats.BytesWritten != int64(got.Len()) {
				t.Errorf("%s v%d: BytesWritten = %d, wrote %d", name, version, stats.BytesWritten, got.Len())
			}
			if stats.Ranks != len(batch.Ranks) ||
				stats.TotalSegments != batch.TotalSegments ||
				stats.Matches != batch.Matches ||
				stats.PossibleMatches != batch.PossibleMatches ||
				stats.StoredSegments != batch.StoredSegments() {
				t.Errorf("%s v%d: stats %+v disagree with batch counters (%d ranks, %d/%d/%d, %d stored)",
					name, version, stats, len(batch.Ranks),
					batch.TotalSegments, batch.Matches, batch.PossibleMatches, batch.StoredSegments())
			}
			if stats.DegreeOfMatching() != batch.DegreeOfMatching() {
				t.Errorf("%s v%d: DegreeOfMatching %v != batch %v",
					name, version, stats.DegreeOfMatching(), batch.DegreeOfMatching())
			}
			if stats.Name != tr.Name || stats.Method != name {
				t.Errorf("%s v%d: stats identity = %q/%q", name, version, stats.Name, stats.Method)
			}
		}
	}
}

// TestReduceStreamToWriterEmpty: an immediately-EOF source must still
// produce a valid empty container, byte-identical to the batch path.
func TestReduceStreamToWriterEmpty(t *testing.T) {
	empty := &Reduced{Name: "empty", Method: "avgWave"}
	for _, version := range []int{1, 2} {
		var want bytes.Buffer
		if version == 2 {
			if err := EncodeReducedV2(&want, empty); err != nil {
				t.Fatal(err)
			}
		} else {
			if err := EncodeReduced(&want, empty); err != nil {
				t.Fatal(err)
			}
		}
		p, _ := DefaultMethod("avgWave")
		var got bytes.Buffer
		stats, err := ReduceStreamToWriter("empty", p, rankSource(trace.New("empty", 0)), &got, version)
		if err != nil {
			t.Fatalf("v%d: %v", version, err)
		}
		if !bytes.Equal(want.Bytes(), got.Bytes()) {
			t.Errorf("v%d: empty pipelined container differs from batch", version)
		}
		if stats.Ranks != 0 || stats.DegreeOfMatching() != 1 {
			t.Errorf("v%d: empty stats %+v", version, stats)
		}
	}
}

var errPipeInjected = errors.New("injected pipeline write failure")

// pipeFailWriter accepts limit bytes, then fails every Write.
type pipeFailWriter struct {
	limit int
	n     int
}

func (w *pipeFailWriter) Write(p []byte) (int, error) {
	if w.n+len(p) > w.limit {
		k := max(w.limit-w.n, 0)
		w.n += k
		return k, errPipeInjected
	}
	w.n += len(p)
	return len(p), nil
}

// pipeShortWriter accepts limit bytes, then accepts nothing without
// erroring; the buffered writer must turn that into io.ErrShortWrite.
type pipeShortWriter struct {
	limit int
	n     int
}

func (w *pipeShortWriter) Write(p []byte) (int, error) {
	k := min(len(p), max(w.limit-w.n, 0))
	w.n += k
	return k, nil
}

// pipelineTimeout runs fn with a watchdog so a wedged pipeline fails
// the test instead of hanging it.
func pipelineTimeout(t *testing.T, what string, fn func() error) error {
	t.Helper()
	ch := make(chan error, 1)
	go func() { ch <- fn() }()
	select {
	case err := <-ch:
		return err
	case <-time.After(30 * time.Second):
		t.Fatalf("%s blocked: reduce-to-writer pipeline wedged", what)
		return nil
	}
}

// waitPipelineGoroutines fails if goroutines leak past the pre-test
// level after the error paths.
func waitPipelineGoroutines(t *testing.T, before int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for runtime.NumGoroutine() > before {
		if time.Now().After(deadline) {
			t.Fatalf("goroutine leak: %d goroutines before, %d after pipeline failure",
				before, runtime.NumGoroutine())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestReduceStreamToWriterFailingWriter sweeps an injected write
// failure across both container versions: every fault point must yield
// a clean latched error, promptly, with all workers stopped.
func TestReduceStreamToWriterFailingWriter(t *testing.T) {
	forceWorkers(t, 4)
	rng := rand.New(rand.NewSource(3))
	tr := buildMultiRankTrace("failing", 8, 10, rng)
	before := runtime.NumGoroutine()
	for _, version := range []int{1, 2} {
		p, _ := DefaultMethod("avgWave")
		var full bytes.Buffer
		if _, err := ReduceStreamToWriter(tr.Name, p, rankSource(tr), &full, version); err != nil {
			t.Fatalf("v%d: clean run: %v", version, err)
		}
		size := full.Len()
		limits := []int{0, 1, 3, size / 3, size / 2, size - 1}
		for _, limit := range limits {
			label := fmt.Sprintf("v%d limit=%d", version, limit)
			p, _ := DefaultMethod("avgWave")
			err := pipelineTimeout(t, label, func() error {
				_, err := ReduceStreamToWriter(tr.Name, p, rankSource(tr), &pipeFailWriter{limit: limit}, version)
				return err
			})
			if !errors.Is(err, errPipeInjected) {
				t.Fatalf("%s: error = %v, want injected write failure", label, err)
			}
			label = fmt.Sprintf("v%d short=%d", version, limit)
			p, _ = DefaultMethod("avgWave")
			err = pipelineTimeout(t, label, func() error {
				_, err := ReduceStreamToWriter(tr.Name, p, rankSource(tr), &pipeShortWriter{limit: limit}, version)
				return err
			})
			if !errors.Is(err, io.ErrShortWrite) {
				t.Fatalf("%s: error = %v, want io.ErrShortWrite", label, err)
			}
		}
	}
	waitPipelineGoroutines(t, before)
}

// TestReduceStreamToWriterSourceError: decoder and reducer failures must
// propagate out of the pipeline without wedging the turnstile.
func TestReduceStreamToWriterSourceError(t *testing.T) {
	forceWorkers(t, 4)
	before := runtime.NumGoroutine()
	errSource := errors.New("injected source failure")
	t.Run("decode-error", func(t *testing.T) {
		rng := rand.New(rand.NewSource(5))
		tr := buildMultiRankTrace("src", 6, 8, rng)
		i := 0
		next := func() (*trace.RankTrace, error) {
			if i >= 3 {
				return nil, errSource
			}
			rt := &tr.Ranks[i]
			i++
			return rt, nil
		}
		p, _ := DefaultMethod("avgWave")
		err := pipelineTimeout(t, "decode-error", func() error {
			_, err := ReduceStreamToWriter(tr.Name, p, next, io.Discard, 2)
			return err
		})
		if !errors.Is(err, errSource) {
			t.Fatalf("error = %v, want injected source failure", err)
		}
	})
	t.Run("reduce-error", func(t *testing.T) {
		// An unclosed segment in a middle rank must fail the stream.
		tr := trace.New("bad", 3)
		for r := 0; r < 3; r++ {
			tr.Ranks[r].Events = []trace.Event{
				{Name: "main.1", Kind: trace.KindMarkBegin, Peer: trace.NoPeer, Root: trace.NoPeer},
				{Name: "w", Kind: trace.KindCompute, Exit: 5, Peer: trace.NoPeer, Root: trace.NoPeer},
				{Name: "main.1", Kind: trace.KindMarkEnd, Enter: 6, Exit: 6, Peer: trace.NoPeer, Root: trace.NoPeer},
			}
		}
		tr.Ranks[1].Events = tr.Ranks[1].Events[:1] // unclosed segment
		err := pipelineTimeout(t, "reduce-error", func() error {
			_, err := ReduceStreamToWriter("bad", NewIterAvg(), rankSource(tr), io.Discard, 1)
			return err
		})
		if err == nil {
			t.Fatal("pipeline accepted an unclosed segment")
		}
	})
	waitPipelineGoroutines(t, before)
}

// TestReduceStreamToWriterBadVersion: unknown container versions are
// rejected before any work happens.
func TestReduceStreamToWriterBadVersion(t *testing.T) {
	p, _ := DefaultMethod("avgWave")
	for _, v := range []int{0, 3, -1} {
		if _, err := ReduceStreamToWriter("x", p, rankSource(trace.New("x", 0)), io.Discard, v); err == nil {
			t.Errorf("version %d accepted", v)
		}
	}
}

// TestEncodeReducedV2ParallelParity pins byte identity of the parallel
// TRR2 encoder against the sequential reference at every worker count.
func TestEncodeReducedV2ParallelParity(t *testing.T) {
	red := v2TestReduced()
	want := encodeReducedV2Bytes(t, red)
	for _, workers := range []int{0, 1, 2, 3, 8, 64} {
		var buf bytes.Buffer
		if err := EncodeReducedV2With(&buf, red, trace.EncoderOptions{Workers: workers}); err != nil {
			t.Fatalf("workers=%d: EncodeReducedV2With: %v", workers, err)
		}
		if !bytes.Equal(want, buf.Bytes()) {
			t.Errorf("workers=%d: parallel reduced encode differs from sequential (%d vs %d bytes)",
				workers, buf.Len(), len(want))
		}
	}
}

// TestEncodedReducedSizeV2SinglePass: the size walk must agree exactly
// with the encoder's output.
func TestEncodedReducedSizeV2SinglePass(t *testing.T) {
	for name, red := range map[string]*Reduced{
		"edge-shapes": v2TestReduced(),
		"empty":       {Name: "empty", Method: "avgWave"},
	} {
		data := encodeReducedV2Bytes(t, red)
		if got := EncodedReducedSizeV2(red); got != int64(len(data)) {
			t.Errorf("%s: EncodedReducedSizeV2 = %d, encoded %d bytes", name, got, len(data))
		}
	}
}
