package core

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/segment"
	"repro/internal/trace"
)

// The reduced-container golden fixtures live next to the trace ones
// under internal/trace/testdata/ so all four container versions are
// pinned in one place. See internal/trace/golden_test.go for the
// regeneration policy; the short version is: released formats never
// change, new layouts get a new magic.
var updateGolden = flag.Bool("update", false, "rewrite golden fixture files")

// goldenReduced returns the canonical fixture reduction. It must never
// change: the committed .trr1/.trr2 fixtures encode exactly this
// structure. Slice shapes mirror the decoders' (always-allocated) so
// decode results compare with reflect.DeepEqual.
func goldenReduced() *Reduced {
	return &Reduced{
		Name:   "golden",
		Method: "avgWave",
		Ranks: []RankReduced{
			{
				Rank: 0,
				Stored: []*segment.Segment{
					{
						Context: "main.1", Rank: 0, End: 80, Weight: 2,
						Events: []trace.Event{
							{Name: "do_work", Kind: trace.KindCompute, Enter: 1, Exit: 40, Peer: trace.NoPeer, Root: trace.NoPeer},
							{Name: "MPI_Send", Kind: trace.KindSend, Enter: 41, Exit: 45, Peer: 1, Tag: 9, Bytes: 1024, Root: trace.NoPeer},
							{Name: "MPI_Recv", Kind: trace.KindRecv, Enter: 46, Exit: 60, Peer: 1, Tag: 9, Bytes: 1024, Root: trace.NoPeer},
						},
					},
					{
						Context: "main.2", Rank: 0, End: 10, Weight: 1,
						Events: []trace.Event{
							{Name: "MPI_Barrier", Kind: trace.KindBarrier, Enter: 1, Exit: 9, Peer: trace.NoPeer, Root: trace.NoPeer},
						},
					},
				},
				Execs: []Exec{{ID: 0, Start: 100}, {ID: 0, Start: 200}, {ID: 1, Start: 290}},
			},
			{
				Rank: 1,
				Stored: []*segment.Segment{
					{
						Context: "main.1", Rank: 1, End: 80, Weight: 3,
						Events: []trace.Event{
							{Name: "do_work", Kind: trace.KindCompute, Enter: 1, Exit: 38, Peer: trace.NoPeer, Root: trace.NoPeer},
							{Name: "MPI_Bcast", Kind: trace.KindBcast, Enter: 39, Exit: 70, Peer: trace.NoPeer, Bytes: 64, Root: 0},
						},
					},
				},
				Execs: []Exec{{ID: 0, Start: 110}, {ID: 0, Start: 210}, {ID: 0, Start: 310}},
			},
			// Rank 2 stays empty: both codecs must preserve record-free ranks.
			{Rank: 2, Stored: []*segment.Segment{}, Execs: []Exec{}},
		},
	}
}

func checkGolden(t *testing.T, path string, encoded []byte, update bool) []byte {
	t.Helper()
	if update {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, encoded, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes)", path, len(encoded))
		return encoded
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading golden fixture (run with -update to create): %v", err)
	}
	if !bytes.Equal(want, encoded) {
		t.Errorf("%s: encoder output no longer matches the committed fixture (%d vs %d bytes); "+
			"old files written by released versions would now differ — if the format change is intended, "+
			"it needs a new magic, not an edit to this fixture", path, len(encoded), len(want))
	}
	return want
}

func goldenPath(name string) string {
	return filepath.Join("..", "trace", "testdata", name)
}

func TestGoldenTRR1(t *testing.T) {
	var enc bytes.Buffer
	if err := EncodeReduced(&enc, goldenReduced()); err != nil {
		t.Fatal(err)
	}
	data := checkGolden(t, goldenPath("golden.trr1"), enc.Bytes(), *updateGolden)
	got, err := DecodeReduced(bytes.NewReader(data))
	if err != nil {
		t.Fatalf("decoding golden.trr1: %v", err)
	}
	if !reflect.DeepEqual(goldenReduced(), got) {
		t.Error("golden.trr1 no longer decodes to the canonical reduction")
	}
}

func TestGoldenTRR2(t *testing.T) {
	var enc bytes.Buffer
	if err := EncodeReducedV2(&enc, goldenReduced()); err != nil {
		t.Fatal(err)
	}
	data := checkGolden(t, goldenPath("golden.trr2"), enc.Bytes(), *updateGolden)
	for name, dec := range map[string]func() (*Reduced, error){
		"parallel":   func() (*Reduced, error) { return DecodeReduced(bytes.NewReader(data)) },
		"sequential": func() (*Reduced, error) { return DecodeReduced(streamOnly{bytes.NewReader(data)}) },
	} {
		got, err := dec()
		if err != nil {
			t.Fatalf("%s decode of golden.trr2: %v", name, err)
		}
		if !reflect.DeepEqual(goldenReduced(), got) {
			t.Errorf("golden.trr2 no longer decodes to the canonical reduction (%s path)", name)
		}
	}
}
