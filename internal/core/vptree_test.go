package core

import (
	"math"
	"testing"
)

// vpTestVectors builds n deterministic vectors of dimension dim in k
// loose clusters, with max-abs spreads so the pairwise acceptance radius
// varies across items — the shape that stresses both the subtree-maximum
// radius and the triangle-inequality pruning.
func vpTestVectors(n, dim, k int, spread float64) [][]float64 {
	rng := &xorshift{s: 0xabcdef1234567891}
	centers := make([][]float64, k)
	for c := range centers {
		v := make([]float64, dim)
		for d := range v {
			v[d] = float64(rng.next()%1000) + 10
		}
		centers[c] = v
	}
	out := make([][]float64, n)
	for i := range out {
		c := centers[rng.next()%uint64(k)]
		v := make([]float64, dim)
		for d := range v {
			jitter := (float64(rng.next()%2000)/1000 - 1) * spread
			v[d] = c[d] + jitter
		}
		out[i] = v
	}
	return out
}

func euclid(a, b []float64) float64 { return minkowskiDist(2, a, b) }

// vpTestTree builds an empty slab-backed Class and a vpTree over it.
func vpTestTree(dist func(a, b []float64) float64, bound func(candMaxAbs, repMaxAbs float64) float64) (*Class, *vpTree) {
	cls := &Class{}
	return cls, newVPTree(cls, dist, bound)
}

// vpAdd appends vec as the class's next slab row and indexes it.
func vpAdd(cls *Class, tr *vpTree, vec []float64) {
	cls.add(nil, cls.Len(), &RepState{Vec: vec, MaxAbs: maxAbsOf(vec)})
	tr.add(cls.Len() - 1)
}

// checkVPSubtree recursively verifies the structural invariants of a
// subtree and returns (itemCount, subtreeMaxAbs, items seen).
func checkVPSubtree(t *testing.T, tr *vpTree, ni int32, seen map[int32]bool) float64 {
	t.Helper()
	n := &tr.nodes[ni]
	if seen[n.item] {
		t.Fatalf("item %d indexed twice", n.item)
	}
	seen[n.item] = true
	maxAbs := tr.itemMaxAbs(n.item)
	check := func(child int32, inner bool) {
		if child < 0 {
			return
		}
		m := checkVPSubtree(t, tr, child, seen)
		if m > maxAbs {
			maxAbs = m
		}
		// Every item of the child subtree must respect the split radius.
		var walk func(int32)
		walk = func(ci int32) {
			if ci < 0 {
				return
			}
			c := &tr.nodes[ci]
			d := tr.dist(tr.row(n.item), tr.row(c.item))
			if inner && d > n.mu {
				t.Fatalf("inner item %d at distance %g > mu %g from vp %d", c.item, d, n.mu, n.item)
			}
			if !inner && d <= n.mu {
				t.Fatalf("outer item %d at distance %g <= mu %g from vp %d", c.item, d, n.mu, n.item)
			}
			walk(c.inner)
			walk(c.outer)
		}
		walk(child)
	}
	check(n.inner, true)
	check(n.outer, false)
	if n.subMaxAbs != maxAbs {
		t.Fatalf("node for item %d: subMaxAbs %g, want %g", n.item, n.subMaxAbs, maxAbs)
	}
	return maxAbs
}

// TestVPTreeInvariants builds a tree incrementally and verifies, after
// every insertion, that tree plus pending list partition the items and
// that every node satisfies the VP-tree invariants: inner items within
// mu of the vantage point, outer items beyond it, subtree max-abs exact.
func TestVPTreeInvariants(t *testing.T) {
	vecs := vpTestVectors(300, 6, 7, 40)
	cls, tr := vpTestTree(euclid, pairMaxBound(0.2))
	for i, v := range vecs {
		vpAdd(cls, tr, v)
		if tr.size() != i+1 {
			t.Fatalf("size %d after %d adds", tr.size(), i+1)
		}
	}
	seen := map[int32]bool{}
	if tr.root >= 0 {
		checkVPSubtree(t, tr, tr.root, seen)
	}
	for _, it := range tr.pending {
		if seen[it] {
			t.Fatalf("item %d both in tree and pending", it)
		}
		seen[it] = true
	}
	if len(seen) != len(vecs) {
		t.Fatalf("indexed %d of %d items", len(seen), len(vecs))
	}
	if 4*len(tr.pending) >= tr.size()+4 {
		t.Fatalf("pending list too large: %d of %d", len(tr.pending), tr.size())
	}
}

// TestVPTreeSearchParity holds the tree's triangle-inequality pruning to
// the linear scan's decisions: over clustered vectors whose distances
// straddle the acceptance bounds, a search must find a match exactly
// when brute force finds one, and any returned item must itself pass the
// acceptance test. Run at several thresholds so the ball radius crosses
// the cluster spread from both sides.
func TestVPTreeSearchParity(t *testing.T) {
	vecs := vpTestVectors(400, 5, 11, 60)
	queries := vpTestVectors(300, 5, 11, 90)
	hits, misses := 0, 0
	for _, threshold := range []float64{0.01, 0.05, 0.2, 0.8} {
		bound := pairMaxBound(threshold)
		cls, tr := vpTestTree(euclid, bound)
		for _, v := range vecs {
			vpAdd(cls, tr, v)
		}
		for _, q := range queries {
			qmax := maxAbsOf(q)
			brute := -1
			for i, v := range vecs {
				if euclid(q, v) <= bound(qmax, maxAbsOf(v)) {
					brute = i
					break
				}
			}
			got := tr.search(q, qmax)
			if (got < 0) != (brute < 0) {
				t.Fatalf("t=%g: search %d, brute force %d", threshold, got, brute)
			}
			if got >= 0 {
				hits++
				if d, b := euclid(q, vecs[got]), bound(qmax, maxAbsOf(vecs[got])); d > b {
					t.Fatalf("t=%g: returned item %d at distance %g outside bound %g", threshold, got, d, b)
				}
			} else {
				misses++
			}
		}
	}
	if hits == 0 || misses == 0 {
		t.Fatalf("degenerate workload across thresholds: %d hits, %d misses", hits, misses)
	}
}

// TestVPTreeBoundaryPruning pins the conservative margin: items placed
// exactly on the acceptance boundary (distance == bound) must be found,
// matching the linear scan's <= acceptance.
func TestVPTreeBoundaryPruning(t *testing.T) {
	const threshold = 0.25
	bound := pairMaxBound(threshold)
	base := []float64{100, 40, 60, 80}
	cls, tr := vpTestTree(euclid, bound)
	// Far decoys first so the boundary item sits deep in the tree.
	for i := 0; i < 40; i++ {
		v := append([]float64(nil), base...)
		v[0] += 1e6 + float64(i)*1e5
		vpAdd(cls, tr, v)
	}
	// The boundary item: perturbing a non-maximal coordinate keeps both
	// max-abs values at 100, so the acceptance bound is exactly
	// threshold*100 = 25 and the Euclidean distance is exactly 25 too.
	onEdge := append([]float64(nil), base...)
	onEdge[1] += threshold * 100
	vpAdd(cls, tr, onEdge)
	got := tr.search(base, maxAbsOf(base))
	d := euclid(base, onEdge)
	b := bound(maxAbsOf(base), maxAbsOf(onEdge))
	if d <= b && got < 0 {
		t.Fatalf("boundary item within bound (%g <= %g) but search missed it", d, b)
	}
	if got >= 0 {
		if dd, bb := euclid(base, tr.cls.Row(got)), bound(maxAbsOf(base), tr.cls.maxAbs[got]); dd > bb {
			t.Fatalf("search returned item outside bound: %g > %g", dd, bb)
		}
	}
}

// TestVPTreeSearchAllocFree verifies the pooled search stack: once the
// tree is warm, searches allocate nothing.
func TestVPTreeSearchAllocFree(t *testing.T) {
	vecs := vpTestVectors(500, 6, 13, 50)
	cls, tr := vpTestTree(euclid, pairMaxBound(0.1))
	for _, v := range vecs {
		vpAdd(cls, tr, v)
	}
	queries := vpTestVectors(64, 6, 13, 70)
	q := 0
	tr.search(queries[0], maxAbsOf(queries[0])) // warm the stack
	allocs := testing.AllocsPerRun(200, func() {
		v := queries[q%len(queries)]
		q++
		tr.search(v, maxAbsOf(v))
	})
	if allocs != 0 {
		t.Fatalf("vpTree.search allocates %.1f objects per search, want 0", allocs)
	}
}

// TestVPTreeChebyshevFixedRadius exercises the absDiff configuration: a
// fixed-radius Chebyshev ball, where pruning uses a constant bound.
func TestVPTreeChebyshevFixedRadius(t *testing.T) {
	vecs := vpTestVectors(300, 4, 9, 30)
	queries := vpTestVectors(200, 4, 9, 45)
	for _, radius := range []float64{5, 40, 200} {
		cheb := func(a, b []float64) float64 { return minkowskiDist(0, a, b) }
		cls, tr := vpTestTree(cheb, func(_, _ float64) float64 { return radius })
		for _, v := range vecs {
			vpAdd(cls, tr, v)
		}
		for _, q := range queries {
			brute := false
			for _, v := range vecs {
				if cheb(q, v) <= radius {
					brute = true
					break
				}
			}
			got := tr.search(q, maxAbsOf(q))
			if (got >= 0) != brute {
				t.Fatalf("radius %g: search %d, brute force %v", radius, got, brute)
			}
			if got >= 0 && cheb(q, vecs[got]) > radius {
				t.Fatalf("radius %g: returned item outside ball", radius)
			}
		}
	}
}

// TestVPTreeNearFirstOrder checks the traversal bias: when the earliest
// item matches, the search should return it (exact first-match on this
// easy layout), keeping approximate reductions close to the paper's
// first-match semantics.
func TestVPTreeNearFirstOrder(t *testing.T) {
	bound := pairMaxBound(0.5)
	cls, tr := vpTestTree(euclid, bound)
	base := []float64{50, 20, 30}
	for i := 0; i < 100; i++ {
		v := append([]float64(nil), base...)
		v[1] += float64(i % 3) // several items all match any near-base query
		vpAdd(cls, tr, v)
	}
	got := tr.search(base, maxAbsOf(base))
	if got != 0 {
		t.Fatalf("search returned item %d, want the earliest matching item 0", got)
	}
}

// TestVPTreeDegenerateEqualDistances covers the all-equal-distance
// split: every remaining item lands in the inner child, the recursion
// must still terminate and searches still work.
func TestVPTreeDegenerateEqualDistances(t *testing.T) {
	cls, tr := vpTestTree(euclid, func(_, _ float64) float64 { return 0.5 })
	// Items on a regular grid all at equal Chebyshev... use duplicates:
	// identical vectors give zero distances everywhere.
	v := []float64{10, 20, 30}
	for i := 0; i < 65; i++ {
		vpAdd(cls, tr, v)
	}
	if got := tr.search(v, maxAbsOf(v)); got != 0 {
		t.Fatalf("search over duplicates returned %d, want 0", got)
	}
	far := []float64{1e6, 1e6, 1e6}
	if got := tr.search(far, maxAbsOf(far)); got != -1 {
		t.Fatalf("search for distant query returned %d, want -1", got)
	}
	if math.IsNaN(tr.nodes[0].mu) {
		t.Fatal("mu is NaN")
	}
}
