package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/trace"
)

// buildLoopTrace makes a single-rank trace of n "main.1" iterations whose
// do_work duration is given per iteration, bracketed by markers; comm is
// omitted so segments differ only in timing.
func buildLoopTrace(name string, workDurs []trace.Time) *trace.Trace {
	t := trace.New(name, 1)
	now := trace.Time(0)
	add := func(e trace.Event) { t.Ranks[0].Events = append(t.Ranks[0].Events, e) }
	for _, d := range workDurs {
		add(trace.Event{Name: "main.1", Kind: trace.KindMarkBegin, Enter: now, Exit: now, Peer: trace.NoPeer, Root: trace.NoPeer})
		add(trace.Event{Name: "do_work", Kind: trace.KindCompute, Enter: now, Exit: now + d, Peer: trace.NoPeer, Root: trace.NoPeer})
		now += d
		add(trace.Event{Name: "main.1", Kind: trace.KindMarkEnd, Enter: now, Exit: now, Peer: trace.NoPeer, Root: trace.NoPeer})
		now += 2 // inter-iteration gap
	}
	return t
}

func TestReduceAllIdentical(t *testing.T) {
	tr := buildLoopTrace("loop", []trace.Time{10, 10, 10, 10, 10})
	red, err := Reduce(tr, NewAbsDiff(1))
	if err != nil {
		t.Fatalf("Reduce: %v", err)
	}
	if red.TotalSegments != 5 {
		t.Errorf("TotalSegments = %d, want 5", red.TotalSegments)
	}
	if red.PossibleMatches != 4 {
		t.Errorf("PossibleMatches = %d, want 4", red.PossibleMatches)
	}
	if red.Matches != 4 {
		t.Errorf("Matches = %d, want 4", red.Matches)
	}
	if got := red.DegreeOfMatching(); got != 1 {
		t.Errorf("DegreeOfMatching = %v, want 1", got)
	}
	if red.StoredSegments() != 1 {
		t.Errorf("StoredSegments = %d, want 1", red.StoredSegments())
	}
	if len(red.Ranks[0].Execs) != 5 {
		t.Errorf("Execs = %d, want 5", len(red.Ranks[0].Execs))
	}
}

func TestReduceNoMatches(t *testing.T) {
	tr := buildLoopTrace("loop", []trace.Time{10, 100, 1000, 10000})
	red, err := Reduce(tr, NewAbsDiff(1))
	if err != nil {
		t.Fatalf("Reduce: %v", err)
	}
	if red.Matches != 0 || red.StoredSegments() != 4 {
		t.Errorf("matches=%d stored=%d, want 0 and 4", red.Matches, red.StoredSegments())
	}
	if got := red.DegreeOfMatching(); got != 0 {
		t.Errorf("DegreeOfMatching = %v, want 0", got)
	}
}

func TestReduceDegreeWithNoPossibleMatches(t *testing.T) {
	// A trace where every segment has a unique context admits no matches.
	tr := trace.New("uniq", 1)
	now := trace.Time(0)
	for _, ctx := range []string{"init", "main.1", "final"} {
		tr.Ranks[0].Events = append(tr.Ranks[0].Events,
			trace.Event{Name: ctx, Kind: trace.KindMarkBegin, Enter: now, Exit: now, Peer: trace.NoPeer, Root: trace.NoPeer},
			trace.Event{Name: "w", Kind: trace.KindCompute, Enter: now, Exit: now + 5, Peer: trace.NoPeer, Root: trace.NoPeer},
			trace.Event{Name: ctx, Kind: trace.KindMarkEnd, Enter: now + 5, Exit: now + 5, Peer: trace.NoPeer, Root: trace.NoPeer},
		)
		now += 6
	}
	red, err := Reduce(tr, NewAbsDiff(1000))
	if err != nil {
		t.Fatalf("Reduce: %v", err)
	}
	if red.PossibleMatches != 0 {
		t.Errorf("PossibleMatches = %d, want 0", red.PossibleMatches)
	}
	if got := red.DegreeOfMatching(); got != 1 {
		t.Errorf("DegreeOfMatching with no possible matches = %v, want 1", got)
	}
}

func TestReduceExecStartsExact(t *testing.T) {
	durs := []trace.Time{10, 12, 9, 14, 10}
	tr := buildLoopTrace("loop", durs)
	red, err := Reduce(tr, NewAbsDiff(100))
	if err != nil {
		t.Fatalf("Reduce: %v", err)
	}
	var want trace.Time
	for i, ex := range red.Ranks[0].Execs {
		if ex.Start != want {
			t.Errorf("exec %d start = %d, want %d", i, ex.Start, want)
		}
		want += durs[i] + 2
	}
}

func TestReconstructIdentityWhenEverythingStored(t *testing.T) {
	// absDiff(0) stores every non-identical segment, so reconstruction
	// must reproduce the original trace exactly.
	tr := buildLoopTrace("loop", []trace.Time{10, 12, 9, 14, 10})
	red, err := Reduce(tr, NewAbsDiff(0))
	if err != nil {
		t.Fatalf("Reduce: %v", err)
	}
	recon, err := red.Reconstruct()
	if err != nil {
		t.Fatalf("Reconstruct: %v", err)
	}
	dist, err := ApproximationDistance(tr, recon, 1.0)
	if err != nil {
		t.Fatalf("ApproximationDistance: %v", err)
	}
	if dist != 0 {
		t.Errorf("identity reconstruction has error %d", dist)
	}
}

func TestReconstructStructurePreserved(t *testing.T) {
	tr := buildLoopTrace("loop", []trace.Time{10, 50, 10, 50, 30})
	red, err := Reduce(tr, NewAbsDiff(100)) // everything merges
	if err != nil {
		t.Fatalf("Reduce: %v", err)
	}
	recon, err := red.Reconstruct()
	if err != nil {
		t.Fatalf("Reconstruct: %v", err)
	}
	if recon.NumEvents() != tr.NumEvents() {
		t.Fatalf("event count %d, want %d", recon.NumEvents(), tr.NumEvents())
	}
	for i := range tr.Ranks[0].Events {
		o, r := tr.Ranks[0].Events[i], recon.Ranks[0].Events[i]
		if o.Name != r.Name || o.Kind != r.Kind {
			t.Fatalf("event %d identity changed: %v vs %v", i, o, r)
		}
	}
	// Segment begin markers (exec starts) must be exact even when
	// measurements are approximated.
	for i, e := range tr.Ranks[0].Events {
		if e.Kind == trace.KindMarkBegin {
			if recon.Ranks[0].Events[i].Enter != e.Enter {
				t.Errorf("begin marker %d moved: %d vs %d", i, recon.Ranks[0].Events[i].Enter, e.Enter)
			}
		}
	}
}

func TestReconstructBadExecID(t *testing.T) {
	tr := buildLoopTrace("loop", []trace.Time{10, 10})
	red, err := Reduce(tr, NewAbsDiff(100))
	if err != nil {
		t.Fatalf("Reduce: %v", err)
	}
	red.Ranks[0].Execs[0].ID = 99
	if _, err := red.Reconstruct(); err == nil {
		t.Error("out-of-range exec ID must fail")
	}
}

func TestReduceMultiRankIndependence(t *testing.T) {
	// Per-task reduction: identical segments on different ranks must NOT
	// share representatives (the paper reduces intra-process).
	tr := trace.New("two", 2)
	for r := 0; r < 2; r++ {
		src := buildLoopTrace("x", []trace.Time{10, 10, 10})
		tr.Ranks[r].Events = src.Ranks[0].Events
	}
	red, err := Reduce(tr, NewAbsDiff(100))
	if err != nil {
		t.Fatalf("Reduce: %v", err)
	}
	if len(red.Ranks[0].Stored) != 1 || len(red.Ranks[1].Stored) != 1 {
		t.Errorf("per-rank stores = %d, %d; want 1 each", len(red.Ranks[0].Stored), len(red.Ranks[1].Stored))
	}
	if red.StoredSegments() != 2 {
		t.Errorf("StoredSegments = %d, want 2 (one per rank)", red.StoredSegments())
	}
}

func TestReduceIterK(t *testing.T) {
	tr := buildLoopTrace("loop", []trace.Time{10, 20, 30, 40, 50, 60})
	p, _ := NewIterK(2)
	red, err := Reduce(tr, p)
	if err != nil {
		t.Fatalf("Reduce: %v", err)
	}
	if got := red.StoredSegments(); got != 2 {
		t.Errorf("iter_k(2) stored %d, want 2", got)
	}
	// Executions beyond k reference the last stored copy.
	for i, ex := range red.Ranks[0].Execs {
		want := i
		if i >= 2 {
			want = 1
		}
		if ex.ID != want {
			t.Errorf("exec %d -> stored %d, want %d", i, ex.ID, want)
		}
	}
}

func TestReduceIterAvg(t *testing.T) {
	tr := buildLoopTrace("loop", []trace.Time{10, 20, 30})
	red, err := Reduce(tr, NewIterAvg())
	if err != nil {
		t.Fatalf("Reduce: %v", err)
	}
	if got := red.StoredSegments(); got != 1 {
		t.Fatalf("iter_avg stored %d, want 1", got)
	}
	rep := red.Ranks[0].Stored[0]
	if rep.Weight != 3 {
		t.Errorf("Weight = %d, want 3", rep.Weight)
	}
	// Mean of 10, 20, 30 with incremental integer averaging: (10+20)/2=15,
	// (15*2+30)/3=20.
	if rep.Events[0].Exit != 20 {
		t.Errorf("averaged do_work exit = %d, want 20", rep.Events[0].Exit)
	}
}

// TestQuickReduceInvariants: for random workloads and random thresholds,
// the reduction bookkeeping must satisfy its structural invariants and
// reconstruction must preserve event identity.
func TestQuickReduceInvariants(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(20)
		durs := make([]trace.Time, n)
		for i := range durs {
			durs[i] = trace.Time(1 + rng.Intn(100))
		}
		tr := buildLoopTrace("q", durs)
		var p Policy
		switch rng.Intn(4) {
		case 0:
			p = NewAbsDiff(float64(rng.Intn(200)))
		case 1:
			p = NewRelDiff(rng.Float64())
		case 2:
			p, _ = NewIterK(1 + rng.Intn(5))
		default:
			p = NewIterAvg()
		}
		red, err := Reduce(tr, p)
		if err != nil {
			return false
		}
		if red.TotalSegments != n || len(red.Ranks[0].Execs) != n {
			return false
		}
		if red.Matches+red.StoredSegments() != red.TotalSegments {
			return false
		}
		if red.Matches > red.PossibleMatches {
			return false
		}
		recon, err := red.Reconstruct()
		if err != nil {
			return false
		}
		if recon.NumEvents() != tr.NumEvents() {
			return false
		}
		for i := range tr.Ranks[0].Events {
			if tr.Ranks[0].Events[i].Name != recon.Ranks[0].Events[i].Name {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}
