package core

import (
	"bytes"
	"testing"

	"repro/internal/segment"
	"repro/internal/trace"
)

// fuzzSeedReduced builds a small valid reduction exercising every TRR1
// feature: several ranks, stored representatives with weights and
// events, and execution logs referencing them.
func fuzzSeedReduced() *Reduced {
	r := &Reduced{Name: "fuzz_seed", Method: "avgWave", Ranks: make([]RankReduced, 2)}
	for rank := range r.Ranks {
		rr := &r.Ranks[rank]
		rr.Rank = rank
		rr.Stored = []*segment.Segment{
			{
				Context: "main.1", Rank: rank, End: 50, Weight: 1,
				Events: []trace.Event{
					{Name: "do_work", Kind: trace.KindCompute, Enter: 1, Exit: 20, Peer: trace.NoPeer, Root: trace.NoPeer},
					{Name: "MPI_Recv", Kind: trace.KindRecv, Enter: 21, Exit: 49, Peer: int32(1 - rank), Tag: 7, Bytes: 4096, Root: trace.NoPeer},
				},
			},
			{
				Context: "final", Rank: rank, End: 10, Weight: 3,
				Events: []trace.Event{
					{Name: "teardown", Kind: trace.KindCompute, Enter: 1, Exit: 9, Peer: trace.NoPeer, Root: trace.NoPeer},
				},
			},
		}
		rr.Execs = []Exec{{ID: 0, Start: 100}, {ID: 0, Start: 200}, {ID: 1, Start: 300}}
	}
	return r
}

// FuzzDecodeReducedRoundTrip drives the TRR1 decoder with arbitrary
// bytes and, whenever they decode, requires encode→decode→encode to be
// a fixed point. Run it as a smoke pass with
//
//	go test -fuzz=FuzzDecodeReducedRoundTrip -fuzztime=10s ./internal/core
func FuzzDecodeReducedRoundTrip(f *testing.F) {
	var seed bytes.Buffer
	if err := EncodeReduced(&seed, fuzzSeedReduced()); err != nil {
		f.Fatal(err)
	}
	f.Add(seed.Bytes())
	f.Add(seed.Bytes()[:len(seed.Bytes())/2]) // truncated file
	f.Add([]byte("TRR1"))                     // bare magic
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<20 {
			return // bound fuzz memory, not a format property
		}
		r1, err := DecodeReduced(bytes.NewReader(data))
		if err != nil {
			return // invalid input is fine; not crashing is the property
		}
		var enc1 bytes.Buffer
		if err := EncodeReduced(&enc1, r1); err != nil {
			t.Fatalf("re-encoding decoded reduction: %v", err)
		}
		r2, err := DecodeReduced(bytes.NewReader(enc1.Bytes()))
		if err != nil {
			t.Fatalf("decoding re-encoded reduction: %v", err)
		}
		var enc2 bytes.Buffer
		if err := EncodeReduced(&enc2, r2); err != nil {
			t.Fatalf("third encode: %v", err)
		}
		if !bytes.Equal(enc1.Bytes(), enc2.Bytes()) {
			t.Fatal("encode→decode→encode is not a fixed point")
		}
		if r1.Name != r2.Name || r1.Method != r2.Method || len(r1.Ranks) != len(r2.Ranks) ||
			r1.StoredSegments() != r2.StoredSegments() {
			t.Fatal("round trip changed reduction shape")
		}
	})
}
