package core

import (
	"fmt"

	"repro/internal/segment"
)

// iterK keeps the first k instances of every segment pattern verbatim;
// from the (k+1)-th instance on, every occurrence "matches" the last
// collected copy. Reconstruction therefore fills the missing executions
// with the last collected segment of the pattern (paper footnote 1).
type iterK struct{ k int }

// NewIterK returns the iter_k policy. k must be >= 1.
func NewIterK(k int) (Policy, error) {
	if k < 1 {
		return nil, fmt.Errorf("core: iter_k requires k >= 1, got %d", k)
	}
	return &iterK{k: k}, nil
}

func (p *iterK) Name() string { return "iter_k" }

// Prepare only clears cs: iter_k matches on instance counts, not
// measurements.
func (p *iterK) Prepare(_ *segment.Segment, cs *RepState) { cs.reset() }

func (p *iterK) Match(cls *Class, _ *segment.Segment, _ *RepState) int {
	if cls.Len() >= p.k {
		return cls.Len() - 1
	}
	return -1
}

func (p *iterK) Absorb(*segment.Segment, *segment.Segment) bool { return false }

// iterAvg keeps exactly one representative per pattern holding the
// running average of every measurement over all folded instances.
type iterAvg struct{}

// NewIterAvg returns the iter_avg policy.
func NewIterAvg() Policy { return iterAvg{} }

func (iterAvg) Name() string { return "iter_avg" }

// Prepare only clears cs: iter_avg always matches the single
// representative.
func (iterAvg) Prepare(_ *segment.Segment, cs *RepState) { cs.reset() }

func (iterAvg) Match(cls *Class, _ *segment.Segment, _ *RepState) int {
	if cls.Len() > 0 {
		return 0
	}
	return -1
}

// Absorb folds cand into matched as an incremental mean: with matched
// already representing w instances, each averaged measurement becomes
// (w·avg + new) / (w+1). Integer division keeps timestamps in time units;
// the sub-microsecond truncation is far below every threshold studied.
// It reports the mutation so the matcher refreshes any cached state.
func (iterAvg) Absorb(matched, cand *segment.Segment) bool {
	w := int64(matched.Weight)
	avg := func(old, new int64) int64 { return (old*w + new) / (w + 1) }
	matched.End = avg(matched.End, cand.End)
	for i := range matched.Events {
		matched.Events[i].Enter = avg(matched.Events[i].Enter, cand.Events[i].Enter)
		matched.Events[i].Exit = avg(matched.Events[i].Exit, cand.Events[i].Exit)
	}
	matched.Weight++
	matched.ResetMeas() // the averaged stamps invalidate the cached vector
	return true
}
