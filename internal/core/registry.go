package core

import (
	"fmt"
	"sort"
)

// MethodNames lists the nine similarity methods the paper evaluates, in
// its presentation order.
var MethodNames = []string{
	"relDiff", "absDiff", "manhattan", "euclidean", "chebyshev",
	"iter_k", "iter_avg", "avgWave", "haarWave",
}

// DefaultThresholds holds the best-per-method thresholds selected by the
// paper's threshold study (§5.1/§5.2): relDiff 0.8, absDiff 10³ time
// units, Manhattan 0.4, Euclidean 0.2, Chebyshev 0.2, iter_k k=10,
// avgWave 0.2, haarWave 0.2. iter_avg takes no threshold (recorded as 0).
var DefaultThresholds = map[string]float64{
	"relDiff":   0.8,
	"absDiff":   1000,
	"manhattan": 0.4,
	"euclidean": 0.2,
	"chebyshev": 0.2,
	"iter_k":    10,
	"iter_avg":  0,
	"avgWave":   0.2,
	"haarWave":  0.2,
}

// ThresholdSweep returns the per-method threshold grid used by the
// paper's threshold study: {0.1,0.2,0.4,0.6,0.8,1.0} for the relative
// distance and wavelet methods, powers of ten 10¹..10⁶ for absDiff, and
// {1,10,50,100,500,1000} for iter_k. iter_avg has no sweep (nil).
func ThresholdSweep(method string) []float64 {
	switch method {
	case "relDiff", "manhattan", "euclidean", "chebyshev", "avgWave", "haarWave":
		return []float64{0.1, 0.2, 0.4, 0.6, 0.8, 1.0}
	case "absDiff":
		return []float64{1e1, 1e2, 1e3, 1e4, 1e5, 1e6}
	case "iter_k":
		return []float64{1, 10, 50, 100, 500, 1000}
	case "iter_avg":
		return nil
	default:
		return nil
	}
}

// NewMethod constructs the named similarity policy with the given
// threshold (ignored for iter_avg; truncated to int for iter_k).
func NewMethod(name string, threshold float64) (Policy, error) {
	switch name {
	case "relDiff":
		return NewRelDiff(threshold), nil
	case "absDiff":
		return NewAbsDiff(threshold), nil
	case "manhattan":
		return NewManhattan(threshold), nil
	case "euclidean":
		return NewEuclidean(threshold), nil
	case "chebyshev":
		return NewChebyshev(threshold), nil
	case "iter_k":
		return NewIterK(int(threshold))
	case "iter_avg":
		return NewIterAvg(), nil
	case "avgWave":
		return NewAvgWave(threshold), nil
	case "haarWave":
		return NewHaarWave(threshold), nil
	case "sample_n":
		// Extension beyond the paper's nine methods (its §6 future work).
		return NewSampleN(int(threshold))
	default:
		known := append([]string(nil), MethodNames...)
		sort.Strings(known)
		return nil, fmt.Errorf("core: unknown method %q (known: %v)", name, known)
	}
}

// DefaultMethod constructs the named policy at its paper-default
// threshold.
func DefaultMethod(name string) (Policy, error) {
	t, ok := DefaultThresholds[name]
	if !ok {
		return nil, fmt.Errorf("core: unknown method %q", name)
	}
	return NewMethod(name, t)
}

// DefaultMethods returns all nine policies at their default thresholds,
// in MethodNames order.
func DefaultMethods() []Policy {
	out := make([]Policy, 0, len(MethodNames))
	for _, name := range MethodNames {
		p, err := DefaultMethod(name)
		if err != nil {
			panic("core: DefaultMethods: " + err.Error())
		}
		out = append(out, p)
	}
	return out
}
