package core

import (
	"repro/internal/segment"
)

// Class is one comparability group of stored representatives: segments
// that share a pattern class in the paper's sense (same context, same
// event shapes), held in collection order together with their prepared
// per-representative state and their indices into the owning
// RankReduced.Stored slice.
//
// The prepared state lives in a contiguous structure-of-arrays slab:
// data is a growable row-major matrix holding each representative's
// prepared vector (padded to the class row width), and norm/maxAbs are
// the parallel pruning columns. The scan kernels (kernels.go) and the
// approximate indexes read rows straight out of the slab — no
// per-representative slice allocations, no pointer chasing. Counting
// policies (iter_k, iter_avg, sample_n) prepare empty vectors and their
// classes carry no rows. Comparable segments have equal measurement
// counts, so every member of a class produces the same vector width.
//
// A Class is built incrementally by a Matcher: the first kept segment of
// the group becomes its prototype, and every later member was verified
// Comparable with that prototype when it was inserted. Comparability is
// an equivalence relation (context equality plus per-event shape
// equality), so membership is transitive: a candidate Comparable with
// the prototype is Comparable with every member, and policies never need
// to re-check it.
type Class struct {
	proto *segment.Segment
	segs  []*segment.Segment
	ids   []int
	// The state slab: row i of the width-wide row-major data matrix is
	// representative i's prepared vector; norm[i]/maxAbs[i] are its
	// pruning scalars. Grown by append, so rows may relocate — readers
	// (kernels, indexes) fetch rows at use time via Row, never hold them.
	width  int
	data   []float64
	norm   []float64
	maxAbs []float64
	// index is the class's sublinear search structure under an
	// approximate MatchMode, nil in exact mode and for policies with no
	// index for the active mode (which keep the linear scan).
	index IndexedClass
}

// Len returns the number of representatives in the class.
func (c *Class) Len() int { return len(c.segs) }

// Rep returns the i-th representative in collection order.
func (c *Class) Rep(i int) *segment.Segment { return c.segs[i] }

// Rows returns the number of slab rows (equal to Len for vector
// policies, 0 for counting policies).
func (c *Class) Rows() int { return len(c.norm) }

// Row returns the i-th representative's prepared vector — a view into
// the slab, valid only until the next insertion grows it.
func (c *Class) Row(i int) []float64 { return c.data[i*c.width : (i+1)*c.width] }

// StoredID returns the i-th representative's index in the owning
// RankReduced.Stored slice.
func (c *Class) StoredID(i int) int { return c.ids[i] }

// add appends a representative to the class, copying cs's vector and
// pruning scalars into the slab (policies with no vector add no row).
func (c *Class) add(rep *segment.Segment, id int, cs *RepState) {
	c.segs = append(c.segs, rep)
	c.ids = append(c.ids, id)
	if cs == nil || len(cs.Vec) == 0 {
		return
	}
	if c.width == 0 {
		c.width = len(cs.Vec)
	}
	c.data = append(c.data, cs.Vec...)
	c.norm = append(c.norm, cs.Norm)
	c.maxAbs = append(c.maxAbs, cs.MaxAbs)
}

// setRow overwrites representative i's slab row after a mutating Absorb
// re-prepared it. No-op for classes without rows.
func (c *Class) setRow(i int, cs *RepState) {
	if len(c.norm) == 0 || len(cs.Vec) == 0 {
		return
	}
	copy(c.data[i*c.width:(i+1)*c.width], cs.Vec)
	c.norm[i] = cs.Norm
	c.maxAbs[i] = cs.MaxAbs
}

// Matcher is the indexed pattern-class matcher at the heart of the
// reduction engine: it buckets stored representatives by signature,
// partitions each bucket into comparability Classes at insertion time
// (defending against signature collisions once per class instead of
// once per comparison), and keeps each representative's prepared state
// in its class's contiguous slab — transformed wavelet vectors,
// Minkowski norms, max-abs values — computed once at storage time rather
// than on every scan.
//
// Under an approximate MatchMode the matcher additionally attaches a
// sublinear IndexedClass (VP-tree or LSH buckets) to every class whose
// policy supports the mode, and Scan searches the index instead of
// running the policy's linear Match. The indexes reference slab rows in
// place rather than owning vector copies.
//
// A Matcher indexes one rank's representatives and is not safe for
// concurrent use; the engine runs one per RankReducer.
type Matcher struct {
	policy Policy
	mode   MatchMode
	// indexer is the policy's ApproxIndexer when the mode is approximate
	// and the policy supports indexing at all; nil otherwise.
	indexer ApproxIndexer
	// buckets maps a signature to its comparability classes in creation
	// order. Almost every bucket holds exactly one class; extras appear
	// only on signature collisions between non-comparable segments.
	buckets map[segment.Signature][]*Class
	// scratch is the single candidate RepState the matcher reuses for
	// every Scan, keeping the steady-state hot path allocation-free. Its
	// contents are valid until the next Prepare into it.
	scratch RepState
}

// indexMinClassSize is the class size below which approximate modes
// keep the exact linear scan and the class's index stays empty. Small
// classes dominate the study workloads, and for them the index's fixed
// costs — LSH's per-class hyperplane set above all — exceed the scan
// they replace; the sublinear structures only pay once a class is big
// enough for asymptotics to matter. Crossing the threshold bulk-indexes
// the representatives accumulated so far (IndexedClass.Rebuild).
//
// Correctness is unaffected: the exact scan is decision-identical to
// the VP-tree by the tree's guarantee, and strictly stronger than LSH
// (which may only miss), so gating can only improve approximate-mode
// results.
const indexMinClassSize = 32

// NewMatcher returns an empty exact-mode matcher for policy p.
func NewMatcher(p Policy) *Matcher { return NewMatcherMode(p, MatchModeExact) }

// NewMatcherMode returns an empty matcher for policy p searching classes
// under the given MatchMode. Modes the policy has no index for degrade
// to the exact scan per class, so any mode is valid for any policy.
func NewMatcherMode(p Policy, mode MatchMode) *Matcher {
	m := &Matcher{policy: p, mode: mode, buckets: map[segment.Signature][]*Class{}}
	if mode != MatchModeExact {
		if ix, ok := p.(ApproxIndexer); ok {
			m.indexer = ix
		}
	}
	return m
}

// Mode returns the matcher's match mode.
func (m *Matcher) Mode() MatchMode { return m.mode }

// Scan locates cand's comparability class and searches it — through the
// class's sublinear index in approximate modes, through the policy's
// fused slab kernel otherwise — for a matching representative. cls is
// nil when cand has no comparable predecessor (a new pattern class); idx
// is -1 when the class exists but no stored representative matches. cs
// is the candidate's prepared state (a view of the matcher's reusable
// scratch, valid until the next Scan), computed once per scanned segment
// and reusable by Insert when the candidate is kept; the empty-bucket
// short-circuit returns before any Prepare work, so candidates of a new
// signature (the common case on irregular workloads) cost one hash
// lookup, and the kept clone is prepared at insertion instead.
func (m *Matcher) Scan(cand *segment.Segment) (cls *Class, idx int, cs *RepState) {
	classes := m.buckets[cand.Sig()]
	if len(classes) == 0 {
		return nil, -1, nil
	}
	for _, c := range classes {
		if c.proto.Comparable(cand) {
			cs = &m.scratch
			m.policy.Prepare(cand, cs)
			if c.index != nil && c.Len() >= indexMinClassSize {
				return c, c.index.Search(cand, cs), cs
			}
			return c, m.policy.Match(c, cand, cs), cs
		}
	}
	return nil, -1, nil
}

// Insert stores rep — the kept (cloned, start-normalized) form of a
// scanned candidate — as a new representative with RankReduced.Stored
// index id. cls and cs must be the values Scan returned for the
// candidate: a nil cls starts a new comparability class under rep's
// signature, and a nil cs (no class existed, so the candidate was never
// prepared) is computed here. rep must have the same measurements as the
// scanned candidate, so the candidate's prepared state carries over.
func (m *Matcher) Insert(cls *Class, rep *segment.Segment, id int, cs *RepState) {
	if cs == nil {
		cs = &m.scratch
		m.policy.Prepare(rep, cs)
	}
	if cls == nil {
		cls = &Class{proto: rep}
		if m.indexer != nil {
			cls.index = m.indexer.NewClassIndex(m.mode, cls)
		}
		sig := rep.Sig()
		m.buckets[sig] = append(m.buckets[sig], cls)
	}
	cls.add(rep, id, cs)
	if cls.index != nil {
		switch n := cls.Len(); {
		case n < indexMinClassSize:
			// Small class: the exact scan serves it, the index stays empty.
		case n == indexMinClassSize:
			cls.index.Rebuild() // bulk-index the accumulated representatives
		default:
			cls.index.Add(n - 1)
		}
	}
}

// Absorb folds cand into the class's i-th representative via the policy
// and, when the policy reports it mutated the representative's
// measurements (iter_avg's running average), re-prepares the slab row so
// later scans see the updated derived data.
func (m *Matcher) Absorb(cls *Class, i int, cand *segment.Segment) {
	if m.policy.Absorb(cls.segs[i], cand) {
		m.policy.Prepare(cls.segs[i], &m.scratch)
		cls.setRow(i, &m.scratch)
		if cls.index != nil && cls.Len() >= indexMinClassSize {
			cls.index.Rebuild()
		}
	}
}
