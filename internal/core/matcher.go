package core

import (
	"repro/internal/segment"
)

// Class is one comparability group of stored representatives: segments
// that share a pattern class in the paper's sense (same context, same
// event shapes), held in collection order together with their prepared
// per-representative state and their indices into the owning
// RankReduced.Stored slice.
//
// A Class is built incrementally by a Matcher: the first kept segment of
// the group becomes its prototype, and every later member was verified
// Comparable with that prototype when it was inserted. Comparability is
// an equivalence relation (context equality plus per-event shape
// equality), so membership is transitive: a candidate Comparable with
// the prototype is Comparable with every member, and policies never need
// to re-check it.
type Class struct {
	proto  *segment.Segment
	segs   []*segment.Segment
	states []RepState
	ids    []int
}

// Len returns the number of representatives in the class.
func (c *Class) Len() int { return len(c.segs) }

// Rep returns the i-th representative in collection order.
func (c *Class) Rep(i int) *segment.Segment { return c.segs[i] }

// State returns the prepared state of the i-th representative, as
// returned by the policy's Prepare at insertion (or re-Prepare after a
// mutating Absorb). It is nil for policies that prepare no state.
func (c *Class) State(i int) RepState { return c.states[i] }

// StoredID returns the i-th representative's index in the owning
// RankReduced.Stored slice.
func (c *Class) StoredID(i int) int { return c.ids[i] }

// add appends a representative to the class.
func (c *Class) add(rep *segment.Segment, id int, state RepState) {
	c.segs = append(c.segs, rep)
	c.states = append(c.states, state)
	c.ids = append(c.ids, id)
}

// Matcher is the indexed pattern-class matcher at the heart of the
// reduction engine: it buckets stored representatives by signature,
// partitions each bucket into comparability Classes at insertion time
// (defending against signature collisions once per class instead of
// once per comparison), and caches each representative's prepared state
// so the policy's derived data — transformed wavelet vectors, Minkowski
// norms, max-abs values — is computed once at storage time rather than
// on every scan.
//
// A Matcher indexes one rank's representatives and is not safe for
// concurrent use; the engine runs one per RankReducer.
type Matcher struct {
	policy Policy
	// buckets maps a signature to its comparability classes in creation
	// order. Almost every bucket holds exactly one class; extras appear
	// only on signature collisions between non-comparable segments.
	buckets map[segment.Signature][]*Class
}

// NewMatcher returns an empty matcher for policy p.
func NewMatcher(p Policy) *Matcher {
	return &Matcher{policy: p, buckets: map[segment.Signature][]*Class{}}
}

// Scan locates cand's comparability class and asks the policy for the
// first matching representative. cls is nil when cand has no comparable
// predecessor (a new pattern class); idx is -1 when the class exists but
// no stored representative matches. cs is the candidate's prepared
// state, computed once per scanned segment and reusable by Insert when
// the candidate is kept.
func (m *Matcher) Scan(cand *segment.Segment) (cls *Class, idx int, cs RepState) {
	for _, c := range m.buckets[cand.Sig()] {
		if c.proto.Comparable(cand) {
			cs = m.policy.Prepare(cand)
			return c, m.policy.Match(c, cand, cs), cs
		}
	}
	return nil, -1, nil
}

// Insert stores rep — the kept (cloned, start-normalized) form of a
// scanned candidate — as a new representative with RankReduced.Stored
// index id. cls and cs must be the values Scan returned for the
// candidate: a nil cls starts a new comparability class under rep's
// signature, and a nil cs (no class existed, so the candidate was never
// prepared) is computed here. rep must have the same measurements as the
// scanned candidate, so the candidate's prepared state carries over.
func (m *Matcher) Insert(cls *Class, rep *segment.Segment, id int, cs RepState) {
	if cs == nil {
		cs = m.policy.Prepare(rep)
	}
	if cls == nil {
		cls = &Class{proto: rep}
		sig := rep.Sig()
		m.buckets[sig] = append(m.buckets[sig], cls)
	}
	cls.add(rep, id, cs)
}

// Absorb folds cand into the class's i-th representative via the policy
// and, when the policy reports it mutated the representative's
// measurements (iter_avg's running average), re-prepares the cached
// state so later scans see the updated derived data.
func (m *Matcher) Absorb(cls *Class, i int, cand *segment.Segment) {
	if m.policy.Absorb(cls.segs[i], cand) {
		cls.states[i] = m.policy.Prepare(cls.segs[i])
	}
}
