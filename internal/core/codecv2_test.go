package core

import (
	"bytes"
	"encoding/binary"
	"io"
	"reflect"
	"testing"

	"repro/internal/segment"
	"repro/internal/trace"
)

// Footer geometry of the shared v2 block container, mirrored from
// docs/FORMATS.md so corruption tests can aim at exact fields without
// the trace package exporting its layout constants.
const (
	v2TrailerSize    = 12 // u64 index offset + 4-byte trailing magic
	v2BlockEntrySize = 24 // u64 offset + u32 length, rank, records, crc
	v2BlockHeader    = 16 // u32 rank, records, payload length, crc
)

// streamOnly hides ReaderAt/Seeker so a decode is forced down the
// sequential path.
type streamOnly struct{ io.Reader }

// v2TestReduced builds a reduction covering the TRR2 codec's edge
// shapes: a normal rank, a rank with stored segments but no execs, and
// an empty rank. Slices mirror the decoder's always-allocated shapes so
// round trips compare with reflect.DeepEqual.
func v2TestReduced() *Reduced {
	r := fuzzSeedReduced()
	r.Name = "v2_codec"
	r.Ranks = append(r.Ranks,
		RankReduced{
			Rank: 2,
			Stored: []*segment.Segment{{
				Context: "solo", Rank: 2, End: -7, Weight: 2,
				Events: []trace.Event{
					{Name: "late", Kind: trace.KindCompute, Enter: -3, Exit: -1, Peer: trace.NoPeer, Root: trace.NoPeer},
				},
			}},
			Execs: []Exec{},
		},
		RankReduced{Rank: 9, Stored: []*segment.Segment{}, Execs: []Exec{}},
	)
	return r
}

func encodeReducedV2Bytes(t *testing.T, r *Reduced) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := EncodeReducedV2(&buf, r); err != nil {
		t.Fatalf("EncodeReducedV2: %v", err)
	}
	return buf.Bytes()
}

func TestEncodeReducedV2RoundTrip(t *testing.T) {
	want := v2TestReduced()
	data := encodeReducedV2Bytes(t, want)
	for name, r := range map[string]io.Reader{
		"parallel":   bytes.NewReader(data),
		"sequential": streamOnly{bytes.NewReader(data)},
	} {
		got, err := DecodeReduced(r)
		if err != nil {
			t.Fatalf("%s decode: %v", name, err)
		}
		if !reflect.DeepEqual(want, got) {
			t.Errorf("%s v2 round trip changed the reduction:\nwant %+v\ngot  %+v", name, want, got)
		}
	}
}

// TestDecodeReducedV2MatchesV1 pins the cross-version contract: the
// same reduction decoded from a TRR1 container and a TRR2 container
// must be structurally identical.
func TestDecodeReducedV2MatchesV1(t *testing.T) {
	src := v2TestReduced()
	var v1buf bytes.Buffer
	if err := EncodeReduced(&v1buf, src); err != nil {
		t.Fatal(err)
	}
	fromV1, err := DecodeReduced(bytes.NewReader(v1buf.Bytes()))
	if err != nil {
		t.Fatalf("v1 decode: %v", err)
	}
	fromV2, err := DecodeReduced(bytes.NewReader(encodeReducedV2Bytes(t, src)))
	if err != nil {
		t.Fatalf("v2 decode: %v", err)
	}
	if !reflect.DeepEqual(fromV1, fromV2) {
		t.Errorf("v1 and v2 decodes of the same reduction differ:\nv1 %+v\nv2 %+v", fromV1, fromV2)
	}
}

func TestDecodeReducedV2WorkerCounts(t *testing.T) {
	want := v2TestReduced()
	data := encodeReducedV2Bytes(t, want)
	for _, workers := range []int{1, 2, 7, 64} {
		got, err := DecodeReducedWith(bytes.NewReader(data), trace.DecoderOptions{Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !reflect.DeepEqual(want, got) {
			t.Errorf("workers=%d: decoded reduction differs", workers)
		}
	}
}

func TestReducedV2SmallerThanV1(t *testing.T) {
	r := v2TestReduced()
	v1, v2 := EncodedReducedSize(r), EncodedReducedSizeV2(r)
	if v2 >= v1 {
		t.Errorf("v2 encoding (%d bytes) not smaller than v1 (%d bytes)", v2, v1)
	}
}

// TestParseRankReducedV2Rejects drives the payload parser with
// semantically hostile payloads that pass the container checksums: the
// validation has to live in the parser itself.
func TestParseRankReducedV2Rejects(t *testing.T) {
	names := []string{"ctx"}
	entry := func(records uint32) trace.BlockEntry { return trace.BlockEntry{Rank: 0, Records: records} }
	uv := func(dst []byte, v uint64) []byte { return binary.AppendUvarint(dst, v) }
	sv := func(dst []byte, v int64) []byte { return binary.AppendVarint(dst, v) }

	cases := []struct {
		name    string
		records uint32
		payload []byte
	}{
		{"records-mismatch", 3, uv(uv(nil, 1), 1)},
		{"exec-id-out-of-range", 1, sv(uv(uv(uv(nil, 0), 1), 5), 10)}, // 0 stored, 1 exec with id 5
		{"context-id-out-of-range", 1, uv(uv(sv(uv(uv(uv(nil, 1), 0), 99), 0), 0), 0)},
		{"huge-stored-count", 1 << 25, uv(uv(nil, 1<<25), 0)},
		{"counts-exceed-payload", 200, uv(uv(nil, 0), 200)},
		{"truncated-segment", 1, uv(uv(uv(nil, 1), 0), 0)},
		{"trailing-garbage", 0, append(uv(uv(nil, 0), 0), 0xab)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			e := entry(tc.records)
			e.Length = uint32(len(tc.payload))
			if _, err := parseRankReducedV2(e, tc.payload, names); err == nil {
				t.Errorf("%s: parser accepted a hostile payload", tc.name)
			}
		})
	}
}

func decodeReducedBoth(t *testing.T, name string, data []byte) {
	t.Helper()
	if _, err := DecodeReduced(bytes.NewReader(data)); err == nil {
		t.Errorf("%s: random-access decode accepted the corrupt container", name)
	}
	if _, err := DecodeReduced(streamOnly{bytes.NewReader(data)}); err == nil {
		t.Errorf("%s: stream decode accepted the corrupt container", name)
	}
}

// TestDecodeReducedV2Corruption flips structural fields of a valid TRR2
// container; both decode paths must reject every mutation cleanly.
func TestDecodeReducedV2Corruption(t *testing.T) {
	data := encodeReducedV2Bytes(t, v2TestReduced())
	le := binary.LittleEndian
	indexOff := le.Uint64(data[len(data)-v2TrailerSize:])
	nBlocks := le.Uint32(data[indexOff:])
	if nBlocks != 4 {
		t.Fatalf("expected 4 blocks, found %d", nBlocks)
	}
	entryOff := func(i int) uint64 { return indexOff + 4 + uint64(i)*v2BlockEntrySize }
	block0 := le.Uint64(data[entryOff(0):])

	cases := []struct {
		name string
		mut  func(b []byte)
	}{
		{"magic", func(b []byte) { b[0] = 'X' }},
		{"trailing-magic", func(b []byte) { b[len(b)-1] ^= 0xff }},
		{"trailer-index-offset", func(b []byte) { le.PutUint64(b[len(b)-v2TrailerSize:], indexOff+1) }},
		{"index-block-count", func(b []byte) { le.PutUint32(b[indexOff:], nBlocks+1) }},
		{"index-entry-offset", func(b []byte) { le.PutUint64(b[entryOff(1):], le.Uint64(b[entryOff(1):])-1) }},
		{"index-entry-crc", func(b []byte) { b[entryOff(0)+20] ^= 0xff }},
		{"block-header-records", func(b []byte) { le.PutUint32(b[block0+4:], le.Uint32(b[block0+4:])+1) }},
		{"block-header-crc", func(b []byte) { b[block0+12] ^= 1 }},
		{"payload-bit-flip", func(b []byte) { b[block0+v2BlockHeader] ^= 0x40 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			b := append([]byte{}, data...)
			tc.mut(b)
			decodeReducedBoth(t, tc.name, b)
		})
	}
}

// TestDecodeReducedV2Truncation cuts the container at every block
// boundary and inside each region; both paths must error cleanly.
func TestDecodeReducedV2Truncation(t *testing.T) {
	data := encodeReducedV2Bytes(t, v2TestReduced())
	le := binary.LittleEndian
	indexOff := int(le.Uint64(data[len(data)-v2TrailerSize:]))
	nBlocks := int(le.Uint32(data[indexOff:]))
	cuts := map[string]int{
		"empty":       0,
		"mid-magic":   2,
		"at-index":    indexOff,
		"mid-index":   indexOff + 5,
		"mid-trailer": len(data) - 5,
		"last-byte":   len(data) - 1,
	}
	for i := 0; i < nBlocks; i++ {
		off := int(le.Uint64(data[indexOff+4+i*v2BlockEntrySize:]))
		length := int(le.Uint32(data[indexOff+4+i*v2BlockEntrySize+8:]))
		name := "block-" + string(rune('0'+i))
		cuts[name+"-start"] = off
		cuts[name+"-mid-header"] = off + v2BlockHeader/2
		cuts[name+"-end"] = off + v2BlockHeader + length
	}
	for name, cut := range cuts {
		t.Run(name, func(t *testing.T) {
			if cut < 0 || cut >= len(data) {
				t.Fatalf("bad cut %d for %d-byte container", cut, len(data))
			}
			decodeReducedBoth(t, name, data[:cut])
		})
	}
}
