package core

import (
	"math"
	"testing"

	"repro/internal/segment"
	"repro/internal/trace"
	"repro/internal/wavelet"
)

// ---------------------------------------------------------------------
// Brute-force reference engine.
//
// refFeed reproduces the pre-matcher reduction loop verbatim: a
// map[Signature][]int class list, per-scan Comparable re-filtering, and
// per-comparison recomputation of measurement-derived data (wavelet
// transforms, Minkowski norms). It pins the indexed matcher — prepared
// state, comparability classes, lower-bound pruning — to byte-identical
// decisions.
// ---------------------------------------------------------------------

// refMatch is the old stateless pairwise predicate table: name → match
// function over (threshold, stored, cand).
func refMatch(name string, threshold float64, a, b *segment.Segment) bool {
	va, vb := a.Meas(), b.Meas()
	switch name {
	case "relDiff":
		return refRelDiff(threshold, va, vb)
	case "absDiff":
		return refAbsDiff(threshold, va, vb)
	case "manhattan":
		return refMinkowski(threshold, 1, va, vb)
	case "euclidean":
		return refMinkowski(threshold, 2, va, vb)
	case "chebyshev":
		return refMinkowski(threshold, 0, va, vb)
	case "minkowski3":
		return refMinkowski(threshold, 3, va, vb)
	case "avgWave":
		return refWave(threshold, false, a, b)
	case "haarWave":
		return refWave(threshold, true, a, b)
	}
	panic("refMatch: unknown method " + name)
}

// refRelDiff and refAbsDiff are the pre-matcher (and pre-slab-kernel)
// pairwise predicates, retained verbatim as the decision reference the
// fused batch kernels are pinned to.
func refRelDiff(t float64, va, vb []float64) bool {
	for i := range va {
		x, y := va[i], vb[i]
		d := math.Abs(x - y)
		if d == 0 {
			continue
		}
		m := math.Max(math.Abs(x), math.Abs(y))
		if d/m > t {
			return false
		}
	}
	return true
}

func refAbsDiff(t float64, va, vb []float64) bool {
	for i := range va {
		if math.Abs(va[i]-vb[i]) > t {
			return false
		}
	}
	return true
}

// refPadStamps lays a measurement vector [end, stamps...] out as the
// zero-padded stamp vector [0, stamps..., end, 0...] of length n, the
// pre-matcher engine's transform input layout.
func refPadStamps(meas []float64, n int) []float64 {
	p := make([]float64, n)
	copy(p[1:], meas[1:])
	p[len(meas)] = meas[0]
	return p
}

// refMinkowski is the pre-matcher minkowskiMatch: distance and the
// shared max value accumulated in one interleaved pass.
func refMinkowski(t float64, m int, va, vb []float64) bool {
	var dist, maxVal float64
	for i := range va {
		if av := math.Abs(va[i]); av > maxVal {
			maxVal = av
		}
		if bv := math.Abs(vb[i]); bv > maxVal {
			maxVal = bv
		}
		d := math.Abs(va[i] - vb[i])
		switch m {
		case 0:
			if d > dist {
				dist = d
			}
		case 1:
			dist += d
		case 2:
			dist += d * d
		default:
			dist += math.Pow(d, float64(m))
		}
	}
	switch m {
	case 0, 1:
	case 2:
		dist = math.Sqrt(dist)
	default:
		dist = math.Pow(dist, 1/float64(m))
	}
	return dist <= t*maxVal
}

// refWave is the pre-matcher waveMatch: both transforms recomputed per
// comparison, padded to the larger of the two power-of-two lengths.
func refWave(t float64, haar bool, a, b *segment.Segment) bool {
	ma, mb := a.Meas(), b.Meas()
	n := wavelet.NextPow2(len(ma) + 1)
	if m := wavelet.NextPow2(len(mb) + 1); m > n {
		n = m
	}
	pa := refPadStamps(ma, n)
	pb := refPadStamps(mb, n)
	var ta, tb []float64
	if haar {
		ta, tb = wavelet.Haar(pa), wavelet.Haar(pb)
	} else {
		ta, tb = wavelet.Average(pa), wavelet.Average(pb)
	}
	return wavelet.Euclidean(ta, tb) <= t*wavelet.MaxAbs(ta, tb)
}

// refReducer is the pre-matcher per-rank reduction state.
type refReducer struct {
	method    string
	threshold float64
	stored    []*segment.Segment
	execs     []Exec
	byClass   map[segment.Signature][]int

	total, matches, possible int
}

func newRefReducer(method string, threshold float64) *refReducer {
	return &refReducer{method: method, threshold: threshold, byClass: map[segment.Signature][]int{}}
}

// feed is the old RankReducer.Feed: linear scan over the signature
// bucket with a per-comparison Comparable filter.
func (r *refReducer) feed(s *segment.Segment) {
	r.total++
	ids := r.byClass[s.Sig()]
	var candIDs []int
	for _, id := range ids {
		if r.stored[id].Comparable(s) {
			candIDs = append(candIDs, id)
		}
	}
	if len(candIDs) > 0 {
		r.possible++
	}
	if idx := r.refScan(candIDs, s); idx >= 0 {
		storedID := candIDs[idx]
		r.refAbsorb(r.stored[storedID], s)
		r.execs = append(r.execs, Exec{ID: storedID, Start: s.Start})
		r.matches++
		return
	}
	id := len(r.stored)
	kept := s.Clone()
	kept.Start = 0
	r.stored = append(r.stored, kept)
	r.execs = append(r.execs, Exec{ID: id, Start: s.Start})
	r.byClass[s.Sig()] = append(ids, id)
}

// refScan is the old first-fit scan, including the counting policies.
func (r *refReducer) refScan(candIDs []int, s *segment.Segment) int {
	switch r.method {
	case "iter_k":
		if len(candIDs) >= int(r.threshold) {
			return len(candIDs) - 1
		}
		return -1
	case "iter_avg":
		if len(candIDs) > 0 {
			return 0
		}
		return -1
	case "sample_n":
		seen := 0
		for _, id := range candIDs {
			seen += r.stored[id].Weight
		}
		if seen%int(r.threshold) == 0 {
			return -1
		}
		return len(candIDs) - 1
	}
	for i, id := range candIDs {
		if refMatch(r.method, r.threshold, r.stored[id], s) {
			return i
		}
	}
	return -1
}

func (r *refReducer) refAbsorb(matched, cand *segment.Segment) {
	switch r.method {
	case "iter_avg":
		iterAvg{}.Absorb(matched, cand)
	case "sample_n":
		matched.Weight++
	}
}

// ---------------------------------------------------------------------
// Deterministic segment stream generator.
// ---------------------------------------------------------------------

type xorshift struct{ s uint64 }

func (x *xorshift) next() uint64 {
	x.s ^= x.s << 13
	x.s ^= x.s >> 7
	x.s ^= x.s << 17
	return x.s
}

// genSegments produces a deterministic stream of segments across several
// pattern classes with measurement spreads chosen to sit on both sides
// of every default threshold — including near-boundary values that
// stress the pruning margin.
func genSegments(n int) []*segment.Segment {
	rng := &xorshift{s: 0x9e3779b97f4a7c15}
	contexts := []string{"main.1", "main.2", "main.3.1"}
	var segs []*segment.Segment
	for i := 0; i < n; i++ {
		ctx := contexts[rng.next()%uint64(len(contexts))]
		nev := 1 + int(rng.next()%3)
		// Base scale varies wildly so relative and absolute thresholds
		// both see matches and misses.
		base := int64(10 + rng.next()%50)
		if rng.next()%4 == 0 {
			base *= int64(1 + rng.next()%40)
		}
		ev := make([]trace.Event, 0, nev)
		t := int64(1 + rng.next()%uint64(base))
		for j := 0; j < nev; j++ {
			enter := t
			exit := enter + int64(rng.next()%uint64(base+1))
			t = exit + int64(rng.next()%8)
			ev = append(ev, trace.Event{
				Name: "op", Kind: trace.KindCompute, Enter: enter, Exit: exit,
				Peer: trace.NoPeer, Root: trace.NoPeer,
			})
		}
		segs = append(segs, &segment.Segment{
			Context: ctx,
			Rank:    0,
			Start:   trace.Time(i * 1000),
			End:     t + int64(rng.next()%4),
			Events:  ev,
			Weight:  1,
		})
	}
	return segs
}

// TestMatcherBruteForceParity holds the indexed matcher to exactly the
// decisions of the pre-matcher reference loop for every method — same
// kept representatives, same execution log, same counters — over a
// segment stream stressing class collisions of scale and near-threshold
// boundaries.
func TestMatcherBruteForceParity(t *testing.T) {
	cases := []struct {
		method    string
		threshold float64
		mk        func() Policy
	}{
		{"relDiff", 0.8, func() Policy { return NewRelDiff(0.8) }},
		{"relDiff", 0.2, func() Policy { return NewRelDiff(0.2) }},
		{"absDiff", 1000, func() Policy { return NewAbsDiff(1000) }},
		{"absDiff", 10, func() Policy { return NewAbsDiff(10) }},
		{"manhattan", 0.4, func() Policy { return NewManhattan(0.4) }},
		{"euclidean", 0.2, func() Policy { return NewEuclidean(0.2) }},
		{"chebyshev", 0.2, func() Policy { return NewChebyshev(0.2) }},
		{"minkowski3", 0.2, func() Policy { p, _ := NewMinkowski(3, 0.2); return p }},
		{"avgWave", 0.2, func() Policy { return NewAvgWave(0.2) }},
		{"haarWave", 0.2, func() Policy { return NewHaarWave(0.2) }},
		{"iter_k", 10, func() Policy { p, _ := NewIterK(10); return p }},
		{"iter_avg", 0, func() Policy { return NewIterAvg() }},
		{"sample_n", 3, func() Policy { p, _ := NewSampleN(3); return p }},
	}
	segs := genSegments(3000)
	for _, tc := range cases {
		tc := tc
		t.Run(tc.method, func(t *testing.T) {
			ref := newRefReducer(tc.method, tc.threshold)
			rr := NewRankReducer(0, tc.mk())
			for _, s := range segs {
				// Both engines clone what they keep, but iter_avg mutates
				// its stored representative in place, so each side feeds
				// its own copy.
				ref.feed(s.Clone())
				rr.Feed(s.Clone())
			}
			got := rr.Finish()
			if len(got.Stored) != len(ref.stored) {
				t.Fatalf("stored %d, reference %d", len(got.Stored), len(ref.stored))
			}
			for i := range ref.stored {
				if !ref.stored[i].Comparable(got.Stored[i]) || ref.stored[i].End != got.Stored[i].End {
					t.Fatalf("stored %d differs: %+v vs %+v", i, got.Stored[i], ref.stored[i])
				}
			}
			if len(got.Execs) != len(ref.execs) {
				t.Fatalf("execs %d, reference %d", len(got.Execs), len(ref.execs))
			}
			for i := range ref.execs {
				if got.Execs[i] != ref.execs[i] {
					t.Fatalf("exec %d: %+v vs reference %+v", i, got.Execs[i], ref.execs[i])
				}
			}
			if rr.TotalSegments() != ref.total || rr.Matches() != ref.matches || rr.PossibleMatches() != ref.possible {
				t.Errorf("counters (%d,%d,%d) vs reference (%d,%d,%d)",
					rr.TotalSegments(), rr.Matches(), rr.PossibleMatches(),
					ref.total, ref.matches, ref.possible)
			}
		})
	}
}

// collisionSegment builds a minimal segment with the given context and
// duration whose signature is then forced to collide.
func collisionSegment(ctx string, dur trace.Time, start trace.Time) *segment.Segment {
	return &segment.Segment{
		Context: ctx,
		Start:   start,
		End:     dur,
		Weight:  1,
		Events: []trace.Event{{
			Name: "w", Kind: trace.KindCompute, Enter: 1, Exit: dur - 1,
			Peer: trace.NoPeer, Root: trace.NoPeer,
		}},
	}
}

// TestMatcherSignatureCollisionDefense forces two non-comparable
// segments into the same Signature bucket and requires the class index
// to keep them in separate comparability groups: instances of either
// pattern must match only representatives of their own group, never leak
// across, and the possible-match counter must see exactly one class per
// candidate.
func TestMatcherSignatureCollisionDefense(t *testing.T) {
	const forced = segment.Signature(0xdeadbeef)
	mkA := func(start trace.Time) *segment.Segment {
		s := collisionSegment("ctxA", 100, start)
		s.ForceSig(forced)
		return s
	}
	mkB := func(start trace.Time) *segment.Segment {
		s := collisionSegment("ctxB", 100, start)
		s.ForceSig(forced)
		return s
	}
	if mkA(0).Sig() != mkB(0).Sig() {
		t.Fatal("forced signatures must collide")
	}
	if mkA(0).Comparable(mkB(0)) {
		t.Fatal("collision segments must not be comparable")
	}

	rr := NewRankReducer(0, NewRelDiff(0.8))
	rr.Feed(mkA(0))    // kept: representative 0, class A
	rr.Feed(mkB(1000)) // kept: representative 1, class B (same bucket)
	rr.Feed(mkA(2000)) // must match representative 0, not B's
	rr.Feed(mkB(3000)) // must match representative 1, not A's
	out := rr.Finish()

	if len(out.Stored) != 2 {
		t.Fatalf("stored %d representatives, want 2 (one per comparability group)", len(out.Stored))
	}
	wantIDs := []int{0, 1, 0, 1}
	for i, ex := range out.Execs {
		if ex.ID != wantIDs[i] {
			t.Errorf("exec %d matched representative %d, want %d", i, ex.ID, wantIDs[i])
		}
	}
	if rr.Matches() != 2 || rr.PossibleMatches() != 2 {
		t.Errorf("matches=%d possible=%d, want 2 and 2", rr.Matches(), rr.PossibleMatches())
	}

	// The bucket must hold two distinct classes, each with one member.
	m := NewMatcher(NewRelDiff(0.8))
	a, b := mkA(0), mkB(0)
	m.Insert(nil, a, 0, nil)
	m.Insert(nil, b, 1, nil)
	clsA, _, _ := m.Scan(mkA(10))
	clsB, _, _ := m.Scan(mkB(10))
	if clsA == nil || clsB == nil || clsA == clsB {
		t.Fatalf("collision classes not separated: %p vs %p", clsA, clsB)
	}
	if clsA.Len() != 1 || clsA.Rep(0) != a || clsA.StoredID(0) != 0 {
		t.Error("class A holds the wrong representative")
	}
	if clsB.Len() != 1 || clsB.Rep(0) != b || clsB.StoredID(0) != 1 {
		t.Error("class B holds the wrong representative")
	}
}
