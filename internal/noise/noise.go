// Package noise models the ASCI Q-style system interference of Petrini,
// Kerbyson & Pakin (SC'03) that the paper's irregular benchmarks
// simulate: periodic per-node daemons and kernel activity that steal
// slices of every compute phase. A compute phase that spans a daemon
// firing is stretched by the daemon's service time; a long phase absorbs
// many firings.
package noise

import (
	"fmt"
	"sort"
)

// Daemon is one periodic interference source on a node.
type Daemon struct {
	// Name describes the source ("kernel-tick", "cluster-mgr").
	Name string
	// Period is the time between firings.
	Period int64
	// Duration is the service time stolen per firing.
	Duration int64
	// Phase offsets the first firing within the period.
	Phase int64
	// RankStagger shifts the phase by rank·RankStagger so nodes fire
	// unsynchronized, the damaging regime Petrini et al. identified.
	RankStagger int64
	// Ranks, if non-nil, restricts the daemon to the listed ranks
	// (e.g. a resource manager that runs only on node 0). Nil means all.
	Ranks []int
}

func (d *Daemon) hits(rank int) bool {
	if d.Ranks == nil {
		return true
	}
	for _, r := range d.Ranks {
		if r == rank {
			return true
		}
	}
	return false
}

// Model is a set of daemons; it implements mpisim's Noise interface.
type Model struct {
	daemons []Daemon
}

// NewModel returns a noise model over the given daemons.
func NewModel(daemons ...Daemon) *Model {
	m := &Model{daemons: append([]Daemon(nil), daemons...)}
	for i := range m.daemons {
		d := &m.daemons[i]
		if d.Period <= 0 {
			panic("noise: daemon period must be positive")
		}
		if d.Duration < 0 {
			panic("noise: daemon duration must be non-negative")
		}
	}
	return m
}

// Daemons returns a copy of the model's daemon set.
func (m *Model) Daemons() []Daemon { return append([]Daemon(nil), m.daemons...) }

// firing is one scheduled interruption during a compute phase.
type firing struct {
	at  int64
	dur int64
}

// Stretch returns the wall-clock length of a compute phase of useful work
// dur starting at start on the given rank: the phase extends past dur by
// the service time of every daemon firing that lands inside it (firings
// landing in the extension also count, so heavy noise compounds — the
// effect Petrini et al. observed). Stretch panics if the configured
// daemons steal 95% or more of the rank's time, because the expansion
// would then never converge.
func (m *Model) Stretch(rank int, start, dur int64) int64 {
	if dur <= 0 || len(m.daemons) == 0 {
		return dur
	}
	if rate := m.TotalRate(rank); rate >= 0.95 {
		panic(fmt.Sprintf("noise: daemons steal %.0f%% of rank %d's time; model cannot converge", 100*rate, rank))
	}
	wall := dur
	// Collect firings lazily window by window: each pass covers the
	// newly-extended region [scanned, end+stolen).
	scanned := start
	for {
		target := start + wall
		if scanned >= target {
			return wall
		}
		var fs []firing
		for i := range m.daemons {
			d := &m.daemons[i]
			if !d.hits(rank) || d.Duration == 0 {
				continue
			}
			phase := d.Phase + int64(rank)*d.RankStagger
			// First firing at or after scanned.
			k := (scanned - phase) / d.Period
			for {
				at := phase + k*d.Period
				if at < scanned {
					k++
					continue
				}
				if at >= target {
					break
				}
				fs = append(fs, firing{at: at, dur: d.Duration})
				k++
			}
		}
		if len(fs) == 0 {
			return wall
		}
		sort.Slice(fs, func(i, j int) bool { return fs[i].at < fs[j].at })
		for _, f := range fs {
			wall += f.dur
		}
		scanned = target
	}
}

// TotalRate returns the fraction of time the model steals from a fully
// busy rank (sum of duration/period over daemons hitting it), a useful
// sanity metric for tests and calibration.
func (m *Model) TotalRate(rank int) float64 {
	var rate float64
	for i := range m.daemons {
		d := &m.daemons[i]
		if d.hits(rank) {
			rate += float64(d.Duration) / float64(d.Period)
		}
	}
	return rate
}

// ASCIQ returns a noise model patterned after the interference Petrini et
// al. measured on ASCI Q: a three-band spectrum of fine kernel ticks,
// mid-size network/daemon interrupts, and rare multi-millisecond
// node-daemon stalls, plus an unscaled cluster manager on rank 0. scale
// multiplies the interruption *load* (1 for the 32-process scenario; 32
// for the simulated 1024-process scenario, where each process absorbs the
// interrupt traffic of 32 peers) by shortening the scaling daemons'
// periods. The band structure matters to the study: the ~6 ms stalls are
// large relative to the 1 ms work periods, so strict per-measurement
// similarity tests refuse to merge disturbed iterations, while the
// ~250 µs mid-band falls inside looser tolerance regimes and gets
// smeared by them.
func ASCIQ(nranks int, scale int64) *Model {
	if scale < 1 {
		scale = 1
	}
	ranks0 := []int{0}
	return NewModel(
		// Fine-grain kernel activity: 25 µs every 10 ms (0.25%).
		Daemon{Name: "kernel-tick", Period: 10_000 / scale, Duration: 25, Phase: 127, RankStagger: 313},
		// Network interrupts and light daemons: 350 µs every 25 ms (1.4%).
		// The band is sized to sit inside Chebyshev's single-measurement
		// tolerance while the accumulated L1/L2 distance exceeds the
		// Manhattan/Euclidean tolerances.
		Daemon{Name: "net-irq", Period: 25_000 / scale, Duration: 350, Phase: 5_501, RankStagger: 977},
		// Heavy per-node daemons: 6 ms every 600 ms (1%), phases staggered
		// so nodes fire unsynchronized (the damaging regime).
		Daemon{Name: "node-daemon", Period: 900_000 / scale, Duration: 6_000, Phase: 109_013, RankStagger: 31_137},
		// Cluster manager on node 0: 8 ms every 1 s (0.8%); cluster-wide,
		// so it does not scale with the process count.
		Daemon{Name: "cluster-mgr", Period: 1_000_000, Duration: 8_000, Phase: 470_039, Ranks: ranks0},
	)
}
