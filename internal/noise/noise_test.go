package noise

import (
	"strings"
	"testing"
)

func TestNoDaemons(t *testing.T) {
	m := NewModel()
	if got := m.Stretch(0, 0, 1000); got != 1000 {
		t.Errorf("empty model stretched %d", got)
	}
	if got := m.TotalRate(0); got != 0 {
		t.Errorf("empty model rate %v", got)
	}
}

func TestZeroDuration(t *testing.T) {
	m := NewModel(Daemon{Name: "d", Period: 100, Duration: 10})
	if got := m.Stretch(0, 0, 0); got != 0 {
		t.Errorf("zero work stretched to %d", got)
	}
}

// TestSingleFiring: one daemon firing at t=50 inside a phase [0,100)
// extends the phase by its duration.
func TestSingleFiring(t *testing.T) {
	m := NewModel(Daemon{Name: "d", Period: 1000, Duration: 7, Phase: 50})
	if got := m.Stretch(0, 0, 100); got != 107 {
		t.Errorf("Stretch = %d, want 107", got)
	}
	// A phase that misses the firing is untouched.
	if got := m.Stretch(0, 60, 100); got != 100 {
		t.Errorf("Stretch(miss) = %d, want 100", got)
	}
}

// TestPeriodicFirings: a phase spanning several periods absorbs one
// firing per period.
func TestPeriodicFirings(t *testing.T) {
	m := NewModel(Daemon{Name: "d", Period: 100, Duration: 5, Phase: 10})
	// Phase [0, 300): firings at 10, 110, 210 -> +15; the extension
	// [300, 315) contains a firing at 310 -> +5 more.
	if got := m.Stretch(0, 0, 300); got != 320 {
		t.Errorf("Stretch = %d, want 320", got)
	}
}

// TestCompounding: a firing landing in the extension counts too.
func TestCompounding(t *testing.T) {
	m := NewModel(Daemon{Name: "d", Period: 100, Duration: 30, Phase: 90})
	// Work [0,100): firing at 90 -> wall 130; extension [100,130)
	// contains no firing (next at 190).
	if got := m.Stretch(0, 0, 100); got != 130 {
		t.Errorf("Stretch = %d, want 130", got)
	}
	// Work [0,170): firings at 90 -> wall 200; extension [170,200)
	// contains 190 -> wall 230; extension [200,230) has none.
	if got := m.Stretch(0, 0, 170); got != 230 {
		t.Errorf("Stretch(170) = %d, want 230", got)
	}
}

func TestRankRestriction(t *testing.T) {
	m := NewModel(Daemon{Name: "mgr", Period: 100, Duration: 10, Phase: 0, Ranks: []int{0}})
	if got := m.Stretch(0, 0, 100); got == 100 {
		t.Error("rank 0 should be disturbed")
	}
	if got := m.Stretch(3, 0, 100); got != 100 {
		t.Errorf("rank 3 should be undisturbed, got %d", got)
	}
}

func TestRankStagger(t *testing.T) {
	m := NewModel(Daemon{Name: "d", Period: 1000, Duration: 5, Phase: 0, RankStagger: 100})
	// Rank 0 fires at 0, rank 3 at 300.
	if got := m.Stretch(0, 200, 50); got != 50 {
		t.Errorf("rank 0 window [200,250) should be clean, got %d", got)
	}
	if got := m.Stretch(3, 290, 50); got != 55 {
		t.Errorf("rank 3 window [290,340) should catch the 300 firing, got %d", got)
	}
}

func TestNegativeStartWindow(t *testing.T) {
	// Phases can start before a daemon's phase offset; the model must
	// handle windows below the first firing cleanly.
	m := NewModel(Daemon{Name: "d", Period: 100, Duration: 5, Phase: 70})
	if got := m.Stretch(0, 0, 50); got != 50 {
		t.Errorf("window before first firing stretched to %d", got)
	}
}

func TestTotalRate(t *testing.T) {
	m := NewModel(
		Daemon{Name: "a", Period: 100, Duration: 1},
		Daemon{Name: "b", Period: 100, Duration: 2, Ranks: []int{1}},
	)
	if got := m.TotalRate(0); got != 0.01 {
		t.Errorf("rank 0 rate = %v, want 0.01", got)
	}
	if got := m.TotalRate(1); got != 0.03 {
		t.Errorf("rank 1 rate = %v, want 0.03", got)
	}
}

func TestDivergenceGuard(t *testing.T) {
	m := NewModel(Daemon{Name: "hog", Period: 100, Duration: 99})
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("steal rate 99% must panic")
		}
		if !strings.Contains(r.(string), "converge") {
			t.Errorf("panic message %v", r)
		}
	}()
	m.Stretch(0, 0, 1000)
}

func TestModelValidation(t *testing.T) {
	for _, bad := range []Daemon{
		{Name: "p0", Period: 0, Duration: 1},
		{Name: "neg", Period: 10, Duration: -1},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("daemon %+v must be rejected", bad)
				}
			}()
			NewModel(bad)
		}()
	}
}

func TestASCIQProfiles(t *testing.T) {
	m32 := ASCIQ(32, 1)
	m1024 := ASCIQ(32, 32)
	if len(m32.Daemons()) != 4 {
		t.Fatalf("ASCIQ daemons = %d, want 4", len(m32.Daemons()))
	}
	// The 1024-process variant must steal substantially more, but stay
	// convergent.
	r32, r1024 := m32.TotalRate(5), m1024.TotalRate(5)
	if r1024 <= 2*r32 {
		t.Errorf("scaled noise rate %.3f not substantially above base %.3f", r1024, r32)
	}
	if r1024 >= 0.95 {
		t.Errorf("scaled noise rate %.3f would diverge", r1024)
	}
	// Rank 0 carries the cluster manager.
	if m32.TotalRate(0) <= m32.TotalRate(1) {
		t.Error("rank 0 should be noisier than other ranks")
	}
	// Sanity: scale < 1 clamps.
	if got := ASCIQ(32, 0).TotalRate(1); got != m32.TotalRate(1) {
		t.Errorf("scale clamp: %v vs %v", got, m32.TotalRate(1))
	}
}

// TestDeterminism: identical inputs give identical stretches.
func TestStretchDeterminism(t *testing.T) {
	m := ASCIQ(32, 32)
	for i := 0; i < 5; i++ {
		if m.Stretch(7, 12345, 1000) != m.Stretch(7, 12345, 1000) {
			t.Fatal("Stretch is nondeterministic")
		}
	}
}
