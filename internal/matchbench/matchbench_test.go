package matchbench

import (
	"testing"

	"repro/internal/core"
)

// TestOneClassWorstCase verifies the stream's design contract: one
// pattern class, identical norms (pruning never helps the exact scan),
// every candidate matched to a stored representative, steady-state
// class size = DefaultClasses.
func TestOneClassWorstCase(t *testing.T) {
	const k, n = 64, 512
	reps := Reps(k)
	for _, r := range reps[1:] {
		if !reps[0].Comparable(r) {
			t.Fatal("centers must share one pattern class")
		}
		if r.End != reps[0].End {
			t.Fatal("centers must share the End measurement")
		}
	}
	// relDiff is omitted: its lax default threshold (0.8 relative) lets
	// permuted centers match each other, collapsing the class. That only
	// shrinks relDiff's benchmark rows — it has no index in any mode.
	for _, method := range []string{"euclidean", "chebyshev", "manhattan", "avgWave", "haarWave", "absDiff"} {
		p, err := core.DefaultMethod(method)
		if err != nil {
			t.Fatal(err)
		}
		rr := core.NewRankReducer(0, p)
		for _, s := range Stream(k, n) {
			rr.Feed(s)
		}
		out := rr.Finish()
		if len(out.Stored) != k {
			t.Errorf("%s: stored %d representatives, want the %d centers", method, len(out.Stored), k)
		}
		if rr.Matches() != n {
			t.Errorf("%s: matched %d of %d candidates", method, rr.Matches(), n)
		}
	}
}

// TestDeterministic pins the generator's output across calls.
func TestDeterministic(t *testing.T) {
	a, b := Stream(16, 32), Stream(16, 32)
	if len(a) != len(b) || len(a) != 48 {
		t.Fatalf("stream lengths %d, %d", len(a), len(b))
	}
	for i := range a {
		am, bm := a[i].Meas(), b[i].Meas()
		for j := range am {
			if am[j] != bm[j] {
				t.Fatalf("segment %d measurement %d differs: %g vs %g", i, j, am[j], bm[j])
			}
		}
	}
}
