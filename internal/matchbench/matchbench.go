// Package matchbench generates the deterministic segment workload the
// matcher benchmarks (cmd/benchsnap and the repository-level Benchmark
// functions) share, shaped to expose the asymptotic difference between
// the exact first-match scan and the sublinear indexes:
//
//   - All segments belong to one pattern class (same context, same event
//     shapes), so every candidate is compared against every stored
//     representative.
//   - Every class center is a permutation of one fixed timestamp
//     multiset. All measurement vectors therefore share the same
//     Minkowski norms and max-abs values, so the exact scan's
//     lower-bound pruning never fires and each comparison pays a full
//     distance computation — the honest worst case the indexes are
//     built for.
//   - Distinct centers sit far apart (random permutations of values
//     spaced DefaultGap apart), while candidates jitter only a few time
//     units around their center, so each candidate matches its own
//     center and no other under every distance policy's default
//     threshold.
//
// The stream is seeded and platform-independent: benchmarks over it are
// comparable across runs and machines.
package matchbench

import (
	"repro/internal/segment"
	"repro/internal/trace"
)

const (
	// DefaultClasses is the number of cluster centers — the steady-state
	// stored-representative count of the benchmark class.
	DefaultClasses = 512
	// DefaultCandidates is the number of jittered post-warmup segments.
	DefaultCandidates = 4096
	// NumEvents is the event count per segment; the measurement vector
	// has 2*NumEvents+1 components.
	NumEvents = 8
	// DefaultGap spaces the timestamp multiset; permutation distances are
	// multiples of it, far outside every default threshold ball.
	DefaultGap = 400
	// jitterMax bounds the per-stamp candidate jitter; the full-vector
	// Euclidean displacement stays under sqrt(2*NumEvents)*jitterMax,
	// well inside every default threshold ball.
	jitterMax = 12
)

// xorshift is the same tiny deterministic generator the core tests use.
type xorshift struct{ s uint64 }

func (x *xorshift) next() uint64 {
	x.s ^= x.s << 13
	x.s ^= x.s >> 7
	x.s ^= x.s << 17
	return x.s
}

// centerStamps returns the k centers: seeded random permutations of the
// fixed multiset {DefaultGap, 2*DefaultGap, ...}.
func centerStamps(k int) [][]int64 {
	n := 2 * NumEvents
	base := make([]int64, n)
	for i := range base {
		base[i] = int64(i+1) * DefaultGap
	}
	rng := &xorshift{s: 0x6d61746368626e63} // "matchbnc"
	centers := make([][]int64, k)
	for c := range centers {
		p := append([]int64(nil), base...)
		for i := n - 1; i > 0; i-- {
			j := int(rng.next() % uint64(i+1))
			p[i], p[j] = p[j], p[i]
		}
		centers[c] = p
	}
	return centers
}

// build assembles a segment from a stamp assignment. All segments share
// the context, event shapes, and End value, so they form one pattern
// class with identical measurement max-abs.
func build(stamps []int64, start trace.Time) *segment.Segment {
	ev := make([]trace.Event, NumEvents)
	for i := range ev {
		ev[i] = trace.Event{
			Name: "op", Kind: trace.KindCompute,
			Enter: trace.Time(stamps[2*i]), Exit: trace.Time(stamps[2*i+1]),
			Peer: trace.NoPeer, Root: trace.NoPeer,
		}
	}
	return &segment.Segment{
		Context: "bench.main",
		Rank:    0,
		Start:   start,
		End:     trace.Time(2*NumEvents+1) * DefaultGap,
		Events:  ev,
		Weight:  1,
	}
}

// Reps returns the k class centers as segments, the representative set
// the scan benchmarks index.
func Reps(k int) []*segment.Segment {
	centers := centerStamps(k)
	reps := make([]*segment.Segment, k)
	for i, c := range centers {
		reps[i] = build(c, trace.Time(i)*100000)
	}
	return reps
}

// Candidates returns n segments, each a jittered copy of a
// pseudo-randomly chosen center among k: every candidate matches exactly
// its own center under the default thresholds of every distance policy.
func Candidates(k, n int) []*segment.Segment {
	centers := centerStamps(k)
	rng := &xorshift{s: 0xcafef00dbeefd00d}
	cands := make([]*segment.Segment, n)
	stamps := make([]int64, 2*NumEvents)
	for i := range cands {
		c := centers[rng.next()%uint64(k)]
		for j := range stamps {
			stamps[j] = c[j] + int64(rng.next()%(2*jitterMax+1)) - jitterMax
		}
		cands[i] = build(stamps, trace.Time(k+i)*100000)
	}
	return cands
}

// Stream returns the end-to-end reduction stream: the k centers first
// (each stored as a representative), then n jittered candidates (each
// matching its center).
func Stream(k, n int) []*segment.Segment {
	return append(Reps(k), Candidates(k, n)...)
}
