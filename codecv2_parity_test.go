// Cross-version codec parity. The v2 columnar containers (TRC2/TRR2)
// must be lossless re-encodings of the v1 formats: decoding a v2
// container yields structures identical to decoding the v1 container
// of the same data, for every study workload and — for reductions —
// every similarity method at default thresholds. The v2 container must
// also be smaller; the size win is the format's reason to exist.
package repro

import (
	"bytes"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/trace"
)

// decodeTraceBytes decodes an encoded container of either version.
func decodeTraceBytes(t *testing.T, data []byte) *trace.Trace {
	t.Helper()
	tr, err := trace.Decode(bytes.NewReader(data))
	if err != nil {
		t.Fatalf("decoding container: %v", err)
	}
	return tr
}

// TestCodecV2TraceParity encodes every study workload in both container
// versions and requires the decodes to be structurally identical — and
// the v2 container to be strictly smaller.
func TestCodecV2TraceParity(t *testing.T) {
	for _, workload := range eval.AllNames() {
		workload := workload
		t.Run(workload, func(t *testing.T) {
			full := parityTrace(t, workload)
			var v1, v2 bytes.Buffer
			if err := trace.Encode(&v1, full); err != nil {
				t.Fatalf("v1 encode: %v", err)
			}
			if err := trace.EncodeV2(&v2, full); err != nil {
				t.Fatalf("v2 encode: %v", err)
			}
			if v2.Len() >= v1.Len() {
				t.Errorf("v2 container (%d bytes) not smaller than v1 (%d bytes)", v2.Len(), v1.Len())
			}
			var v2par bytes.Buffer
			if err := trace.EncodeV2With(&v2par, full, trace.EncoderOptions{Workers: 4}); err != nil {
				t.Fatalf("parallel v2 encode: %v", err)
			}
			if !bytes.Equal(v2.Bytes(), v2par.Bytes()) {
				t.Errorf("parallel v2 encode differs from sequential (%d vs %d bytes)", v2par.Len(), v2.Len())
			}
			if got := trace.EncodedSizeV2(full); got != int64(v2.Len()) {
				t.Errorf("EncodedSizeV2 = %d, v2 container is %d bytes", got, v2.Len())
			}
			fromV1 := decodeTraceBytes(t, v1.Bytes())
			fromV2 := decodeTraceBytes(t, v2.Bytes())
			if !reflect.DeepEqual(fromV1, fromV2) {
				t.Error("v1 and v2 containers decode to different traces")
			}
		})
	}
}

// TestCodecV2ReducedParity reduces every workload with every method and
// requires the TRR1 and TRR2 containers of each reduction to decode to
// identical structures, with the v1 re-encoding of both decodes byte
// for byte equal (the canonical-form fixed point).
func TestCodecV2ReducedParity(t *testing.T) {
	for _, workload := range eval.AllNames() {
		workload := workload
		t.Run(workload, func(t *testing.T) {
			full := parityTrace(t, workload)
			for _, method := range core.MethodNames {
				p, err := core.DefaultMethod(method)
				if err != nil {
					t.Fatal(err)
				}
				red, err := core.Reduce(full, p)
				if err != nil {
					t.Fatalf("%s: Reduce: %v", method, err)
				}
				var v1, v2 bytes.Buffer
				if err := core.EncodeReduced(&v1, red); err != nil {
					t.Fatalf("%s: v1 encode: %v", method, err)
				}
				if err := core.EncodeReducedV2(&v2, red); err != nil {
					t.Fatalf("%s: v2 encode: %v", method, err)
				}
				var v2par bytes.Buffer
				if err := core.EncodeReducedV2With(&v2par, red, trace.EncoderOptions{Workers: 4}); err != nil {
					t.Fatalf("%s: parallel v2 encode: %v", method, err)
				}
				if !bytes.Equal(v2.Bytes(), v2par.Bytes()) {
					t.Errorf("%s: parallel v2 encode differs from sequential (%d vs %d bytes)", method, v2par.Len(), v2.Len())
				}
				if got := core.EncodedReducedSizeV2(red); got != int64(v2.Len()) {
					t.Errorf("%s: EncodedReducedSizeV2 = %d, v2 container is %d bytes", method, got, v2.Len())
				}
				fromV1, err := core.DecodeReduced(bytes.NewReader(v1.Bytes()))
				if err != nil {
					t.Fatalf("%s: v1 decode: %v", method, err)
				}
				fromV2, err := core.DecodeReduced(bytes.NewReader(v2.Bytes()))
				if err != nil {
					t.Fatalf("%s: v2 decode: %v", method, err)
				}
				if !reflect.DeepEqual(fromV1, fromV2) {
					t.Errorf("%s: v1 and v2 containers decode to different reductions", method)
				}
				if !bytes.Equal(encodeReduced(t, fromV1), encodeReduced(t, fromV2)) {
					t.Errorf("%s: v1 re-encodings of the two decodes differ", method)
				}
			}
		})
	}
}

// TestCodecV2ReduceFromV2Parity feeds the streaming reduction pipeline
// from a v2 container and requires output byte-identical to reducing
// the original trace — the guarantee that lets cmd/tracereduce accept
// either container version transparently.
func TestCodecV2ReduceFromV2Parity(t *testing.T) {
	const method = "avgWave"
	for _, workload := range eval.AllNames() {
		workload := workload
		t.Run(workload, func(t *testing.T) {
			full := parityTrace(t, workload)
			var enc bytes.Buffer
			if err := trace.EncodeV2(&enc, full); err != nil {
				t.Fatalf("v2 encode: %v", err)
			}
			d, err := trace.NewDecoder(bytes.NewReader(enc.Bytes()))
			if err != nil {
				t.Fatalf("NewDecoder: %v", err)
			}
			defer d.Close()
			if d.Version() != 2 {
				t.Fatalf("decoder picked version %d for a TRC2 container", d.Version())
			}
			pStream, _ := core.DefaultMethod(method)
			pSeq, _ := core.DefaultMethod(method)
			streamed, err := core.ReduceStream(d.Name(), pStream, d.NextRank)
			if err != nil {
				t.Fatalf("ReduceStream from v2: %v", err)
			}
			ref, err := core.ReduceSequential(full, pSeq)
			if err != nil {
				t.Fatalf("ReduceSequential: %v", err)
			}
			if !bytes.Equal(encodeReduced(t, streamed), encodeReduced(t, ref)) {
				t.Error("reduction streamed from the v2 container differs from the reference")
			}
		})
	}
}
