// Pipelined-vs-batch parity. ReduceStreamToWriter overlaps decode,
// reduction, and encode, but its output must be byte-identical to
// encoding the batch reduction — for every study workload, every
// similarity method, and both container versions. This is the grid-wide
// guarantee that lets cmd/tracereduce switch to the pipelined path
// without changing a single output byte.
package repro

import (
	"bytes"
	"io"
	"runtime"
	"testing"

	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/trace"
)

// traceRankSource yields tr's ranks one at a time, ReduceStream-style.
func traceRankSource(tr *trace.Trace) func() (*trace.RankTrace, error) {
	i := 0
	return func() (*trace.RankTrace, error) {
		if i >= len(tr.Ranks) {
			return nil, io.EOF
		}
		rt := &tr.Ranks[i]
		i++
		return rt, nil
	}
}

// TestPipelineReducedParity runs the full 20-workload × 9-method grid
// through the pipelined reduce-to-writer path in both container
// versions and requires byte identity with the batch encoding, plus
// counter agreement in the returned stats.
func TestPipelineReducedParity(t *testing.T) {
	// Force a real worker pool so the rank-order registration turnstile
	// is exercised even on a single-CPU machine.
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)
	for _, workload := range eval.AllNames() {
		workload := workload
		t.Run(workload, func(t *testing.T) {
			full := parityTrace(t, workload)
			for _, method := range core.MethodNames {
				p, err := core.DefaultMethod(method)
				if err != nil {
					t.Fatal(err)
				}
				red, err := core.Reduce(full, p)
				if err != nil {
					t.Fatalf("%s: Reduce: %v", method, err)
				}
				for _, version := range []int{1, 2} {
					var want bytes.Buffer
					if version == 2 {
						err = core.EncodeReducedV2(&want, red)
					} else {
						err = core.EncodeReduced(&want, red)
					}
					if err != nil {
						t.Fatalf("%s v%d: batch encode: %v", method, version, err)
					}
					pp, _ := core.DefaultMethod(method)
					var got bytes.Buffer
					stats, err := core.ReduceStreamToWriter(full.Name, pp, traceRankSource(full), &got, version)
					if err != nil {
						t.Fatalf("%s v%d: ReduceStreamToWriter: %v", method, version, err)
					}
					if !bytes.Equal(want.Bytes(), got.Bytes()) {
						t.Errorf("%s v%d: pipelined container differs from batch (%d vs %d bytes)",
							method, version, got.Len(), want.Len())
					}
					if stats.TotalSegments != red.TotalSegments ||
						stats.Matches != red.Matches ||
						stats.PossibleMatches != red.PossibleMatches ||
						stats.StoredSegments != red.StoredSegments() {
						t.Errorf("%s v%d: stats %+v disagree with batch counters", method, version, stats)
					}
				}
			}
		})
	}
}
