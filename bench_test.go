// Benchmark harness: one testing.B benchmark per table and figure of the
// paper's evaluation. Each benchmark regenerates its artifact — the same
// computation `cmd/evalstudy` prints — and reports the headline numbers
// as custom metrics, so `go test -bench=.` both times the pipeline and
// reproduces the study. Traces are generated once and shared through a
// package-level runner; the measured work is reduction, reconstruction,
// analysis and comparison.
package repro

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/expert"
	"repro/internal/trace"
)

var (
	runnerOnce sync.Once
	runner     *eval.Runner
)

// sharedRunner returns a process-wide runner with every workload trace
// pre-generated, so per-benchmark timings measure evaluation, not
// workload simulation.
func sharedRunner(b *testing.B) *eval.Runner {
	b.Helper()
	runnerOnce.Do(func() {
		runner = eval.NewRunner()
		for _, name := range eval.AllNames() {
			if _, err := runner.Diagnosis(name); err != nil {
				panic("bench: generating " + name + ": " + err.Error())
			}
		}
	})
	return runner
}

// runCells evaluates a grid once and fails the benchmark on error. The
// runner's cell cache is dropped first so every call measures evaluation
// work, not memoized results.
func runCells(b *testing.B, cells []eval.Cell) []*eval.Result {
	b.Helper()
	r := sharedRunner(b)
	r.ResetCells()
	results, err := r.RunGrid(cells)
	if err != nil {
		b.Fatal(err)
	}
	return results
}

// meanMetrics reports grid-wide means as benchmark metrics.
func meanMetrics(b *testing.B, results []*eval.Result) {
	var pct, degree, dist float64
	retained := 0
	for _, r := range results {
		pct += r.PctSize
		degree += r.Degree
		dist += float64(r.ApproxDist)
		if r.Retained {
			retained++
		}
	}
	n := float64(len(results))
	b.ReportMetric(pct/n, "%size")
	b.ReportMetric(degree/n, "degree")
	b.ReportMetric(dist/n, "apxdist-us")
	b.ReportMetric(float64(retained), "retained")
}

// BenchmarkFig05_SizeAndMatching regenerates Figure 5: reduced file size
// percentage and degree of matching for every workload × method at the
// default thresholds. Sub-benchmarks isolate each method's column.
func BenchmarkFig05_SizeAndMatching(b *testing.B) {
	for _, method := range core.MethodNames {
		b.Run(method, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				results := runCells(b, eval.GridDefault(eval.AllNames(), []string{method}))
				if i == b.N-1 {
					meanMetrics(b, results)
				}
			}
		})
	}
}

// BenchmarkFig06_ApproxDistance regenerates Figure 6: the 90th-percentile
// timestamp error per workload × method at default thresholds.
func BenchmarkFig06_ApproxDistance(b *testing.B) {
	for _, method := range core.MethodNames {
		b.Run(method, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				results := runCells(b, eval.GridDefault(eval.AllNames(), []string{method}))
				if i == b.N-1 {
					var worst float64
					for _, r := range results {
						if d := float64(r.ApproxDist); d > worst {
							worst = d
						}
					}
					b.ReportMetric(worst, "max-apxdist-us")
					meanMetrics(b, results)
				}
			}
		})
	}
}

// benchTrendChart regenerates one of the paper's trend-chart figures
// (Figures 7 and 8): every method's reconstruction of one workload,
// rendered side by side with the full-trace diagnosis.
func benchTrendChart(b *testing.B, workload string) {
	for i := 0; i < b.N; i++ {
		r := sharedRunner(b)
		results := runCells(b, eval.GridDefault([]string{workload}, core.MethodNames))
		ix := eval.NewIndex(results)
		chart, err := eval.FormatTrendChart(r, ix, workload, core.MethodNames)
		if err != nil {
			b.Fatal(err)
		}
		if len(chart) == 0 {
			b.Fatal("empty chart")
		}
		if i == b.N-1 {
			meanMetrics(b, results)
		}
	}
}

// BenchmarkFig07_DynLoadTrends regenerates Figure 7 (dyn_load_balance).
func BenchmarkFig07_DynLoadTrends(b *testing.B) { benchTrendChart(b, "dyn_load_balance") }

// BenchmarkFig08_InterferenceTrends regenerates Figure 8 (1to1r_1024).
func BenchmarkFig08_InterferenceTrends(b *testing.B) { benchTrendChart(b, "1to1r_1024") }

// benchSweep regenerates a threshold-sweep figure: one method over a
// workload set at every threshold in its §5.1 grid, with sub-benchmarks
// per threshold.
func benchSweep(b *testing.B, method string, workloads []string) {
	for _, t := range core.ThresholdSweep(method) {
		b.Run(method+"/"+thresholdLabel(method, t), func(b *testing.B) {
			var cells []eval.Cell
			for _, w := range workloads {
				cells = append(cells, eval.Cell{Workload: w, Method: method, Threshold: t})
			}
			for i := 0; i < b.N; i++ {
				results := runCells(b, cells)
				if i == b.N-1 {
					meanMetrics(b, results)
				}
			}
		})
	}
}

func thresholdLabel(method string, t float64) string {
	switch method {
	case "absDiff":
		switch {
		case t >= 1e6:
			return "1e6"
		case t >= 1e5:
			return "1e5"
		case t >= 1e4:
			return "1e4"
		case t >= 1e3:
			return "1e3"
		case t >= 1e2:
			return "1e2"
		default:
			return "1e1"
		}
	case "iter_k":
		switch t {
		case 1:
			return "k1"
		case 10:
			return "k10"
		case 50:
			return "k50"
		case 100:
			return "k100"
		case 500:
			return "k500"
		default:
			return "k1000"
		}
	default:
		switch t {
		case 0.1:
			return "t0.1"
		case 0.2:
			return "t0.2"
		case 0.4:
			return "t0.4"
		case 0.6:
			return "t0.6"
		case 0.8:
			return "t0.8"
		default:
			return "t1.0"
		}
	}
}

// Figures 9-16: threshold sweeps over the 18 benchmark traces (the
// paper's 16 plus the two scenario extensions).

func BenchmarkFig09_RelDiffSweep(b *testing.B)   { benchSweep(b, "relDiff", eval.BenchmarkNames()) }
func BenchmarkFig10_AbsDiffSweep(b *testing.B)   { benchSweep(b, "absDiff", eval.BenchmarkNames()) }
func BenchmarkFig11_ManhattanSweep(b *testing.B) { benchSweep(b, "manhattan", eval.BenchmarkNames()) }
func BenchmarkFig12_EuclideanSweep(b *testing.B) { benchSweep(b, "euclidean", eval.BenchmarkNames()) }
func BenchmarkFig13_ChebyshevSweep(b *testing.B) { benchSweep(b, "chebyshev", eval.BenchmarkNames()) }
func BenchmarkFig14_IterKSweep(b *testing.B)     { benchSweep(b, "iter_k", eval.BenchmarkNames()) }
func BenchmarkFig15_AvgWaveSweep(b *testing.B)   { benchSweep(b, "avgWave", eval.BenchmarkNames()) }
func BenchmarkFig16_HaarWaveSweep(b *testing.B)  { benchSweep(b, "haarWave", eval.BenchmarkNames()) }

// Figures 17-19: threshold sweeps over the two Sweep3D runs, grouped as
// in the paper's appendix.

func BenchmarkFig17_Sweep3dSweepA(b *testing.B) {
	for _, m := range []string{"relDiff", "absDiff", "manhattan"} {
		benchSweep(b, m, eval.ApplicationNames())
	}
}

func BenchmarkFig18_Sweep3dSweepB(b *testing.B) {
	for _, m := range []string{"euclidean", "chebyshev", "iter_k"} {
		benchSweep(b, m, eval.ApplicationNames())
	}
}

func BenchmarkFig19_Sweep3dSweepC(b *testing.B) {
	for _, m := range []string{"avgWave", "haarWave"} {
		benchSweep(b, m, eval.ApplicationNames())
	}
}

// benchTable regenerates one appendix retention table's default-threshold
// column: every method's verdict for one workload (the full threshold
// grid is `cmd/evalstudy -table N`). The reported "retained" metric is
// the number of methods (of 9) that keep the workload's trends.
func benchTable(b *testing.B, workload string) {
	for i := 0; i < b.N; i++ {
		results := runCells(b, eval.GridDefault([]string{workload}, core.MethodNames))
		if i == b.N-1 {
			meanMetrics(b, results)
		}
	}
}

// Tables 1-18, in the paper's appendix order.

func BenchmarkTable01_DynLoadBalance(b *testing.B) { benchTable(b, "dyn_load_balance") }
func BenchmarkTable02_EarlyGather(b *testing.B)    { benchTable(b, "early_gather") }
func BenchmarkTable03_ImbalanceAtBarrier(b *testing.B) {
	benchTable(b, "imbalance_at_mpi_barrier")
}
func BenchmarkTable04_LateBroadcast(b *testing.B) { benchTable(b, "late_broadcast") }
func BenchmarkTable05_LateReceiver(b *testing.B)  { benchTable(b, "late_receiver") }
func BenchmarkTable06_LateSender(b *testing.B)    { benchTable(b, "late_sender") }
func BenchmarkTable07_Nto1_32(b *testing.B)       { benchTable(b, "Nto1_32") }
func BenchmarkTable08_NtoN_32(b *testing.B)       { benchTable(b, "NtoN_32") }
func BenchmarkTable09_1toN_32(b *testing.B)       { benchTable(b, "1toN_32") }
func BenchmarkTable10_1to1r_32(b *testing.B)      { benchTable(b, "1to1r_32") }
func BenchmarkTable11_1to1s_32(b *testing.B)      { benchTable(b, "1to1s_32") }
func BenchmarkTable12_Nto1_1024(b *testing.B)     { benchTable(b, "Nto1_1024") }
func BenchmarkTable13_NtoN_1024(b *testing.B)     { benchTable(b, "NtoN_1024") }
func BenchmarkTable14_1toN_1024(b *testing.B)     { benchTable(b, "1toN_1024") }
func BenchmarkTable15_1to1r_1024(b *testing.B)    { benchTable(b, "1to1r_1024") }
func BenchmarkTable16_1to1s_1024(b *testing.B)    { benchTable(b, "1to1s_1024") }
func BenchmarkTable17_Sweep3d8p(b *testing.B)     { benchTable(b, "sweep3d_8p") }
func BenchmarkTable18_Sweep3d32p(b *testing.B)    { benchTable(b, "sweep3d_32p") }

// Tables 19-20: the scenario-diversity extensions.

func BenchmarkTable19_HaloJitter(b *testing.B) { benchTable(b, "halo_jitter") }
func BenchmarkTable20_BurstyIO(b *testing.B)   { benchTable(b, "bursty_io") }

// BenchmarkAblationMinkowskiOrder sweeps the Minkowski order beyond the
// paper's {1, 2, ∞} on one irregular workload — the design-choice
// ablation DESIGN.md calls out: higher orders converge to Chebyshev's
// merge-moderate-differences behaviour.
func BenchmarkAblationMinkowskiOrder(b *testing.B) {
	r := sharedRunner(b)
	full, err := r.Trace("1to1s_1024")
	if err != nil {
		b.Fatal(err)
	}
	fullDiag, err := r.Diagnosis("1to1s_1024")
	if err != nil {
		b.Fatal(err)
	}
	for _, m := range []int{1, 2, 3, 4} {
		b.Run(fmt.Sprintf("order%d", m), func(b *testing.B) {
			p, err := core.NewMinkowski(m, 0.2)
			if err != nil {
				b.Fatal(err)
			}
			for i := 0; i < b.N; i++ {
				red, err := core.Reduce(full, p)
				if err != nil {
					b.Fatal(err)
				}
				if i == b.N-1 {
					res, err := eval.EvaluateReduced(full, fullDiag, red)
					if err != nil {
						b.Fatal(err)
					}
					b.ReportMetric(res.PctSize, "%size")
					b.ReportMetric(float64(res.ApproxDist), "apxdist-us")
				}
			}
		})
	}
}

// BenchmarkAblationSamplingVsIterK compares the paper's future-work
// method (systematic segment sampling) with iter_k at matched data
// volume on the drifting workload where their biases differ most.
func BenchmarkAblationSamplingVsIterK(b *testing.B) {
	r := sharedRunner(b)
	full, err := r.Trace("dyn_load_balance")
	if err != nil {
		b.Fatal(err)
	}
	fullDiag, err := r.Diagnosis("dyn_load_balance")
	if err != nil {
		b.Fatal(err)
	}
	for _, tc := range []struct {
		name      string
		method    string
		threshold float64
	}{
		{"iter_k10", "iter_k", 10},
		{"sample_n6", "sample_n", 6}, // ~64/6 ≈ 10 kept per class
	} {
		b.Run(tc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := eval.Evaluate(full, fullDiag, tc.method, tc.threshold)
				if err != nil {
					b.Fatal(err)
				}
				if i == b.N-1 {
					b.ReportMetric(res.PctSize, "%size")
					b.ReportMetric(float64(res.ApproxDist), "apxdist-us")
					retained := 0.0
					if res.Retained {
						retained = 1
					}
					b.ReportMetric(retained, "retained")
				}
			}
		})
	}
}

// BenchmarkPipelineStages breaks the core pipeline into its stages for
// one mid-size workload, the numbers a user tuning the library cares
// about: reduce, encode, reconstruct, analyze.
func BenchmarkPipelineStages(b *testing.B) {
	r := sharedRunner(b)
	full, err := r.Trace("NtoN_32")
	if err != nil {
		b.Fatal(err)
	}
	b.Run("reduce/avgWave", func(b *testing.B) {
		p, _ := core.NewMethod("avgWave", 0.2)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := core.Reduce(full, p); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("reduce/relDiff", func(b *testing.B) {
		p, _ := core.NewMethod("relDiff", 0.8)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := core.Reduce(full, p); err != nil {
				b.Fatal(err)
			}
		}
	})
	p, _ := core.NewMethod("avgWave", 0.2)
	red, err := core.Reduce(full, p)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("encode", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			core.EncodedReducedSize(red)
		}
	})
	b.Run("reconstruct", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := red.Reconstruct(); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("analyze/reduced", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := expert.AnalyzeReduced(red); err != nil {
				b.Fatal(err)
			}
		}
	})
	recon, err := red.Reconstruct()
	if err != nil {
		b.Fatal(err)
	}
	b.Run("analyze/reconstructed", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := expert.Analyze(recon); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationInterProcessClustering exercises the related-work
// axis the paper is orthogonal to (§2: Nickolayev/Lee): cluster the 32
// ranks of an interference run by execution profile, keep one
// representative trace per cluster, and compose with intra-process
// avgWave reduction. Reported metrics: combined size percentage and the
// clustering's profile RMS error.
func BenchmarkAblationInterProcessClustering(b *testing.B) {
	r := sharedRunner(b)
	full, err := r.Trace("NtoN_1024")
	if err != nil {
		b.Fatal(err)
	}
	for _, k := range []int{2, 4, 8} {
		b.Run(fmt.Sprintf("k%d", k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cred, err := cluster.Reduce(full, k)
				if err != nil {
					b.Fatal(err)
				}
				if i != b.N-1 {
					continue
				}
				// Compose: intra-process reduce the representative subset.
				sub := &trace.Trace{Name: full.Name, Ranks: cred.Representatives}
				p, _ := core.NewMethod("avgWave", 0.2)
				ired, err := core.Reduce(sub, p)
				if err != nil {
					b.Fatal(err)
				}
				fullBytes := trace.EncodedSize(full)
				combined := core.EncodedReducedSize(ired) + int64(4*len(cred.Clustering.Assign))
				b.ReportMetric(100*float64(combined)/float64(fullBytes), "%size-combined")
				b.ReportMetric(100*float64(cred.EncodedSize())/float64(fullBytes), "%size-cluster-only")
				b.ReportMetric(cluster.ProfileError(full, cred), "profile-rms")
			}
		})
	}
}
