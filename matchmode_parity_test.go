package repro

import (
	"bytes"
	"testing"

	"repro/internal/core"
	"repro/internal/eval"
)

// TestMatchModeExactParity pins MatchModeExact byte-identical to the
// plain matcher across all 20 workloads × 9 methods at default
// thresholds: threading a mode through the engine must leave the
// default path's encoded reductions and counters untouched.
func TestMatchModeExactParity(t *testing.T) {
	for _, workload := range eval.AllNames() {
		workload := workload
		t.Run(workload, func(t *testing.T) {
			full := parityTrace(t, workload)
			for _, method := range core.MethodNames {
				pRef, err := core.DefaultMethod(method)
				if err != nil {
					t.Fatal(err)
				}
				pMode, err := core.DefaultMethod(method)
				if err != nil {
					t.Fatal(err)
				}
				ref, err := core.Reduce(full, pRef)
				if err != nil {
					t.Fatalf("%s: Reduce: %v", method, err)
				}
				got, err := core.ReduceMode(full, pMode, core.MatchModeExact)
				if err != nil {
					t.Fatalf("%s: ReduceMode: %v", method, err)
				}
				if got.TotalSegments != ref.TotalSegments ||
					got.Matches != ref.Matches ||
					got.PossibleMatches != ref.PossibleMatches {
					t.Fatalf("%s: counters (%d,%d,%d) vs (%d,%d,%d)", method,
						got.TotalSegments, got.Matches, got.PossibleMatches,
						ref.TotalSegments, ref.Matches, ref.PossibleMatches)
				}
				if !bytes.Equal(encodeReduced(t, got), encodeReduced(t, ref)) {
					t.Fatalf("%s: exact-mode encoded reduction differs from Reduce", method)
				}
			}
		})
	}
}

// TestVPTreeModeGridParity holds the vptree matcher to its
// match-decision-exact guarantee over the full grid: stored segment
// counts, matching counters, and encoded reduced sizes must equal exact
// mode for every workload × method (only which representative an
// execution references may differ).
func TestVPTreeModeGridParity(t *testing.T) {
	for _, workload := range eval.AllNames() {
		workload := workload
		t.Run(workload, func(t *testing.T) {
			full := parityTrace(t, workload)
			for _, method := range core.MethodNames {
				pRef, err := core.DefaultMethod(method)
				if err != nil {
					t.Fatal(err)
				}
				pVP, err := core.DefaultMethod(method)
				if err != nil {
					t.Fatal(err)
				}
				ref, err := core.Reduce(full, pRef)
				if err != nil {
					t.Fatalf("%s: Reduce: %v", method, err)
				}
				vp, err := core.ReduceMode(full, pVP, core.MatchModeVPTree)
				if err != nil {
					t.Fatalf("%s: ReduceMode(vptree): %v", method, err)
				}
				if vp.TotalSegments != ref.TotalSegments ||
					vp.Matches != ref.Matches ||
					vp.PossibleMatches != ref.PossibleMatches ||
					vp.StoredSegments() != ref.StoredSegments() {
					t.Fatalf("%s: vptree (%d,%d,%d,%d) vs exact (%d,%d,%d,%d)", method,
						vp.TotalSegments, vp.Matches, vp.PossibleMatches, vp.StoredSegments(),
						ref.TotalSegments, ref.Matches, ref.PossibleMatches, ref.StoredSegments())
				}
				if got, want := core.EncodedReducedSize(vp), core.EncodedReducedSize(ref); got != want {
					t.Fatalf("%s: vptree encoded size %d, exact %d", method, got, want)
				}
			}
		})
	}
}

// TestAutoModeGridParity holds MatchModeAuto to the guarantee of
// whichever structure it selects per method (core.IndexKind): methods
// auto leaves on the exact scan must stay byte-identical to the plain
// matcher, methods it routes to a VP-tree must be decision-identical
// (equal counters, stored counts, and encoded sizes), and the
// LSH-routed wavelet methods keep the only-weakens invariant — over the
// full 20-workload × 9-method grid.
func TestAutoModeGridParity(t *testing.T) {
	for _, workload := range eval.AllNames() {
		workload := workload
		t.Run(workload, func(t *testing.T) {
			full := parityTrace(t, workload)
			for _, method := range core.MethodNames {
				pRef, err := core.DefaultMethod(method)
				if err != nil {
					t.Fatal(err)
				}
				pAuto, err := core.DefaultMethod(method)
				if err != nil {
					t.Fatal(err)
				}
				ref, err := core.Reduce(full, pRef)
				if err != nil {
					t.Fatalf("%s: Reduce: %v", method, err)
				}
				auto, err := core.ReduceMode(full, pAuto, core.MatchModeAuto)
				if err != nil {
					t.Fatalf("%s: ReduceMode(auto): %v", method, err)
				}
				if auto.TotalSegments != ref.TotalSegments {
					t.Fatalf("%s: total %d vs %d", method, auto.TotalSegments, ref.TotalSegments)
				}
				if auto.PossibleMatches != ref.PossibleMatches {
					t.Fatalf("%s: possible %d vs %d", method, auto.PossibleMatches, ref.PossibleMatches)
				}
				switch kind := core.IndexKind(pRef, core.MatchModeAuto); kind {
				case "scan":
					if auto.Matches != ref.Matches {
						t.Fatalf("%s: auto matches %d vs exact %d", method, auto.Matches, ref.Matches)
					}
					if !bytes.Equal(encodeReduced(t, auto), encodeReduced(t, ref)) {
						t.Fatalf("%s: auto-mode encoded reduction differs from Reduce", method)
					}
				case "vptree":
					if auto.Matches != ref.Matches || auto.StoredSegments() != ref.StoredSegments() {
						t.Fatalf("%s: auto (%d,%d) vs exact (%d,%d)", method,
							auto.Matches, auto.StoredSegments(), ref.Matches, ref.StoredSegments())
					}
					if got, want := core.EncodedReducedSize(auto), core.EncodedReducedSize(ref); got != want {
						t.Fatalf("%s: auto encoded size %d, exact %d", method, got, want)
					}
				case "lsh":
					if auto.Matches > ref.Matches {
						t.Fatalf("%s: auto matches %d exceed exact %d", method, auto.Matches, ref.Matches)
					}
					if auto.StoredSegments() < ref.StoredSegments() {
						t.Fatalf("%s: auto stored %d below exact %d", method, auto.StoredSegments(), ref.StoredSegments())
					}
					if auto.Matches+auto.StoredSegments() != auto.TotalSegments {
						t.Fatalf("%s: matches %d + stored %d != total %d", method,
							auto.Matches, auto.StoredSegments(), auto.TotalSegments)
					}
				default:
					t.Fatalf("%s: unknown index kind %q", method, kind)
				}
			}
		})
	}
}

// TestLSHModeGridInvariant holds the lsh matcher to its only-weakens
// guarantee over the full grid: for every workload and wavelet method,
// misses may add stored representatives but the counters stay
// consistent and the match count never exceeds exact mode's.
func TestLSHModeGridInvariant(t *testing.T) {
	for _, workload := range eval.AllNames() {
		workload := workload
		t.Run(workload, func(t *testing.T) {
			full := parityTrace(t, workload)
			for _, method := range []string{"avgWave", "haarWave"} {
				pRef, err := core.DefaultMethod(method)
				if err != nil {
					t.Fatal(err)
				}
				pLSH, err := core.DefaultMethod(method)
				if err != nil {
					t.Fatal(err)
				}
				ref, err := core.Reduce(full, pRef)
				if err != nil {
					t.Fatalf("%s: Reduce: %v", method, err)
				}
				lsh, err := core.ReduceMode(full, pLSH, core.MatchModeLSH)
				if err != nil {
					t.Fatalf("%s: ReduceMode(lsh): %v", method, err)
				}
				if lsh.TotalSegments != ref.TotalSegments {
					t.Fatalf("%s: total %d vs %d", method, lsh.TotalSegments, ref.TotalSegments)
				}
				if lsh.PossibleMatches != ref.PossibleMatches {
					t.Fatalf("%s: possible %d vs %d", method, lsh.PossibleMatches, ref.PossibleMatches)
				}
				if lsh.Matches > ref.Matches {
					t.Fatalf("%s: lsh matches %d exceed exact %d", method, lsh.Matches, ref.Matches)
				}
				if lsh.StoredSegments() < ref.StoredSegments() {
					t.Fatalf("%s: lsh stored %d below exact %d", method, lsh.StoredSegments(), ref.StoredSegments())
				}
				if lsh.Matches+lsh.StoredSegments() != lsh.TotalSegments {
					t.Fatalf("%s: matches %d + stored %d != total %d", method,
						lsh.Matches, lsh.StoredSegments(), lsh.TotalSegments)
				}
			}
		})
	}
}
